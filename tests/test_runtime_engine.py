"""Tests for the event-driven runtime engine and its pluggable policies.

Covers the timeline index (including the seed overcommit regression),
the policy protocol, streaming submission, in-loop monitoring, and the
failure-handling edge cases of §VI-A duty 4.
"""

import pytest

from repro.errors import RuntimeSchedulingError
from repro.platforms import alveo_u55c
from repro.runtime import (
    POLICIES,
    Cluster,
    EverestClient,
    HEFTScheduler,
    MinLoadPolicy,
    Node,
    NodeTimeline,
    ResourceRequest,
    RoundRobinScheduler,
    RuntimeEngine,
    default_cluster,
    resolve_policy,
    synthetic_workflow,
)


def _assert_capacity_respected(schedule, cluster):
    for node_name, node in cluster.nodes.items():
        events = [p for p in schedule.placements.values()
                  if p.node == node_name]
        for t in sorted({p.start for p in events}):
            used = sum(p.cores for p in events if p.start <= t < p.finish)
            assert used <= node.cores, (node_name, t, used)


def _assert_dependencies_respected(schedule, graph):
    for task in graph.tasks.values():
        for dep in task.deps:
            assert schedule.placements[dep].finish \
                <= schedule.placements[task.task_id].start + 1e-12


class TestNodeTimeline:
    def _node(self, cores=4):
        return Node("n0", cores=cores, fpgas=[])

    def test_empty_timeline_starts_at_ready(self):
        timeline = NodeTimeline(self._node())
        assert timeline.earliest_start(3.0, 1.0, 2) == 3.0

    def test_packs_into_free_capacity(self):
        timeline = NodeTimeline(self._node(cores=4))
        timeline.commit(0.0, 10.0, 2)
        # Two cores remain free for the whole window.
        assert timeline.earliest_start(0.0, 5.0, 2) == 0.0
        timeline.commit(0.0, 10.0, 2)
        # Now the node is full until t=10.
        assert timeline.earliest_start(0.0, 5.0, 1) == 10.0

    def test_search_extends_past_last_interval_end(self):
        """Regression for the seed ``candidates[-1]`` fallback: when no
        gap fits, the answer is *after* the last busy interval — never an
        overcommitted start inside it."""
        timeline = NodeTimeline(self._node(cores=2))
        timeline.commit(0.0, 4.0, 2)
        timeline.commit(4.0, 4.0, 1)
        # One core free in [4, 8), full before; a 2-core task must wait
        # until t=8 even though its ready time is 0.
        start = timeline.earliest_start(0.0, 3.0, 2)
        assert start == 8.0
        timeline.commit(start, 3.0, 2)
        assert timeline.peak_usage(0.0, 11.0) <= 2

    def test_window_spanning_gap_is_rejected(self):
        timeline = NodeTimeline(self._node(cores=2))
        timeline.commit(0.0, 2.0, 2)
        timeline.commit(5.0, 2.0, 1)
        # One core stays free over [5, 7), so a 1-core window fits at 2;
        # a 2-core window spanning the gap must wait until t=7.
        assert timeline.earliest_start(0.0, 4.0, 1) == 2.0
        assert timeline.earliest_start(0.0, 4.0, 2) == 7.0

    def test_request_wider_than_node_rejected(self):
        """The seed scan silently overcommitted the node instead."""
        timeline = NodeTimeline(self._node(cores=2))
        with pytest.raises(RuntimeSchedulingError):
            timeline.earliest_start(0.0, 1.0, 3)

    def test_release_restores_capacity(self):
        timeline = NodeTimeline(self._node(cores=2))
        timeline.commit(0.0, 10.0, 2)
        assert timeline.earliest_start(0.0, 1.0, 1) == 10.0
        timeline.release(0.0, 10.0, 2)
        assert timeline.earliest_start(0.0, 1.0, 1) == 0.0
        with pytest.raises(RuntimeSchedulingError):
            timeline.release(0.0, 10.0, 2)

    def test_matches_brute_force_on_random_trace(self):
        import random

        rng = random.Random(7)
        node = self._node(cores=8)
        timeline = NodeTimeline(node)
        committed = []
        for _ in range(200):
            ready = rng.uniform(0, 50)
            duration = rng.uniform(0.1, 5.0)
            cores = rng.randint(1, 8)
            start = timeline.earliest_start(ready, duration, cores)
            assert start >= ready
            # Brute-force check: the window fits, and no earlier
            # committed-interval boundary >= ready would.
            def peak(t0, t1):
                points = {t0} | {s for s, e, c in committed
                                 if t0 < s < t1}
                return max((sum(c for s, e, c in committed
                                if s <= p < e) for p in points),
                           default=0)

            assert peak(start, start + duration) + cores <= node.cores
            earlier = {b for b in
                       ({ready} | {e for _, e, _ in committed
                                   if ready < e < start})
                       if b < start}
            for boundary in sorted(earlier):
                assert peak(boundary, boundary + duration) + cores \
                    > node.cores
            timeline.commit(start, duration, cores)
            committed.append((start, start + duration, cores))


class TestSchedulerOvercommitRegression:
    def test_task_wider_than_every_node_rejected(self):
        cluster = Cluster([Node("small0", cores=2, fpgas=[]),
                           Node("small1", cores=2, fpgas=[])])
        client = EverestClient(cluster)
        client.submit(lambda: 0, resources=ResourceRequest(cores=4))
        with pytest.raises(RuntimeSchedulingError):
            client.compute()

    @pytest.mark.parametrize("scheduler_cls",
                             [HEFTScheduler, RoundRobinScheduler])
    def test_wide_task_placed_only_on_capable_node(self, scheduler_cls):
        cluster = Cluster([Node("small", cores=2, fpgas=[]),
                           Node("big", cores=8, fpgas=[])])
        client = EverestClient(cluster, scheduler=scheduler_cls())
        for i in range(6):
            client.submit(lambda: 0, name=f"wide{i}",
                          resources=ResourceRequest(cores=4,
                                                    cpu_flops=1e9))
        schedule = client.compute()
        assert {p.node for p in schedule.placements.values()} == {"big"}
        _assert_capacity_respected(schedule, cluster)


class TestPolicyProtocol:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_registry_policies_satisfy_protocol(self, name):
        policy = resolve_policy(name)
        assert policy.name == name
        assert isinstance(policy.online, bool)
        assert callable(policy.schedule)

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(RuntimeSchedulingError):
            resolve_policy("not-a-policy")

    def test_resolve_rejects_non_policy(self):
        with pytest.raises(RuntimeSchedulingError):
            resolve_policy(object())

    def test_resolve_passes_instances_through(self):
        policy = MinLoadPolicy()
        assert resolve_policy(policy) is policy

    def test_resolve_rejects_seed_signature_scheduler(self):
        """A scheduler without the timelines= keyword would plan against
        empty capacity mid-run; it must be rejected up front."""

        class LegacyScheduler:
            def schedule(self, graph, cluster, ready_overrides=None):
                raise AssertionError("never called")

        with pytest.raises(RuntimeSchedulingError, match="timelines"):
            resolve_policy(LegacyScheduler())

    def test_min_load_balances_identical_tasks(self):
        cluster = default_cluster(2)
        policy = MinLoadPolicy()
        client = EverestClient(cluster, scheduler=policy)
        for i in range(8):
            client.submit(lambda: 0, name=f"t{i}",
                          resources=ResourceRequest(cores=32,
                                                    cpu_flops=1e10))
        schedule = client.compute()
        busy = schedule.node_busy_seconds()
        # Eight node-filling tasks over two nodes: a 50/50 split.
        assert len(busy) == 2
        values = sorted(busy.values())
        assert values[0] == pytest.approx(values[1])

    def test_min_load_offline_schedule_is_valid(self):
        cluster = default_cluster(3)
        client = EverestClient(cluster)
        synthetic_workflow(client, n_tasks=40, seed=5)
        schedule = MinLoadPolicy().schedule(client.graph, cluster)
        _assert_capacity_respected(schedule, cluster)
        _assert_dependencies_respected(schedule, client.graph)


class TestEngineExecution:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_diamond_results_per_policy(self, policy):
        engine = RuntimeEngine(default_cluster(2), policy=policy)
        a = engine.submit(lambda: 1, name="a")
        b = engine.submit(lambda x: x + 1, a, name="b")
        c = engine.submit(lambda x: x * 2, a, name="c")
        d = engine.submit(lambda x, y: x + y, b, c, name="d")
        schedule = engine.run()
        assert d.result() == (1 + 1) + (1 * 2)
        _assert_capacity_respected(schedule, engine.cluster)
        _assert_dependencies_respected(schedule, engine.graph)

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_wide_workflow_valid_per_policy(self, policy):
        engine = RuntimeEngine(default_cluster(3), policy=policy)
        finals = synthetic_workflow(engine, n_tasks=48, seed=3)
        schedule = engine.run()
        assert len(schedule.placements) == 48
        assert all(f.task_id in engine.graph.results for f in finals)
        _assert_capacity_respected(schedule, engine.cluster)
        _assert_dependencies_respected(schedule, engine.graph)

    def test_heartbeats_advance_with_event_clock(self):
        engine = RuntimeEngine(default_cluster(2), heartbeat_interval=0.5)
        synthetic_workflow(engine, n_tasks=20, seed=4)
        schedule = engine.run()
        assert schedule.makespan > 0
        for name in engine.cluster.nodes:
            assert engine.monitor.heartbeat[name] \
                == pytest.approx(schedule.makespan, rel=0.1)

    def test_failed_plan_leaves_timelines_untouched(self):
        """A plan that raises partway (unplaceable FPGA task) must not
        leak half-committed reservations into the live timelines."""
        cluster = Cluster([Node("cpu0", fpgas=[])])
        engine = RuntimeEngine(cluster)
        engine.submit(lambda: 1, name="ok")
        engine.submit(lambda: 2, name="offload",
                      resources=ResourceRequest(fpga=True))
        with pytest.raises(RuntimeSchedulingError):
            engine.run()
        assert engine.timelines["cpu0"].intervals == []
        assert engine.placements == {}

    def test_unsatisfiable_dependency_rejected(self):
        engine = RuntimeEngine(default_cluster(1), policy="min-load")
        future = engine.submit(lambda x: x, 1)
        engine.graph.tasks[future.task_id].deps.append(future.task_id)
        with pytest.raises(RuntimeSchedulingError):
            engine.run()


class TestStreamingSubmission:
    def test_two_jobs_interleave_on_one_cluster(self):
        # Measure job A alone to find a mid-flight submission time.
        probe = RuntimeEngine(default_cluster(2))
        synthetic_workflow(probe, n_tasks=30, seed=2)
        alone = probe.run().makespan

        engine = RuntimeEngine(default_cluster(2))
        synthetic_workflow(engine, n_tasks=30, seed=2, label="a")
        engine.call_at(alone * 0.4, lambda: synthetic_workflow(
            engine, n_tasks=30, seed=3, label="b"))
        schedule = engine.run()

        ids = {"a": set(), "b": set()}
        for task in engine.graph.tasks.values():
            ids[task.name[0]].add(task.task_id)
        assert len(schedule.placements) == 60
        a_last_finish = max(schedule.placements[t].finish
                            for t in ids["a"])
        b_first_start = min(schedule.placements[t].start
                            for t in ids["b"])
        # Job B starts while job A is still running...
        assert b_first_start < a_last_finish
        # ...and no task of B is placed before its submission time.
        assert b_first_start >= alone * 0.4 - 1e-12
        # Both jobs completed functionally, sharing capacity correctly.
        assert all(t in engine.graph.results for t in ids["a"] | ids["b"])
        _assert_capacity_respected(schedule, engine.cluster)

    def test_client_gather_redispatches_new_tasks(self):
        """Regression for the seed stale-schedule bug: tasks submitted
        after ``compute()`` were silently ignored by ``gather()``."""
        client = EverestClient(default_cluster(2))
        first = client.submit(lambda: 10)
        client.compute()
        second = client.submit(lambda x: x + 5, first)
        third = client.submit(lambda: 100)
        assert client.gather([first, second, third]) == [10, 15, 100]
        # The late tasks were really scheduled, not just executed.
        schedule = client.last_schedule
        assert second.task_id in schedule.placements
        assert third.task_id in schedule.placements
        # And they run no earlier than the first batch's timeline.
        assert schedule.placements[second.task_id].start \
            >= schedule.placements[first.task_id].finish

    def test_submit_at_streams_tasks_in(self):
        engine = RuntimeEngine(default_cluster(1), policy="min-load")
        first = engine.submit(lambda: 2,
                              resources=ResourceRequest(cpu_flops=1e10))
        engine.submit_at(0.5, lambda: 3, name="late")
        schedule = engine.run()
        late = next(t for t in engine.graph.tasks.values()
                    if t.name == "late")
        assert schedule.placements[late.task_id].start >= 0.5
        assert first.result() == 2
        assert engine.graph.results[late.task_id] == 3


class TestFailureHandling:
    def _loaded_engine(self, policy="heft", nodes=3, tasks=60, seed=1):
        engine = RuntimeEngine(default_cluster(nodes), policy=policy)
        finals = synthetic_workflow(engine, n_tasks=tasks, seed=seed)
        return engine, finals

    def _makespan(self, **kwargs):
        engine, _ = self._loaded_engine(**kwargs)
        return engine.run().makespan

    @pytest.mark.parametrize("policy", ["heft", "min-load"])
    def test_mid_run_failure_rescheduled_automatically(self, policy):
        baseline = self._makespan(policy=policy)
        engine, finals = self._loaded_engine(policy=policy)
        fail_time = baseline * 0.3
        engine.fail_node_at(fail_time, "node0")
        schedule = engine.run()
        assert schedule.rescheduled_tasks > 0
        for placement in schedule.placements.values():
            if placement.node == "node0":
                assert placement.finish <= fail_time + 1e-9
        assert all(f.task_id in engine.graph.results for f in finals)
        _assert_capacity_respected(schedule, engine.cluster)
        _assert_dependencies_respected(schedule, engine.graph)

    def test_node_fails_before_any_task_starts(self):
        engine, finals = self._loaded_engine()
        engine.fail_node_at(0.0, "node1")
        schedule = engine.run()
        # Nothing may run on the node that died at t=0...
        assert all(p.node != "node1"
                   for p in schedule.placements.values())
        # ...yet everything still completes on the survivors.
        assert len(schedule.placements) == 60
        assert all(f.task_id in engine.graph.results for f in finals)

    def test_last_fpga_node_fails_with_fpga_task_pending(self):
        cluster = Cluster([Node("cpu0", fpgas=[]),
                           Node("acc0", fpgas=[alveo_u55c()])])
        engine = RuntimeEngine(cluster)
        gate = engine.submit(lambda: 1, name="gate",
                             resources=ResourceRequest(cpu_flops=5e10))
        engine.submit(lambda x: x, gate, name="offload",
                      resources=ResourceRequest(fpga=True,
                                                fpga_seconds=1e-3))
        engine.fail_node_at(1.0, "acc0")  # before the FPGA task can run
        with pytest.raises(RuntimeSchedulingError):
            engine.run()

    def test_two_sequential_failures(self):
        baseline = self._makespan()
        engine, finals = self._loaded_engine()
        t1, t2 = baseline * 0.2, baseline * 0.5
        engine.fail_node_at(t1, "node0")
        engine.fail_node_at(t2, "node1")
        schedule = engine.run()
        assert schedule.rescheduled_tasks > 0
        for placement in schedule.placements.values():
            if placement.node == "node0":
                assert placement.finish <= t1 + 1e-9
            if placement.node == "node1":
                assert placement.finish <= t2 + 1e-9
        assert all(f.task_id in engine.graph.results for f in finals)
        _assert_capacity_respected(schedule, engine.cluster)

    def test_failure_after_restore_is_handled_again(self):
        """A node that fails, is restored, and fails a second time must
        be re-detected — the handled-failure set resets on recovery."""
        baseline = self._makespan()
        engine, finals = self._loaded_engine()
        t1, t2 = baseline * 0.2, baseline * 0.8
        engine.fail_node_at(t1, "node0")
        engine.call_at(baseline * 0.4,
                       lambda: engine.cluster.restore_node("node0"))
        # Stream fresh work in after the restore so the revived node0
        # picks up placements again...
        engine.call_at(baseline * 0.5, lambda: synthetic_workflow(
            engine, n_tasks=30, seed=9, label="wave2"))
        counts = {}
        engine.call_at(t2 * 0.999,
                       lambda: counts.update(
                           before=engine.rescheduled_tasks))
        # ...then kill it a second time.
        engine.fail_node_at(t2, "node0")
        schedule = engine.run()
        # The second failure really rescheduled work — it was not
        # swallowed by the already-handled set.
        assert schedule.rescheduled_tasks > counts["before"]
        for placement in schedule.placements.values():
            if placement.node == "node0":
                assert placement.finish <= t2 + 1e-9
        assert all(f.task_id in engine.graph.results for f in finals)
        assert len(engine.graph.results) == 90

    def test_monitor_detects_externally_failed_node(self):
        """Failure injected by side effect (not fail_node_at): the
        in-loop monitor notices the dead node and recovery still runs."""
        baseline = self._makespan()
        engine, finals = self._loaded_engine()
        engine.call_at(baseline * 0.3,
                       lambda: engine.cluster.fail_node("node0"))
        schedule = engine.run()
        assert schedule.rescheduled_tasks > 0
        assert all(f.task_id in engine.graph.results for f in finals)


class TestTimelineCoalescing:
    """Regression: commit/release churn must not leave stale breakpoints
    (they skewed ``load_after`` and bloated every later query)."""

    def _snapshot(self, timeline):
        return (list(timeline._times), list(timeline._levels))

    def test_release_cycles_return_to_pristine_index(self):
        node = Node(name="n", cores=8, fpgas=[])
        timeline = NodeTimeline(node)
        timeline.commit(0.0, 10.0, 2)
        pristine = self._snapshot(timeline)
        for i in range(50):
            start = 1.0 + (i % 7)
            timeline.commit(start, 3.0, 3)
            timeline.commit(start + 0.5, 1.0, 2)
            timeline.release(start + 0.5, 1.0, 2)
            timeline.release(start, 3.0, 3)
        assert self._snapshot(timeline) == pristine
        assert timeline.load_after(0.0) == pytest.approx(20.0)

    def test_interleaved_churn_matches_fresh_rebuild(self):
        import random

        rng = random.Random(5)
        node = Node(name="n", cores=16, fpgas=[])
        timeline = NodeTimeline(node)
        live = []
        for _ in range(300):
            if live and rng.random() < 0.4:
                victim = live.pop(rng.randrange(len(live)))
                timeline.release(*victim)
            else:
                interval = (round(rng.uniform(0, 50), 2),
                            round(rng.uniform(0.1, 9), 2),
                            rng.randint(1, 6))
                timeline.commit(*interval)
                live.append(interval)
        rebuilt = NodeTimeline(node)
        for interval in live:
            rebuilt.commit(*interval)
        assert timeline._times == rebuilt._times
        assert timeline._levels == rebuilt._levels
        assert timeline.load_after(10.0) \
            == pytest.approx(rebuilt.load_after(10.0))


class TestEventDeterminism:
    """Identical timestamps must resolve deterministically (push order
    within a kind, kind priority across kinds)."""

    def test_event_queue_pops_same_kind_in_push_order(self):
        from repro.runtime.engine.events import CALLBACK, EventQueue

        queue = EventQueue()
        for i in range(20):
            queue.push(1.0, CALLBACK, i)
        assert [queue.pop().payload for _ in range(20)] == list(range(20))

    def test_event_queue_orders_kinds_at_equal_time(self):
        from repro.runtime.engine import events as ev
        from repro.runtime.engine.events import EventQueue

        queue = EventQueue()
        queue.push(1.0, ev.HEARTBEAT)
        queue.push(1.0, ev.TASK_START, (0, 0))
        queue.push(1.0, ev.TASK_FINISH, (0, 0))
        kinds = [queue.pop().kind for _ in range(3)]
        assert kinds == [ev.TASK_FINISH, ev.TASK_START, ev.HEARTBEAT]

    def test_submit_at_identical_timestamps_run_in_submission_order(self):
        engine = RuntimeEngine(default_cluster(1), policy="min-load")
        seen = []
        for i in range(8):
            engine.submit_at(1.0, lambda i=i: seen.append(i))
        engine.run()
        assert seen == list(range(8))
        # Replay gives the identical schedule.
        again = RuntimeEngine(default_cluster(1), policy="min-load")
        replay = []
        for i in range(8):
            again.submit_at(1.0, lambda i=i: replay.append(i))
        second = again.run()
        assert replay == seen
        first = engine.schedule_result()
        assert {t: (p.node, p.start, p.finish)
                for t, p in first.placements.items()} \
            == {t: (p.node, p.start, p.finish)
                for t, p in second.placements.items()}


class TestPolicyEdgeCases:
    def test_empty_graph_runs_to_empty_schedule(self):
        for policy in sorted(POLICIES):
            engine = RuntimeEngine(default_cluster(2), policy=policy)
            schedule = engine.run()
            assert schedule.placements == {}
            assert schedule.makespan == 0.0

    def test_single_node_cluster_serializes_wide_tasks(self):
        cluster = Cluster([Node(name="only", cores=4, fpgas=[])])
        for policy in sorted(POLICIES):
            engine = RuntimeEngine(cluster, policy=policy)
            futs = [engine.submit(lambda i=i: i,
                                  resources=ResourceRequest(cores=4))
                    for i in range(3)]
            schedule = engine.run()
            assert len(engine.graph.results) == 3
            starts = sorted((schedule.placements[f.task_id].start,
                             schedule.placements[f.task_id].finish)
                            for f in futs)
            for (s0, f0), (s1, f1) in zip(starts, starts[1:]):
                assert s1 >= f0 - 1e-9  # 4-core tasks cannot overlap

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_all_nodes_failed_mid_run_raises(self, policy):
        engine = RuntimeEngine(default_cluster(2), policy=policy)
        synthetic_workflow(engine, n_tasks=40, seed=3)
        horizon = engine.run(until=0.0).makespan or 1.0
        engine.fail_node_at(horizon * 0.1, "node0")
        engine.fail_node_at(horizon * 0.1, "node1")
        with pytest.raises(RuntimeSchedulingError):
            engine.run()

    def test_task_requesting_exactly_node_cores(self):
        node = Node(name="full", cores=32, fpgas=[])
        cluster = Cluster([node])
        for policy in sorted(POLICIES):
            engine = RuntimeEngine(cluster, policy=policy)
            a = engine.submit(lambda: 1,
                              resources=ResourceRequest(cores=32))
            b = engine.submit(lambda x: x + 1, a,
                              resources=ResourceRequest(cores=32))
            schedule = engine.run()
            assert engine.graph.results[b.task_id] == 2
            pa, pb = (schedule.placements[a.task_id],
                      schedule.placements[b.task_id])
            assert pb.start >= pa.finish - 1e-9

    def test_min_load_empty_batch_schedule(self):
        from repro.runtime.taskgraph import TaskGraph

        result = MinLoadPolicy().schedule(TaskGraph(), default_cluster(2))
        assert result.placements == {}

    def test_resolve_policy_accepts_a_class(self):
        assert isinstance(resolve_policy(HEFTScheduler), HEFTScheduler)
        assert isinstance(resolve_policy(MinLoadPolicy), MinLoadPolicy)
        engine = RuntimeEngine(default_cluster(1), policy=MinLoadPolicy)
        engine.submit(lambda: 7)
        engine.run()
        assert list(engine.graph.results.values()) == [7]


class TestTaskGraphScale:
    def test_deep_chain_toposort_is_iterative(self):
        """A 5,000-task chain must not hit the recursion limit."""
        import sys

        from repro.runtime.taskgraph import TaskGraph

        graph = TaskGraph()
        prev = []
        for i in range(5000):
            prev = [graph.add(lambda: None, tuple(prev), {}, None, 0,
                              None, None)]
        limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(120)
            order = graph.topological_order()
        finally:
            sys.setrecursionlimit(limit)
        ids = [t.task_id for t in order]
        assert ids == sorted(ids)  # chain: dependency order == id order

    def test_toposort_cycle_detected(self):
        from repro.runtime.taskgraph import TaskGraph

        graph = TaskGraph()
        a = graph.add(lambda: None, (), {}, None, 0, None, None)
        b = graph.add(lambda: None, (a,), {}, None, 0, None, None)
        graph.tasks[a.task_id].deps.append(b.task_id)
        with pytest.raises(RuntimeSchedulingError, match="cycle"):
            graph.topological_order()


class TestIncrementalHEFTEquivalence:
    """The pruned placement index must reproduce the exhaustive scan
    bitwise (tools/workloadfuzz.py checks this generatively; these are
    the readable anchors)."""

    def _assert_same(self, left, right):
        assert set(left.placements) == set(right.placements)
        for tid, p in left.placements.items():
            q = right.placements[tid]
            assert (p.node, p.start, p.finish, p.cores) \
                == (q.node, q.start, q.finish, q.cores)
        assert left.transfers_seconds \
            == pytest.approx(right.transfers_seconds, abs=1e-9)

    def _graph(self, n_tasks, seed, fpga_fraction=0.0):
        class _Builder:
            def __init__(self):
                from repro.runtime.taskgraph import TaskGraph

                self.graph = TaskGraph()

            def submit(self, fn, *args, resources=None, output_bytes=8192,
                       tuning=None, name=None, **kwargs):
                return self.graph.add(fn, args, kwargs, resources,
                                      output_bytes, tuning, name)

        builder = _Builder()
        synthetic_workflow(builder, n_tasks=n_tasks, seed=seed,
                           fpga_fraction=fpga_fraction)
        return builder.graph

    def test_identical_on_homogeneous_cluster(self):
        graph = self._graph(400, seed=2)
        cluster = default_cluster(24)
        self._assert_same(HEFTScheduler().schedule(graph, cluster),
                          HEFTScheduler(incremental=False)
                          .schedule(graph, cluster))

    def test_identical_on_heterogeneous_cluster_with_fpga_tasks(self):
        nodes = [Node(name=f"n{i}", cores=[4, 8, 16, 32][i % 4],
                      core_gflops=[1.5, 2.5][i % 2],
                      fpgas=[alveo_u55c()] if i % 3 == 0 else [])
                 for i in range(12)]
        cluster = Cluster(nodes)
        graph = self._graph(300, seed=4, fpga_fraction=0.3)
        self._assert_same(HEFTScheduler().schedule(graph, cluster),
                          HEFTScheduler(incremental=False)
                          .schedule(graph, cluster))

    def test_identical_with_ready_overrides_and_warm_timelines(self):
        graph = self._graph(120, seed=6)
        cluster = default_cluster(6)
        ready = {tid: (tid % 5) * 0.75 for tid in graph.tasks}

        def warm():
            timelines = {name: NodeTimeline(node)
                         for name, node in cluster.nodes.items()}
            timelines["node0"].commit(0.0, 2.5, 20)
            timelines["node3"].commit(1.0, 4.0, 32)
            return timelines

        self._assert_same(
            HEFTScheduler().schedule(graph, cluster,
                                     ready_overrides=ready,
                                     timelines=warm()),
            HEFTScheduler(incremental=False)
            .schedule(graph, cluster, ready_overrides=ready,
                      timelines=warm()),
        )
