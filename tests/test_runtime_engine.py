"""Tests for the event-driven runtime engine and its pluggable policies.

Covers the timeline index (including the seed overcommit regression),
the policy protocol, streaming submission, in-loop monitoring, and the
failure-handling edge cases of §VI-A duty 4.
"""

import pytest

from repro.errors import RuntimeSchedulingError
from repro.platforms import alveo_u55c
from repro.runtime import (
    POLICIES,
    Cluster,
    EverestClient,
    HEFTScheduler,
    MinLoadPolicy,
    Node,
    NodeTimeline,
    ResourceRequest,
    RoundRobinScheduler,
    RuntimeEngine,
    default_cluster,
    resolve_policy,
    synthetic_workflow,
)


def _assert_capacity_respected(schedule, cluster):
    for node_name, node in cluster.nodes.items():
        events = [p for p in schedule.placements.values()
                  if p.node == node_name]
        for t in sorted({p.start for p in events}):
            used = sum(p.cores for p in events if p.start <= t < p.finish)
            assert used <= node.cores, (node_name, t, used)


def _assert_dependencies_respected(schedule, graph):
    for task in graph.tasks.values():
        for dep in task.deps:
            assert schedule.placements[dep].finish \
                <= schedule.placements[task.task_id].start + 1e-12


class TestNodeTimeline:
    def _node(self, cores=4):
        return Node("n0", cores=cores, fpgas=[])

    def test_empty_timeline_starts_at_ready(self):
        timeline = NodeTimeline(self._node())
        assert timeline.earliest_start(3.0, 1.0, 2) == 3.0

    def test_packs_into_free_capacity(self):
        timeline = NodeTimeline(self._node(cores=4))
        timeline.commit(0.0, 10.0, 2)
        # Two cores remain free for the whole window.
        assert timeline.earliest_start(0.0, 5.0, 2) == 0.0
        timeline.commit(0.0, 10.0, 2)
        # Now the node is full until t=10.
        assert timeline.earliest_start(0.0, 5.0, 1) == 10.0

    def test_search_extends_past_last_interval_end(self):
        """Regression for the seed ``candidates[-1]`` fallback: when no
        gap fits, the answer is *after* the last busy interval — never an
        overcommitted start inside it."""
        timeline = NodeTimeline(self._node(cores=2))
        timeline.commit(0.0, 4.0, 2)
        timeline.commit(4.0, 4.0, 1)
        # One core free in [4, 8), full before; a 2-core task must wait
        # until t=8 even though its ready time is 0.
        start = timeline.earliest_start(0.0, 3.0, 2)
        assert start == 8.0
        timeline.commit(start, 3.0, 2)
        assert timeline.peak_usage(0.0, 11.0) <= 2

    def test_window_spanning_gap_is_rejected(self):
        timeline = NodeTimeline(self._node(cores=2))
        timeline.commit(0.0, 2.0, 2)
        timeline.commit(5.0, 2.0, 1)
        # One core stays free over [5, 7), so a 1-core window fits at 2;
        # a 2-core window spanning the gap must wait until t=7.
        assert timeline.earliest_start(0.0, 4.0, 1) == 2.0
        assert timeline.earliest_start(0.0, 4.0, 2) == 7.0

    def test_request_wider_than_node_rejected(self):
        """The seed scan silently overcommitted the node instead."""
        timeline = NodeTimeline(self._node(cores=2))
        with pytest.raises(RuntimeSchedulingError):
            timeline.earliest_start(0.0, 1.0, 3)

    def test_release_restores_capacity(self):
        timeline = NodeTimeline(self._node(cores=2))
        timeline.commit(0.0, 10.0, 2)
        assert timeline.earliest_start(0.0, 1.0, 1) == 10.0
        timeline.release(0.0, 10.0, 2)
        assert timeline.earliest_start(0.0, 1.0, 1) == 0.0
        with pytest.raises(RuntimeSchedulingError):
            timeline.release(0.0, 10.0, 2)

    def test_matches_brute_force_on_random_trace(self):
        import random

        rng = random.Random(7)
        node = self._node(cores=8)
        timeline = NodeTimeline(node)
        committed = []
        for _ in range(200):
            ready = rng.uniform(0, 50)
            duration = rng.uniform(0.1, 5.0)
            cores = rng.randint(1, 8)
            start = timeline.earliest_start(ready, duration, cores)
            assert start >= ready
            # Brute-force check: the window fits, and no earlier
            # committed-interval boundary >= ready would.
            def peak(t0, t1):
                points = {t0} | {s for s, e, c in committed
                                 if t0 < s < t1}
                return max((sum(c for s, e, c in committed
                                if s <= p < e) for p in points),
                           default=0)

            assert peak(start, start + duration) + cores <= node.cores
            earlier = {b for b in
                       ({ready} | {e for _, e, _ in committed
                                   if ready < e < start})
                       if b < start}
            for boundary in sorted(earlier):
                assert peak(boundary, boundary + duration) + cores \
                    > node.cores
            timeline.commit(start, duration, cores)
            committed.append((start, start + duration, cores))


class TestSchedulerOvercommitRegression:
    def test_task_wider_than_every_node_rejected(self):
        cluster = Cluster([Node("small0", cores=2, fpgas=[]),
                           Node("small1", cores=2, fpgas=[])])
        client = EverestClient(cluster)
        client.submit(lambda: 0, resources=ResourceRequest(cores=4))
        with pytest.raises(RuntimeSchedulingError):
            client.compute()

    @pytest.mark.parametrize("scheduler_cls",
                             [HEFTScheduler, RoundRobinScheduler])
    def test_wide_task_placed_only_on_capable_node(self, scheduler_cls):
        cluster = Cluster([Node("small", cores=2, fpgas=[]),
                           Node("big", cores=8, fpgas=[])])
        client = EverestClient(cluster, scheduler=scheduler_cls())
        for i in range(6):
            client.submit(lambda: 0, name=f"wide{i}",
                          resources=ResourceRequest(cores=4,
                                                    cpu_flops=1e9))
        schedule = client.compute()
        assert {p.node for p in schedule.placements.values()} == {"big"}
        _assert_capacity_respected(schedule, cluster)


class TestPolicyProtocol:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_registry_policies_satisfy_protocol(self, name):
        policy = resolve_policy(name)
        assert policy.name == name
        assert isinstance(policy.online, bool)
        assert callable(policy.schedule)

    def test_resolve_rejects_unknown_name(self):
        with pytest.raises(RuntimeSchedulingError):
            resolve_policy("not-a-policy")

    def test_resolve_rejects_non_policy(self):
        with pytest.raises(RuntimeSchedulingError):
            resolve_policy(object())

    def test_resolve_passes_instances_through(self):
        policy = MinLoadPolicy()
        assert resolve_policy(policy) is policy

    def test_resolve_rejects_seed_signature_scheduler(self):
        """A scheduler without the timelines= keyword would plan against
        empty capacity mid-run; it must be rejected up front."""

        class LegacyScheduler:
            def schedule(self, graph, cluster, ready_overrides=None):
                raise AssertionError("never called")

        with pytest.raises(RuntimeSchedulingError, match="timelines"):
            resolve_policy(LegacyScheduler())

    def test_min_load_balances_identical_tasks(self):
        cluster = default_cluster(2)
        policy = MinLoadPolicy()
        client = EverestClient(cluster, scheduler=policy)
        for i in range(8):
            client.submit(lambda: 0, name=f"t{i}",
                          resources=ResourceRequest(cores=32,
                                                    cpu_flops=1e10))
        schedule = client.compute()
        busy = schedule.node_busy_seconds()
        # Eight node-filling tasks over two nodes: a 50/50 split.
        assert len(busy) == 2
        values = sorted(busy.values())
        assert values[0] == pytest.approx(values[1])

    def test_min_load_offline_schedule_is_valid(self):
        cluster = default_cluster(3)
        client = EverestClient(cluster)
        synthetic_workflow(client, n_tasks=40, seed=5)
        schedule = MinLoadPolicy().schedule(client.graph, cluster)
        _assert_capacity_respected(schedule, cluster)
        _assert_dependencies_respected(schedule, client.graph)


class TestEngineExecution:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_diamond_results_per_policy(self, policy):
        engine = RuntimeEngine(default_cluster(2), policy=policy)
        a = engine.submit(lambda: 1, name="a")
        b = engine.submit(lambda x: x + 1, a, name="b")
        c = engine.submit(lambda x: x * 2, a, name="c")
        d = engine.submit(lambda x, y: x + y, b, c, name="d")
        schedule = engine.run()
        assert d.result() == (1 + 1) + (1 * 2)
        _assert_capacity_respected(schedule, engine.cluster)
        _assert_dependencies_respected(schedule, engine.graph)

    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_wide_workflow_valid_per_policy(self, policy):
        engine = RuntimeEngine(default_cluster(3), policy=policy)
        finals = synthetic_workflow(engine, n_tasks=48, seed=3)
        schedule = engine.run()
        assert len(schedule.placements) == 48
        assert all(f.task_id in engine.graph.results for f in finals)
        _assert_capacity_respected(schedule, engine.cluster)
        _assert_dependencies_respected(schedule, engine.graph)

    def test_heartbeats_advance_with_event_clock(self):
        engine = RuntimeEngine(default_cluster(2), heartbeat_interval=0.5)
        synthetic_workflow(engine, n_tasks=20, seed=4)
        schedule = engine.run()
        assert schedule.makespan > 0
        for name in engine.cluster.nodes:
            assert engine.monitor.heartbeat[name] \
                == pytest.approx(schedule.makespan, rel=0.1)

    def test_failed_plan_leaves_timelines_untouched(self):
        """A plan that raises partway (unplaceable FPGA task) must not
        leak half-committed reservations into the live timelines."""
        cluster = Cluster([Node("cpu0", fpgas=[])])
        engine = RuntimeEngine(cluster)
        engine.submit(lambda: 1, name="ok")
        engine.submit(lambda: 2, name="offload",
                      resources=ResourceRequest(fpga=True))
        with pytest.raises(RuntimeSchedulingError):
            engine.run()
        assert engine.timelines["cpu0"].intervals == []
        assert engine.placements == {}

    def test_unsatisfiable_dependency_rejected(self):
        engine = RuntimeEngine(default_cluster(1), policy="min-load")
        future = engine.submit(lambda x: x, 1)
        engine.graph.tasks[future.task_id].deps.append(future.task_id)
        with pytest.raises(RuntimeSchedulingError):
            engine.run()


class TestStreamingSubmission:
    def test_two_jobs_interleave_on_one_cluster(self):
        # Measure job A alone to find a mid-flight submission time.
        probe = RuntimeEngine(default_cluster(2))
        synthetic_workflow(probe, n_tasks=30, seed=2)
        alone = probe.run().makespan

        engine = RuntimeEngine(default_cluster(2))
        synthetic_workflow(engine, n_tasks=30, seed=2, label="a")
        engine.call_at(alone * 0.4, lambda: synthetic_workflow(
            engine, n_tasks=30, seed=3, label="b"))
        schedule = engine.run()

        ids = {"a": set(), "b": set()}
        for task in engine.graph.tasks.values():
            ids[task.name[0]].add(task.task_id)
        assert len(schedule.placements) == 60
        a_last_finish = max(schedule.placements[t].finish
                            for t in ids["a"])
        b_first_start = min(schedule.placements[t].start
                            for t in ids["b"])
        # Job B starts while job A is still running...
        assert b_first_start < a_last_finish
        # ...and no task of B is placed before its submission time.
        assert b_first_start >= alone * 0.4 - 1e-12
        # Both jobs completed functionally, sharing capacity correctly.
        assert all(t in engine.graph.results for t in ids["a"] | ids["b"])
        _assert_capacity_respected(schedule, engine.cluster)

    def test_client_gather_redispatches_new_tasks(self):
        """Regression for the seed stale-schedule bug: tasks submitted
        after ``compute()`` were silently ignored by ``gather()``."""
        client = EverestClient(default_cluster(2))
        first = client.submit(lambda: 10)
        client.compute()
        second = client.submit(lambda x: x + 5, first)
        third = client.submit(lambda: 100)
        assert client.gather([first, second, third]) == [10, 15, 100]
        # The late tasks were really scheduled, not just executed.
        schedule = client.last_schedule
        assert second.task_id in schedule.placements
        assert third.task_id in schedule.placements
        # And they run no earlier than the first batch's timeline.
        assert schedule.placements[second.task_id].start \
            >= schedule.placements[first.task_id].finish

    def test_submit_at_streams_tasks_in(self):
        engine = RuntimeEngine(default_cluster(1), policy="min-load")
        first = engine.submit(lambda: 2,
                              resources=ResourceRequest(cpu_flops=1e10))
        engine.submit_at(0.5, lambda: 3, name="late")
        schedule = engine.run()
        late = next(t for t in engine.graph.tasks.values()
                    if t.name == "late")
        assert schedule.placements[late.task_id].start >= 0.5
        assert first.result() == 2
        assert engine.graph.results[late.task_id] == 3


class TestFailureHandling:
    def _loaded_engine(self, policy="heft", nodes=3, tasks=60, seed=1):
        engine = RuntimeEngine(default_cluster(nodes), policy=policy)
        finals = synthetic_workflow(engine, n_tasks=tasks, seed=seed)
        return engine, finals

    def _makespan(self, **kwargs):
        engine, _ = self._loaded_engine(**kwargs)
        return engine.run().makespan

    @pytest.mark.parametrize("policy", ["heft", "min-load"])
    def test_mid_run_failure_rescheduled_automatically(self, policy):
        baseline = self._makespan(policy=policy)
        engine, finals = self._loaded_engine(policy=policy)
        fail_time = baseline * 0.3
        engine.fail_node_at(fail_time, "node0")
        schedule = engine.run()
        assert schedule.rescheduled_tasks > 0
        for placement in schedule.placements.values():
            if placement.node == "node0":
                assert placement.finish <= fail_time + 1e-9
        assert all(f.task_id in engine.graph.results for f in finals)
        _assert_capacity_respected(schedule, engine.cluster)
        _assert_dependencies_respected(schedule, engine.graph)

    def test_node_fails_before_any_task_starts(self):
        engine, finals = self._loaded_engine()
        engine.fail_node_at(0.0, "node1")
        schedule = engine.run()
        # Nothing may run on the node that died at t=0...
        assert all(p.node != "node1"
                   for p in schedule.placements.values())
        # ...yet everything still completes on the survivors.
        assert len(schedule.placements) == 60
        assert all(f.task_id in engine.graph.results for f in finals)

    def test_last_fpga_node_fails_with_fpga_task_pending(self):
        cluster = Cluster([Node("cpu0", fpgas=[]),
                           Node("acc0", fpgas=[alveo_u55c()])])
        engine = RuntimeEngine(cluster)
        gate = engine.submit(lambda: 1, name="gate",
                             resources=ResourceRequest(cpu_flops=5e10))
        engine.submit(lambda x: x, gate, name="offload",
                      resources=ResourceRequest(fpga=True,
                                                fpga_seconds=1e-3))
        engine.fail_node_at(1.0, "acc0")  # before the FPGA task can run
        with pytest.raises(RuntimeSchedulingError):
            engine.run()

    def test_two_sequential_failures(self):
        baseline = self._makespan()
        engine, finals = self._loaded_engine()
        t1, t2 = baseline * 0.2, baseline * 0.5
        engine.fail_node_at(t1, "node0")
        engine.fail_node_at(t2, "node1")
        schedule = engine.run()
        assert schedule.rescheduled_tasks > 0
        for placement in schedule.placements.values():
            if placement.node == "node0":
                assert placement.finish <= t1 + 1e-9
            if placement.node == "node1":
                assert placement.finish <= t2 + 1e-9
        assert all(f.task_id in engine.graph.results for f in finals)
        _assert_capacity_respected(schedule, engine.cluster)

    def test_failure_after_restore_is_handled_again(self):
        """A node that fails, is restored, and fails a second time must
        be re-detected — the handled-failure set resets on recovery."""
        baseline = self._makespan()
        engine, finals = self._loaded_engine()
        t1, t2 = baseline * 0.2, baseline * 0.8
        engine.fail_node_at(t1, "node0")
        engine.call_at(baseline * 0.4,
                       lambda: engine.cluster.restore_node("node0"))
        # Stream fresh work in after the restore so the revived node0
        # picks up placements again...
        engine.call_at(baseline * 0.5, lambda: synthetic_workflow(
            engine, n_tasks=30, seed=9, label="wave2"))
        counts = {}
        engine.call_at(t2 * 0.999,
                       lambda: counts.update(
                           before=engine.rescheduled_tasks))
        # ...then kill it a second time.
        engine.fail_node_at(t2, "node0")
        schedule = engine.run()
        # The second failure really rescheduled work — it was not
        # swallowed by the already-handled set.
        assert schedule.rescheduled_tasks > counts["before"]
        for placement in schedule.placements.values():
            if placement.node == "node0":
                assert placement.finish <= t2 + 1e-9
        assert all(f.task_id in engine.graph.results for f in finals)
        assert len(engine.graph.results) == 90

    def test_monitor_detects_externally_failed_node(self):
        """Failure injected by side effect (not fail_node_at): the
        in-loop monitor notices the dead node and recovery still runs."""
        baseline = self._makespan()
        engine, finals = self._loaded_engine()
        engine.call_at(baseline * 0.3,
                       lambda: engine.cluster.fail_node("node0"))
        schedule = engine.run()
        assert schedule.rescheduled_tasks > 0
        assert all(f.task_id in engine.graph.results for f in finals)
