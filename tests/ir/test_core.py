"""Unit tests for operations, blocks, regions and def-use chains."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Block,
    Builder,
    Module,
    Operation,
    Region,
    build_func,
    types as T,
    verify,
)


def _const(builder, value=1.0):
    return builder.create("arith.constant", result_types=[T.f64],
                          attributes={"value": value}).result


class TestOperationBasics:
    def test_name_must_be_dotted(self):
        with pytest.raises(IRError):
            Operation.create("nodot")

    def test_dialect_and_opname(self):
        op = Operation.create("arith.addf", result_types=[T.f64])
        assert op.dialect == "arith"
        assert op.opname == "addf"

    def test_result_property_single(self):
        op = Operation.create("arith.constant", result_types=[T.f64])
        assert op.result.type == T.f64

    def test_result_property_rejects_multiple(self):
        op = Operation.create("d.pair", result_types=[T.f64, T.f64])
        with pytest.raises(IRError):
            _ = op.result

    def test_attr_coercion_and_unwrap(self):
        op = Operation.create("d.op", attributes={
            "i": 3, "f": 2.5, "s": "x", "b": True, "l": [1, 2],
            "d": {"k": 1},
        })
        assert op.attr("i") == 3
        assert op.attr("f") == 2.5
        assert op.attr("s") == "x"
        assert op.attr("b") is True
        assert op.attr("l") == [1, 2]
        assert op.attr("d") == {"k": 1}
        assert op.attr("missing", "def") == "def"


class TestDefUse:
    def test_uses_tracked(self):
        m = Module()
        b = Builder.at_end(m.body)
        c = _const(b)
        mul = b.create("arith.mulf", [c, c], [T.f64])
        assert len(c.uses) == 2
        assert all(op is mul for op, _ in c.uses)

    def test_replace_all_uses(self):
        m = Module()
        b = Builder.at_end(m.body)
        c1 = _const(b, 1.0)
        c2 = _const(b, 2.0)
        mul = b.create("arith.mulf", [c1, c1], [T.f64])
        c1.replace_all_uses_with(c2)
        assert mul.operands == (c2, c2)
        assert not c1.has_uses

    def test_erase_with_uses_rejected(self):
        m = Module()
        b = Builder.at_end(m.body)
        c = _const(b)
        b.create("arith.mulf", [c, c], [T.f64])
        with pytest.raises(IRError):
            c.op.erase()

    def test_erase_removes_from_block(self):
        m = Module()
        b = Builder.at_end(m.body)
        c = _const(b)
        assert len(m.body) == 1
        c.op.erase()
        assert len(m.body) == 0


class TestClone:
    def test_clone_remaps_internal_values(self):
        m = Module()
        b = Builder.at_end(m.body)
        c = _const(b)
        mul = b.create("arith.mulf", [c, c], [T.f64])
        func, entry, fb = build_func(m, "f", [T.f64], [T.f64])
        inner = fb.create("arith.addf", [entry.args[0], entry.args[0]],
                          [T.f64])
        fb.create("func.return", [inner.result])
        clone = func.clone()
        cloned_entry = clone.regions[0].entry
        add = cloned_entry.operations[0]
        assert add.operands[0] is cloned_entry.args[0]
        assert add.operands[0] is not entry.args[0]

    def test_clone_preserves_attributes(self):
        op = Operation.create("d.op", attributes={"x": 42})
        assert op.clone().attr("x") == 42


class TestModule:
    def test_symbol_table(self):
        m = Module()
        build_func(m, "a", [], [])
        build_func(m, "b", [], [])
        assert set(m.symbols()) == {"a", "b"}
        assert m.lookup("a").attr("sym_name") == "a"

    def test_duplicate_symbols_rejected(self):
        m = Module()
        build_func(m, "a", [], [])
        build_func(m, "a", [], [])
        with pytest.raises(IRError):
            m.symbols()

    def test_unknown_symbol(self):
        with pytest.raises(IRError):
            Module().lookup("ghost")

    def test_walk_visits_nested(self):
        m = Module()
        _, entry, fb = build_func(m, "f", [], [])
        fb.create("func.return", [])
        names = [op.name for op in m.walk()]
        assert names == ["builtin.module", "func.func", "func.return"]


class TestVerifier:
    def test_valid_module_verifies(self):
        m = Module()
        _, entry, fb = build_func(m, "f", [T.f64], [T.f64])
        r = fb.create("arith.addf", [entry.args[0], entry.args[0]], [T.f64])
        fb.create("func.return", [r.result])
        verify(m)

    def test_use_before_def_rejected(self):
        m = Module()
        b = Builder.at_end(m.body)
        c = _const(b)
        mul = Operation.create("arith.mulf", [c, c], [T.f64])
        # Insert the multiply *before* the constant definition.
        m.body.insert(0, mul)
        with pytest.raises(IRError):
            verify(m)

    def test_registered_arity_enforced(self):
        m = Module()
        b = Builder.at_end(m.body)
        c = _const(b)
        b.create("arith.mulf", [c], [T.f64])  # needs two operands
        with pytest.raises(IRError):
            verify(m)

    def test_missing_required_attr_rejected(self):
        m = Module()
        b = Builder.at_end(m.body)
        b.create("arith.constant", [], [T.f64])  # no 'value'
        with pytest.raises(IRError):
            verify(m)

    def test_func_signature_mismatch_rejected(self):
        m = Module()
        entry = Block([T.f64])
        func = Operation.create(
            "func.func", [], [],
            {"sym_name": "bad",
             "function_type": T.FunctionType((T.i32,), ())},
            [Region([entry])],
        )
        m.append(func)
        with pytest.raises(IRError):
            verify(m)


class TestBuilder:
    def test_insertion_before_and_after(self):
        m = Module()
        b = Builder.at_end(m.body)
        first = b.create("d.one", [], [])
        last = b.create("d.three", [], [])
        Builder.before(last).create("d.two", [], [])
        assert [op.name for op in m.body] == ["d.one", "d.two", "d.three"]

    def test_at_context_manager(self):
        m = Module()
        b = Builder.at_end(m.body)
        block = Block()
        with b.at(block):
            b.create("d.inner", [], [])
        b.create("d.outer", [], [])
        assert [op.name for op in block] == ["d.inner"]
        assert [op.name for op in m.body] == ["d.outer"]
