"""Generative roundtrip fuzzing of the IR (print -> parse -> print).

Each seeded case builds a random structurally-valid module with
:mod:`tools.irfuzz` and asserts the two core properties:

* ``verify()`` accepts the module (and its reparse);
* the textual form is a fixpoint of print -> parse -> print.

The generator mixes unregistered ``fuzz.*`` ops, well-typed ``arith`` /
``math`` ops, nested regions (``affine.for``, multi-block generic region
ops) and the full attribute menu, so these ~200 cases cover the printer,
parser and verifier far beyond the hand-written tests (this harness found
the unparenthesized function-type-result printer ambiguity).

``tools/irfuzz.py --count N`` runs a longer standalone campaign.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "tools")
)

from irfuzz import check_roundtrip, generate_module  # noqa: E402

from repro.ir import parse_module, print_module  # noqa: E402

N_SEEDS = 200


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_roundtrip_fuzz(seed):
    check_roundtrip(seed)


def test_generator_is_deterministic():
    assert print_module(generate_module(7)) == print_module(generate_module(7))


def test_reparse_preserves_structure():
    module = generate_module(11)
    reparsed = parse_module(print_module(module))
    assert sum(1 for _ in module.walk()) == sum(1 for _ in reparsed.walk())


def test_function_typed_result_roundtrips():
    """Regression (found by fuzzing): a single result of function type —
    including a nested function-type result — must print unambiguously."""
    from repro.ir import Builder, Module, types as T

    m = Module()
    b = Builder.at_end(m.body)
    inner = T.FunctionType((T.f64,), (T.f64,))
    nested = T.FunctionType((T.i64,), (inner,))
    b.create("fuzz.mk", [], [inner])
    b.create("fuzz.mk2", [], [nested])
    b.create("fuzz.attr", [], [], {"ty": nested})
    text = print_module(m)
    assert print_module(parse_module(text)) == text
