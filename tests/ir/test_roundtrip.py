"""Printer/parser round-trip tests, including property-based module
generation with hypothesis."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ir import (
    ArrayAttr,
    Builder,
    DenseAttr,
    DictAttr,
    Module,
    attr,
    build_func,
    parse_module,
    print_module,
    types as T,
    verify,
)

# -- strategies ---------------------------------------------------------------------

_scalar_types = st.sampled_from([T.i1, T.i32, T.i64, T.f32, T.f64, T.bf16,
                                 T.index])
_element_types = st.sampled_from([T.f64, T.f32, T.i64])


@st.composite
def _types(draw):
    kind = draw(st.integers(0, 2))
    if kind == 0:
        return draw(_scalar_types)
    if kind == 1:
        shape = tuple(draw(st.lists(
            st.one_of(st.integers(1, 8), st.none()), min_size=0, max_size=3
        )))
        return T.TensorType(shape, draw(_element_types))
    shape = tuple(draw(st.lists(st.integers(1, 8), min_size=1, max_size=2)))
    return T.MemRefType(shape, draw(_element_types),
                        draw(st.sampled_from(["", "hbm0", "plm"])))


_attr_values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(alphabet="abcXYZ_ 09", max_size=8),
    st.lists(st.integers(-5, 5), max_size=3),
)


@st.composite
def _modules(draw):
    module = Module()
    builder = Builder.at_end(module.body)
    values = []
    n_ops = draw(st.integers(1, 6))
    for i in range(n_ops):
        n_operands = draw(st.integers(0, min(2, len(values))))
        operands = [values[draw(st.integers(0, len(values) - 1))]
                    for _ in range(n_operands)] if values else []
        n_results = draw(st.integers(0, 2))
        result_types = [draw(_types()) for _ in range(n_results)]
        attrs = {}
        for k in range(draw(st.integers(0, 2))):
            attrs[f"a{k}"] = draw(_attr_values)
        op = builder.create(f"test.op{i}", operands, result_types, attrs)
        values.extend(op.results)
    return module


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(_modules())
    def test_print_parse_print_is_identity(self, module):
        text = print_module(module)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text


class TestRoundTripConcrete:
    def test_function_with_block_args(self):
        m = Module()
        _, entry, fb = build_func(m, "f", [T.f64, T.tensor_of(T.i64, 4)],
                                  [T.f64])
        r = fb.create("arith.addf", [entry.args[0], entry.args[0]], [T.f64])
        fb.create("func.return", [r.result])
        text = print_module(m)
        assert print_module(parse_module(text)) == text
        verify(parse_module(text))

    def test_multi_result_ops(self):
        m = Module()
        b = Builder.at_end(m.body)
        pair = b.create("test.pair", [], [T.f64, T.i32])
        b.create("test.use", [pair.results[1], pair.results[0]], [])
        text = print_module(m)
        assert "%0:2" in text
        assert "%0#1" in text
        assert print_module(parse_module(text)) == text

    def test_nested_regions(self):
        from repro.ir.core import Block, Operation, Region

        m = Module()
        inner = Block([T.index])
        Builder.at_end(inner).create("affine.yield", [], [])
        loop = Operation.create("affine.for", [], [],
                                {"lower": 0, "upper": 4, "step": 1},
                                [Region([inner])])
        m.append(loop)
        text = print_module(m)
        assert print_module(parse_module(text)) == text

    def test_dense_attribute(self):
        m = Module()
        b = Builder.at_end(m.body)
        data = np.array([1.5, -2.0, 3.25])
        b.create("test.const", [], [T.tensor_of(T.f64, 3)], {
            "value": DenseAttr(data, T.tensor_of(T.f64, 3)),
        })
        text = print_module(m)
        reparsed = parse_module(text)
        assert print_module(reparsed) == text
        op = reparsed.body.operations[0]
        np.testing.assert_array_equal(op.attr("value"), data)

    def test_escaped_strings(self):
        m = Module()
        b = Builder.at_end(m.body)
        b.create("test.op", [], [], {"s": 'a"b\\c'})
        text = print_module(m)
        reparsed = parse_module(text)
        assert reparsed.body.operations[0].attr("s") == 'a"b\\c'

    def test_special_floats(self):
        m = Module()
        b = Builder.at_end(m.body)
        b.create("test.op", [], [], {"inf": float("inf"),
                                     "ninf": float("-inf")})
        text = print_module(m)
        reparsed = parse_module(text)
        assert reparsed.body.operations[0].attr("inf") == float("inf")
        assert reparsed.body.operations[0].attr("ninf") == float("-inf")

    def test_comments_are_skipped(self):
        text = print_module(Module())
        commented = "// a comment\n" + text
        parse_module(commented)
