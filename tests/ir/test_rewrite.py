"""Tests for the worklist-driven rewrite driver (repro.ir.rewrite)."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Builder,
    Module,
    PatternRewriter,
    RewritePattern,
    apply_patterns,
    apply_patterns_worklist,
    build_func,
    canonical_pattern_set,
    is_attached,
    print_module,
    types as T,
)


class _FoldDoubleNeg(RewritePattern):
    op_name = "test.neg"

    def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
        inner = op.operands[0].owner_op() if op.operands else None
        if inner is None or inner.name != "test.neg":
            return False
        rewriter.replace_op(op, [inner.operands[0]])
        return True


class _EraseDeadSin(RewritePattern):
    op_name = "math.sin"

    def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
        if op.result.has_uses:
            return False
        rewriter.erase_op(op)
        return True


def _neg_chain(depth):
    m = Module()
    b = Builder.at_end(m.body)
    x = b.create("arith.constant", [], [T.f64], {"value": 1.0}).result
    v = x
    for _ in range(depth):
        v = b.create("test.neg", [v], [T.f64]).result
    use = b.create("test.use", [v], [])
    return m, x, use


class TestWorklistDriver:
    def test_fixpoint_on_neg_chain(self):
        m, x, use = _neg_chain(6)
        assert apply_patterns_worklist(m, [_FoldDoubleNeg()])
        assert use.operands[0] is x

    def test_no_match_returns_false(self):
        assert apply_patterns_worklist(Module(), [_FoldDoubleNeg()]) is False

    def test_cascading_erasure_follows_producers(self):
        """Erasing the dead tail must cascade through the whole chain in
        one worklist pass (re-enqueue of operand producers)."""
        m = Module()
        _, entry, fb = build_func(m, "f", [T.f64], [T.f64])
        v = entry.args[0]
        for _ in range(50):
            v = fb.create("math.sin", [v], [T.f64]).result
        fb.create("func.return", [entry.args[0]])
        assert apply_patterns_worklist(m, [_EraseDeadSin()])
        assert len(m.body.operations[0].regions[0].entry) == 1  # return only

    def test_matches_sweep_driver_result(self):
        """Both drivers must reach the same canonical form."""
        m = Module()
        _, entry, fb = build_func(m, "f", [T.f64], [T.f64])
        c1 = fb.create("arith.constant", [], [T.f64], {"value": 2.0}).result
        c2 = fb.create("arith.constant", [], [T.f64], {"value": 3.0}).result
        v = fb.create("arith.addf", [c1, c2], [T.f64]).result
        for _ in range(10):
            v = fb.create("arith.mulf", [v, c2], [T.f64]).result
        dead = entry.args[0]
        for _ in range(10):
            dead = fb.create("math.sin", [dead], [T.f64]).result
        fb.create("func.return", [v])

        sweep, worklist = m.clone(), m.clone()
        apply_patterns(sweep, canonical_pattern_set(), max_iterations=64)
        apply_patterns_worklist(worklist, canonical_pattern_set())
        assert print_module(sweep) == print_module(worklist)

    def test_pattern_created_ops_are_revisited(self):
        """Ops built through the rewriter's builder re-enter the worklist."""

        class LowerTwice(RewritePattern):
            op_name = "test.high"

            def match_and_rewrite(self, op, rewriter):
                mid = rewriter.builder_before(op).create(
                    "test.mid", list(op.operands), [T.f64])
                rewriter.replace_op(op, [mid.result])
                return True

        class LowerMid(RewritePattern):
            op_name = "test.mid"

            def match_and_rewrite(self, op, rewriter):
                low = rewriter.builder_before(op).create(
                    "test.low", list(op.operands), [T.f64])
                rewriter.replace_op(op, [low.result])
                return True

        m = Module()
        b = Builder.at_end(m.body)
        c = b.create("arith.constant", [], [T.f64], {"value": 1.0}).result
        h = b.create("test.high", [c], [T.f64])
        b.create("test.use", [h.result], [])
        apply_patterns_worklist(m, [LowerTwice(), LowerMid()])
        names = [op.name for op in m.body]
        assert "test.high" not in names and "test.mid" not in names
        assert "test.low" in names

    def test_parent_reenqueued_after_body_erasure(self):
        """A region op whose body empties out must be revisited: erasing
        the nested op re-enqueues the (already-visited) parent."""

        class EraseEmptyWrap(RewritePattern):
            op_name = "test.wrap"

            def match_and_rewrite(self, op, rewriter):
                if len(op.regions[0].entry) != 0:
                    return False
                rewriter.erase_op(op)
                return True

        from repro.ir.core import Block, Operation, Region

        m = Module()
        inner = Block()
        Builder.at_end(inner).create("math.sin", [
            Builder.at_end(m.body).create(
                "arith.constant", [], [T.f64], {"value": 0.5}).result
        ], [T.f64])
        m.append(Operation.create("test.wrap", [], [], {},
                                  [Region([inner])]))
        # Seeding order visits test.wrap (non-empty body: no match) before
        # the nested math.sin gets erased as trivially dead.
        from repro.ir import canonical_pattern_set

        apply_patterns_worklist(m, [EraseEmptyWrap()]
                                + canonical_pattern_set())
        assert all(op.name != "test.wrap" for op in m.body)

    def test_non_converging_patterns_raise(self):
        class PingPong(RewritePattern):
            op_name = None

            def match_and_rewrite(self, op, rewriter):
                if op.name not in ("test.ping", "test.pong"):
                    return False
                other = "test.pong" if op.name == "test.ping" else "test.ping"
                new = rewriter.builder_before(op).create(
                    other, [], [T.f64])
                rewriter.replace_op(op, [new.result])
                return True

        m = Module()
        b = Builder.at_end(m.body)
        p = b.create("test.ping", [], [T.f64])
        b.create("test.use", [p.result], [])
        with pytest.raises(IRError):
            apply_patterns_worklist(m, [PingPong()], max_rewrites=100)


class TestIsAttached:
    def test_top_level_and_nested(self):
        from repro.ir.core import Block, Operation, Region

        m = Module()
        inner = Block()
        c = Builder.at_end(inner).create("arith.constant", [], [T.f64],
                                         {"value": 0.0})
        wrapper = Operation.create("test.wrap", [], [], {},
                                   [Region([inner])])
        m.append(wrapper)
        assert is_attached(wrapper, m.op)
        assert is_attached(c, m.op)
        wrapper.erase()
        assert not is_attached(wrapper, m.op)
        assert not is_attached(c, m.op)
