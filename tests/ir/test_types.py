"""Unit tests for the IR type system."""

import pytest

from repro.errors import IRError
from repro.ir import parse_type, types as T


class TestScalarTypes:
    def test_integer_printing(self):
        assert str(T.IntegerType(32)) == "i32"
        assert str(T.IntegerType(8, signed=False)) == "ui8"

    def test_integer_width_must_be_positive(self):
        with pytest.raises(IRError):
            T.IntegerType(0)

    def test_float_printing(self):
        assert str(T.f64) == "f64"
        assert str(T.bf16) == "bf16"
        assert str(T.f16) == "f16"

    def test_float_invalid_width(self):
        with pytest.raises(IRError):
            T.FloatType(48)

    def test_brain_float_requires_16_bits(self):
        with pytest.raises(IRError):
            T.FloatType(32, brain=True)

    def test_index_and_none(self):
        assert str(T.index) == "index"
        assert str(T.none) == "none"

    def test_equality_is_structural(self):
        assert T.IntegerType(32) == T.i32
        assert T.FloatType(64) == T.f64
        assert T.IntegerType(32) != T.IntegerType(32, signed=False)


class TestShapedTypes:
    def test_tensor_printing(self):
        assert str(T.tensor_of(T.f64, 4, None)) == "tensor<4x?xf64>"
        assert str(T.tensor_of(T.f32)) == "tensor<f32>"

    def test_tensor_rank_and_elements(self):
        ty = T.tensor_of(T.f64, 3, 5)
        assert ty.rank == 2
        assert ty.num_elements() == 15
        assert ty.is_static

    def test_dynamic_tensor_has_no_element_count(self):
        with pytest.raises(IRError):
            T.tensor_of(T.f64, None).num_elements()

    def test_negative_extent_rejected(self):
        with pytest.raises(IRError):
            T.TensorType((-1,), T.f64)

    def test_memref_with_space(self):
        ty = T.memref_of(T.f32, 16, space="hbm0")
        assert str(ty) == 'memref<16xf32, "hbm0">'

    def test_function_type_printing(self):
        ty = T.FunctionType((T.f64, T.i32), (T.f64,))
        assert str(ty) == "(f64, i32) -> f64"
        multi = T.FunctionType((), (T.f64, T.f64))
        assert str(multi) == "() -> (f64, f64)"


class TestBase2Types:
    def test_fixed_point(self):
        ty = T.FixedPointType(8, 8)
        assert ty.width == 16
        assert str(ty) == "!base2.fixed<8, 8, signed>"

    def test_fixed_point_needs_bits(self):
        with pytest.raises(IRError):
            T.FixedPointType(0, 0)

    def test_posit(self):
        assert str(T.PositType(16, 1)) == "!base2.posit<16, 1>"

    def test_posit_validation(self):
        with pytest.raises(IRError):
            T.PositType(1, 0)
        with pytest.raises(IRError):
            T.PositType(16, -1)


class TestBitwidth:
    @pytest.mark.parametrize("ty,bits", [
        (T.i32, 32), (T.f64, 64), (T.bf16, 16),
        (T.FixedPointType(4, 12), 16), (T.PositType(8, 0), 8),
        (T.index, 64),
    ])
    def test_bitwidth(self, ty, bits):
        assert T.bitwidth(ty) == bits

    def test_tensor_has_no_scalar_width(self):
        with pytest.raises(IRError):
            T.bitwidth(T.tensor_of(T.f64, 2))

    def test_is_scalar(self):
        assert T.is_scalar(T.f64)
        assert not T.is_scalar(T.tensor_of(T.f64, 2))


class TestTypeParsing:
    @pytest.mark.parametrize("text", [
        "i32", "ui8", "f64", "bf16", "index", "none",
        "tensor<4x?xf64>", "tensor<f32>", 'memref<2x3xf64, "plm">',
        "(f64, i32) -> f64", "() -> (f64, f64)",
        "!base2.fixed<8, 8, signed>", "!base2.posit<16, 1>",
        "!dfg.stream<f64>",
    ])
    def test_roundtrip(self, text):
        assert str(parse_type(text)) == text

    def test_trailing_garbage_rejected(self):
        from repro.errors import IRParseError

        with pytest.raises(IRParseError):
            parse_type("i32 garbage")
