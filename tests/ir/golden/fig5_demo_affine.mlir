"builtin.module"() (
{
  "func.func"() (
  {
  ^bb0(%0: memref<3x4xf64>, %1: memref<4xf64>, %2: memref<3xf64>):
    %3 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb1(%4: index):
      "affine.for"() (
      {
      ^bb2(%5: index):
        %6 = "memref.load"(%1, %5) : (memref<4xf64>, index) -> f64
        "memref.store"(%6, %3, %4, %5) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %7 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb3(%8: index):
      "affine.for"() (
      {
      ^bb4(%9: index):
        %10 = "memref.load"(%0, %8, %9) : (memref<3x4xf64>, index, index) -> f64
        %11 = "memref.load"(%3, %8, %9) : (memref<3x4xf64>, index, index) -> f64
        %12 = "arith.mulf"(%10, %11) : (f64, f64) -> f64
        "memref.store"(%12, %7, %8, %9) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %13 = "memref.alloc"() : () -> memref<3xf64>
    "affine.for"() (
    {
    ^bb5(%14: index):
      %15 = "arith.constant"() {value = 0.0 : f64} : () -> f64
      "memref.store"(%15, %13, %14) : (f64, memref<3xf64>, index) -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    "affine.for"() (
    {
    ^bb6(%16: index):
      "affine.for"() (
      {
      ^bb7(%17: index):
        %18 = "memref.load"(%13, %16) : (memref<3xf64>, index) -> f64
        %19 = "memref.load"(%7, %16, %17) : (memref<3x4xf64>, index, index) -> f64
        %20 = "arith.addf"(%18, %19) : (f64, f64) -> f64
        "memref.store"(%20, %13, %16) : (f64, memref<3xf64>, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    "memref.copy"(%13, %2) : (memref<3xf64>, memref<3xf64>) -> ()
    "func.return"() : () -> ()
  }
  ) {arg_names = ["a", "v", "y"], function_type = (memref<3x4xf64>, memref<4xf64>, memref<3xf64>) -> (), kernel_lang = "affine", num_outputs = 1 : i64, sym_name = "fig5_demo"} : () -> ()
}
) : () -> ()
