"builtin.module"() (
{
  "func.func"() (
  {
    %0 = "ekl.arg"() {axes = ["i", "j"], name = "a"} : () -> tensor<3x4xf64>
    %1 = "ekl.arg"() {axes = ["j"], name = "v"} : () -> tensor<4xf64>
    %2 = "esn.broadcast"(%1) {axes = ["i", "j"], in_axes = ["j"]} : (tensor<4xf64>) -> tensor<3x4xf64>
    %3 = "esn.map"(%0, %2) {axes = ["i", "j"], fn = "mulf"} : (tensor<3x4xf64>, tensor<3x4xf64>) -> tensor<3x4xf64>
    %4 = "arith.constant"() {value = 1.0 : f64} : () -> tensor<f64>
    %5 = "esn.einsum"(%3, %4) {axes = ["i"], spec = "ab,->a"} : (tensor<3x4xf64>, tensor<f64>) -> tensor<3xf64>
    "func.return"(%5) {names = ["y"]} : (tensor<3xf64>) -> ()
  }
  ) {function_type = () -> (), kernel_lang = "esn", sym_name = "fig5_demo"} : () -> ()
}
) : () -> ()
