"builtin.module"() (
{
  "func.func"() (
  {
    %0 = "ekl.arg"() {axes = ["d0", "d1"], name = "A"} : () -> tensor<3x4xf64>
    %1 = "ekl.arg"() {axes = ["d0"], name = "x"} : () -> tensor<4xf64>
    %2 = "teil.broadcast"(%0) {axes = ["d0", "d1", "d2"], in_axes = ["d0", "d1"]} : (tensor<3x4xf64>) -> tensor<3x4x4xf64>
    %3 = "teil.broadcast"(%1) {axes = ["d0", "d1", "d2"], in_axes = ["d2"]} : (tensor<4xf64>) -> tensor<3x4x4xf64>
    %4 = "teil.map"(%2, %3) {axes = ["d0", "d1", "d2"], fn = "mulf"} : (tensor<3x4x4xf64>, tensor<3x4x4xf64>) -> tensor<3x4x4xf64>
    %5 = "teil.gather"(%4) {axes = ["d0", "d1"], base_axes = ["d0", "d1", "d1"], binding = [-1 : i64, -1 : i64, -1 : i64], sub_axes = []} : (tensor<3x4x4xf64>) -> tensor<3x4xf64>
    %6 = "teil.reduce"(%5) {axes = [1 : i64], kind = "add", out_axes = ["d0"]} : (tensor<3x4xf64>) -> tensor<3xf64>
    "func.return"(%6) {names = ["y"]} : (tensor<3xf64>) -> ()
  }
  ) {function_type = () -> (), kernel_lang = "teil", sym_name = "matvec"} : () -> ()
}
) : () -> ()
