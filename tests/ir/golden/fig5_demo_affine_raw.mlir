"builtin.module"() (
{
  "func.func"() (
  {
  ^bb0(%0: memref<3x4xf64>, %1: memref<4xf64>, %2: memref<3xf64>):
    %3 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb1(%4: index):
      "affine.for"() (
      {
      ^bb2(%5: index):
        %6 = "memref.load"(%1, %5) : (memref<4xf64>, index) -> f64
        "memref.store"(%6, %3, %4, %5) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %7 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb3(%8: index):
      "affine.for"() (
      {
      ^bb4(%9: index):
        %10 = "memref.load"(%0, %8, %9) : (memref<3x4xf64>, index, index) -> f64
        %11 = "memref.load"(%3, %8, %9) : (memref<3x4xf64>, index, index) -> f64
        %12 = "arith.mulf"(%10, %11) : (f64, f64) -> f64
        "memref.store"(%12, %7, %8, %9) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %13 = "arith.constant"() {value = 0.0 : f64} : () -> f64
    %14 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb5(%15: index):
      "affine.for"() (
      {
      ^bb6(%16: index):
        "memref.store"(%13, %14, %15, %16) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %17 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb7(%18: index):
      "affine.for"() (
      {
      ^bb8(%19: index):
        %20 = "memref.load"(%7, %18, %19) : (memref<3x4xf64>, index, index) -> f64
        %21 = "memref.load"(%14, %18, %19) : (memref<3x4xf64>, index, index) -> f64
        %22 = "arith.addf"(%20, %21) : (f64, f64) -> f64
        "memref.store"(%22, %17, %18, %19) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %23 = "arith.constant"() {value = 1.0 : f64} : () -> f64
    %24 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb9(%25: index):
      "affine.for"() (
      {
      ^bb10(%26: index):
        "memref.store"(%23, %24, %25, %26) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %27 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb11(%28: index):
      "affine.for"() (
      {
      ^bb12(%29: index):
        %30 = "memref.load"(%17, %28, %29) : (memref<3x4xf64>, index, index) -> f64
        %31 = "memref.load"(%24, %28, %29) : (memref<3x4xf64>, index, index) -> f64
        %32 = "arith.mulf"(%30, %31) : (f64, f64) -> f64
        "memref.store"(%32, %27, %28, %29) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %33 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb13(%34: index):
      "affine.for"() (
      {
      ^bb14(%35: index):
        "memref.store"(%23, %33, %34, %35) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %36 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb15(%37: index):
      "affine.for"() (
      {
      ^bb16(%38: index):
        %39 = "memref.load"(%17, %37, %38) : (memref<3x4xf64>, index, index) -> f64
        %40 = "memref.load"(%33, %37, %38) : (memref<3x4xf64>, index, index) -> f64
        %41 = "arith.mulf"(%39, %40) : (f64, f64) -> f64
        "memref.store"(%41, %36, %37, %38) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %42 = "memref.alloc"() : () -> memref<3xf64>
    "affine.for"() (
    {
    ^bb17(%43: index):
      %44 = "arith.constant"() {value = 0.0 : f64} : () -> f64
      "memref.store"(%44, %42, %43) : (f64, memref<3xf64>, index) -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    "affine.for"() (
    {
    ^bb18(%45: index):
      "affine.for"() (
      {
      ^bb19(%46: index):
        %47 = "memref.load"(%42, %45) : (memref<3xf64>, index) -> f64
        %48 = "memref.load"(%36, %45, %46) : (memref<3x4xf64>, index, index) -> f64
        %49 = "arith.addf"(%47, %48) : (f64, f64) -> f64
        "memref.store"(%49, %42, %45) : (f64, memref<3xf64>, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    "memref.copy"(%42, %2) : (memref<3xf64>, memref<3xf64>) -> ()
    "func.return"() : () -> ()
  }
  ) {arg_names = ["a", "v", "y"], function_type = (memref<3x4xf64>, memref<4xf64>, memref<3xf64>) -> (), kernel_lang = "affine", num_outputs = 1 : i64, sym_name = "fig5_demo"} : () -> ()
}
) : () -> ()
