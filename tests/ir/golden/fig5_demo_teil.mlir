"builtin.module"() (
{
  "func.func"() (
  {
    %0 = "ekl.arg"() {axes = ["i", "j"], name = "a"} : () -> tensor<3x4xf64>
    %1 = "ekl.arg"() {axes = ["j"], name = "v"} : () -> tensor<4xf64>
    %2 = "teil.broadcast"(%1) {axes = ["i", "j"], in_axes = ["j"]} : (tensor<4xf64>) -> tensor<3x4xf64>
    %3 = "teil.map"(%0, %2) {axes = ["i", "j"], fn = "mulf"} : (tensor<3x4xf64>, tensor<3x4xf64>) -> tensor<3x4xf64>
    %4 = "teil.reduce"(%3) {axes = [1 : i64], kind = "add", out_axes = ["a"]} : (tensor<3x4xf64>) -> tensor<3xf64>
    "func.return"(%4) {names = ["y"]} : (tensor<3xf64>) -> ()
  }
  ) {function_type = () -> (), kernel_lang = "teil", sym_name = "fig5_demo"} : () -> ()
}
) : () -> ()
