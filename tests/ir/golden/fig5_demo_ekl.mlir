"builtin.module"() (
{
  "ekl.kernel"() (
  {
    %0 = "ekl.arg"() {axes = ["i", "j"], name = "a"} : () -> tensor<3x4xf64>
    %1 = "ekl.arg"() {axes = ["j"], name = "v"} : () -> tensor<4xf64>
    %2 = "ekl.mul"(%0, %1) {axes = ["i", "j"]} : (tensor<3x4xf64>, tensor<4xf64>) -> tensor<3x4xf64>
    %3 = "ekl.literal"() {axes = [], value = 0.0 : f64} : () -> tensor<f64>
    %4 = "ekl.add"(%2, %3) {axes = ["i", "j"]} : (tensor<3x4xf64>, tensor<f64>) -> tensor<3x4xf64>
    %5 = "ekl.literal"() {axes = [], value = 1.0 : f64} : () -> tensor<f64>
    %6 = "ekl.mul"(%4, %5) {axes = ["i", "j"]} : (tensor<3x4xf64>, tensor<f64>) -> tensor<3x4xf64>
    %7 = "ekl.sum"(%6) {axes = ["i"], over = ["j"]} : (tensor<3x4xf64>) -> tensor<3xf64>
    "ekl.yield"(%7) {names = ["y"]} : (tensor<3xf64>) -> ()
  }
  ) {index_space = {i = 3 : i64, j = 4 : i64}, sym_name = "fig5_demo"} : () -> ()
}
) : () -> ()
