"builtin.module"() (
{
  "cfdlang.program"() (
  {
    %0 = "cfdlang.decl"() {io = "input", name = "A"} : () -> tensor<3x4xf64>
    %1 = "cfdlang.decl"() {io = "input", name = "x"} : () -> tensor<4xf64>
    %2 = "cfdlang.product"(%0, %1) : (tensor<3x4xf64>, tensor<4xf64>) -> tensor<3x4x4xf64>
    %3 = "cfdlang.contract"(%2) {pairs = [[2 : i64, 3 : i64]]} : (tensor<3x4x4xf64>) -> tensor<3xf64>
    "cfdlang.assign"(%3) {name = "y"} : (tensor<3xf64>) -> ()
  }
  ) {sym_name = "matvec"} : () -> ()
}
) : () -> ()
