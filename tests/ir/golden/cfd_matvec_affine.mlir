"builtin.module"() (
{
  "func.func"() (
  {
  ^bb0(%0: memref<3x4xf64>, %1: memref<4xf64>, %2: memref<3xf64>):
    %3 = "memref.alloc"() : () -> memref<3x4x4xf64>
    "affine.for"() (
    {
    ^bb1(%4: index):
      "affine.for"() (
      {
      ^bb2(%5: index):
        "affine.for"() (
        {
        ^bb3(%6: index):
          %7 = "memref.load"(%0, %4, %5) : (memref<3x4xf64>, index, index) -> f64
          "memref.store"(%7, %3, %4, %5, %6) : (f64, memref<3x4x4xf64>, index, index, index) -> ()
          "affine.yield"() : () -> ()
        }
        ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %8 = "memref.alloc"() : () -> memref<3x4x4xf64>
    "affine.for"() (
    {
    ^bb4(%9: index):
      "affine.for"() (
      {
      ^bb5(%10: index):
        "affine.for"() (
        {
        ^bb6(%11: index):
          %12 = "memref.load"(%1, %11) : (memref<4xf64>, index) -> f64
          "memref.store"(%12, %8, %9, %10, %11) : (f64, memref<3x4x4xf64>, index, index, index) -> ()
          "affine.yield"() : () -> ()
        }
        ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %13 = "memref.alloc"() : () -> memref<3x4x4xf64>
    "affine.for"() (
    {
    ^bb7(%14: index):
      "affine.for"() (
      {
      ^bb8(%15: index):
        "affine.for"() (
        {
        ^bb9(%16: index):
          %17 = "memref.load"(%3, %14, %15, %16) : (memref<3x4x4xf64>, index, index, index) -> f64
          %18 = "memref.load"(%8, %14, %15, %16) : (memref<3x4x4xf64>, index, index, index) -> f64
          %19 = "arith.mulf"(%17, %18) : (f64, f64) -> f64
          "memref.store"(%19, %13, %14, %15, %16) : (f64, memref<3x4x4xf64>, index, index, index) -> ()
          "affine.yield"() : () -> ()
        }
        ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %20 = "memref.alloc"() : () -> memref<3x4xf64>
    "affine.for"() (
    {
    ^bb10(%21: index):
      "affine.for"() (
      {
      ^bb11(%22: index):
        %23 = "memref.load"(%13, %21, %22, %22) : (memref<3x4x4xf64>, index, index, index) -> f64
        "memref.store"(%23, %20, %21, %22) : (f64, memref<3x4xf64>, index, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    %24 = "memref.alloc"() : () -> memref<3xf64>
    "affine.for"() (
    {
    ^bb12(%25: index):
      %26 = "arith.constant"() {value = 0.0 : f64} : () -> f64
      "memref.store"(%26, %24, %25) : (f64, memref<3xf64>, index) -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    "affine.for"() (
    {
    ^bb13(%27: index):
      "affine.for"() (
      {
      ^bb14(%28: index):
        %29 = "memref.load"(%24, %27) : (memref<3xf64>, index) -> f64
        %30 = "memref.load"(%20, %27, %28) : (memref<3x4xf64>, index, index) -> f64
        %31 = "arith.addf"(%29, %30) : (f64, f64) -> f64
        "memref.store"(%31, %24, %27) : (f64, memref<3xf64>, index) -> ()
        "affine.yield"() : () -> ()
      }
      ) {lower = 0 : i64, step = 1 : i64, upper = 4 : i64} : () -> ()
      "affine.yield"() : () -> ()
    }
    ) {lower = 0 : i64, step = 1 : i64, upper = 3 : i64} : () -> ()
    "memref.copy"(%24, %2) : (memref<3xf64>, memref<3xf64>) -> ()
    "func.return"() : () -> ()
  }
  ) {arg_names = ["A", "x", "y"], function_type = (memref<3x4xf64>, memref<4xf64>, memref<3xf64>) -> (), kernel_lang = "affine", num_outputs = 1 : i64, sym_name = "matvec"} : () -> ()
}
) : () -> ()
