"""Tests for the elementwise buffer-fusion pass (repro.ir.fusion).

The pass merges producer nests into their single consumer so the
compiled executor emits one fused expression per region.  Its contract:
fusing never changes a single bit of any output (float64), never fuses
a buffer with more than one reader, never crosses a reduction store,
and never moves a read past an interfering write.
"""

import numpy as np
import pytest

from repro.frontends.ekl import parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.ir import Builder, CanonicalizePass, FusionPass, fuse_module, verify
from repro.ir import types as T
from repro.ir.core import Block, Module, Operation, Region
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine
from repro.tensorpipe.affine_interp import run_affine
from repro.tensorpipe.codegen import compile_affine


def lower_raw(source):
    kernel = parse_kernel(source)
    module = lower_teil_to_affine(
        lower_esn_to_teil(
            lower_ekl_to_esn(lower_kernel_to_ekl(kernel),
                             canonicalize=False),
            canonicalize=False,
        ),
        canonicalize=False,
    )
    verify(module)
    return kernel.name, module


def fuse_and_check(source, inputs):
    """Run fusion after canonicalization; assert bitwise-identical
    results through the interpreter AND the compiled backend.  Returns
    the number of fused buffers."""
    name, module = lower_raw(source)
    CanonicalizePass().run(module)
    before = run_affine(module, name, inputs)
    fused_module = module.clone()
    fused = fuse_module(fused_module)
    verify(fused_module)
    after = run_affine(fused_module, name, inputs)
    compiled = compile_affine(fused_module, name, cache=False)
    ran = compiled.run(inputs)
    assert set(after) == set(before)
    for key in before:
        np.testing.assert_array_equal(after[key], before[key])
        np.testing.assert_array_equal(ran[key], before[key])
    return fused


def count_allocs(module):
    count = 0

    def walk(op):
        nonlocal count
        if op.name == "memref.alloc":
            count += 1
        for region in op.regions:
            for block in region.blocks:
                for inner in block.operations:
                    walk(inner)

    for op in module.body.operations:
        walk(op)
    return count


CHAIN = """
kernel chain {
  index i: 11
  input a[i]: f64
  input b[i]: f64
  output out
  t0 = a * b + a
  t1 = t0 * t0 - b
  out = t1 + 1.0
}
"""

MULTI_USE = """
kernel multi {
  index i: 9
  input a[i]: f64
  output out
  t0 = a * a + 1.0
  out = t0 * t0 + t0
}
"""

REDUCTION_PRODUCER = """
kernel red {
  index i: 6
  input a[i]: f64
  output out
  s = sum[i](a * a)
  out = a + s
}
"""

INTO_REDUCTION = """
kernel intored {
  index i: 8, j: 5
  input a[i, j]: f64
  input b[i, j]: f64
  output out
  t = a * b - a
  out = sum[j](t * b)
}
"""

DAG = """
kernel dag {
  index i: 7
  input a[i]: f64
  input b[i]: f64
  output out
  u = a + b
  v = a - b
  out = u * v
}
"""


class TestFuses:
    def test_elementwise_chain_fuses(self):
        rng = np.random.default_rng(0)
        inputs = {"a": rng.normal(size=11), "b": rng.normal(size=11)}
        assert fuse_and_check(CHAIN, inputs) >= 1

    def test_dag_of_single_use_intermediates_fuses(self):
        rng = np.random.default_rng(1)
        inputs = {"a": rng.normal(size=7), "b": rng.normal(size=7)}
        assert fuse_and_check(DAG, inputs) >= 2

    def test_elementwise_into_reduction_fuses(self):
        rng = np.random.default_rng(2)
        inputs = {"a": rng.normal(size=(8, 5)), "b": rng.normal(size=(8, 5))}
        assert fuse_and_check(INTO_REDUCTION, inputs) >= 1

    def test_fusion_removes_intermediate_allocs(self):
        name, module = lower_raw(CHAIN)
        CanonicalizePass().run(module)
        before = count_allocs(module)
        fused = fuse_module(module)
        verify(module)
        assert fused > 0
        assert count_allocs(module) == before - fused

    def test_pass_reports_count(self):
        _, module = lower_raw(CHAIN)
        CanonicalizePass().run(module)
        fusion = FusionPass()
        fusion.run(module)
        assert fusion.fused > 0
        assert fusion.name == "fuse-elementwise"

    def test_fixpoint_second_run_is_noop(self):
        _, module = lower_raw(CHAIN)
        CanonicalizePass().run(module)
        assert fuse_module(module) > 0
        assert fuse_module(module) == 0


class TestDoesNotFuse:
    def test_multi_use_intermediate_not_fused(self):
        # t0 feeds two loads; duplicating its computation would be legal
        # but is not this pass's job — it must refuse.
        rng = np.random.default_rng(3)
        inputs = {"a": rng.normal(size=9)}
        name, module = lower_raw(MULTI_USE)
        CanonicalizePass().run(module)
        before = count_allocs(module)
        fuse_module(module)
        verify(module)
        # The chain around t0*t0+t0 still fuses its single-use pieces,
        # but the t0 buffer itself (3 uses: 1 store + 2 loads) survives.
        assert count_allocs(module) >= 1
        out = run_affine(module, name, inputs)["out"]
        t0 = inputs["a"] * inputs["a"] + 1.0
        np.testing.assert_allclose(out, t0 * t0 + t0, rtol=1e-12)
        assert before > count_allocs(module) >= 1

    def test_reduction_producer_not_fused(self):
        # A sum buffer is written by two nests (zero-fill + accumulate);
        # the accumulate store does not cover the nest IVs.  Fusing it
        # into its consumer would replay the whole reduction per element.
        rng = np.random.default_rng(4)
        inputs = {"a": rng.normal(size=6)}
        name, module = lower_raw(REDUCTION_PRODUCER)
        CanonicalizePass().run(module)
        before = run_affine(module, name, inputs)
        fuse_module(module)
        verify(module)
        after = run_affine(module, name, inputs)
        np.testing.assert_array_equal(after["out"], before["out"])
        # The reduction accumulator alloc must survive.
        assert count_allocs(module) >= 1

    def test_interfering_write_blocks_fusion(self):
        # Hand-built: nest 1 computes buf = a * 2; nest 2 overwrites a;
        # nest 3 reads buf.  Moving nest 1's read of `a` into nest 3
        # would observe the overwrite — fusion must refuse.
        module = Module()
        ref = T.MemRefType((4,), T.f64)
        entry = Block([ref, ref])
        func = Operation.create(
            "func.func", [], [],
            {"sym_name": "hazard",
             "function_type": T.FunctionType((ref, ref), ()),
             "kernel_lang": "affine", "arg_names": ["a", "y"],
             "num_outputs": 1},
            [Region([entry])],
        )
        module.append(func)
        builder = Builder.at_end(entry)
        a_arg, y_arg = entry.args
        buf = builder.create("memref.alloc", [], [ref]).result

        def nest(emit):
            body = Block([T.index])
            builder.create("affine.for", [], [],
                           {"lower": 0, "upper": 4, "step": 1},
                           [Region([body])])
            emit(Builder.at_end(body), body.args[0])

        def produce(inner, iv):
            loaded = inner.create("memref.load", [a_arg, iv], [T.f64]).result
            two = inner.create("arith.constant", [], [T.f64],
                               {"value": 2.0}).result
            scaled = inner.create("arith.mulf", [loaded, two],
                                  [T.f64]).result
            inner.create("memref.store", [scaled, buf, iv], [])
            inner.create("affine.yield", [], [])

        def clobber(inner, iv):
            zero = inner.create("arith.constant", [], [T.f64],
                                {"value": 0.0}).result
            inner.create("memref.store", [zero, a_arg, iv], [])
            inner.create("affine.yield", [], [])

        def consume(inner, iv):
            loaded = inner.create("memref.load", [buf, iv], [T.f64]).result
            inner.create("memref.store", [loaded, y_arg, iv], [])
            inner.create("affine.yield", [], [])

        nest(produce)
        nest(clobber)
        nest(consume)
        builder.create("func.return", [], [])
        verify(module)

        values = np.array([1.0, 2.0, 3.0, 4.0])
        before = run_affine(module, "hazard", {"a": values})["y"]
        np.testing.assert_array_equal(before, values * 2.0)
        assert fuse_module(module) == 0
        verify(module)
        after = run_affine(module, "hazard", {"a": values})["y"]
        np.testing.assert_array_equal(after, before)


class TestDtypeEdges:
    def _cast_chain_module(self):
        """Producer stores f32 (truncf), consumer widens back to f64 —
        fusion must keep the rounding through the narrow type."""
        module = Module()
        in_ref = T.MemRefType((6,), T.f64)
        mid_ref = T.MemRefType((6,), T.f32)
        out_ref = T.MemRefType((6,), T.f64)
        module_entry = Block([in_ref, out_ref])
        func = Operation.create(
            "func.func", [], [],
            {"sym_name": "cast_chain",
             "function_type": T.FunctionType((in_ref, out_ref), ()),
             "kernel_lang": "affine", "arg_names": ["a", "y"],
             "num_outputs": 1},
            [Region([module_entry])],
        )
        module.append(func)
        builder = Builder.at_end(module_entry)
        a_arg, y_arg = module_entry.args
        mid = builder.create("memref.alloc", [], [mid_ref]).result

        body1 = Block([T.index])
        builder.create("affine.for", [], [],
                       {"lower": 0, "upper": 6, "step": 1},
                       [Region([body1])])
        inner = Builder.at_end(body1)
        loaded = inner.create("memref.load", [a_arg, body1.args[0]],
                              [T.f64]).result
        third = inner.create("arith.constant", [], [T.f64],
                             {"value": 1.0 / 3.0}).result
        scaled = inner.create("arith.mulf", [loaded, third], [T.f64]).result
        narrowed = inner.create("arith.truncf", [scaled], [T.f32]).result
        inner.create("memref.store", [narrowed, mid, body1.args[0]], [])
        inner.create("affine.yield", [], [])

        body2 = Block([T.index])
        builder.create("affine.for", [], [],
                       {"lower": 0, "upper": 6, "step": 1},
                       [Region([body2])])
        inner = Builder.at_end(body2)
        got = inner.create("memref.load", [mid, body2.args[0]],
                           [T.f32]).result
        widened = inner.create("arith.extf", [got], [T.f64]).result
        inner.create("memref.store", [widened, y_arg, body2.args[0]], [])
        inner.create("affine.yield", [], [])
        builder.create("func.return", [], [])
        verify(module)
        return module

    def test_dtype_change_chain_fuses_and_keeps_rounding(self):
        module = self._cast_chain_module()
        values = np.array([1.1, -2.7, 1e-9, 1234.56789, 0.0, -0.5])
        before = run_affine(module, "cast_chain", {"a": values})["y"]
        fused = fuse_module(module)
        verify(module)
        assert fused == 1
        after = run_affine(module, "cast_chain", {"a": values})["y"]
        np.testing.assert_array_equal(after, before)
        # The f32 rounding is observable: fusion must not have widened
        # the intermediate into pure-f64 arithmetic.
        pure = values * (1.0 / 3.0)
        assert not np.array_equal(after, pure)
        compiled = compile_affine(module, "cast_chain", cache=False)
        np.testing.assert_array_equal(
            compiled.run({"a": values})["y"], before)


class TestPipelineIntegration:
    def test_session_reports_fusion_event(self):
        from repro.pipeline.session import PipelineSession

        session = PipelineSession()
        session.lower(CHAIN, opt_level=1)
        names = [event.stage for event in session.report.events]
        assert "canonicalize/fuse" in names

    @pytest.mark.parametrize("opt_level", [1, 2])
    def test_session_execute_matches_interpreter(self, opt_level):
        from repro.pipeline.session import PipelineSession

        rng = np.random.default_rng(6)
        inputs = {"a": rng.normal(size=11), "b": rng.normal(size=11)}
        session = PipelineSession()
        got = session.execute(CHAIN, inputs, backend="compiled",
                              opt_level=opt_level)
        ref = session.execute(CHAIN, inputs, backend="interpreter",
                              opt_level=opt_level)
        np.testing.assert_array_equal(got.outputs["out"],
                                      ref.outputs["out"])
