"""Differential tests: canonicalization must not change program semantics.

For EKL and CFDlang sample programs the affine-level module is
interpreted *before* and *after* :class:`~repro.ir.CanonicalizePass`; the
outputs must be bit-identical (the fold hooks intentionally mirror the
affine interpreter's scalar semantics).  Each compiled result is also
checked against the frontend's own reference interpreter, so the raw
lowering, the optimized lowering and the language semantics all agree.
"""

import numpy as np
import pytest

from repro.frontends.cfdlang import (
    lower_cfdlang_to_teil,
    lower_program_to_cfdlang,
    parse_program,
    run_program,
)
from repro.frontends.ekl import Interpreter, parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.ir import CanonicalizePass, print_module, verify
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine
from repro.tensorpipe.affine_interp import run_affine

EKL_SAMPLES = [
    (
        "scale_shift",
        """
        kernel scale_shift {
          index i: 6
          input a[i]: f64
          output y
          y = a * 2.0 + 1.0 - 0.0
        }
        """,
        lambda rng: {"a": rng.uniform(-4, 4, 6)},
    ),
    (
        "matvec",
        """
        kernel matvec {
          index i: 4, j: 5
          input m[i, j]: f64
          input v[j]: f64
          output y
          y = sum[j](m * v)
        }
        """,
        lambda rng: {"m": rng.uniform(-1, 1, (4, 5)),
                     "v": rng.uniform(-1, 1, 5)},
    ),
    (
        "select_blend",
        """
        kernel select_blend {
          index i: 8
          input a[i]: f64
          input b[i]: f64
          output y
          y = select(a <= b, a * 1.0, b + 0.0)
        }
        """,
        lambda rng: {"a": rng.uniform(-2, 2, 8),
                     "b": rng.uniform(-2, 2, 8)},
    ),
]

CFD_SAMPLES = [
    (
        "matvec",
        """
        var input A : [4 5]
        var input x : [5]
        var output y : [4]
        y = (A # x) . [[2 3]]
        """,
        lambda rng: {"A": rng.uniform(-1, 1, (4, 5)),
                     "x": rng.uniform(-1, 1, 5)},
    ),
    (
        "bilinear",
        """
        var input u : [3 4]
        var input v : [4 3]
        var output w : [3 3]
        var t : [3 4 4 3]
        t = u # v
        w = t . [[2 3]]
        """,
        lambda rng: {"u": rng.uniform(-1, 1, (3, 4)),
                     "v": rng.uniform(-1, 1, (4, 3))},
    ),
]


def _compile_ekl_raw(source):
    kernel = parse_kernel(source)
    module = lower_teil_to_affine(
        lower_esn_to_teil(
            lower_ekl_to_esn(lower_kernel_to_ekl(kernel), canonicalize=False),
            canonicalize=False,
        ),
        canonicalize=False,
    )
    verify(module)
    return kernel, module


def _compile_cfd_raw(source, name):
    program = parse_program(source)
    module = lower_teil_to_affine(
        lower_cfdlang_to_teil(
            lower_program_to_cfdlang(program, name), canonicalize=False
        ),
        canonicalize=False,
    )
    verify(module)
    return program, module


def _assert_same_outputs(before, after):
    assert set(before) == set(after)
    for key in before:
        np.testing.assert_array_equal(before[key], after[key])


class TestEKLDifferential:
    @pytest.mark.parametrize("name,source,make_inputs",
                             EKL_SAMPLES, ids=[s[0] for s in EKL_SAMPLES])
    def test_canonicalize_preserves_results(self, name, source, make_inputs):
        rng = np.random.default_rng(3)
        inputs = make_inputs(rng)
        kernel, module = _compile_ekl_raw(source)
        baseline = run_affine(module, kernel.name, inputs)

        optimized = module.clone()
        CanonicalizePass().run(optimized)
        verify(optimized)

        _assert_same_outputs(baseline,
                             run_affine(optimized, kernel.name, inputs))

    @pytest.mark.parametrize("name,source,make_inputs",
                             EKL_SAMPLES, ids=[s[0] for s in EKL_SAMPLES])
    def test_canonical_chain_matches_raw_chain(self, name, source,
                                               make_inputs):
        """The production chain (canonicalizing at every lowering step)
        produces a smaller module with identical numerics."""
        rng = np.random.default_rng(11)
        inputs = make_inputs(rng)
        kernel, raw = _compile_ekl_raw(source)
        canonical = lower_teil_to_affine(
            lower_esn_to_teil(lower_ekl_to_esn(lower_kernel_to_ekl(kernel)))
        )
        verify(canonical)
        assert sum(1 for _ in canonical.walk()) < sum(1 for _ in raw.walk())
        _assert_same_outputs(run_affine(raw, kernel.name, inputs),
                             run_affine(canonical, kernel.name, inputs))

    @pytest.mark.parametrize("name,source,make_inputs",
                             EKL_SAMPLES, ids=[s[0] for s in EKL_SAMPLES])
    def test_optimized_matches_language_semantics(self, name, source,
                                                  make_inputs):
        rng = np.random.default_rng(5)
        inputs = make_inputs(rng)
        kernel, module = _compile_ekl_raw(source)
        optimized = module.clone()
        CanonicalizePass().run(optimized)
        expected = Interpreter(kernel).run(inputs)
        got = run_affine(optimized, kernel.name, inputs)
        assert set(got) == set(expected)
        for key in expected:
            np.testing.assert_allclose(got[key], expected[key],
                                       rtol=1e-12, atol=1e-12)

    def test_canonicalize_is_idempotent(self):
        _, module = _compile_ekl_raw(EKL_SAMPLES[0][1])
        CanonicalizePass().run(module)
        once = print_module(module)
        CanonicalizePass().run(module)
        assert print_module(module) == once


class TestCFDlangDifferential:
    @pytest.mark.parametrize("name,source,make_inputs",
                             CFD_SAMPLES, ids=[s[0] for s in CFD_SAMPLES])
    def test_canonicalize_preserves_results(self, name, source, make_inputs):
        rng = np.random.default_rng(7)
        inputs = make_inputs(rng)
        program, module = _compile_cfd_raw(source, name)
        baseline = run_affine(module, name, inputs)

        optimized = module.clone()
        CanonicalizePass().run(optimized)
        verify(optimized)

        _assert_same_outputs(baseline, run_affine(optimized, name, inputs))

    @pytest.mark.parametrize("name,source,make_inputs",
                             CFD_SAMPLES, ids=[s[0] for s in CFD_SAMPLES])
    def test_optimized_matches_reference_interpreter(self, name, source,
                                                     make_inputs):
        rng = np.random.default_rng(9)
        inputs = make_inputs(rng)
        program, module = _compile_cfd_raw(source, name)
        optimized = module.clone()
        CanonicalizePass().run(optimized)
        expected = run_program(program, inputs)
        got = run_affine(optimized, name, inputs)
        # The compiled function also returns intermediate assignments; the
        # reference interpreter only returns declared outputs.
        assert set(expected) <= set(got)
        for key in expected:
            np.testing.assert_allclose(got[key], expected[key],
                                       rtol=1e-12, atol=1e-12)
