"""Tests for the symbol table and the function inliner."""

import pytest

from repro.errors import IRError
from repro.ir import (
    CanonicalizePass,
    InlinePass,
    Module,
    SymbolTable,
    build_func,
    types as T,
    verify,
)


def _module_with_double():
    m = Module()
    callee, centry, cb = build_func(m, "double", [T.f64], [T.f64])
    d = cb.create("arith.addf", [centry.args[0], centry.args[0]],
                  [T.f64]).result
    cb.create("func.return", [d])
    return m


class TestSymbolTable:
    def test_lookup(self):
        m = _module_with_double()
        table = SymbolTable(m)
        assert table.lookup("double").name == "func.func"
        assert table.lookup("missing") is None
        assert "double" in table and len(table) == 1

    def test_insert_renames_on_clash(self):
        m = _module_with_double()
        table = SymbolTable(m)
        other = Module()
        func, _, fb = build_func(other, "double", [], [])
        fb.create("func.return", [])
        func.parent.operations.remove(func)
        func.parent = None
        inserted = table.insert(func)
        assert inserted.attr("sym_name") == "double_0"
        assert table.lookup("double_0") is inserted
        assert sorted(table) == ["double", "double_0"]

    def test_duplicate_symbols_rejected(self):
        m = _module_with_double()
        callee, _, cb = build_func(m, "double", [], [])
        cb.create("func.return", [])
        with pytest.raises(IRError):
            SymbolTable(m)


class TestInlinePass:
    def test_inlines_simple_call(self):
        m = _module_with_double()
        caller, entry, fb = build_func(m, "main", [T.f64], [T.f64])
        r = fb.create("func.call", [entry.args[0]], [T.f64],
                      {"callee": "double"}).result
        fb.create("func.return", [r])
        inliner = InlinePass()
        inliner.run(m)
        verify(m)
        assert inliner.inlined == 1
        main_ops = [op.name for op in m.lookup("main").regions[0].entry]
        assert "func.call" not in main_ops
        assert "arith.addf" in main_ops

    def test_inlines_transitive_calls(self):
        m = _module_with_double()
        mid, mentry, mb = build_func(m, "quad", [T.f64], [T.f64])
        h = mb.create("func.call", [mentry.args[0]], [T.f64],
                      {"callee": "double"}).result
        h2 = mb.create("func.call", [h], [T.f64],
                       {"callee": "double"}).result
        mb.create("func.return", [h2])
        caller, entry, fb = build_func(m, "main", [T.f64], [T.f64])
        r = fb.create("func.call", [entry.args[0]], [T.f64],
                      {"callee": "quad"}).result
        fb.create("func.return", [r])
        InlinePass().run(m)
        verify(m)
        for name in ("quad", "main"):
            ops = [op.name for op in m.lookup(name).regions[0].entry]
            assert "func.call" not in ops
        assert [op.name for op in m.lookup("main").regions[0].entry].count(
            "arith.addf") == 2

    def test_unknown_callee_left_alone(self):
        m = Module()
        caller, entry, fb = build_func(m, "main", [T.f64], [T.f64])
        r = fb.create("func.call", [entry.args[0]], [T.f64],
                      {"callee": "nowhere"}).result
        fb.create("func.return", [r])
        inliner = InlinePass()
        inliner.run(m)
        assert inliner.inlined == 0
        ops = [op.name for op in m.lookup("main").regions[0].entry]
        assert "func.call" in ops

    def test_recursive_call_terminates(self):
        m = Module()
        rec, rentry, rb = build_func(m, "rec", [T.f64], [T.f64])
        r = rb.create("func.call", [rentry.args[0]], [T.f64],
                      {"callee": "rec"}).result
        rb.create("func.return", [r])
        inliner = InlinePass(max_depth=4)
        inliner.run(m)  # must not loop forever
        verify(m)
        assert inliner.inlined == 4

    def test_arity_mismatch_raises(self):
        m = _module_with_double()
        caller, entry, fb = build_func(m, "main", [T.f64], [T.f64])
        r = fb.create("func.call", [entry.args[0], entry.args[0]], [T.f64],
                      {"callee": "double"}).result
        fb.create("func.return", [r])
        with pytest.raises(IRError):
            InlinePass().run(m)

    def test_inline_then_canonicalize_folds_through(self):
        """O2 behaviour: constants propagate through inlined bodies."""
        m = _module_with_double()
        caller, entry, fb = build_func(m, "main", [], [T.f64])
        c = fb.create("arith.constant", [], [T.f64], {"value": 21.0}).result
        r = fb.create("func.call", [c], [T.f64], {"callee": "double"}).result
        fb.create("func.return", [r])
        InlinePass().run(m)
        CanonicalizePass().run(m)
        verify(m)
        main_ops = list(m.lookup("main").regions[0].entry)
        assert [op.name for op in main_ops] == ["arith.constant",
                                                "func.return"]
        assert main_ops[0].attr("value") == 42.0
