"""Tests for the pass manager, DCE, CSE and the rewrite driver."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Builder,
    CommonSubexpressionElimination,
    DeadCodeElimination,
    LambdaPass,
    Module,
    PassManager,
    PatternRewriter,
    RewritePattern,
    apply_patterns,
    build_func,
    types as T,
)


def _func_with_body(op_count=0):
    m = Module()
    func, entry, fb = build_func(m, "f", [T.f64], [T.f64])
    return m, entry, fb


class TestDCE:
    def test_removes_unused_pure_op(self):
        m, entry, fb = _func_with_body()
        dead = fb.create("arith.mulf", [entry.args[0], entry.args[0]],
                         [T.f64])
        live = fb.create("arith.addf", [entry.args[0], entry.args[0]],
                         [T.f64])
        fb.create("func.return", [live.result])
        DeadCodeElimination().run(m)
        names = [op.name for op in entry]
        assert "arith.mulf" not in names
        assert "arith.addf" in names

    def test_removes_transitively(self):
        m, entry, fb = _func_with_body()
        a = fb.create("arith.addf", [entry.args[0], entry.args[0]], [T.f64])
        b = fb.create("arith.mulf", [a.result, a.result], [T.f64])
        fb.create("func.return", [entry.args[0]])
        DeadCodeElimination().run(m)
        assert len(entry) == 1  # only the return remains

    def test_keeps_impure_ops(self):
        m = Module()
        b = Builder.at_end(m.body)
        b.create("memref.alloc", [], [T.memref_of(T.f64, 4)])
        DeadCodeElimination().run(m)
        assert len(m.body) == 1


class TestCSE:
    def test_deduplicates_identical_pure_ops(self):
        m, entry, fb = _func_with_body()
        a = fb.create("arith.addf", [entry.args[0], entry.args[0]], [T.f64])
        b = fb.create("arith.addf", [entry.args[0], entry.args[0]], [T.f64])
        total = fb.create("arith.mulf", [a.result, b.result], [T.f64])
        fb.create("func.return", [total.result])
        CommonSubexpressionElimination().run(m)
        adds = [op for op in entry if op.name == "arith.addf"]
        assert len(adds) == 1
        assert total.operands[0] is total.operands[1]

    def test_distinguishes_by_attributes(self):
        m = Module()
        b = Builder.at_end(m.body)
        c1 = b.create("arith.constant", [], [T.f64], {"value": 1.0})
        c2 = b.create("arith.constant", [], [T.f64], {"value": 2.0})
        b.create("test.keep", [c1.result, c2.result], [])
        CommonSubexpressionElimination().run(m)
        consts = [op for op in m.body if op.name == "arith.constant"]
        assert len(consts) == 2


class TestPassManager:
    def test_runs_in_order_and_times(self):
        order = []
        pm = PassManager(verify_each=False)
        pm.add(LambdaPass("one", lambda m: order.append(1)))
        pm.add(LambdaPass("two", lambda m: order.append(2)))
        pm.run(Module())
        assert order == [1, 2]
        assert [name for name, _ in pm.timings] == ["one", "two"]
        assert "pass pipeline timing" in pm.report()

    def test_verify_each_catches_breakage(self):
        def break_module(m):
            b = Builder.at_end(m.body)
            b.create("arith.mulf", [], [T.f64])  # wrong arity

        pm = PassManager(verify_each=True)
        pm.add(LambdaPass("bad", break_module))
        with pytest.raises(IRError):
            pm.run(Module())


class _FoldDoubleNeg(RewritePattern):
    op_name = "test.neg"

    def match_and_rewrite(self, op, rewriter: PatternRewriter) -> bool:
        inner = op.operands[0].owner_op() if op.operands else None
        if inner is None or inner.name != "test.neg":
            return False
        rewriter.replace_op(op, [inner.operands[0]])
        return True


class TestRewriteDriver:
    def test_greedy_fixpoint(self):
        m = Module()
        b = Builder.at_end(m.body)
        x = b.create("arith.constant", [], [T.f64], {"value": 1.0}).result
        n1 = b.create("test.neg", [x], [T.f64]).result
        n2 = b.create("test.neg", [n1], [T.f64]).result
        n3 = b.create("test.neg", [n2], [T.f64]).result
        n4 = b.create("test.neg", [n3], [T.f64]).result
        use = b.create("test.use", [n4], [])
        changed = apply_patterns(m, [_FoldDoubleNeg()])
        assert changed
        # neg(neg(neg(neg(x)))) -> x
        assert use.operands[0] is x

    def test_no_match_returns_false(self):
        m = Module()
        assert apply_patterns(m, [_FoldDoubleNeg()]) is False

    def test_skips_ops_nested_in_erased_ancestor(self):
        """Regression: erasing a region op mid-sweep must not offer its
        (detached, operand-stripped) nested ops to later patterns.

        The old guard only checked ``op.parent is None``, which holds for
        the erased op itself but not for ops inside its regions — those
        keep their block pointers while ``drop_all_references`` empties
        their operand lists, so a pattern touching ``op.operands[0]``
        blew up with an IndexError.
        """
        from repro.ir.core import Block, Operation, Region

        m = Module()
        b = Builder.at_end(m.body)
        inner_block = Block()
        ib = Builder.at_end(inner_block)
        c = ib.create("arith.constant", [], [T.f64], {"value": 1.0})
        ib.create("test.inner", [c.result], [])
        b.insert(Operation.create("test.wrapper", [], [], {},
                                  [Region([inner_block])]))

        seen_inner = []

        class EraseWrapper(RewritePattern):
            op_name = "test.wrapper"

            def match_and_rewrite(self, op, rewriter):
                rewriter.erase_op(op)
                return True

        class TouchInner(RewritePattern):
            op_name = "test.inner"

            def match_and_rewrite(self, op, rewriter):
                seen_inner.append(op.operands[0])  # IndexError if detached
                return False

        assert apply_patterns(m, [EraseWrapper(), TouchInner()])
        assert seen_inner == []  # the nested op was never offered
        assert len(m.body) == 0
