"""Unit tests for the canonicalization engine: fold hooks, dialect
patterns, constant materialization and the composed CanonicalizePass."""

from repro.ir import (
    Builder,
    CanonicalizePass,
    DeadCodeElimination,
    Module,
    build_func,
    canonicalize_module,
    constant_value,
    print_module,
    types as T,
    verify,
)


def _func(arg_types=(T.f64,)):
    m = Module()
    func, entry, fb = build_func(m, "f", list(arg_types), [T.f64])
    return m, entry, fb


def _canon(m):
    CanonicalizePass().run(m)
    verify(m)
    return m


class TestArithFolds:
    def test_constant_folding_chain(self):
        m, entry, fb = _func()
        a = fb.create("arith.constant", [], [T.f64], {"value": 4.0}).result
        b = fb.create("arith.constant", [], [T.f64], {"value": 2.0}).result
        s = fb.create("arith.addf", [a, b], [T.f64]).result
        p = fb.create("arith.mulf", [s, b], [T.f64]).result
        fb.create("func.return", [p])
        _canon(m)
        ops = list(m.body.operations[0].regions[0].entry)
        assert [op.name for op in ops] == ["arith.constant", "func.return"]
        assert ops[0].attr("value") == 12.0

    def test_float_identities(self):
        m, entry, fb = _func()
        zero = fb.create("arith.constant", [], [T.f64], {"value": 0.0}).result
        one = fb.create("arith.constant", [], [T.f64], {"value": 1.0}).result
        v = fb.create("arith.addf", [entry.args[0], zero], [T.f64]).result
        v = fb.create("arith.mulf", [one, v], [T.f64]).result
        v = fb.create("arith.subf", [v, zero], [T.f64]).result
        v = fb.create("arith.divf", [v, one], [T.f64]).result
        ret = fb.create("func.return", [v])
        _canon(m)
        assert ret.operands[0] is entry.args[0]

    def test_mul_by_zero_not_folded_for_floats(self):
        # x * 0.0 is NaN/Inf-sensitive; it must survive canonicalization.
        m, entry, fb = _func()
        zero = fb.create("arith.constant", [], [T.f64], {"value": 0.0}).result
        v = fb.create("arith.mulf", [entry.args[0], zero], [T.f64]).result
        fb.create("func.return", [v])
        _canon(m)
        names = [op.name for op in m.body.operations[0].regions[0].entry]
        assert "arith.mulf" in names

    def test_integer_folds_match_python_semantics(self):
        m = Module()
        func, entry, fb = build_func(m, "f", [], [T.i64])
        a = fb.create("arith.constant", [], [T.i64], {"value": -7}).result
        b = fb.create("arith.constant", [], [T.i64], {"value": 2}).result
        q = fb.create("arith.divsi", [a, b], [T.i64]).result
        r = fb.create("arith.remsi", [a, b], [T.i64]).result
        s = fb.create("arith.addi", [q, r], [T.i64]).result
        fb.create("func.return", [s])
        _canon(m)
        const = m.body.operations[0].regions[0].entry.operations[0]
        # Python floor semantics (matching the affine interpreter):
        # -7 // 2 == -4, -7 % 2 == 1.
        assert const.attr("value") == -3

    def test_division_by_zero_not_folded(self):
        m = Module()
        func, entry, fb = build_func(m, "f", [], [T.i64])
        a = fb.create("arith.constant", [], [T.i64], {"value": 3}).result
        z = fb.create("arith.constant", [], [T.i64], {"value": 0}).result
        q = fb.create("arith.divsi", [a, z], [T.i64]).result
        fb.create("func.return", [q])
        _canon(m)
        names = [op.name for op in m.body.operations[0].regions[0].entry]
        assert "arith.divsi" in names

    def test_cmp_and_select_fold(self):
        m, entry, fb = _func()
        a = fb.create("arith.constant", [], [T.f64], {"value": 1.0}).result
        b = fb.create("arith.constant", [], [T.f64], {"value": 2.0}).result
        cond = fb.create("arith.cmpf", [a, b], [T.i1],
                         {"predicate": "lt"}).result
        chosen = fb.create("arith.select", [cond, entry.args[0], a],
                           [T.f64]).result
        ret = fb.create("func.return", [chosen])
        _canon(m)
        assert ret.operands[0] is entry.args[0]

    def test_select_with_equal_arms(self):
        m, entry, fb = _func((T.i1, T.f64))
        chosen = fb.create("arith.select",
                           [entry.args[0], entry.args[1], entry.args[1]],
                           [T.f64]).result
        ret = fb.create("func.return", [chosen])
        _canon(m)
        assert ret.operands[0] is entry.args[1]

    def test_double_negation(self):
        m, entry, fb = _func()
        n1 = fb.create("arith.negf", [entry.args[0]], [T.f64]).result
        n2 = fb.create("arith.negf", [n1], [T.f64]).result
        ret = fb.create("func.return", [n2])
        _canon(m)
        assert ret.operands[0] is entry.args[0]

    def test_math_fold_matches_interpreter(self):
        import math

        m, entry, fb = _func()
        c = fb.create("arith.constant", [], [T.f64], {"value": 2.0}).result
        e = fb.create("math.exp", [c], [T.f64]).result
        fb.create("func.return", [e])
        _canon(m)
        const = m.body.operations[0].regions[0].entry.operations[0]
        assert const.attr("value") == math.exp(2.0)

    def test_math_domain_error_not_folded(self):
        m, entry, fb = _func()
        c = fb.create("arith.constant", [], [T.f64], {"value": -1.0}).result
        s = fb.create("math.sqrt", [c], [T.f64]).result
        fb.create("func.return", [s])
        _canon(m)
        names = [op.name for op in m.body.operations[0].regions[0].entry]
        assert "math.sqrt" in names


class TestTensorPatterns:
    def test_identity_transpose_folds(self):
        ty = T.tensor_of(T.f64, 3, 4)
        m = Module()
        func, entry, fb = build_func(m, "f", [ty], [ty])
        t = fb.create("teil.transpose", [entry.args[0]], [ty],
                      {"perm": [0, 1]}).result
        ret = fb.create("func.return", [t])
        _canon(m)
        assert ret.operands[0] is entry.args[0]

    def test_transpose_pair_collapses_to_identity(self):
        ty = T.tensor_of(T.f64, 3, 4)
        ty_t = T.tensor_of(T.f64, 4, 3)
        m = Module()
        func, entry, fb = build_func(m, "f", [ty], [ty])
        t1 = fb.create("teil.transpose", [entry.args[0]], [ty_t],
                       {"perm": [1, 0]}).result
        t2 = fb.create("teil.transpose", [t1], [ty],
                       {"perm": [1, 0]}).result
        ret = fb.create("func.return", [t2])
        _canon(m)
        assert ret.operands[0] is entry.args[0]

    def test_transpose_chain_merges(self):
        ty = T.tensor_of(T.f64, 2, 3, 4)
        m = Module()
        func, entry, fb = build_func(m, "f", [ty], [ty])
        a = fb.create("teil.transpose", [entry.args[0]],
                      [T.tensor_of(T.f64, 3, 4, 2)],
                      {"perm": [1, 2, 0]}).result
        b = fb.create("teil.transpose", [a],
                      [T.tensor_of(T.f64, 4, 2, 3)],
                      {"perm": [1, 2, 0]}).result
        ret = fb.create("func.return", [b])
        _canon(m)
        entry_ops = list(m.body.operations[0].regions[0].entry)
        transposes = [op for op in entry_ops if op.name == "teil.transpose"]
        assert len(transposes) == 1
        assert transposes[0].attr("perm") == [2, 0, 1]
        assert transposes[0].operands[0] is entry.args[0]

    def test_reshape_collapse(self):
        src = T.tensor_of(T.f64, 12)
        mid = T.tensor_of(T.f64, 3, 4)
        out = T.tensor_of(T.f64, 2, 6)
        m = Module()
        func, entry, fb = build_func(m, "f", [src], [out])
        r1 = fb.create("teil.reshape", [entry.args[0]], [mid]).result
        r2 = fb.create("teil.reshape", [r1], [out]).result
        ret = fb.create("func.return", [r2])
        _canon(m)
        entry_ops = list(m.body.operations[0].regions[0].entry)
        reshapes = [op for op in entry_ops if op.name == "teil.reshape"]
        assert len(reshapes) == 1
        assert reshapes[0].operands[0] is entry.args[0]

    def test_identity_reshape_and_broadcast_fold(self):
        ty = T.tensor_of(T.f64, 5)
        m = Module()
        func, entry, fb = build_func(m, "f", [ty], [ty])
        r = fb.create("teil.reshape", [entry.args[0]], [ty]).result
        bc = fb.create("teil.broadcast", [r], [ty],
                       {"in_axes": ["i"], "axes": ["i"]}).result
        ret = fb.create("func.return", [bc])
        _canon(m)
        assert ret.operands[0] is entry.args[0]


class TestSystemFolds:
    def test_identity_base2_cast_folds(self):
        ty = T.FixedPointType(8, 8)
        m = Module()
        func, entry, fb = build_func(m, "f", [ty], [ty])
        c = fb.create("base2.cast", [entry.args[0]], [ty]).result
        ret = fb.create("func.return", [c])
        _canon(m)
        assert ret.operands[0] is entry.args[0]

    def test_narrowing_cast_survives(self):
        wide, narrow = T.FixedPointType(8, 8), T.FixedPointType(2, 2)
        m = Module()
        func, entry, fb = build_func(m, "f", [wide], [narrow])
        c = fb.create("base2.cast", [entry.args[0]], [narrow]).result
        fb.create("func.return", [c])
        _canon(m)
        names = [op.name for op in m.body.operations[0].regions[0].entry]
        assert "base2.cast" in names

    def test_nested_wrap_folds(self):
        m = Module()
        func, entry, fb = build_func(m, "f", [T.i32], [T.i32])
        w1 = fb.create("cyclic.wrap", [entry.args[0]], [T.i32],
                       {"modulus": 16}).result
        w2 = fb.create("cyclic.wrap", [w1], [T.i32], {"modulus": 16}).result
        ret = fb.create("func.return", [w2])
        _canon(m)
        assert ret.operands[0] is w1

    def test_redundant_stage_folds(self):
        ref = T.memref_of(T.f64, 8)
        m = Module()
        func, entry, fb = build_func(m, "f", [ref], [])
        s1 = fb.create("buffer.stage", [entry.args[0]], [ref],
                       {"space": "plm"}).result
        s2 = fb.create("buffer.stage", [s1], [ref], {"space": "plm"}).result
        fb.create("test.use", [s2], [])
        canonicalize_module(m)
        stages = [op for op in m.body.operations[0].regions[0].entry
                  if op.name == "buffer.stage"]
        assert len(stages) == 1


class TestPassComposition:
    def test_interface_ops_survive_dce(self):
        m = Module()
        func, entry, fb = build_func(m, "k", [], [])
        fb.create("ekl.arg", [], [T.tensor_of(T.f64, 4)],
                  {"name": "unused", "axes": ["i"]})
        fb.create("func.return", [])
        DeadCodeElimination().run(m)
        _canon(m)
        names = [op.name for op in m.body.operations[0].regions[0].entry]
        assert "ekl.arg" in names

    def test_cse_composes_with_folding(self):
        m, entry, fb = _func()
        a1 = fb.create("arith.addf", [entry.args[0], entry.args[0]],
                       [T.f64]).result
        a2 = fb.create("arith.addf", [entry.args[0], entry.args[0]],
                       [T.f64]).result
        s = fb.create("arith.mulf", [a1, a2], [T.f64]).result
        fb.create("func.return", [s])
        _canon(m)
        entry_ops = list(m.body.operations[0].regions[0].entry)
        adds = [op for op in entry_ops if op.name == "arith.addf"]
        assert len(adds) == 1

    def test_idempotent(self):
        m, entry, fb = _func()
        zero = fb.create("arith.constant", [], [T.f64], {"value": 0.0}).result
        v = fb.create("arith.addf", [entry.args[0], zero], [T.f64]).result
        fb.create("func.return", [v])
        _canon(m)
        once = print_module(m)
        _canon(m)
        assert print_module(m) == once

    def test_constant_value_helper(self):
        m, entry, fb = _func()
        c = fb.create("arith.constant", [], [T.f64], {"value": 7.5})
        assert constant_value(c.result) == 7.5
        assert constant_value(entry.args[0]) is None

    def test_timings_recorded(self):
        m, entry, fb = _func()
        fb.create("func.return", [entry.args[0]])
        canonicalizer = CanonicalizePass()
        canonicalizer.run(m)
        names = {name for name, _ in canonicalizer.timings}
        assert {"patterns", "dce", "cse"} <= names
