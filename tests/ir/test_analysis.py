"""Abstract-interpretation shape/dtype analysis and the typed verifier.

Three layers of coverage:

* unit tests of the :class:`~repro.ir.analysis.AbstractValue` lattice,
  :func:`~repro.ir.analysis.from_type` and the
  :func:`~repro.ir.analysis.op_path` breadcrumbs;
* negative cases: hand-built modules the *structural* verifier accepts
  but :func:`~repro.ir.verifier.verify_typed` must reject — including
  the regression for the PR 4 ``esn.reduce`` axis bug (reduction
  *positions* leaking into a consumer that reads them as axis *labels*)
  — plus structural violations whose messages must carry the op path;
* a 200-seed fuzz campaign (``tools/irfuzz.py --mode analyze``): the
  typed verifier accepts every valid lowering stage of every random
  kernel (no false positives) and the inferred abstracts match the
  executor's concrete arrays.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "tools")
)

from irfuzz import check_analysis  # noqa: E402

from repro.errors import IRError  # noqa: E402
from repro.ir import (  # noqa: E402
    TOP,
    AbstractValue,
    AnalysisError,
    Builder,
    Module,
    analyze_module,
    from_type,
    op_path,
    types as T,
    verify,
    verify_typed,
)
from repro.ir.analysis import MEMREF_ALLOC_ZERO_INIT  # noqa: E402
from repro.ir.core import Block, Operation, Region  # noqa: E402

N_SEEDS = 200


# -- lattice unit tests ------------------------------------------------------


class TestAbstractValue:
    def test_top_knows_nothing(self):
        assert TOP.shape is None
        assert TOP.dtype is None
        assert TOP.const is None

    def test_join_keeps_agreement(self):
        a = AbstractValue((4, 5), "f64")
        b = AbstractValue((4, None), "f64")
        joined = a.join(b)
        assert joined.shape == (4, None)
        assert joined.dtype == "f64"

    def test_join_drops_disagreement(self):
        a = AbstractValue((4, 5), "f64", const=1.0)
        b = AbstractValue((4, 5), "f32", const=2.0)
        joined = a.join(b)
        assert joined.shape == (4, 5)
        assert joined.dtype is None
        assert joined.const is None

    def test_join_rank_mismatch_loses_shape(self):
        assert AbstractValue((4,), "f64").join(
            AbstractValue((4, 5), "f64")).shape is None

    def test_join_with_top_is_top_shape(self):
        assert AbstractValue((4,), "f64").join(TOP) == TOP

    def test_from_type(self):
        assert from_type(T.TensorType((3, 4), T.f64)) == \
            AbstractValue((3, 4), "f64")
        assert from_type(T.MemRefType((2,), T.i32)) == \
            AbstractValue((2,), "i32")
        assert from_type(T.f64) == AbstractValue((), "f64")
        assert from_type(T.index) == AbstractValue((), "index")

    def test_str_forms(self):
        assert str(AbstractValue((4, 8), "f64")) == "<4x8:f64>"
        assert str(AbstractValue((), "f64", const=0)) == "<scalar:f64>=0"
        assert "?" in str(AbstractValue((4, None), "f64"))


def test_op_path_breadcrumbs():
    module = Module()
    body = Block([T.index])
    inner = Builder.at_end(body)
    c = inner.create("arith.constant", [], [T.f64], {"value": 1.0})
    inner.create("affine.yield", [], [])
    func_body = Block()
    b = Builder.at_end(func_body)
    b.create("affine.for", [], [],
             {"lower": 0, "upper": 4, "step": 1}, [Region([body])])
    func = Operation.create(
        "func.func", [], [],
        {"sym_name": "walk", "function_type": T.FunctionType((), ()),
         "kernel_lang": "affine"},
        [Region([func_body])])
    module.append(func)
    assert op_path(c) == ("builtin.module/func.func(@walk)#0/"
                          "affine.for#0/arith.constant#0")


# -- typed-verifier negative cases -------------------------------------------


def _esn_func(module, name="esn_case"):
    func = Operation.create(
        "func.func", [], [],
        {"sym_name": name, "function_type": T.FunctionType((), ()),
         "kernel_lang": "esn"},
        [Region([Block()])])
    module.append(func)
    return Builder.at_end(func.regions[0].blocks[0])


def test_pr4_reduce_axis_bug_is_rejected_statically():
    """The seeded PR 4 miscompile: ``esn.reduce`` keeps reduction
    *positions* (ints) in its ``axes`` attribute; a consumer that reads
    them as axis *labels* emits ``esn.broadcast`` with integer
    ``in_axes`` that are not in the label space.  Structurally fine —
    the typed verifier must reject it without executing anything."""
    module = Module()
    b = _esn_func(module, "pr4")
    a = b.create("ekl.arg", [], [T.TensorType((4, 5), T.f64)],
                 {"axes": ["i", "j"], "name": "a"}).result
    red = b.create("esn.reduce", [a], [T.TensorType((4,), T.f64)],
                   {"axes": [1], "out_axes": ["i"]}).result
    bc = b.create("esn.broadcast", [red], [T.TensorType((4, 5), T.f64)],
                  {"axes": ["i", "j"], "in_axes": [1]}).result
    b.create("func.return", [bc], [], {"names": ["out"]})

    verify(module)  # the structural verifier cannot see the bug
    with pytest.raises(AnalysisError) as err:
        verify_typed(module)
    message = str(err.value)
    assert "esn.broadcast" in message
    assert "reduction positions" in message
    assert "func.func(@pr4)" in message


def test_correct_reduce_broadcast_chain_is_accepted():
    module = Module()
    b = _esn_func(module, "ok")
    a = b.create("ekl.arg", [], [T.TensorType((4, 5), T.f64)],
                 {"axes": ["i", "j"], "name": "a"}).result
    red = b.create("esn.reduce", [a], [T.TensorType((4,), T.f64)],
                   {"axes": [1], "out_axes": ["i"]}).result
    bc = b.create("esn.broadcast", [red], [T.TensorType((4, 5), T.f64)],
                  {"axes": ["i", "j"], "in_axes": ["i"]}).result
    b.create("func.return", [bc], [], {"names": ["out"]})
    analysis = verify_typed(module)
    assert analysis.of(bc).shape == (4, 5)
    assert analysis.of(red).shape == (4,)


def test_reduce_label_axes_are_rejected():
    module = Module()
    b = _esn_func(module)
    a = b.create("ekl.arg", [], [T.TensorType((4, 5), T.f64)],
                 {"axes": ["i", "j"], "name": "a"}).result
    red = b.create("esn.reduce", [a], [T.TensorType((4,), T.f64)],
                   {"axes": ["j"], "out_axes": ["i"]}).result
    b.create("func.return", [red], [], {"names": ["out"]})
    with pytest.raises(AnalysisError, match="integer positions"):
        verify_typed(module)


def test_einsum_extent_conflict_is_rejected():
    module = Module()
    b = _esn_func(module)
    x = b.create("ekl.arg", [], [T.TensorType((4,), T.f64)],
                 {"axes": ["i"], "name": "x"}).result
    y = b.create("ekl.arg", [], [T.TensorType((5,), T.f64)],
                 {"axes": ["i"], "name": "y"}).result
    out = b.create("esn.einsum", [x, y], [T.TensorType((4,), T.f64)],
                   {"axes": ["i"], "spec": "a,a->a"}).result
    b.create("func.return", [out], [], {"names": ["out"]})
    with pytest.raises(AnalysisError) as err:
        verify_typed(module)
    assert "esn.einsum" in str(err.value)


def test_declared_result_type_mismatch_is_rejected():
    module = Module()
    b = _esn_func(module)
    a = b.create("ekl.arg", [], [T.TensorType((4, 5), T.f64)],
                 {"axes": ["i", "j"], "name": "a"}).result
    # Declared transpose result shape contradicts the permutation.
    out = b.create("esn.map", [a, a], [T.TensorType((4, 6), T.f64)],
                   {"axes": ["i", "j"], "fn": "mulf"}).result
    b.create("func.return", [out], [], {"names": ["out"]})
    with pytest.raises(AnalysisError) as err:
        verify_typed(module)
    assert "esn.map" in str(err.value)


def test_memref_store_dtype_mismatch_is_rejected():
    module = Module()
    func = Operation.create(
        "func.func", [], [],
        {"sym_name": "store_bug", "function_type": T.FunctionType((), ()),
         "kernel_lang": "affine"},
        [Region([Block()])])
    module.append(func)
    b = Builder.at_end(func.regions[0].blocks[0])
    buf = b.create("memref.alloc", [], [T.MemRefType((), T.f64)]).result
    val = b.create("arith.constant", [], [T.i64], {"value": 3}).result
    b.create("memref.store", [val, buf], [])
    b.create("func.return", [], [])
    verify(module)
    with pytest.raises(AnalysisError, match="memref.store"):
        verify_typed(module)


def test_alloc_carries_zero_init_constant():
    module = Module()
    func = Operation.create(
        "func.func", [], [],
        {"sym_name": "zeros", "function_type": T.FunctionType((), ()),
         "kernel_lang": "affine"},
        [Region([Block()])])
    module.append(func)
    b = Builder.at_end(func.regions[0].blocks[0])
    buf = b.create("memref.alloc", [], [T.MemRefType((8,), T.f64)]).result
    b.create("func.return", [], [])
    analysis = analyze_module(module)
    assert analysis.of(buf).const == MEMREF_ALLOC_ZERO_INIT
    assert analysis.of(buf).shape == (8,)


# -- structural negatives must carry the op path -----------------------------


def test_use_before_def_message_has_path():
    module = Module()
    b = Builder.at_end(module.body)
    c = b.create("arith.constant", [], [T.f64], {"value": 1.0})
    add = b.create("arith.addf", [c.result, c.result], [T.f64])
    # Reorder: the constant now follows its user.
    module.body.operations.remove(c)
    module.body.operations.append(c)
    with pytest.raises(IRError) as err:
        verify(module)
    message = str(err.value)
    assert "not visible at its use" in message
    assert f"at {op_path(add)}" in message


def test_sibling_region_use_message_has_path():
    module = Module()
    inner_block = Block()
    ib = Builder.at_end(inner_block)
    hidden = ib.create("arith.constant", [], [T.f64], {"value": 2.0}).result
    region_op = Operation.create("fuzz.region0", [], [], {},
                                 [Region([inner_block])])
    module.append(region_op)
    leak = Operation.create("fuzz.use", [hidden], [])
    module.append(leak)
    with pytest.raises(IRError) as err:
        verify(module)
    message = str(err.value)
    assert "sibling region" in message
    assert f"at {op_path(leak)}" in message


def test_broken_def_use_bookkeeping_message_has_path():
    module = Module()
    b = Builder.at_end(module.body)
    c = b.create("arith.constant", [], [T.f64], {"value": 1.0})
    add = b.create("arith.addf", [c.result, c.result], [T.f64])
    c.result.uses.clear()
    with pytest.raises(IRError) as err:
        verify(module)
    message = str(err.value)
    assert "def-use bookkeeping broken" in message
    assert f"at {op_path(add)}" in message


def test_terminator_mid_block_message_has_path():
    module = Module()
    body = Block([T.index])
    ib = Builder.at_end(body)
    yield_op = ib.create("affine.yield", [], [])
    ib.create("arith.constant", [], [T.f64], {"value": 0.0})
    b = Builder.at_end(module.body)
    b.create("affine.for", [], [],
             {"lower": 0, "upper": 2, "step": 1}, [Region([body])])
    with pytest.raises(IRError) as err:
        verify(module)
    message = str(err.value)
    assert "terminator is not last in its block" in message
    assert f"at {op_path(yield_op)}" in message


# -- fuzz campaign -----------------------------------------------------------


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_analysis_fuzz(seed):
    check_analysis(seed)
