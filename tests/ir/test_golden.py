"""Golden-file tests for the Fig. 5 dialect lowerings.

Each test prints one stage of the lowering cascade and compares it against
a snapshot in ``tests/ir/golden/*.mlir``.  Any optimizer or lowering
change therefore shows up as a reviewable textual diff; refresh the
snapshots deliberately with::

    pytest tests/ir/test_golden.py --update-golden
"""

from pathlib import Path

import pytest

from repro.frontends.cfdlang import (
    lower_cfdlang_to_teil,
    lower_program_to_cfdlang,
    parse_program,
)
from repro.frontends.ekl import parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.ir import print_module, verify
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine

GOLDEN_DIR = Path(__file__).parent / "golden"

EKL_SAMPLE = """
kernel fig5_demo {
  index i: 3, j: 4
  input a[i, j]: f64
  input v[j]: f64
  output y
  s = a * v + 0.0
  y = sum[j](s * 1.0)
}
"""

CFD_SAMPLE = """
var input A : [3 4]
var input x : [4]
var output y : [3]
y = (A # x) . [[2 3]]
"""


def _check(request, name: str, text: str) -> None:
    path = GOLDEN_DIR / f"{name}.mlir"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"{path} missing — regenerate with `pytest {__file__} "
        "--update-golden`"
    )
    assert text == path.read_text(), (
        f"lowering output changed vs {path.name}; if intended, refresh "
        "with `pytest tests/ir/test_golden.py --update-golden` and review "
        "the diff"
    )


@pytest.fixture(scope="module")
def ekl_stages():
    kernel = parse_kernel(EKL_SAMPLE)
    ekl = lower_kernel_to_ekl(kernel)
    esn = lower_ekl_to_esn(ekl)
    teil = lower_esn_to_teil(esn)
    affine = lower_teil_to_affine(teil)
    for module in (ekl, esn, teil, affine):
        verify(module)
    return {"ekl": ekl, "esn": esn, "teil": teil, "affine": affine}


class TestEKLGolden:
    @pytest.mark.parametrize("stage", ["ekl", "esn", "teil", "affine"])
    def test_stage_snapshot(self, request, ekl_stages, stage):
        _check(request, f"fig5_demo_{stage}",
               print_module(ekl_stages[stage]))

    def test_raw_lowering_snapshot(self, request):
        """The un-canonicalized chain, pinned so the optimizer's effect
        stays visible as the diff between the raw and canonical files."""
        kernel = parse_kernel(EKL_SAMPLE)
        raw = lower_teil_to_affine(
            lower_esn_to_teil(
                lower_ekl_to_esn(lower_kernel_to_ekl(kernel),
                                 canonicalize=False),
                canonicalize=False,
            ),
            canonicalize=False,
        )
        verify(raw)
        _check(request, "fig5_demo_affine_raw", print_module(raw))


class TestCFDlangGolden:
    def test_cfdlang_dialect_snapshot(self, request):
        module = lower_program_to_cfdlang(parse_program(CFD_SAMPLE), "matvec")
        verify(module)
        _check(request, "cfd_matvec_cfdlang", print_module(module))

    def test_teil_snapshot(self, request):
        module = lower_cfdlang_to_teil(
            lower_program_to_cfdlang(parse_program(CFD_SAMPLE), "matvec")
        )
        verify(module)
        _check(request, "cfd_matvec_teil", print_module(module))

    def test_affine_snapshot(self, request):
        module = lower_teil_to_affine(lower_cfdlang_to_teil(
            lower_program_to_cfdlang(parse_program(CFD_SAMPLE), "matvec")
        ))
        verify(module)
        _check(request, "cfd_matvec_affine", print_module(module))
