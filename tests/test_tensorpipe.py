"""Integration tests of the tensor compilation pipeline.

The central invariant: for every kernel, the compiled affine loops must
produce the same numbers as the EKL interpreter (the language semantics).
"""

import numpy as np
import pytest

from repro.frontends.ekl import FIG3_MAJOR_ABSORBER, Interpreter, parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.ir import verify
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine
from repro.tensorpipe.affine_interp import run_affine
from repro.tensorpipe.codegen import compile_affine


def compile_to_affine(source):
    kernel = parse_kernel(source)
    m_ekl = lower_kernel_to_ekl(kernel)
    verify(m_ekl)
    m_esn = lower_ekl_to_esn(m_ekl)
    verify(m_esn)
    m_teil = lower_esn_to_teil(m_esn)
    verify(m_teil)
    m_affine = lower_teil_to_affine(m_teil)
    verify(m_affine)
    return kernel, m_affine


def assert_compiled_matches_interpreted(source, inputs):
    kernel, module = compile_to_affine(source)
    expected = Interpreter(kernel).run(inputs)
    got = run_affine(module, kernel.name, inputs)
    assert set(got) == set(expected)
    for name in expected:
        np.testing.assert_allclose(got[name], expected[name], rtol=1e-12,
                                   atol=1e-12)
    # The codegen backend must reproduce the interpreter bit-for-bit.
    executed = compile_affine(module, kernel.name).run(inputs)
    for name in expected:
        np.testing.assert_array_equal(executed[name], got[name])


class TestCrossValidation:
    def test_elementwise(self):
        assert_compiled_matches_interpreted("""
        kernel k {
          index i: 5
          input a[i]: f64
          input b[i]: f64
          output c
          c = a * b + 2.0
        }
        """, {"a": np.arange(5.0), "b": np.ones(5) * 3})

    def test_broadcast_product(self):
        assert_compiled_matches_interpreted("""
        kernel k {
          index i: 3, j: 4
          input a[i]: f64
          input b[j]: f64
          output c
          c = a * b
        }
        """, {"a": np.arange(3.0), "b": np.arange(4.0)})

    def test_einsum_contraction(self):
        rng = np.random.default_rng(0)
        assert_compiled_matches_interpreted("""
        kernel k {
          index i: 4, j: 5
          input A[i, j]: f64
          input x[j]: f64
          output y
          y = sum[j](A * x)
        }
        """, {"A": rng.normal(size=(4, 5)), "x": rng.normal(size=5)})

    def test_gather(self):
        assert_compiled_matches_interpreted("""
        kernel k {
          index i: 4
          input idx[i]: i64
          input table[9]: f64
          output c
          c = table[idx]
        }
        """, {"idx": np.array([0, 8, 3, 3]), "table": np.arange(9.0)})

    def test_select_and_compare(self):
        assert_compiled_matches_interpreted("""
        kernel k {
          index i: 6
          input a[i]: f64
          output c
          c = select(a <= 2.0, a * 10.0, a)
        }
        """, {"a": np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])})

    def test_stack_rebind(self):
        assert_compiled_matches_interpreted("""
        kernel k {
          index i: 3, t: 2
          input a[i]: i64
          input table[8]: f64
          output c
          s = [a, a + 1]
          c = table[s[i, t]]
        }
        """, {"a": np.array([0, 2, 4]), "table": np.arange(8.0)})

    def test_fig3_full_pipeline(self):
        rng = np.random.default_rng(42)
        inputs = dict(
            press=rng.uniform(0.1, 1.0, 16),
            strato=np.asarray(0.4),
            bnd=np.asarray(3),
            bnd_to_flav=rng.integers(0, 14, (2, 14)),
            j_T=rng.integers(0, 7, 16),
            j_p=rng.integers(0, 6, 16),
            j_eta=rng.integers(0, 3, (14, 16, 2)),
            r_mix=rng.uniform(0.5, 1.5, (14, 16, 2)),
            f_major=rng.uniform(0.0, 1.0, (14, 16, 2, 2, 2)),
            k_major=rng.uniform(0.0, 2.0, (8, 8, 4, 16)),
        )
        kernel, module = compile_to_affine(FIG3_MAJOR_ABSORBER)
        expected = Interpreter(kernel).run(inputs)["tau_abs"]
        got = run_affine(module, "tau_major", inputs)["tau_abs"]
        np.testing.assert_allclose(got, expected, rtol=1e-10)


class TestLoweringStructure:
    def test_affine_functions_are_loop_nests(self):
        _, module = compile_to_affine("""
        kernel k {
          index i: 3
          input a[i]: f64
          output c
          c = a + 1.0
        }
        """)
        func = module.lookup("k")
        loops = [op for op in func.walk() if op.name == "affine.for"]
        assert loops, "expected at least one loop nest"
        for loop in loops:
            body = loop.regions[0].entry
            assert body.operations[-1].name == "affine.yield"

    def test_einsum_spec_generated(self):
        kernel = parse_kernel("""
        kernel k {
          index i: 2, j: 2
          input A[i, j]: f64
          input B[i, j]: f64
          output y
          y = sum[j](A * B)
        }
        """)
        m_esn = lower_ekl_to_esn(lower_kernel_to_ekl(kernel))
        einsums = [op for op in m_esn.walk() if op.name == "esn.einsum"]
        assert len(einsums) == 1
        assert einsums[0].attr("spec") == "ab,ab->a"
