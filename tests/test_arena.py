"""Static arena planner: liveness, placement, execution and HLS wiring.

Covers the contract chain end to end:

* :func:`repro.tensorpipe.arena.plan_arena` produces an overlap-free,
  aligned first-fit plan whose sharing follows buffer liveness;
* the ``compiled-arena`` backend executes every golden kernel
  bitwise-identically to the interpreter and the per-buffer ``compiled``
  backend (the ``memref.alloc`` zero-init contract survives slot reuse);
* ``KernelReport.planned_arena_bytes`` (HLS) equals both the planner's
  peak and the compiled executor's allocated arena;
* the plan feeds Olympus PLM sharing via
  :func:`repro.olympus.plm_sharing.requests_from_arena` and sizes the
  generated scratch PLM.
"""

import os
import sys

import numpy as np
import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "tools")
)

from repro.frontends.cfdlang import (
    lower_cfdlang_to_teil,
    lower_program_to_cfdlang,
    parse_program,
)
from repro.frontends.ekl import FIG3_MAJOR_ABSORBER, parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.hls import synthesize_kernel
from repro.ir import CanonicalizePass, FusionPass, analyze_module
from repro.ir.analysis import MEMREF_ALLOC_ZERO_INIT
from repro.olympus import (
    OlympusGenerator,
    peak_live_bytes,
    requests_from_arena,
    share_plm,
)
from repro.platforms import device_by_name
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine
from repro.tensorpipe.affine_interp import _dtype_for, run_affine
from repro.tensorpipe.arena import default_element_bytes, plan_arena
from repro.tensorpipe.codegen import compile_affine

CHAIN = """
kernel arena_chain {
  index i: 40, j: 6
  input a[i, j]: f64
  input b[i, j]: f64
  output out
  t0 = a * b + a
  t1 = t0 * b - a
  t2 = t1 * t1 + t0
  out = sum[j](t2 * t1)
}
"""

CFD_MATVEC = """
var input A : [3 4]
var input x : [4]
var output y : [3]
y = (A # x) . [[2 3]]
"""


def _lower_ekl(source, *, fuse=False):
    kernel = parse_kernel(source)
    module = lower_teil_to_affine(
        lower_esn_to_teil(
            lower_ekl_to_esn(lower_kernel_to_ekl(kernel),
                             canonicalize=False),
            canonicalize=False,
        ),
        canonicalize=False,
    )
    CanonicalizePass().run(module)
    if fuse:
        FusionPass().run(module)
    return module, kernel.name


def _lower_cfd(source):
    module = lower_teil_to_affine(
        lower_cfdlang_to_teil(
            lower_program_to_cfdlang(parse_program(source))),
        canonicalize=True,
    )
    names = [op.attr("sym_name") for op in module.body
             if op.name == "func.func"
             and op.attr("kernel_lang") == "affine"]
    assert len(names) == 1
    return module, names[0]


def _sample_inputs(module, func_name, seed=7):
    func = module.lookup(func_name)
    entry = func.regions[0].entry
    arg_names = func.attr("arg_names")
    num_outputs = func.attr("num_outputs")
    rng = np.random.default_rng(seed)
    inputs = {}
    for i, arg in enumerate(entry.args[:len(entry.args) - num_outputs]):
        dtype = _dtype_for(arg.type.element)
        data = rng.normal(size=tuple(arg.type.shape))
        inputs[arg_names[i]] = np.asarray(data, dtype=dtype)
    return inputs


def _golden_cases():
    module, name = _lower_ekl(CHAIN)
    yield "chain", module, name
    module, name = _lower_ekl(CHAIN, fuse=True)
    yield "chain-fused", module, name
    module, name = _lower_ekl(FIG3_MAJOR_ABSORBER)
    yield "fig3", module, name
    module, name = _lower_cfd(CFD_MATVEC)
    yield "cfd-matvec", module, name


GOLDEN = list(_golden_cases())


# -- planner invariants ------------------------------------------------------


@pytest.mark.parametrize("label,module,name",
                         GOLDEN, ids=[c[0] for c in GOLDEN])
def test_plan_is_aligned_and_overlap_free(label, module, name):
    plan = plan_arena(module.lookup(name))
    assert plan.slots, f"{label}: expected local buffers to plan"
    for slot in plan.slots:
        assert slot.offset % slot.align == 0
        assert slot.start <= slot.end
        assert slot.offset + slot.size <= plan.total_bytes
    # Slots with intersecting live ranges must occupy disjoint bytes.
    for i, a in enumerate(plan.slots):
        for b in plan.slots[i + 1:]:
            if a.overlaps_lifetime(b.start, b.end):
                assert (a.offset + a.size <= b.offset
                        or b.offset + b.size <= a.offset), \
                    f"{label}: {a} and {b} overlap in time and space"
    assert plan.total_bytes <= plan.unshared_bytes
    assert 0.0 <= plan.saving < 1.0


def test_liveness_sharing_actually_shares():
    module, name = _lower_ekl(CHAIN)
    plan = plan_arena(module.lookup(name))
    assert plan.total_bytes < plan.unshared_bytes, \
        "the chain kernel has dead intermediates; the plan must reuse them"
    offsets = {slot.offset for slot in plan.slots}
    assert len(offsets) < len(plan.slots)


# -- execution ---------------------------------------------------------------


@pytest.mark.parametrize("label,module,name",
                         GOLDEN, ids=[c[0] for c in GOLDEN])
def test_arena_backend_bitwise_identical(label, module, name):
    inputs = _sample_inputs(module, name)
    expected = run_affine(module, name, inputs)
    compiled = compile_affine(module, name)
    arena = compile_affine(module, name, backend="compiled-arena")
    assert arena.backend == "compiled-arena"
    assert arena.arena_slots == len(plan_arena(module.lookup(name)).slots)
    got_compiled = compiled.run(inputs)
    got_arena = arena.run(inputs)
    for out in expected:
        np.testing.assert_array_equal(got_arena[out], expected[out])
        np.testing.assert_array_equal(got_arena[out], got_compiled[out])
        assert got_arena[out].dtype == expected[out].dtype


def test_arena_run_is_repeatable_despite_slot_reuse():
    # The zero-init contract: a reused slot must not leak the previous
    # buffer's (or the previous *run's*) bytes into a fresh alloc.
    module, name = _lower_ekl(CHAIN)
    arena = compile_affine(module, name, backend="compiled-arena")
    assert ".fill(0)" in arena.source
    inputs = _sample_inputs(module, name)
    first = arena.run(inputs)
    second = arena.run(inputs)
    for out in first:
        np.testing.assert_array_equal(first[out], second[out])


def test_fuzz_exec_200_seeds_through_arena_backend():
    """200 random kernels, arena backend vs. interpreter, bit-for-bit
    at opt levels 0/1/2 (the ISSUE's differential acceptance bar)."""
    from irfuzz import check_executor

    for seed in range(200):
        check_executor(seed, backend="compiled-arena")


def test_analysis_records_zero_init_contract():
    module, name = _lower_ekl(CHAIN)
    analysis = analyze_module(module)
    allocs = [op for op in module.lookup(name).regions[0].entry.operations
              if op.name == "memref.alloc"]
    assert allocs
    for op in allocs:
        assert analysis.of(op.results[0]).const == MEMREF_ALLOC_ZERO_INIT


# -- HLS + Olympus wiring ----------------------------------------------------


@pytest.mark.parametrize("label,module,name",
                         GOLDEN, ids=[c[0] for c in GOLDEN])
def test_hls_report_matches_planner_and_executor(label, module, name):
    report = synthesize_kernel(module, name)
    plan = plan_arena(module.lookup(name))
    arena = compile_affine(module, name, backend="compiled-arena")
    assert report.planned_arena_bytes == plan.total_bytes
    assert report.planned_arena_bytes == arena.arena_bytes
    assert report.planned_arena_slots == len(plan.slots)
    assert f"scratch-arena={plan.total_bytes}B" in report.summary()


def test_custom_format_rescales_planned_arena():
    from repro.numerics import make_format

    module, name = _lower_ekl(CHAIN)
    f64_report = synthesize_kernel(module, name)
    f32_report = synthesize_kernel(module, name,
                                   number_format=make_format("f32"))
    assert 0 < f32_report.planned_arena_bytes < f64_report.planned_arena_bytes


def test_requests_from_arena_feed_plm_sharing():
    module, name = _lower_ekl(CHAIN)
    plan = plan_arena(module.lookup(name))
    requests = requests_from_arena(plan)
    assert len(requests) == len([s for s in plan.slots if s.size > 0])
    allocation = share_plm(requests)
    assert peak_live_bytes(requests) <= allocation.total_bytes
    assert allocation.total_bytes <= plan.unshared_bytes
    # Both allocators exploit the same lifetimes; first-fit-decreasing
    # must share at least as well as dedicated buffers.
    assert allocation.saving > 0.0


def test_olympus_instance_gets_scratch_plm():
    module, name = _lower_ekl(CHAIN)
    report = synthesize_kernel(module, name)
    generator = OlympusGenerator(device_by_name("alveo-u55c"))
    _, instance = generator.estimate(
        report, generator.candidate_configs()[0])
    scratch = [p for p in instance.plms if p.name == "scratch"]
    assert len(scratch) == 1
    assert scratch[0].bytes == report.planned_arena_bytes
    assert not scratch[0].double_buffered


def test_default_element_bytes_match_numpy():
    from repro.ir import types as T

    for ty, expected in [(T.f64, 8), (T.f32, 4), (T.i64, 8), (T.i32, 4),
                         (T.i1, 1), (T.index, 8)]:
        assert default_element_bytes(ty) == expected
