"""Tests for mARGOt and the anomaly-detection service."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.anomaly import (
    DetectionNode,
    ModelSelectionNode,
    TPESampler,
    f1_score,
    load_data,
    make_detector,
    minimize,
    random_search,
)
from repro.anomaly.service import DataConfig
from repro.autotuner import (
    Constraint,
    Knob,
    MargotManager,
    OperatingPoint,
    Rank,
)
from repro.errors import AnomalyError, AutotunerError


def _ops():
    return [
        OperatingPoint({"variant": "cpu"},
                       {"time_ms": 100.0, "energy_j": 5.0}),
        OperatingPoint({"variant": "fpga"},
                       {"time_ms": 20.0, "energy_j": 2.0}),
        OperatingPoint({"variant": "fpga_x4"},
                       {"time_ms": 8.0, "energy_j": 3.5}),
    ]


class TestMargot:
    def test_constraint_filters_then_rank(self):
        manager = MargotManager(_ops())
        manager.add_constraint(Constraint("time_ms", upper_bound=50.0))
        manager.set_rank(Rank({"energy_j": 1.0}))
        assert manager.update().knobs["variant"] == "fpga"

    def test_adapts_to_observed_degradation(self):
        manager = MargotManager(_ops())
        manager.add_constraint(Constraint("time_ms", upper_bound=50.0))
        manager.set_rank(Rank({"energy_j": 1.0}))
        manager.update()
        for _ in range(10):
            manager.observe("time_ms", 80.0)  # fpga 4x slower than expected
        assert manager.update().knobs["variant"] == "fpga_x4"
        assert manager.switches == 1

    def test_infeasible_constraints_relaxed(self):
        manager = MargotManager(_ops())
        manager.add_constraint(Constraint("time_ms", upper_bound=1.0))
        point = manager.update()  # nothing satisfies; falls back to rank
        assert point is not None

    def test_constraint_priority_order(self):
        manager = MargotManager(_ops())
        manager.add_constraint(Constraint("energy_j", upper_bound=3.0,
                                          priority=2))
        manager.add_constraint(Constraint("time_ms", upper_bound=10.0,
                                          priority=1))
        manager.set_rank(Rank({"time_ms": 1.0}))
        # Hard constraint (priority 1) keeps only fpga_x4; the energy
        # constraint then cannot be satisfied and is relaxed.
        assert manager.update().knobs["variant"] == "fpga_x4"

    def test_empty_knowledge_rejected(self):
        with pytest.raises(AutotunerError):
            MargotManager([])

    def test_knob_validation(self):
        with pytest.raises(AutotunerError):
            Knob("k", ())


class TestTPE:
    @staticmethod
    def _quadratic(params):
        return (params["x"] - 3.0) ** 2 + 0.1 * (params["y"] + 1.0) ** 2

    def test_tpe_minimizes_quadratic(self):
        space = {"x": ("uniform", -10.0, 10.0),
                 "y": ("uniform", -10.0, 10.0)}
        best = minimize(self._quadratic, space, n_trials=60, seed=0)
        assert best.value < 1.0

    def test_tpe_beats_random_in_median(self):
        space = {"x": ("uniform", -10.0, 10.0),
                 "y": ("uniform", -10.0, 10.0)}
        tpe_scores = [minimize(self._quadratic, space, 60, seed=s).value
                      for s in range(8)]
        random_scores = [random_search(self._quadratic, space, 60,
                                       seed=s).value for s in range(8)]
        assert np.median(tpe_scores) < np.median(random_scores)

    def test_choice_and_int_params(self):
        def objective(params):
            base = 0.0 if params["kind"] == "good" else 5.0
            return base + abs(params["n"] - 7)

        space = {"kind": ("choice", ["bad", "good", "ugly"]),
                 "n": ("int", 0, 20)}
        best = minimize(objective, space, n_trials=50, seed=1)
        assert best.params["kind"] == "good"
        assert abs(best.params["n"] - 7) <= 2

    def test_loguniform_stays_in_bounds(self):
        sampler = TPESampler({"lr": ("loguniform", 1e-5, 1e-1)}, seed=0)
        for _ in range(30):
            params = sampler.ask()
            assert 1e-5 <= params["lr"] <= 1e-1
            sampler.tell(params, params["lr"])

    def test_bad_spec_rejected(self):
        with pytest.raises(AnomalyError):
            TPESampler({"x": ("gaussian", 0, 1)})


class TestDetectors:
    def _data(self):
        rng = np.random.default_rng(0)
        normal = rng.normal(0, 1, (300, 2))
        anomalies = rng.normal(6, 0.5, (15, 2))
        X = np.concatenate([normal, anomalies])
        return normal, X, list(range(300, 315))

    @pytest.mark.parametrize("name", ["zscore", "iqr", "mahalanobis",
                                      "iforest", "lof"])
    def test_detector_separates_obvious_anomalies(self, name):
        normal, X, truth = self._data()
        detector = make_detector(name).fit(normal)
        predicted = detector.predict_indexes(X, contamination=0.05)
        assert f1_score(predicted, truth, len(X)) > 0.7, name

    def test_scores_before_fit_rejected(self):
        with pytest.raises(AnomalyError):
            make_detector("zscore").scores(np.zeros((3, 2)))

    def test_unknown_detector(self):
        with pytest.raises(AnomalyError):
            make_detector("oracle")

    def test_moving_window_flags_spikes(self):
        rng = np.random.default_rng(1)
        series = np.sin(np.linspace(0, 20, 400)) \
            + rng.normal(0, 0.05, 400)
        series[150] += 4.0
        detector = make_detector("moving_window", window=12)
        detector.fit(series[:100, None])
        flagged = detector.predict_indexes(series[:, None],
                                           contamination=0.01)
        assert any(abs(i - 150) <= 1 for i in flagged)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(0.01, 0.3))
    def test_contamination_bounds_flag_count(self, contamination):
        rng = np.random.default_rng(2)
        X = rng.normal(0, 1, (200, 2))
        detector = make_detector("zscore").fit(X)
        flagged = detector.predict_indexes(X, contamination)
        assert len(flagged) <= int(np.ceil(contamination * len(X))) + 1


class TestServiceNodes:
    def test_model_selection_and_detection_json(self, tmp_path):
        rng = np.random.default_rng(3)
        train = rng.normal(0, 1, (300, 3))
        val = np.concatenate([rng.normal(0, 1, (150, 3)),
                              rng.normal(5, 0.7, (12, 3))])
        labels = list(range(150, 162))
        selection = ModelSelectionNode(seed=0).run(train, val, labels,
                                                   n_trials=20)
        assert selection.best_score > 0.5
        node = DetectionNode(selection)
        out = tmp_path / "anomalies.json"
        report = node.detect(val, output_path=str(out))
        payload = json.loads(out.read_text())
        assert payload["anomalies"] == report.anomalies
        assert payload["n_samples"] == len(val)

    def test_continuous_update_refits(self):
        rng = np.random.default_rng(4)
        selection = ModelSelectionNode(seed=0).run(
            rng.normal(0, 1, (100, 2)), rng.normal(0, 1, (50, 2)),
            n_trials=6,
        )
        node = DetectionNode(selection, update_window=64)
        for _ in range(3):
            node.detect(rng.normal(0, 1, (40, 2)))
        assert len(node._history) == 3

    def test_load_data_csv_with_config(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("h1,h2,h3\n1,2,3\n4,5,6\n")
        data = load_data(str(path), DataConfig(skip_header=1,
                                               columns=[0, 2]))
        np.testing.assert_array_equal(data, [[1, 3], [4, 6]])

    def test_unsupported_format_rejected(self):
        with pytest.raises(AnomalyError):
            load_data("data.parquet")
