"""Tests for the compiled affine executor (codegen -> vectorized numpy).

The central contract: :func:`repro.tensorpipe.codegen.compile_affine`
produces a kernel whose float64 results are *bit-for-bit* identical to
:class:`repro.tensorpipe.affine_interp.AffineInterpreter` — on the golden
kernels, on hand-built precision-cast modules and on 200 fuzz-generated
kernels, at optimization levels 0, 1 and 2.
"""

import os
import sys

import numpy as np
import pytest

from repro.frontends.ekl import FIG3_MAJOR_ABSORBER, parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.ir import Builder, CanonicalizePass, InlinePass, verify
from repro.ir import types as T
from repro.ir.core import Block, Module, Operation, Region
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine
from repro.tensorpipe.affine_interp import run_affine
from repro.tensorpipe.codegen import (
    compile_affine,
    count_flops,
    run_affine_compiled,
)

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
from irfuzz import check_executor, generate_ekl_case  # noqa: E402


def compile_raw(source):
    kernel = parse_kernel(source)
    module = lower_teil_to_affine(
        lower_esn_to_teil(
            lower_ekl_to_esn(lower_kernel_to_ekl(kernel),
                             canonicalize=False),
            canonicalize=False,
        ),
        canonicalize=False,
    )
    verify(module)
    return kernel, module


def optimized(module, opt_level):
    if opt_level == 0:
        return module
    clone = module.clone()
    if opt_level >= 2:
        InlinePass().run(clone)
    CanonicalizePass().run(clone)
    return clone


def assert_bitwise_match(module, name, inputs):
    expected = run_affine(module, name, inputs)
    compiled = compile_affine(module, name)
    got = compiled.run(inputs)
    assert set(got) == set(expected)
    for key in expected:
        np.testing.assert_array_equal(
            got[key], expected[key],
            err_msg=f"compiled executor diverges on {key!r}")
    return compiled


ELEMENTWISE = """
kernel k {
  index i: 5
  input a[i]: f64
  input b[i]: f64
  output c
  c = a * b + 2.0
}
"""

CONTRACTION = """
kernel k {
  index i: 4, j: 5
  input A[i, j]: f64
  input x[j]: f64
  output y
  y = sum[j](A * x)
}
"""

GATHER = """
kernel k {
  index i: 4
  input idx[i]: i64
  input table[9]: f64
  output c
  c = table[idx]
}
"""

FULL_REDUCTION = """
kernel k {
  index i: 7
  input a[i]: f64
  output s
  s = sum[i](a * a)
}
"""


class TestCompiledExecutor:
    @pytest.mark.parametrize("opt_level", [0, 1, 2])
    def test_elementwise_bitwise(self, opt_level):
        _, module = compile_raw(ELEMENTWISE)
        module = optimized(module, opt_level)
        compiled = assert_bitwise_match(
            module, "k", {"a": np.arange(5.0), "b": np.ones(5) * 3})
        assert compiled.backend == "compiled"
        assert compiled.vectorized_nests > 0

    @pytest.mark.parametrize("opt_level", [0, 1, 2])
    def test_contraction_bitwise(self, opt_level):
        rng = np.random.default_rng(0)
        _, module = compile_raw(CONTRACTION)
        module = optimized(module, opt_level)
        assert_bitwise_match(module, "k", {"A": rng.normal(size=(4, 5)),
                                           "x": rng.normal(size=5)})

    def test_reduction_order_is_sequential_not_pairwise(self):
        # The sequential left-fold the interpreter performs is NOT what
        # np.sum computes (pairwise); bit-equality therefore demonstrates
        # the vectorizer kept reduction dimensions sequential.
        rng = np.random.default_rng(7)
        values = rng.normal(size=7) * 1e8 + rng.normal(size=7)
        _, module = compile_raw(FULL_REDUCTION)
        expected = run_affine(module, "k", {"a": values})["s"]
        got = run_affine_compiled(module, "k", {"a": values})["s"]
        np.testing.assert_array_equal(got, expected)
        sequential = np.float64(0.0)
        for v in np.asarray(values, dtype=np.float64):
            sequential = sequential + v * v
        np.testing.assert_array_equal(got, sequential)

    @pytest.mark.parametrize("opt_level", [0, 1, 2])
    def test_gather_advanced_indexing(self, opt_level):
        _, module = compile_raw(GATHER)
        module = optimized(module, opt_level)
        compiled = assert_bitwise_match(
            module, "k",
            {"idx": np.array([0, 8, 3, 3]), "table": np.arange(9.0)})
        assert compiled.backend == "compiled"

    @pytest.mark.parametrize("opt_level", [0, 1, 2])
    def test_fig3_bitwise(self, opt_level, rrtmg_inputs):
        _, module = compile_raw(FIG3_MAJOR_ABSORBER)
        module = optimized(module, opt_level)
        compiled = assert_bitwise_match(module, "tau_major", rrtmg_inputs)
        assert compiled.backend == "compiled"
        assert compiled.scalar_nests == 0, \
            "every Fig. 3 nest should vectorize"

    def test_sum_result_reused_in_broadcast(self):
        # Regression: esn.reduce keeps reduction *positions* in its axes
        # attribute; broadcasting a sum result used to read them as axis
        # labels and miscompile (found by the executor fuzzer, seed 3).
        source = """
        kernel k {
          index i: 6
          input a[i]: f64
          output y
          s = sum[i](a)
          y = a * s
        }
        """
        kernel, module = compile_raw(source)
        rng = np.random.default_rng(5)
        inputs = {"a": rng.uniform(-1, 1, 6)}
        from repro.frontends.ekl import Interpreter

        expected = Interpreter(kernel).run(inputs)["y"]
        got = run_affine(module, "k", inputs)["y"]
        np.testing.assert_allclose(got, expected, rtol=1e-12)
        assert_bitwise_match(module, "k", inputs)


class TestPrecisionCasts:
    def _cast_module(self):
        """f64 -> truncf f32 -> arith -> extf f64 round-trip function."""
        module = Module()
        in_ref = T.MemRefType((4,), T.f64)
        out_ref = T.MemRefType((4,), T.f64)
        entry = Block([in_ref, out_ref])
        func = Operation.create(
            "func.func", [], [],
            {"sym_name": "cast", "function_type":
             T.FunctionType((in_ref, out_ref), ()),
             "kernel_lang": "affine", "arg_names": ["a", "y"],
             "num_outputs": 1},
            [Region([entry])],
        )
        module.append(func)
        builder = Builder.at_end(entry)
        body = Block([T.index])
        builder.create("affine.for", [], [],
                       {"lower": 0, "upper": 4, "step": 1},
                       [Region([body])])
        inner = Builder.at_end(body)
        loaded = inner.create("memref.load", [entry.args[0], body.args[0]],
                              [T.f64]).result
        narrowed = inner.create("arith.truncf", [loaded], [T.f32]).result
        third = inner.create("arith.constant", [], [T.f32],
                             {"value": 1.0 / 3.0}).result
        scaled = inner.create("arith.mulf", [narrowed, third],
                              [T.f32]).result
        widened = inner.create("arith.extf", [scaled], [T.f64]).result
        inner.create("memref.store",
                     [widened, entry.args[1], body.args[0]], [])
        inner.create("affine.yield", [], [])
        builder.create("func.return", [], [])
        verify(module)
        return module

    def test_truncf_rounds_through_f32(self):
        module = self._cast_module()
        values = np.array([1.1, -2.7, 1e-9, 1234.56789])
        out = run_affine(module, "cast", {"a": values})["y"]
        expected = (values.astype(np.float32)
                    * np.float32(1.0 / 3.0)).astype(np.float64)
        np.testing.assert_array_equal(out, expected)
        # A pure-f64 evaluation differs: the cast is not a no-op.
        assert not np.array_equal(out, values * (1.0 / 3.0))

    def test_compiled_matches_interpreter_on_casts(self):
        module = self._cast_module()
        values = np.array([1.1, -2.7, 1e-9, 1234.56789])
        compiled = assert_bitwise_match(module, "cast", {"a": values})
        assert compiled.backend == "compiled"


class TestCompilerMechanics:
    def test_source_has_no_python_loops_for_elementwise(self):
        _, module = compile_raw(ELEMENTWISE)
        compiled = compile_affine(module, "k")
        assert compiled.backend == "compiled"
        assert "for " not in compiled.source

    def test_reduction_keeps_sequential_loop(self):
        _, module = compile_raw(CONTRACTION)
        compiled = compile_affine(module, "k")
        assert "for " in compiled.source  # the reduced axis stays a loop

    def test_compile_cache_reuses_kernels(self):
        _, module = compile_raw(ELEMENTWISE)
        first = compile_affine(module, "k")
        second = compile_affine(module, "k")
        assert first is second
        third = compile_affine(module.clone(), "k")
        assert third is first  # content hash, not object identity

    def test_unsupported_op_falls_back_to_interpreter(self):
        module = Module()
        ref = T.MemRefType((2,), T.f64)
        entry = Block([ref])
        func = Operation.create(
            "func.func", [], [],
            {"sym_name": "odd", "function_type": T.FunctionType((ref,), ()),
             "kernel_lang": "affine", "arg_names": ["y"], "num_outputs": 1},
            [Region([entry])],
        )
        module.append(func)
        builder = Builder.at_end(entry)
        builder.create("exotic.op", [], [])
        builder.create("func.return", [], [])
        compiled = compile_affine(module, "odd", cache=False)
        assert compiled.backend == "interpreter"
        assert compiled.source == ""

    def test_flop_count_matches_loop_structure(self):
        _, module = compile_raw(ELEMENTWISE)
        func = module.lookup("k")
        # One mul nest and one add nest over 5 elements; broadcast/copy
        # traffic contributes no FLOPs.
        assert count_flops(func) == 5 * 2

    def test_negative_step_loop_still_executes(self):
        # count_flops rejects negative steps (no static model), but that
        # must degrade gracefully — never leak UnsupportedAffineOp.
        module = Module()
        ref = T.MemRefType((4,), T.f64)
        entry = Block([ref])
        func = Operation.create(
            "func.func", [], [],
            {"sym_name": "countdown",
             "function_type": T.FunctionType((ref,), ()),
             "kernel_lang": "affine", "arg_names": ["y"],
             "num_outputs": 1},
            [Region([entry])],
        )
        module.append(func)
        builder = Builder.at_end(entry)
        body = Block([T.index])
        builder.create("affine.for", [], [],
                       {"lower": 3, "upper": -1, "step": -1},
                       [Region([body])])
        inner = Builder.at_end(body)
        cast = inner.create("arith.index_cast", [body.args[0]],
                            [T.f64]).result
        inner.create("memref.store", [cast, entry.args[0], body.args[0]],
                     [])
        inner.create("affine.yield", [], [])
        builder.create("func.return", [], [])
        verify(module)
        compiled = compile_affine(module, "countdown", cache=False)
        assert compiled.flops == 0
        got = compiled.run({})["y"]
        expected = run_affine(module, "countdown", {})["y"]
        np.testing.assert_array_equal(got, expected)

    def test_compiled_kernel_str(self):
        _, module = compile_raw(ELEMENTWISE)
        compiled = compile_affine(module, "k")
        text = str(compiled)
        assert "backend=compiled" in text and "k" in text

    def test_missing_input_raises(self):
        from repro.errors import EverestError

        _, module = compile_raw(ELEMENTWISE)
        compiled = compile_affine(module, "k")
        with pytest.raises(EverestError):
            compiled.run({"a": np.arange(5.0)})


class TestExecutorFuzz:
    """The 200-seed differential campaign (ISSUE 4 acceptance)."""

    @pytest.mark.parametrize("seed", range(200))
    def test_compiled_matches_interpreter(self, seed):
        check_executor(seed)

    def test_generated_kernels_are_diverse(self):
        sources = [generate_ekl_case(seed)[0] for seed in range(50)]
        assert len(set(sources)) == len(sources)
        joined = "\n".join(sources)
        for construct in ("sum[", "select(", "table[idx", "exp(", "/"):
            assert construct in joined, f"fuzz never generates {construct}"
