"""Tests for the HLS engine: scheduling, II analysis, reports, backends."""

import pytest

from repro.errors import HLSError
from repro.frontends.ekl import FIG3_MAJOR_ABSORBER, parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.hls import HLSEngine, cost_of, synthesize_kernel
from repro.hls.scheduling import asap, build_dfg, list_schedule
from repro.ir import Module, verify, types as T
from repro.numerics import make_format
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine


def _affine_module(source):
    kernel = parse_kernel(source)
    return kernel, lower_teil_to_affine(
        lower_esn_to_teil(lower_ekl_to_esn(lower_kernel_to_ekl(kernel)))
    )


SIMPLE = """
kernel simple {
  index i: 32
  input a[i]: f64
  input b[i]: f64
  output c
  c = a * b + a
}
"""

REDUCTION = """
kernel dotp {
  index i: 64
  input a[i]: f64
  input b[i]: f64
  output s
  s = sum[i](a * b)
}
"""


class TestCostModel:
    def test_relative_op_costs(self):
        assert cost_of("arith.divf", T.f64).latency \
            > cost_of("arith.mulf", T.f64).latency \
            > cost_of("arith.addi", T.i64).latency

    def test_precision_reduces_cost(self):
        assert cost_of("arith.mulf", T.f32).dsp \
            < cost_of("arith.mulf", T.f64).dsp

    def test_fixed_point_cheapest(self):
        fixed = cost_of("arith.mulf", T.FixedPointType(8, 8))
        assert fixed.latency <= cost_of("arith.mulf", T.f32).latency

    def test_posit_between_fixed_and_float(self):
        posit = cost_of("arith.addf", T.PositType(16, 1))
        assert posit.lut < cost_of("arith.addf", T.f64).lut


class TestScheduling:
    def test_asap_respects_dependencies(self):
        _, module = _affine_module(SIMPLE)
        func = module.lookup("simple")
        loops = [op for op in func.walk() if op.name == "affine.for"]
        body = [op for op in loops[-1].regions[0].entry
                if op.name != "affine.yield"]
        engine = HLSEngine()
        dfg = build_dfg(body, engine._element_of)
        start = asap(dfg)
        for node in dfg.nodes:
            for pred in node.preds:
                assert start[node.index] >= start[pred] \
                    + dfg.nodes[pred].cost.latency

    def test_memory_port_limit_raises_ii(self):
        _, module = _affine_module(SIMPLE)
        one_port = HLSEngine(mem_ports=1).synthesize(module, "simple")
        two_ports = HLSEngine(mem_ports=2).synthesize(module, "simple")
        assert one_port.total_cycles >= two_ports.total_cycles


class TestSynthesis:
    def test_report_structure(self):
        _, module = _affine_module(SIMPLE)
        report = synthesize_kernel(module, "simple")
        assert report.total_cycles > 0
        assert report.resources.lut > 0
        assert report.bytes_in == 2 * 32 * 8
        assert report.bytes_out == 32 * 8
        assert "kernel simple" in report.summary()

    def test_reduction_carries_recurrence(self):
        _, module = _affine_module(REDUCTION)
        report = synthesize_kernel(module, "dotp")
        # The accumulation nest must be recurrence-bound (f64 add > 1).
        assert any(nest.rec_mii > 1 for nest in report.nests)

    def test_format_sweep_monotone(self):
        _, module = _affine_module(FIG3_MAJOR_ABSORBER)
        f64 = synthesize_kernel(module, "tau_major")
        f32 = synthesize_kernel(module, "tau_major",
                                number_format=make_format("f32"))
        fixed = synthesize_kernel(module, "tau_major",
                                  number_format=make_format("fixed<8.8>"))
        assert f32.total_cycles < f64.total_cycles
        assert fixed.total_cycles < f64.total_cycles
        assert f32.resources.dsp < f64.resources.dsp

    def test_non_affine_function_rejected(self):
        module = Module()
        from repro.ir import build_func

        _, _, fb = build_func(module, "plain", [], [])
        fb.create("func.return", [])
        with pytest.raises(HLSError):
            synthesize_kernel(module, "plain")

    def test_latency_seconds_scales_with_clock(self):
        _, module = _affine_module(SIMPLE)
        slow = HLSEngine(clock_mhz=150).synthesize(module, "simple")
        fast = HLSEngine(clock_mhz=300).synthesize(module, "simple")
        assert slow.latency_seconds == pytest.approx(
            2 * fast.latency_seconds
        )


class TestExecutorCrossCheck:
    def test_flop_counts_agree_on_simple_kernel(self):
        from repro.tensorpipe.codegen import count_flops

        _, module = _affine_module(SIMPLE)
        report = synthesize_kernel(module, "simple")
        assert report.flops == count_flops(module.lookup("simple"))
        assert report.flops == 32 * 2  # one mul nest + one add nest

    def test_flop_counts_agree_on_reduction(self):
        from repro.tensorpipe.codegen import count_flops

        _, module = _affine_module(REDUCTION)
        report = synthesize_kernel(module, "dotp")
        assert report.flops == count_flops(module.lookup("dotp"))

    def test_flop_counts_agree_on_fig3(self):
        from repro.tensorpipe.codegen import count_flops

        _, module = _affine_module(FIG3_MAJOR_ABSORBER)
        report = synthesize_kernel(module, "tau_major")
        assert report.flops > 0
        assert report.flops == count_flops(module.lookup("tau_major"))

    def test_cross_check_runs_and_reports(self):
        import numpy as np

        from repro.hls import cross_check_executor

        _, module = _affine_module(SIMPLE)
        report = synthesize_kernel(module, "simple")
        rng = np.random.default_rng(0)
        inputs = {"a": rng.normal(size=32), "b": rng.normal(size=32)}
        check = cross_check_executor(report, module, "simple", inputs)
        assert check.flops_match
        assert check.measured_seconds > 0.0
        assert check.estimated_seconds > 0.0
        assert check.effective_gflops >= 0.0
        assert "flops" in check.summary() and "ok" in check.summary()

    def test_cross_check_rejects_zero_runs(self):
        import numpy as np

        from repro.hls import cross_check_executor

        _, module = _affine_module(SIMPLE)
        report = synthesize_kernel(module, "simple")
        with pytest.raises(HLSError):
            cross_check_executor(report, module, "simple",
                                 {"a": np.zeros(32), "b": np.zeros(32)},
                                 runs=0)


class TestBackendEmission:
    def test_fsm_and_hw_emission_verify(self):
        _, module = _affine_module(SIMPLE)
        target = Module()
        engine = HLSEngine()
        fsm = engine.emit_fsm(module, "simple", target)
        hw = engine.emit_hw(module, "simple", target)
        verify(target)
        states = fsm.attr("states")
        assert states[0]["name"] == "idle"
        assert states[-1]["name"] == "done"
        ports = hw.attr("ports")
        assert {p["name"] for p in ports} >= {"a", "b", "c"}

    def test_fig5_backend_edges(self):
        from repro.dialects import lowering_for

        _, module = _affine_module(SIMPLE)
        fsm_module = lowering_for("affine", "fsm")(module)
        hw_module = lowering_for("affine", "hw")(module)
        verify(fsm_module)
        verify(hw_module)
        assert any(op.name == "fsm.machine" for op in fsm_module.body)
        assert any(op.name == "hw.module" for op in hw_module.body)
