"""Tests for platform models, Olympus generation, packing and PLM sharing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OlympusError, PlatformError
from repro.frontends.ekl import FIG3_MAJOR_ABSORBER, parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.hls import synthesize_kernel
from repro.olympus import (
    ArchConfig,
    BufferRequest,
    Field,
    OlympusGenerator,
    build_driver,
    generate_driver_source,
    pack_fields,
    pack_stream,
    peak_live_bytes,
    share_plm,
)
from repro.platforms import (
    LinkModel,
    MemoryChannelModel,
    PLMConfig,
    SimClock,
    XRTDevice,
    ZRLMPIFabric,
    alveo_u55c,
    alveo_u280,
    cloudfpga_node,
    device_by_name,
)
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine


@pytest.fixture(scope="module")
def rrtmg_report():
    kernel = parse_kernel(FIG3_MAJOR_ABSORBER)
    module = lower_teil_to_affine(
        lower_esn_to_teil(lower_ekl_to_esn(lower_kernel_to_ekl(kernel)))
    )
    return synthesize_kernel(module, "tau_major")


class TestDevices:
    def test_catalog(self):
        assert device_by_name("alveo-u55c").pcie_gbps == 16.0
        assert device_by_name("cloudfpga-ku060").is_network_attached
        with pytest.raises(PlatformError):
            device_by_name("virtex-2")

    def test_usable_resources_subtract_shell(self):
        device = alveo_u55c()
        assert device.usable_resources().lut < device.resources.lut

    def test_u280_has_two_memories(self):
        device = alveo_u280()
        assert set(device.memories) == {"hbm", "ddr"}
        assert device.default_memory().kind == "hbm"


class TestMemoryModels:
    def test_bandwidth_scales_with_lanes(self):
        model = MemoryChannelModel(alveo_u55c().default_memory())
        one = model.transfer(2**20, lanes=1)
        four = model.transfer(2**20, lanes=4)
        assert four.seconds < one.seconds

    def test_packing_efficiency_affects_time(self):
        model = MemoryChannelModel(alveo_u55c().default_memory())
        packed = model.transfer(2**20, payload_bits_per_beat=512)
        sparse = model.transfer(2**20, payload_bits_per_beat=64)
        assert packed.seconds < sparse.seconds
        assert sparse.bus_efficiency == pytest.approx(64 / 512)

    def test_plm_bram_accounting(self):
        plm = PLMConfig("buf", bytes=8 * 2304, banks=2,
                        double_buffered=True)
        assert plm.footprint_bytes == 16 * 2304
        assert plm.bram_blocks == 16
        assert plm.ports == 4


class TestZRLMPI:
    def test_send_recv_order_and_timing(self):
        fabric = ZRLMPIFabric(2, LinkModel(bandwidth_gbps=10))
        fabric.send(0, 1, "payload", 1500)
        assert fabric.recv(1) == "payload"
        assert fabric.clock[1] > 0
        assert fabric.sent_messages == 1

    def test_recv_without_message_deadlocks(self):
        fabric = ZRLMPIFabric(2)
        with pytest.raises(PlatformError):
            fabric.recv(1)

    def test_rank_bounds_checked(self):
        fabric = ZRLMPIFabric(2)
        with pytest.raises(PlatformError):
            fabric.send(0, 5, "x", 10)


class TestXRT:
    def test_full_flow(self, rrtmg_report):
        device = XRTDevice(alveo_u55c(), SimClock())
        from repro.platforms import KernelHandle

        device.load_xclbin("bits", {
            "k": KernelHandle("k", 30000, 300.0,
                              lambda a, b: float(a.sum())),
        })
        bo_in = device.alloc_bo(4096)
        device.write_bo(bo_in, np.ones(512))
        device.sync_bo_to_device(bo_in)
        bo_out = device.alloc_bo(4096)
        bo_out.device_data = np.zeros(1)
        bo_out.resident = True
        handle = device.run("k", bo_in, bo_out)
        assert handle.outputs == 512.0
        assert device.clock.now > 0.04  # includes programming time

    def test_launch_requires_resident_buffers(self):
        from repro.platforms import KernelHandle

        device = XRTDevice(alveo_u55c())
        device.load_xclbin("bits", {"k": KernelHandle("k", 10, 300.0)})
        bo = device.alloc_bo(64)
        with pytest.raises(PlatformError):
            device.run("k", bo)

    def test_network_attached_rejected(self):
        with pytest.raises(PlatformError):
            XRTDevice(cloudfpga_node())


class TestPacking:
    def test_fcd_record_packs_into_one_beat(self):
        plan = pack_fields([Field("lat", 32), Field("lon", 32),
                            Field("speed", 16), Field("ts", 64)], 512)
        assert plan.beats_per_record == 1
        assert plan.speedup_vs_naive == 4.0

    def test_wide_field_split(self):
        plan = pack_fields([Field("big", 1024 + 100)], 512)
        assert plan.beats_per_record == 3

    def test_stream_packing(self):
        per_beat, efficiency = pack_stream(64, 512)
        assert per_beat == 8
        assert efficiency == 1.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(1, 511), min_size=1, max_size=12))
    def test_packing_never_loses_bits(self, widths):
        fields = [Field(f"f{i}", w) for i, w in enumerate(widths)]
        plan = pack_fields(fields, 512)
        packed_bits = sum(w.used_bits() for w in plan.words)
        assert packed_bits == sum(widths)
        assert all(w.used_bits() <= 512 for w in plan.words)
        assert plan.beats_per_record <= plan.naive_words


class TestPLMSharing:
    def test_disjoint_lifetimes_share(self):
        alloc = share_plm([
            BufferRequest("a", 1000, 0, 1),
            BufferRequest("b", 1000, 2, 3),
        ])
        assert alloc.total_bytes == 1000
        assert alloc.saving == pytest.approx(0.5)

    def test_overlapping_lifetimes_do_not_overlap_addresses(self):
        requests = [
            BufferRequest("a", 600, 0, 2),
            BufferRequest("b", 500, 1, 3),
            BufferRequest("c", 400, 2, 4),
        ]
        alloc = share_plm(requests)
        by_name = {r.name: r for r in requests}
        for x in requests:
            for y in requests:
                if x.name >= y.name or not x.overlaps(y):
                    continue
                xa, xb = alloc.offsets[x.name], alloc.offsets[x.name] + x.bytes
                ya, yb = alloc.offsets[y.name], alloc.offsets[y.name] + y.bytes
                assert xb <= ya or yb <= xa, (x.name, y.name)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(1, 1000), st.integers(0, 5),
                  st.integers(0, 5)),
        min_size=1, max_size=10,
    ))
    def test_allocation_sound_and_bounded(self, raw):
        requests = [
            BufferRequest(f"b{i}", size, min(s, e), max(s, e))
            for i, (size, s, e) in enumerate(raw)
        ]
        alloc = share_plm(requests)
        assert alloc.total_bytes >= peak_live_bytes(requests)
        assert alloc.total_bytes <= alloc.unshared_bytes
        for x in requests:
            for y in requests:
                if x.name >= y.name or not x.overlaps(y):
                    continue
                xa = alloc.offsets[x.name]
                ya = alloc.offsets[y.name]
                assert xa + x.bytes <= ya or ya + y.bytes <= xa


class TestOlympus:
    def test_explore_produces_feasible_points(self, rrtmg_report):
        generator = OlympusGenerator(alveo_u55c())
        points = generator.explore(rrtmg_report)
        assert len(points) >= 8
        budget = alveo_u55c().usable_resources()
        for _, _, resources in points:
            assert resources.fits_in(budget)

    def test_replication_reduces_latency(self, rrtmg_report):
        generator = OlympusGenerator(alveo_u55c())
        one, _ = generator.estimate(rrtmg_report, ArchConfig(1, True, True))
        four, _ = generator.estimate(rrtmg_report, ArchConfig(4, True, True))
        assert four.total < one.total

    def test_double_buffering_helps(self, rrtmg_report):
        generator = OlympusGenerator(alveo_u55c())
        plain, _ = generator.estimate(rrtmg_report,
                                      ArchConfig(1, False, True))
        buffered, _ = generator.estimate(rrtmg_report,
                                         ArchConfig(1, True, True))
        assert buffered.total < plain.total

    def test_system_generation_and_ir(self, rrtmg_report):
        from repro.ir import verify

        generator = OlympusGenerator(alveo_u55c())
        system = generator.generate("sys", [rrtmg_report])
        assert system.fits()
        module = generator.emit_ir(system)
        verify(module)
        kernels = [op for op in module.walk()
                   if op.name == "olympus.kernel"]
        assert kernels[0].attr("callee") == "tau_major"

    def test_oversized_kernel_rejected(self, rrtmg_report):
        import dataclasses

        tiny = cloudfpga_node()
        huge = dataclasses.replace(rrtmg_report)
        huge.resources = rrtmg_report.resources.scaled(500)
        with pytest.raises(OlympusError):
            OlympusGenerator(tiny).generate("sys", [huge])

    def test_driver_source_and_execution(self, rrtmg_report):
        generator = OlympusGenerator(alveo_u55c())
        system = generator.generate("sys", [rrtmg_report])
        source = generate_driver_source(system)
        assert "load_xclbin" in source and "sync_bo_to_device" in source
        driver = build_driver(system, {"tau_major":
                                       lambda a, b: float(a.sum())})
        outputs, elapsed = driver({"tau_major": np.ones(64)})
        assert outputs["tau_major"] == 64.0
        assert elapsed > 0
