"""Tests for the PipelineSession compile-orchestration subsystem."""

import pytest

from repro.errors import EverestError, FrontendError, PipelineError
from repro.frontends.ekl import FIG3_MAJOR_ABSORBER
from repro.ir import print_module
from repro.pipeline import (
    PipelineSession,
    Stage,
    fingerprint,
    get_session,
    reset_session,
)

FORMATS = ["f64", "f32", "bf16", "fixed<8.8>", "posit<16,1>"]


class TestFingerprint:
    def test_deterministic_and_order_insensitive_for_dicts(self):
        a = fingerprint("hls", {"number_format": "f32", "clock_mhz": 300.0})
        b = fingerprint("hls", {"clock_mhz": 300.0, "number_format": "f32"})
        assert a == b

    def test_distinguishes_params(self):
        base = fingerprint("hls", {"number_format": None}, "k")
        other = fingerprint("hls", {"number_format": "f32"}, "k")
        assert base != other

    def test_distinguishes_upstream_keys(self):
        assert fingerprint("s", {}, "key1") != fingerprint("s", {}, "key2")

    def test_rejects_address_based_identity(self):
        class Opaque:  # default __str__/__repr__ print the address
            pass

        with pytest.raises(TypeError, match="fingerprint"):
            fingerprint("stage", {"param": Opaque()})

    def test_accepts_objects_with_deterministic_repr(self):
        from repro.numerics import make_format

        a = fingerprint(make_format("fixed<8.8>"))
        b = fingerprint(make_format("fixed<8.8>"))
        assert a == b


class TestStageCaching:
    def test_second_compile_hits_every_stage(self):
        session = PipelineSession()
        first = session.compile(FIG3_MAJOR_ABSORBER)
        misses = session.report.cache_misses
        second = session.compile(FIG3_MAJOR_ABSORBER)
        # All three stages (parse, lowering, hls) came from the cache.
        assert session.report.cache_misses == misses
        assert session.report.cache_hits >= 3
        assert second.report is first.report
        assert second.module is first.module

    def test_format_change_is_a_miss_for_hls_only(self):
        session = PipelineSession()
        session.compile(FIG3_MAJOR_ABSORBER)
        misses = session.report.cache_misses
        session.compile(FIG3_MAJOR_ABSORBER, number_format="f32")
        assert session.report.cache_misses == misses + 1  # the hls stage

    def test_explicit_f64_shares_default_cache_entry(self):
        session = PipelineSession()
        default = session.compile(FIG3_MAJOR_ABSORBER)
        misses = session.report.cache_misses
        explicit = session.compile(FIG3_MAJOR_ABSORBER, number_format="f64")
        assert session.report.cache_misses == misses
        assert explicit.report is default.report

    def test_cache_stats_exposed(self):
        session = PipelineSession()
        session.compile(FIG3_MAJOR_ABSORBER)
        session.compile(FIG3_MAJOR_ABSORBER)
        assert session.cache.stats.hits >= 3
        assert session.cache.stats.misses >= 3
        assert 0.0 < session.cache.stats.hit_rate < 1.0

    def test_distinct_sources_do_not_share_entries(self):
        session = PipelineSession()
        session.frontend(FIG3_MAJOR_ABSORBER)
        with pytest.raises(EverestError):
            session.frontend("kernel broken(x: [4]f64) -> {")
        # The failure did not poison the cache for the good kernel.
        misses = session.report.cache_misses
        session.frontend(FIG3_MAJOR_ABSORBER)
        assert session.report.cache_misses == misses


class TestSourceHandling:
    def test_path_accepted(self, tmp_path):
        source = tmp_path / "k.ekl"
        source.write_text(FIG3_MAJOR_ABSORBER)
        result = PipelineSession().lower(str(source))
        assert result.kernel.name == "tau_major"

    def test_missing_ekl_path_raises_file_not_found(self):
        with pytest.raises(FileNotFoundError):
            PipelineSession().lower("kernels/typo.ekl")

    def test_missing_path_any_extension_raises_file_not_found(self):
        # A whitespace-free one-liner cannot be a kernel: always a path.
        with pytest.raises(FileNotFoundError):
            PipelineSession().lower("kernels/typo.txt")

    def test_inline_text_accepted(self):
        result = PipelineSession().lower(FIG3_MAJOR_ABSORBER)
        assert result.kernel.name == "tau_major"


class TestCompileEquivalence:
    def test_matches_hand_chained_lowering(self):
        from repro.frontends.ekl import parse_kernel
        from repro.frontends.ekl.lower import (
            lower_ekl_to_esn,
            lower_kernel_to_ekl,
        )
        from repro.ir import FusionPass
        from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine

        kernel = parse_kernel(FIG3_MAJOR_ABSORBER)
        legacy = lower_teil_to_affine(
            lower_esn_to_teil(lower_ekl_to_esn(lower_kernel_to_ekl(kernel)))
        )
        # The session's canonicalize stage fuses elementwise chains
        # after canonicalization; mirror it for the equivalence check.
        FusionPass().run(legacy)
        result = PipelineSession().lower(FIG3_MAJOR_ABSORBER)
        assert print_module(result.module) == print_module(legacy)
        assert result.kernel.name == kernel.name

    def test_compile_report_matches_direct_synthesis(self):
        from repro.hls import synthesize_kernel

        session = PipelineSession()
        result = session.compile(FIG3_MAJOR_ABSORBER)
        direct = synthesize_kernel(result.module, result.kernel.name)
        assert result.report.total_cycles == direct.total_cycles
        assert result.report.resources.lut == direct.resources.lut


class TestParallelDSE:
    def test_format_sweep_parallel_matches_serial(self):
        parallel = PipelineSession().format_sweep(
            FIG3_MAJOR_ABSORBER, FORMATS, parallel=True)
        serial = PipelineSession().format_sweep(
            FIG3_MAJOR_ABSORBER, FORMATS, parallel=False)
        assert list(parallel) == list(serial) == FORMATS
        for spec in FORMATS:
            assert parallel[spec].total_cycles == serial[spec].total_cycles
            assert parallel[spec].resources.lut == serial[spec].resources.lut
            assert parallel[spec].number_format == serial[spec].number_format

    def test_olympus_parallel_matches_serial(self):
        par = PipelineSession().olympus(FIG3_MAJOR_ABSORBER, parallel=True)
        ser = PipelineSession().olympus(FIG3_MAJOR_ABSORBER, parallel=False)
        assert par.best.label() == ser.best.label()
        assert [(c.label(), b.total) for c, b, _ in par.points] \
            == [(c.label(), b.total) for c, b, _ in ser.points]

    def test_generator_explore_executor_matches_serial(self):
        from concurrent.futures import ThreadPoolExecutor

        from repro.olympus import OlympusGenerator
        from repro.platforms import alveo_u55c

        session = PipelineSession()
        report = session.compile(FIG3_MAJOR_ABSORBER).report
        generator = OlympusGenerator(alveo_u55c())
        serial = generator.explore(report)
        with ThreadPoolExecutor(max_workers=4) as pool:
            parallel = generator.explore(report, executor=pool)
        assert [(c.label(), b.total, r.lut) for c, b, r in serial] \
            == [(c.label(), b.total, r.lut) for c, b, r in parallel]

    def test_generator_explore_process_pool_matches_serial(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.olympus import OlympusGenerator
        from repro.platforms import alveo_u55c

        report = PipelineSession().compile(FIG3_MAJOR_ABSORBER).report
        generator = OlympusGenerator(alveo_u55c())
        serial = generator.explore(report)
        with ProcessPoolExecutor(max_workers=2) as pool:
            parallel = generator.explore(report, executor=pool)
        assert [(c.label(), b.total) for c, b, _ in serial] \
            == [(c.label(), b.total) for c, b, _ in parallel]

    def test_olympus_sweep_over_devices(self):
        results = PipelineSession().olympus_sweep(
            FIG3_MAJOR_ABSORBER, ["alveo-u55c", "alveo-u280"])
        assert list(results) == ["alveo-u55c", "alveo-u280"]
        for device, result in results.items():
            assert result.system.fits()
            assert result.device_name == device
        # Each sweep result carries its own stage key (distinct per
        # device) so downstream run_stage chaining cannot collide.
        keys = [result.key for result in results.values()]
        assert all(keys) and len(set(keys)) == len(keys)


class TestStageProtocol:
    def test_custom_stage_registration_and_run(self):
        session = PipelineSession()
        session.register("double", lambda payload: payload * 2,
                         description="toy stage")
        key, value = session.run_stage("double", 21, key="root")
        assert value == 42
        # Cached on the second run with the same upstream key.
        _, again = session.run_stage("double", 21, key="root")
        assert again == 42
        assert session.report.events[-1].cached

    def test_duplicate_stage_rejected(self):
        session = PipelineSession()
        with pytest.raises(PipelineError):
            session.register("hls", lambda payload: payload)
        session.register("hls", lambda payload: payload, replace=True)

    def test_replaced_stage_does_not_serve_stale_cache(self):
        session = PipelineSession()
        session.register("shout", lambda payload: payload.upper())
        _, first = session.run_stage("shout", "hi", key="root")
        assert first == "HI"
        session.register("shout", lambda payload: payload + "!",
                         replace=True)
        _, second = session.run_stage("shout", "hi", key="root")
        assert second == "hi!"  # re-ran, not the replaced stage's cache

    def test_unknown_stage_rejected(self):
        with pytest.raises(PipelineError):
            PipelineSession().run_stage("nope", None, key="root")

    def test_builtin_stage_names(self):
        names = PipelineSession().stages()
        for expected in ("frontend-parse", "dialect-lowering", "execute",
                         "hls", "olympus", "schedule"):
            assert expected in names


class TestExecuteStage:
    SOURCE = """
    kernel scaled {
      index i: 6
      input a[i]: f64
      output y
      y = a * 3.0 + 1.0
    }
    """

    def test_execute_runs_and_matches_interpreter(self):
        import numpy as np

        session = PipelineSession()
        inputs = {"a": np.arange(6.0)}
        result = session.execute(self.SOURCE, inputs)
        assert result.backend == "compiled"
        reference = session.execute(self.SOURCE, inputs,
                                    backend="interpreter")
        assert reference.backend == "interpreter"
        np.testing.assert_array_equal(result.outputs["y"],
                                      reference.outputs["y"])
        np.testing.assert_array_equal(result.outputs["y"],
                                      np.arange(6.0) * 3.0 + 1.0)

    def test_compilation_cached_across_runs(self):
        import numpy as np

        session = PipelineSession()
        session.execute(self.SOURCE, {"a": np.zeros(6)})
        hits_before = session.cache.stats.hits
        result = session.execute(self.SOURCE, {"a": np.ones(6)})
        assert session.cache.stats.hits > hits_before
        np.testing.assert_array_equal(result.outputs["y"], np.full(6, 4.0))

    def test_run_time_recorded_as_aux_event(self):
        import numpy as np

        session = PipelineSession()
        session.execute(self.SOURCE, {"a": np.zeros(6)})
        names = [event.stage for event in session.report.events]
        assert "execute" in names and "execute/run" in names

    def test_backend_selects_distinct_cache_entries(self):
        import numpy as np

        session = PipelineSession()
        compiled = session.execute(self.SOURCE, {"a": np.zeros(6)})
        interp = session.execute(self.SOURCE, {"a": np.zeros(6)},
                                 backend="interpreter")
        assert compiled.key != interp.key


class TestFailurePropagation:
    def test_frontend_error_propagates(self):
        with pytest.raises(FrontendError):
            PipelineSession().compile("kernel broken(x: [4]f64) -> {")

    def test_stage_valueerror_wrapped_as_pipeline_error(self):
        session = PipelineSession()

        def explode(payload):
            raise ValueError("boom")

        session.register("explode", explode)
        with pytest.raises(PipelineError, match="explode"):
            session.run_stage("explode", None, key="root")

    def test_failed_stage_not_cached(self):
        session = PipelineSession()
        calls = []

        def flaky(payload):
            calls.append(payload)
            raise ValueError("boom")

        session.register("flaky", flaky)
        for _ in range(2):
            with pytest.raises(PipelineError):
                session.run_stage("flaky", 1, key="root")
        assert len(calls) == 2  # re-executed, not served from cache

    def test_schedule_without_system_rejected(self):
        from repro.pipeline import OlympusResult

        session = PipelineSession()
        with pytest.raises(PipelineError):
            session.run_stage("schedule", OlympusResult("alveo-u55c"),
                              key="root")


class TestDeploy:
    def test_end_to_end_deploy(self):
        session = PipelineSession()
        plan = session.deploy(FIG3_MAJOR_ABSORBER, nodes=2)
        assert plan.schedule.makespan > 0
        assert plan.cluster_nodes == 2
        assert any(op.name == "func.func"
                   for op in plan.deployment_ir.body)

    def test_report_summary_mentions_stages(self):
        session = PipelineSession()
        session.compile(FIG3_MAJOR_ABSORBER)
        summary = session.report.summary()
        for stage in ("frontend-parse", "dialect-lowering", "canonicalize",
                      "hls"):
            assert stage in summary
        as_dict = session.report.as_dict()
        assert as_dict["cache_misses"] == 4
        primary = [e for e in as_dict["events"] if not e["aux"]]
        assert len(primary) == 4
        # The canonicalize stage surfaces its per-pass timings as aux events.
        assert any(e["stage"].startswith("canonicalize/")
                   for e in as_dict["events"])


class TestGlobalSession:
    def test_get_session_is_singleton(self):
        reset_session()
        try:
            assert get_session() is get_session()
        finally:
            reset_session()

    def test_cli_reuses_session_cache(self, tmp_path, capsys):
        from repro.basecamp.cli import main

        reset_session()
        try:
            source = tmp_path / "k.ekl"
            source.write_text(FIG3_MAJOR_ABSORBER)
            assert main(["compile", str(source)]) == 0
            session = get_session()
            misses = session.report.cache_misses
            assert main(["synthesize", str(source)]) == 0
            # Same kernel, same (default) format: fully cache-served.
            assert session.report.cache_misses == misses
            assert main(["olympus", str(source)]) == 0
            capsys.readouterr()
        finally:
            reset_session()

    def test_cli_nonzero_exit_on_everest_error(self, tmp_path, capsys):
        from repro.basecamp.cli import main

        source = tmp_path / "bad.ekl"
        source.write_text("kernel broken(x: [4]f64) -> {")
        assert main(["compile", str(source)]) == 1
        assert "error" in capsys.readouterr().err

    def test_cli_pipeline_subcommand(self, tmp_path, capsys):
        from repro.basecamp.cli import main

        reset_session()
        try:
            source = tmp_path / "k.ekl"
            source.write_text(FIG3_MAJOR_ABSORBER)
            assert main(["pipeline", str(source), "--nodes", "2"]) == 0
            out = capsys.readouterr().out
            assert "makespan" in out
            assert "schedule" in out
        finally:
            reset_session()


class TestConcurrency:
    """Regression tests for the multi-tenant (basecamp serve) fixes."""

    def _session_with_gate(self):
        """A session plus a cacheable stage that blocks until released."""
        import threading

        session = PipelineSession(register_builtins=False)
        calls = []
        entered = threading.Event()
        release = threading.Event()

        def gated(payload):
            calls.append(payload)
            if payload == "block":
                entered.set()
                assert release.wait(timeout=10)
            return ("result", payload)

        session.register("gated", gated)
        return session, calls, entered, release

    def test_single_flight_executes_stage_exactly_once(self):
        import threading
        import time

        session, calls, entered, release = self._session_with_gate()
        results = []

        def run():
            results.append(
                session.run_stage("gated", "block", key="k")[1])

        threads = [threading.Thread(target=run) for _ in range(6)]
        for t in threads:
            t.start()
        assert entered.wait(timeout=10)
        # Every non-leader must be parked on the leader's flight before
        # the leader is released — then dedup is deterministic.
        deadline = time.monotonic() + 10
        while session.singleflight.waits < 5:
            assert time.monotonic() < deadline
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert calls == ["block"]
        assert results == [("result", "block")] * 6
        assert session.singleflight.waits == 5
        assert session.singleflight.leaders == 1

    def test_distinct_keys_do_not_block_each_other(self):
        import threading

        session, calls, entered, release = self._session_with_gate()
        blocker = threading.Thread(
            target=session.run_stage, args=("gated", "block"),
            kwargs={"key": "kb"})
        blocker.start()
        assert entered.wait(timeout=10)
        # A different kernel compiles to completion while the first is
        # still executing.
        key, value = session.run_stage("gated", "fast", key="kf")
        assert value == ("result", "fast")
        release.set()
        blocker.join(timeout=10)
        assert sorted(calls) == ["block", "fast"]

    def test_leader_failure_propagates_and_is_not_cached(self):
        import threading
        import time

        session = PipelineSession(register_builtins=False)
        attempts = []
        entered = threading.Event()
        release = threading.Event()

        def flaky(payload):
            attempts.append(payload)
            if len(attempts) == 1:
                entered.set()
                assert release.wait(timeout=10)
                raise EverestError("first caller fails")
            return "ok"

        session.register("flaky", flaky)
        errors = []

        def waiter():
            try:
                session.run_stage("flaky", "p", key="k")
            except EverestError as error:
                errors.append(str(error))

        leader = threading.Thread(target=waiter)
        leader.start()
        assert entered.wait(timeout=10)
        follower = threading.Thread(target=waiter)
        follower.start()
        deadline = time.monotonic() + 10
        while session.singleflight.waits < 1:
            assert time.monotonic() < deadline
        release.set()
        leader.join(timeout=10)
        follower.join(timeout=10)
        assert errors == ["first caller fails"] * 2
        # The failure was not cached and the flight slot was released:
        # the next caller retries and succeeds.
        _, value = session.run_stage("flaky", "p", key="k")
        assert value == "ok"
        assert len(attempts) == 2

    def test_concurrent_compiles_share_one_stage_execution(self):
        import threading

        session = PipelineSession()
        barrier = threading.Barrier(6)
        results = []

        def compile_one():
            barrier.wait()
            results.append(session.compile(FIG3_MAJOR_ABSORBER))

        threads = [threading.Thread(target=compile_one) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(results) == 6
        # Exactly one execution per stage (single-flight or cache hit);
        # every caller sees the identical cached report object.
        executed = [e.stage for e in session.report.events
                    if not e.cached and not e.aux]
        assert sorted(executed) == sorted(set(executed))
        assert executed.count("hls") == 1
        first = results[0]
        assert all(r.report is first.report for r in results)
        assert all(r.key == first.key for r in results)
        # ... but each caller owns its CompileResult wrapper.
        assert len({id(r) for r in results}) == 6

    def test_get_session_concurrent_first_callers_share_one(
            self, monkeypatch):
        import threading
        import time

        from repro.pipeline import session as session_mod

        class SlowInit(session_mod.PipelineSession):
            def __init__(self):
                time.sleep(0.05)  # widen the check-then-set window
                super().__init__()

        monkeypatch.setattr(session_mod, "PipelineSession", SlowInit)
        reset_session()
        try:
            sessions = []
            barrier = threading.Barrier(4)

            def grab():
                barrier.wait()
                sessions.append(session_mod.get_session())

            threads = [threading.Thread(target=grab) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=10)
            assert len(sessions) == 4
            assert len({id(s) for s in sessions}) == 1
        finally:
            reset_session()

    def test_olympus_returns_per_call_copies(self):
        session = PipelineSession()
        first = session.olympus(FIG3_MAJOR_ABSORBER)
        second = session.olympus(FIG3_MAJOR_ABSORBER)  # cache hit
        assert first is not second
        # Mutating one caller's view must not leak into another's.
        first.key = "mutated-by-tenant-a"
        assert second.key != "mutated-by-tenant-a"
        third = session.olympus(FIG3_MAJOR_ABSORBER)
        assert third.key == second.key

    def test_olympus_sweep_returns_per_call_copies(self):
        session = PipelineSession()
        devices = ["alveo-u55c"]
        first = session.olympus_sweep(FIG3_MAJOR_ABSORBER, devices,
                                      parallel=False)
        second = session.olympus_sweep(FIG3_MAJOR_ABSORBER, devices,
                                       parallel=False)
        a, b = first["alveo-u55c"], second["alveo-u55c"]
        assert a is not b
        a.key = "mutated"
        assert b.key != "mutated"
