"""Tests for the virtualized runtime: scheduling, failures, SR-IOV."""

import numpy as np
import pytest

from repro.errors import RuntimeSchedulingError, VirtualizationError
from repro.platforms import alveo_u55c
from repro.runtime import (
    Cluster,
    ClusterMonitor,
    EverestClient,
    HEFTScheduler,
    Node,
    ResourceRequest,
    RoundRobinScheduler,
    default_cluster,
    reschedule_after_failure,
)
from repro.runtime.virtualization import (
    EMULATED_OVERHEAD,
    SRIOV_OVERHEAD,
    Hypervisor,
    LibvirtDaemon,
    PhysicalFunction,
    VFManager,
)


def _diamond_graph(client):
    a = client.submit(lambda: 1, name="a",
                      resources=ResourceRequest(cpu_flops=1e9))
    b = client.submit(lambda x: x + 1, a, name="b",
                      resources=ResourceRequest(cpu_flops=4e9))
    c = client.submit(lambda x: x * 2, a, name="c",
                      resources=ResourceRequest(cpu_flops=4e9))
    d = client.submit(lambda x, y: x + y, b, c, name="d",
                      resources=ResourceRequest(cpu_flops=1e9))
    return d


class TestTaskGraph:
    def test_functional_results(self):
        client = EverestClient(default_cluster(2))
        d = _diamond_graph(client)
        client.compute()
        assert d.result() == (1 + 1) + (1 * 2)

    def test_result_before_compute_rejected(self):
        client = EverestClient(default_cluster(1))
        future = client.submit(lambda: 1)
        with pytest.raises(RuntimeSchedulingError):
            future.result()

    def test_cycle_detection(self):
        client = EverestClient(default_cluster(1))
        a = client.submit(lambda x: x, 1)
        client.graph.tasks[a.task_id].deps.append(a.task_id)
        with pytest.raises(RuntimeSchedulingError):
            client.compute()


class TestScheduling:
    def test_dependencies_respected_in_time(self):
        client = EverestClient(default_cluster(3))
        _diamond_graph(client)
        schedule = client.compute()
        placements = schedule.placements
        tasks = client.graph.tasks
        for task in tasks.values():
            for dep in task.deps:
                assert placements[dep].finish \
                    <= placements[task.task_id].start + 1e-12

    def test_fpga_task_placed_on_fpga_node(self):
        cluster = Cluster([Node("cpu0", fpgas=[]),
                           Node("acc0", fpgas=[alveo_u55c()])])
        client = EverestClient(cluster)
        f = client.submit(lambda: 0,
                          resources=ResourceRequest(fpga=True,
                                                    fpga_seconds=1e-3))
        schedule = client.compute()
        assert schedule.placements[f.task_id].node == "acc0"

    def test_fpga_without_node_rejected(self):
        cluster = Cluster([Node("cpu0", fpgas=[])])
        client = EverestClient(cluster)
        client.submit(lambda: 0, resources=ResourceRequest(fpga=True))
        with pytest.raises(RuntimeSchedulingError):
            client.compute()

    def test_heft_not_worse_than_round_robin(self):
        cluster = default_cluster(4)
        client = EverestClient(cluster)
        rng = np.random.default_rng(0)
        layer = [client.submit(lambda i=i: i, name=f"src{i}",
                               resources=ResourceRequest(
                                   cpu_flops=float(rng.uniform(1e9, 4e10)),
                                   cores=int(rng.integers(1, 8))))
                 for i in range(16)]
        for i in range(8):
            client.submit(lambda x, y: 0, layer[2 * i], layer[2 * i + 1],
                          resources=ResourceRequest(cpu_flops=2e10))
        heft = HEFTScheduler().schedule(client.graph, cluster)
        rr = RoundRobinScheduler().schedule(client.graph, cluster)
        assert heft.makespan <= rr.makespan * 1.05

    def test_core_capacity_never_exceeded(self):
        cluster = default_cluster(2)
        client = EverestClient(cluster)
        for i in range(20):
            client.submit(lambda: 0, name=f"t{i}",
                          resources=ResourceRequest(cores=16,
                                                    cpu_flops=1e10))
        schedule = client.compute()
        for node_name, node in cluster.nodes.items():
            events = [p for p in schedule.placements.values()
                      if p.node == node_name]
            times = sorted({p.start for p in events})
            for t in times:
                used = sum(p.cores for p in events
                           if p.start <= t < p.finish)
                assert used <= node.cores


class TestFailureRecovery:
    def test_lost_tasks_rescheduled_off_failed_node(self):
        cluster = default_cluster(3)
        client = EverestClient(cluster)
        _diamond_graph(client)
        schedule = client.compute()
        victim = next(iter(schedule.node_busy_seconds()))
        fail_time = schedule.makespan * 0.25
        repaired = reschedule_after_failure(
            client.graph, cluster, schedule, victim, fail_time
        )
        for placement in repaired.placements.values():
            if placement.node == victim:
                assert placement.finish <= fail_time
        assert repaired.makespan >= schedule.makespan * 0.5
        assert cluster.node(victim).alive  # restored afterwards


class TestMonitor:
    def test_utilization_normalized_by_cores(self):
        cluster = default_cluster(2)
        client = EverestClient(cluster)
        client.submit(lambda: 0,
                      resources=ResourceRequest(cores=32, cpu_flops=1e10))
        schedule = client.compute()
        report = ClusterMonitor(cluster).utilization(schedule)
        assert max(report.utilization.values()) <= 1.0 + 1e-9

    def test_dead_node_detection(self):
        cluster = default_cluster(2)
        monitor = ClusterMonitor(cluster)
        monitor.record_heartbeat("node0", 100.0)
        monitor.record_heartbeat("node1", 10.0)
        assert monitor.dead_nodes(now=100.0) == ["node1"]
        cluster.fail_node("node0")
        assert "node0" in monitor.dead_nodes(now=100.0)


class TestSRIOV:
    def test_vf_assignment_exclusive(self):
        pf = PhysicalFunction(alveo_u55c(), max_vfs=2)
        manager = VFManager()
        manager.plug(pf.vf(0), "vm0")
        with pytest.raises(VirtualizationError):
            manager.plug(pf.vf(0), "vm1")

    def test_rebalance_satisfies_demands(self):
        pfs = [PhysicalFunction(alveo_u55c(), max_vfs=4)]
        manager = VFManager()
        manager.rebalance(pfs, {"vm0": 2, "vm1": 1})
        held = {}
        for vf in pfs[0].vfs:
            if vf.assigned_vm:
                held[vf.assigned_vm] = held.get(vf.assigned_vm, 0) + 1
        assert held == {"vm0": 2, "vm1": 1}
        # Shrink vm0, grow vm1: dynamic plug/unplug.
        events = manager.rebalance(pfs, {"vm0": 0, "vm1": 3})
        assert any(e.action == "unplug" for e in events)
        assert any(e.action == "plug" for e in events)

    def test_overdemand_rejected(self):
        pfs = [PhysicalFunction(alveo_u55c(), max_vfs=2)]
        with pytest.raises(VirtualizationError):
            VFManager().rebalance(pfs, {"vm0": 5})

    def test_overheads_ordered(self):
        assert 1.0 < SRIOV_OVERHEAD < 1.1 < EMULATED_OVERHEAD


class TestHypervisorAndLibvirt:
    def _daemon(self):
        pf = PhysicalFunction(alveo_u55c(), max_vfs=2)
        hv = Hypervisor("node0", cores=32, memory_mb=65536, pfs=[pf])
        return LibvirtDaemon(hv)

    def test_vm_lifecycle(self):
        daemon = self._daemon()
        daemon.defineXML("vm0", vcpus=8, memory_mb=8192)
        daemon.create("vm0")
        assert daemon.getInfo().running_vms == 1
        daemon.shutdown("vm0")
        daemon.undefine("vm0")
        assert daemon.listAllDomains() == []

    def test_attach_detach_device(self):
        daemon = self._daemon()
        daemon.defineXML("vm0", vcpus=4, memory_mb=4096)
        daemon.create("vm0")
        vf = daemon.attachDevice("vm0")
        assert daemon.lookupByName("vm0").has_accelerator()
        assert daemon.getInfo().free_vfs == 1
        daemon.detachDevice("vm0", vf)
        assert daemon.getInfo().free_vfs == 2

    def test_shutdown_with_vfs_rejected(self):
        daemon = self._daemon()
        daemon.defineXML("vm0", vcpus=4, memory_mb=4096)
        daemon.create("vm0")
        daemon.attachDevice("vm0")
        with pytest.raises(VirtualizationError):
            daemon.shutdown("vm0")

    def test_memory_overcommit_rejected(self):
        daemon = self._daemon()
        daemon.defineXML("vm0", vcpus=4, memory_mb=60000)
        with pytest.raises(VirtualizationError):
            daemon.defineXML("vm1", vcpus=4, memory_mb=60000)

    def test_io_mode_overheads(self):
        daemon = self._daemon()
        sriov = daemon.defineXML("vm0", 2, 2048, io_mode="sriov")
        emulated = daemon.defineXML("vm1", 2, 2048, io_mode="emulated")
        assert sriov.accelerator_overhead() \
            < emulated.accelerator_overhead()
