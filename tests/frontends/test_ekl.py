"""Tests for the EVEREST Kernel Language: parsing, semantics, Fig. 3."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FrontendError, OwnershipError, TypeCheckError
from repro.frontends.ekl import (
    FIG3_MAJOR_ABSORBER,
    Interpreter,
    parse_kernel,
)
from repro.frontends.ekl.axes import fresh_anon, ordered_union, plan_subscript


def _run(source, **inputs):
    kernel = parse_kernel(source)
    return Interpreter(kernel).run(inputs)


class TestParsing:
    def test_minimal_kernel(self):
        k = parse_kernel("""
        kernel k {
          index i: 4
          input a[i]: f64
          output b
          b = a + 1.0
        }
        """)
        assert k.name == "k"
        assert k.input_names() == ("a",)
        assert k.output_names() == ("b",)

    def test_missing_output_rejected(self):
        with pytest.raises(FrontendError):
            parse_kernel("kernel k {\n index i: 2\n}")

    def test_statements_newline_terminated(self):
        k = parse_kernel(
            "kernel k { \n index i: 2\n input a[i]: f64\n output c\n"
            " c = (a\n   + a)\n }"
        )
        assert len(k.body) == 1

    def test_semicolons_accepted(self):
        k = parse_kernel(
            "kernel k { index i: 2; input a[i]: f64; output c; c = a * a; }"
        )
        assert len(k.body) == 1

    def test_unknown_character_reported_with_position(self):
        with pytest.raises(FrontendError) as err:
            parse_kernel("kernel k {\n  c = a @ b\n}")
        assert err.value.line == 2


class TestSemantics:
    def test_elementwise_broadcasting_by_name(self):
        out = _run("""
        kernel k {
          index i: 3, j: 2
          input a[i]: f64
          input b[j]: f64
          output c
          c = a * b
        }
        """, a=[1.0, 2.0, 3.0], b=[10.0, 100.0])
        np.testing.assert_array_equal(
            out["c"], np.outer([1, 2, 3], [10, 100])
        )

    def test_sum_reduction(self):
        out = _run("""
        kernel k {
          index i: 4
          input a[i]: f64
          output s
          s = sum[i](a * a)
        }
        """, a=[1.0, 2.0, 3.0, 4.0])
        assert out["s"] == 30.0

    def test_select(self):
        out = _run("""
        kernel k {
          index i: 4
          input a[i]: f64
          output c
          c = select(a >= 2.0, a, 0.0 - a)
        }
        """, a=[1.0, 2.0, 3.0, 0.5])
        np.testing.assert_array_equal(out["c"], [-1.0, 2.0, 3.0, -0.5])

    def test_subscripted_subscripts(self):
        out = _run("""
        kernel k {
          index i: 3
          input idx[i]: i64
          input table[8]: f64
          output c
          c = table[idx]
        }
        """, idx=[0, 3, 7], table=np.arange(8.0) * 10)
        np.testing.assert_array_equal(out["c"], [0.0, 30.0, 70.0])

    def test_stack_and_bind(self):
        out = _run("""
        kernel k {
          index i: 3, t: 2
          input a[i]: i64
          input table[8]: f64
          output c
          s = [a, a + 1]
          c = table[s[i, t]]
        }
        """, a=[0, 2, 4], table=np.arange(8.0))
        np.testing.assert_array_equal(out["c"],
                                      [[0, 1], [2, 3], [4, 5]])

    def test_index_reassociation_on_target(self):
        out = _run("""
        kernel k {
          index i: 2, j: 3
          input a[i]: f64
          input b[j]: f64
          output c
          c[j, i] = a * b
        }
        """, a=[1.0, 2.0], b=[1.0, 10.0, 100.0])
        assert out["c"].shape == (3, 2)

    def test_out_of_bounds_subscript_rejected(self):
        with pytest.raises(FrontendError):
            _run("""
            kernel k {
              index i: 3
              input idx[i]: i64
              input table[4]: f64
              output c
              c = table[idx]
            }
            """, idx=[0, 1, 9], table=np.zeros(4))

    def test_unbound_stack_axis_rejected(self):
        with pytest.raises(TypeCheckError):
            _run("""
            kernel k {
              index i: 2
              input a[i]: f64
              output c
              s = [a, a]
              c = s + 1.0
            }
            """, a=[1.0, 2.0])

    def test_sum_over_missing_index_rejected(self):
        with pytest.raises(TypeCheckError):
            _run("""
            kernel k {
              index i: 2, j: 2
              input a[i]: f64
              output c
              c = sum[j](a)
            }
            """, a=[1.0, 2.0])

    def test_assign_to_input_rejected(self):
        with pytest.raises(TypeCheckError):
            _run("""
            kernel k {
              index i: 2
              input a[i]: f64
              output a2
              a = a + 1.0
              a2 = a
            }
            """, a=[1.0, 2.0])

    def test_wrong_input_shape_rejected(self):
        with pytest.raises(FrontendError):
            _run("""
            kernel k {
              index i: 4
              input a[i]: f64
              output c
              c = a
            }
            """, a=[1.0, 2.0])

    def test_intrinsics(self):
        out = _run("""
        kernel k {
          index i: 3
          input a[i]: f64
          output c
          c = sqrt(abs(a)) + max(a, 0.0)
        }
        """, a=[4.0, -9.0, 0.0])
        np.testing.assert_allclose(out["c"], [2 + 4, 3 + 0, 0])


class TestFig3:
    def _inputs(self, seed=42):
        rng = np.random.default_rng(seed)
        return dict(
            press=rng.uniform(0.1, 1.0, 16),
            strato=np.asarray(0.4),
            bnd=np.asarray(3),
            bnd_to_flav=rng.integers(0, 14, (2, 14)),
            j_T=rng.integers(0, 7, 16),
            j_p=rng.integers(0, 6, 16),
            j_eta=rng.integers(0, 3, (14, 16, 2)),
            r_mix=rng.uniform(0.5, 1.5, (14, 16, 2)),
            f_major=rng.uniform(0.0, 1.0, (14, 16, 2, 2, 2)),
            k_major=rng.uniform(0.0, 2.0, (8, 8, 4, 16)),
        )

    def test_fig3_parses(self):
        kernel = parse_kernel(FIG3_MAJOR_ABSORBER)
        assert kernel.name == "tau_major"
        assert "tau_abs" in kernel.output_names()

    def test_fig3_matches_loop_reference(self):
        from repro.apps.wrf.rrtmg import tau_major_reference

        inputs = self._inputs()
        kernel = parse_kernel(FIG3_MAJOR_ABSORBER)
        interp = Interpreter(kernel)
        got = interp.run(inputs)["tau_abs"]
        assert interp.output_axes("tau_abs") == ("x", "g")
        np.testing.assert_allclose(got, tau_major_reference(inputs))

    def test_fig3_loc_vs_fortran(self):
        """The paper: the Fig. 3 snippet replaces ~200 lines of Fortran."""
        body_lines = [
            line for line in FIG3_MAJOR_ABSORBER.splitlines()
            if line.strip() and not line.strip().startswith(("kernel", "}",
                                                             "const",
                                                             "index",
                                                             "input",
                                                             "output"))
        ]
        assert len(body_lines) <= 12


class TestAxisRules:
    def test_ordered_union_keeps_first_appearance(self):
        assert ordered_union([["x", "t"], ["p", "x"]]) == ["x", "t", "p"]

    def test_plain_index_reassociates(self):
        plan = plan_subscript(("x", "y"), ["y", "x"], [["y"], ["x"]])
        assert plan.binding == [1, 0]

    def test_anonymous_axes_bound_first(self):
        anon = fresh_anon()
        plan = plan_subscript(("x", "p", anon), ["x", None],
                              [["x"], ["e"]])
        # x re-associates; the remaining expr binds the anon axis; p free.
        assert plan.binding[0] == 0
        assert plan.binding[2] == 1
        assert plan.binding[1] is None
        assert plan.result_axes == ["x", "p", "e"]

    def test_too_many_subscripts_rejected(self):
        with pytest.raises(TypeCheckError):
            plan_subscript(("x",), [None, None], [[], []])

    def test_unbound_anon_rejected(self):
        with pytest.raises(TypeCheckError):
            plan_subscript(("x", fresh_anon()), ["x"], [["x"]])

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=4,
                    unique=True))
    def test_identity_subscript_preserves_axes(self, labels):
        plan = plan_subscript(tuple(labels), list(labels),
                              [[l] for l in labels])
        assert plan.result_axes == list(labels)
        assert plan.binding == list(range(len(labels)))
