"""Tests for CFDlang and the ONNX-like frontend."""

import numpy as np
import pytest

from repro.errors import FrontendError, TypeCheckError
from repro.frontends.cfdlang import (
    lower_cfdlang_to_teil,
    lower_program_to_cfdlang,
    parse_program,
    run_program,
)
from repro.frontends.onnx_front import (
    Model,
    example_cnn,
    lower_jabbah_to_dfg,
    lower_model_to_jabbah,
)
from repro.ir import verify
from repro.tensorpipe import lower_teil_to_affine
from repro.tensorpipe.affine_interp import run_affine


class TestCFDlangInterp:
    def test_matrix_vector_contraction(self):
        program = parse_program("""
        var input A : [4 5]
        var input x : [5]
        var output y : [4]
        y = (A # x) . [[2 3]]
        """)
        rng = np.random.default_rng(0)
        A, x = rng.normal(size=(4, 5)), rng.normal(size=5)
        out = run_program(program, {"A": A, "x": x})
        np.testing.assert_allclose(out["y"], A @ x)

    def test_elementwise_ops(self):
        program = parse_program("""
        var input a : [3]
        var input b : [3]
        var output c : [3]
        c = a * b + a
        """)
        out = run_program(program, {"a": [1, 2, 3], "b": [4, 5, 6]})
        np.testing.assert_allclose(out["c"], [5, 12, 21])

    def test_trace(self):
        program = parse_program("""
        var input M : [3 3]
        var output t : []
        t = M . [[1 2]]
        """)
        M = np.arange(9.0).reshape(3, 3)
        out = run_program(program, {"M": M})
        assert out["t"] == np.trace(M)

    def test_shape_mismatch_rejected(self):
        program = parse_program("""
        var input a : [3]
        var output c : [4]
        c = a
        """)
        with pytest.raises(TypeCheckError):
            run_program(program, {"a": [1, 2, 3]})

    def test_contraction_unequal_extents_rejected(self):
        program = parse_program("""
        var input A : [3 4]
        var output t : []
        t = A . [[1 2]]
        """)
        with pytest.raises(TypeCheckError):
            run_program(program, {"A": np.zeros((3, 4))})


class TestCFDlangCompiled:
    def test_compiled_path_matches_interpreter(self):
        source = """
        var input A : [4 5]
        var input x : [5]
        var output y : [4]
        y = (A # x) . [[2 3]]
        """
        program = parse_program(source)
        rng = np.random.default_rng(1)
        inputs = {"A": rng.normal(size=(4, 5)), "x": rng.normal(size=5)}
        expected = run_program(program, inputs)["y"]
        m1 = lower_program_to_cfdlang(program, "mv")
        verify(m1)
        m2 = lower_cfdlang_to_teil(m1)
        verify(m2)
        m3 = lower_teil_to_affine(m2)
        verify(m3)
        got = run_affine(m3, "mv", inputs)["y"]
        np.testing.assert_allclose(got, expected)
        # The compiled executor must agree with the interpreter
        # bit-for-bit (including the diagonal loads contractions emit).
        from repro.tensorpipe.codegen import compile_affine

        compiled = compile_affine(m3, "mv")
        assert compiled.backend == "compiled"
        np.testing.assert_array_equal(compiled.run(inputs)["y"], got)


class TestONNXFrontend:
    def test_example_cnn_forward_shape(self):
        model = example_cnn()
        out = model.forward(np.zeros(model.input_shape))
        assert out.shape == model.output_shape()

    def test_macs_accounting(self):
        model = example_cnn()
        assert model.total_macs() == sum(
            model.layer_macs(i) for i in range(len(model.layers))
        )
        # conv layers dominate a CNN's MACs
        conv_macs = sum(model.layer_macs(i)
                        for i, l in enumerate(model.layers)
                        if l.kind == "conv2d")
        assert conv_macs > model.total_macs() * 0.5

    def test_dense_requires_flatten(self):
        rng = np.random.default_rng(0)
        model = Model("bad", (1, 8, 8))
        with pytest.raises(FrontendError):
            model.dense(4, rng)

    def test_wrong_input_shape_rejected(self):
        model = example_cnn()
        with pytest.raises(FrontendError):
            model.forward(np.zeros((3, 3)))

    def test_relu_and_pool_semantics(self):
        rng = np.random.default_rng(0)
        model = Model("m", (1, 4, 4))
        model.relu().maxpool2()
        x = np.arange(16.0).reshape(1, 4, 4) - 8
        out = model.forward(x)
        assert out.shape == (1, 2, 2)
        assert out.min() >= 0.0

    def test_jabbah_lowering_verifies(self):
        module = lower_model_to_jabbah(example_cnn())
        verify(module)
        graph = module.lookup("traffic_speed_cnn")
        ops = [op for op in graph.regions[0].entry
               if op.name == "jabbah.op"]
        assert len(ops) == len(example_cnn().layers)

    def test_jabbah_to_dfg_edge(self):
        module = lower_jabbah_to_dfg(lower_model_to_jabbah(example_cnn()))
        verify(module)
        graph = module.lookup("traffic_speed_cnn")
        assert graph.name == "dfg.graph"
