"""Tests for ConDRust: parsing, ownership, dfg lowering, execution, Fig. 4."""

import pytest

from repro.errors import FrontendError, OwnershipError
from repro.frontends.condrust import (
    FIG4_MAP_MATCHING,
    DataflowExecutor,
    check_ownership,
    lower_program_to_dfg,
    parse_program,
)
from repro.ir import verify


class TestParsing:
    def test_fig4_parses_verbatim(self):
        program = parse_program(FIG4_MAP_MATCHING)
        fn = program.function("match_one")
        assert [p.name for p in fn.params] == ["gv", "mapcell"]
        assert fn.return_type == "RoadSpeedVector"
        assert [s.name for s in fn.body] == ["cv", "t", "rsvbb"]

    def test_fig4_kernel_attribute(self):
        fn = parse_program(FIG4_MAP_MATCHING).function("match_one")
        attr = fn.body[0].attr
        assert attr is not None
        assert attr.offloaded is True
        assert attr.params["multiplicity"] == [1, 1, 1, 1]
        assert attr.params["path"] == "projection.cpp"

    def test_tail_expression_required(self):
        with pytest.raises(OwnershipError):
            lower_program_to_dfg(parse_program(
                "fn f(a: T) -> T { let b: T = g(a); }"
            ))

    def test_attribute_must_precede_let(self):
        with pytest.raises(FrontendError):
            parse_program(
                "fn f(a: T) -> T { #[kernel(offloaded = true)] g(a) }"
            )

    def test_literals_and_tuples(self):
        program = parse_program(
            'fn f(a: T) -> T { let x: U = g(a, 1, 2.5, true, "s"); h(x) }'
        )
        assert program.function("f").body[0].value.callee == "g"


class TestOwnership:
    def test_single_assignment_enforced(self):
        with pytest.raises(OwnershipError):
            check_ownership(parse_program(
                "fn f(a: T) -> T { let b: T = g(a); let b: T = g(a); b }"
            ))

    def test_undefined_use_rejected(self):
        with pytest.raises(OwnershipError):
            check_ownership(parse_program(
                "fn f(a: T) -> T { let b: T = g(missing); b }"
            ))

    def test_immutable_values_shared_freely(self):
        check_ownership(parse_program(
            "fn f(a: T) -> T { let b: T = g(a, a); let c: T = h(a, b); c }"
        ))

    def test_mutable_value_single_consumer(self):
        with pytest.raises(OwnershipError) as err:
            check_ownership(parse_program(
                "fn f(a: T) -> T { let mut m: T = g(a); "
                "let x: T = h(m); let y: T = h(m); y }"
            ))
        assert "unique borrow" in str(err.value)

    def test_fig4_is_well_formed(self):
        check_ownership(parse_program(FIG4_MAP_MATCHING))


class TestLoweringAndExecution:
    def test_fig4_lowers_to_verified_dfg(self):
        module = lower_program_to_dfg(parse_program(FIG4_MAP_MATCHING))
        verify(module)
        graph = module.lookup("match_one")
        nodes = [op for op in graph.regions[0].entry
                 if op.name == "dfg.node"]
        assert [n.attr("callee") for n in nodes] == [
            "projection", "build_trellis", "viterbi", "interpolate"
        ]
        assert nodes[0].attr("offloaded") is True

    def test_execution_is_deterministic(self):
        module = lower_program_to_dfg(parse_program(FIG4_MAP_MATCHING))
        impls = {
            "projection": lambda gv, mc: [g * 2 for g in gv],
            "build_trellis": lambda gv, cv, mc: list(zip(gv, cv)),
            "viterbi": lambda t, cv: [a + b for a, b in t],
            "interpolate": lambda rsv, mc: sum(rsv),
        }
        results = set()
        for _ in range(5):
            executor = DataflowExecutor(module).register_all(impls)
            results.add(executor.run("match_one", [1.0, 2.0], {}))
        assert len(results) == 1

    def test_offload_handler_invoked(self):
        module = lower_program_to_dfg(parse_program(FIG4_MAP_MATCHING))
        executor = DataflowExecutor(module).register_all({
            "projection": lambda gv, mc: gv,
            "build_trellis": lambda gv, cv, mc: gv,
            "viterbi": lambda t, cv: t,
            "interpolate": lambda rsv, mc: rsv,
        })
        offloaded = []
        executor.set_offload_handler(
            lambda callee, fn, args, attrs:
            (offloaded.append(callee), fn(*args))[1]
        )
        executor.run("match_one", [1.0], {})
        assert offloaded == ["projection"]

    def test_waves_expose_parallelism(self):
        program = parse_program("""
        fn f(a: T) -> T {
            let x: T = g(a);
            let y: T = h(a);
            join(x, y)
        }
        """)
        module = lower_program_to_dfg(program)
        executor = DataflowExecutor(module).register_all({
            "g": lambda a: a, "h": lambda a: a, "join": lambda x, y: x,
        })
        executor.run("f", 1)
        waves = executor.waves()
        assert waves[0] == ["g", "h"]  # independent nodes share a wave
        assert waves[1] == ["join"]

    def test_missing_implementation_reported(self):
        from repro.errors import RuntimeSchedulingError

        module = lower_program_to_dfg(parse_program(FIG4_MAP_MATCHING))
        with pytest.raises(RuntimeSchedulingError):
            DataflowExecutor(module).run("match_one", [1.0], {})
