"""Tests for custom data formats: fixed point, posit, small floats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EverestError
from repro.numerics import (
    FixedPointFormat,
    FloatFormat,
    PositFormat,
    error_report,
    format_bits,
    make_format,
    quantization_sweep,
    quantize,
)


class TestFixedPoint:
    def test_basic_quantization(self):
        fmt = FixedPointFormat(8, 8)
        np.testing.assert_allclose(fmt.quantize([1.5, -2.25]), [1.5, -2.25])

    def test_resolution(self):
        fmt = FixedPointFormat(4, 4)
        assert fmt.resolution == 1 / 16

    def test_saturation(self):
        fmt = FixedPointFormat(4, 4)  # max ~7.9375
        assert fmt.quantize(100.0) == fmt.max_value
        assert fmt.quantize(-100.0) == fmt.min_value

    def test_wrapping_mode(self):
        fmt = FixedPointFormat(4, 0, saturate=False)
        # 8 wraps to -8 in 4-bit two's complement.
        assert fmt.quantize(8.0) == -8.0

    def test_unsigned_range(self):
        fmt = FixedPointFormat(4, 4, signed=False)
        assert fmt.min_value == 0.0
        assert fmt.quantize(-1.0) == 0.0

    def test_arithmetic_add_mul(self):
        fmt = FixedPointFormat(8, 8)
        a, b = fmt.encode(1.5), fmt.encode(2.5)
        assert fmt.decode(fmt.add(a, b)) == 4.0
        assert fmt.decode(fmt.mul(a, b)) == pytest.approx(3.75)

    def test_division_by_zero(self):
        fmt = FixedPointFormat(8, 8)
        with pytest.raises(EverestError):
            fmt.div(fmt.encode(1.0), fmt.encode(0.0))

    def test_width_limit(self):
        with pytest.raises(EverestError):
            FixedPointFormat(40, 40)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(-100, 100))
    def test_quantization_error_bounded(self, x):
        fmt = FixedPointFormat(8, 8)
        q = float(fmt.quantize(x))
        assert abs(q - x) <= fmt.resolution / 2 + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-7, 7), st.floats(-7, 7))
    def test_add_matches_real_within_lsb(self, x, y):
        fmt = FixedPointFormat(8, 8)
        got = fmt.decode(fmt.add(fmt.encode(x), fmt.encode(y)))
        assert abs(float(got) - (x + y)) <= 2 * fmt.resolution


class TestFixedPointBoundaries:
    """Regression + pinned boundary semantics for ISSUE 4.

    ``encode`` used to cast to int64 *before* clamping, so huge positive
    values wrapped to INT64_MIN and saturated to the negative rail, and
    NaN silently became ``min_value`` under a RuntimeWarning.
    """

    def test_huge_positive_saturates_to_positive_rail(self):
        fmt = FixedPointFormat(8, 8)
        assert fmt.encode(1e30) == fmt.raw_max
        assert fmt.quantize(1e30) == fmt.max_value
        assert fmt.max_value > 0

    def test_huge_negative_saturates_to_negative_rail(self):
        fmt = FixedPointFormat(8, 8)
        assert fmt.encode(-1e30) == fmt.raw_min
        assert fmt.quantize(-1e30) == fmt.min_value

    def test_infinities_saturate(self):
        fmt = FixedPointFormat(8, 8)
        assert fmt.quantize(float("inf")) == fmt.max_value
        assert fmt.quantize(float("-inf")) == fmt.min_value

    def test_nan_raises(self):
        fmt = FixedPointFormat(8, 8)
        with pytest.raises(EverestError, match="NaN"):
            fmt.encode(float("nan"))
        with pytest.raises(EverestError, match="NaN"):
            fmt.encode([1.0, float("nan"), 2.0])

    def test_wrap_mode_rejects_infinity(self):
        fmt = FixedPointFormat(8, 8, saturate=False)
        with pytest.raises(EverestError, match="infinite"):
            fmt.encode(float("inf"))

    def test_wrap_mode_still_wraps_finite_overflow(self):
        fmt = FixedPointFormat(4, 0, saturate=False)
        assert fmt.quantize(8.0) == -8.0
        assert fmt.quantize(17.0) == 1.0  # 17 mod 16

    def test_unsigned_saturation_rails(self):
        fmt = FixedPointFormat(4, 4, signed=False)
        assert fmt.quantize(1e30) == fmt.max_value
        assert fmt.quantize(-1e30) == 0.0

    def test_mid_rail_rounds_half_to_even(self):
        fmt = FixedPointFormat(4, 1)  # resolution 0.5
        assert fmt.quantize(0.25) == 0.0   # 0.5 lsb -> even (0)
        assert fmt.quantize(0.75) == 1.0   # 1.5 lsb -> even (2 lsb)
        assert fmt.quantize(-0.25) == 0.0
        assert fmt.quantize(-0.75) == -1.0

    def test_vector_mixed_boundaries(self):
        fmt = FixedPointFormat(8, 8)
        values = np.array([1e30, -1e30, 0.25, float("inf")])
        got = fmt.quantize(values)
        np.testing.assert_array_equal(
            got, [fmt.max_value, fmt.min_value, 0.25, fmt.max_value])

    def test_wide_format_saturates_exactly_at_raw_max(self):
        # float(raw_max) rounds UP one ulp for widths >= 54 bits; the
        # integer-domain re-clip must keep the encoded raw on the rail.
        fmt = FixedPointFormat(62, 0)
        assert int(fmt.encode(1e30)) == fmt.raw_max
        assert float(fmt.quantize(1e30)) == fmt.max_value

    def test_wide_format_wrap_is_exact_for_in_range_values(self):
        # The wrap must use integer arithmetic: a float-domain modulo
        # (value + 2**61) loses the low bits of 54+ bit values.
        fmt = FixedPointFormat(62, 0, saturate=False)
        value = 2.0**54 + 4.0
        assert int(fmt.encode(value)) == 2**54 + 4

    def test_wide_format_wrap_beyond_int64_is_exact(self):
        fmt = FixedPointFormat(16, 0, saturate=False)
        value = 2.0**70 + 2.0**20  # exact as a float; far outside int64
        expected = (int(value) - fmt.raw_min) % (1 << 16) + fmt.raw_min
        assert int(fmt.encode(value)) == expected


class TestFixedPointSignedArithmetic:
    """Pinned semantics of div/mul on negative operands."""

    def test_div_rounds_toward_negative_infinity(self):
        fmt = FixedPointFormat(8, 8)
        positive = fmt.decode(fmt.div(fmt.encode(1.0), fmt.encode(3.0)))
        negative = fmt.decode(fmt.div(fmt.encode(-1.0), fmt.encode(3.0)))
        assert positive == 85 / 256    # floor(256/3 * 256) / 2^16
        assert negative == -86 / 256   # floor, NOT truncation toward 0
        assert positive != -negative   # the asymmetry is intentional

    def test_div_exact_negative_quotient(self):
        fmt = FixedPointFormat(8, 8)
        got = fmt.decode(fmt.div(fmt.encode(-3.0), fmt.encode(2.0)))
        assert got == -1.5

    def test_mul_half_lsb_rounds_toward_plus_infinity(self):
        fmt = FixedPointFormat(8, 8)
        # raw 1 * raw 128 = 0.5 lsb exactly: rounds up to 1 lsb ...
        assert fmt.mul(1, 128) == 1
        # ... and raw -1 * raw 128 = -0.5 lsb rounds up to 0.
        assert fmt.mul(-1, 128) == 0

    def test_mul_negative_operands_sign(self):
        fmt = FixedPointFormat(8, 8)
        got = fmt.decode(fmt.mul(fmt.encode(-1.5), fmt.encode(2.0)))
        assert got == -3.0
        got = fmt.decode(fmt.mul(fmt.encode(-1.5), fmt.encode(-2.0)))
        assert got == 3.0

    def test_mul_saturates_after_rounding(self):
        fmt = FixedPointFormat(4, 4)
        got = fmt.decode(fmt.mul(fmt.encode(7.9), fmt.encode(7.9)))
        assert got == fmt.max_value


class TestBoundaryAcrossFormats:
    """±max / ±inf / NaN / mid-rail behaviour of every format family."""

    def test_posit_saturates_at_maxpos_both_signs(self):
        fmt = PositFormat(16, 1)
        assert float(fmt.quantize(1e300)) == fmt.maxpos
        assert float(fmt.quantize(-1e300)) == -fmt.maxpos

    def test_posit_infinity_and_nan_become_nar(self):
        fmt = PositFormat(16, 1)
        assert fmt.encode_one(float("inf")) == fmt.nar
        assert fmt.encode_one(float("-inf")) == fmt.nar
        assert fmt.encode_one(float("nan")) == fmt.nar
        assert np.isnan(fmt.decode_one(fmt.nar))

    def test_posit_mid_rail_rounds_to_even(self):
        fmt = PositFormat(8, 0)
        # Near 1.0 a posit<8,0> has 5 fraction bits: spacing 2^-5.
        halfway_low = 1.0 + 2.0**-6      # between 1.0 (even) and 1+2^-5
        halfway_high = 1.0 + 3 * 2.0**-6  # between 1+2^-5 and 1+2^-4
        assert float(fmt.quantize(halfway_low)) == 1.0
        assert float(fmt.quantize(halfway_high)) == 1.0 + 2.0**-4

    def test_float_formats_preserve_infinities(self):
        for name in ("f32", "f16", "bf16"):
            fmt = FloatFormat(name)
            assert float(fmt.quantize(float("inf"))) == float("inf")
            assert float(fmt.quantize(float("-inf"))) == float("-inf")

    def test_float_formats_preserve_nan(self):
        for name in ("f32", "f16", "bf16"):
            assert np.isnan(FloatFormat(name).quantize(float("nan")))

    def test_f32_mid_rail_rounds_to_even(self):
        fmt = FloatFormat("f32")
        assert float(fmt.quantize(1.0 + 2.0**-24)) == 1.0
        assert float(fmt.quantize(1.0 + 3 * 2.0**-24)) == 1.0 + 2.0**-22

    def test_f16_overflow_goes_to_infinity(self):
        # float16 max is 65504; IEEE overflow rounds to inf.
        assert float(FloatFormat("f16").quantize(1e6)) == float("inf")

    def test_bf16_mid_rail_rounds_to_even(self):
        fmt = FloatFormat("bf16")
        # bf16 spacing at 1.0 is 2^-7; 1 + 2^-8 is exactly halfway.
        assert float(fmt.quantize(1.0 + 2.0**-8)) == 1.0
        assert float(fmt.quantize(1.0 + 3 * 2.0**-8)) == 1.0 + 2.0**-6


class TestPosit:
    @pytest.mark.parametrize("es", [0, 1, 2])
    def test_exhaustive_roundtrip_8bit(self, es):
        fmt = PositFormat(8, es)
        for bits in range(256):
            value = fmt.decode_one(bits)
            if np.isnan(value):
                continue
            assert fmt.encode_one(value) == bits, hex(bits)

    def test_known_values(self):
        fmt = PositFormat(16, 1)
        assert fmt.encode_one(1.0) == 0x4000
        assert fmt.decode_one(0x4000) == 1.0
        assert fmt.encode_one(-1.0) == 0xC000
        assert fmt.encode_one(0.0) == 0
        assert np.isnan(fmt.decode_one(fmt.nar))

    def test_saturation_at_maxpos(self):
        fmt = PositFormat(8, 0)
        huge = fmt.encode_one(1e30)
        assert fmt.decode_one(huge) == fmt.maxpos

    def test_never_rounds_to_zero(self):
        fmt = PositFormat(16, 1)
        tiny = fmt.encode_one(1e-300)
        assert fmt.decode_one(tiny) == fmt.minpos

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1e-4, max_value=1e4))
    def test_quantization_monotone(self, x):
        fmt = PositFormat(16, 1)
        qa = float(fmt.quantize(x))
        qb = float(fmt.quantize(x * 1.01))
        assert qb >= qa

    @settings(max_examples=60, deadline=None)
    @given(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3))
    def test_add_commutative(self, x, y):
        fmt = PositFormat(16, 1)
        a, b = fmt.encode(x), fmt.encode(y)
        assert fmt.add(a, b) == fmt.add(b, a)

    def test_relative_error_small_near_one(self):
        fmt = PositFormat(16, 1)
        xs = np.linspace(0.5, 2.0, 100)
        rel = np.abs(fmt.quantize(xs) - xs) / xs
        # posit<16,1> has ~12 fraction bits near 1.0.
        assert rel.max() < 2**-11


class TestFloatFormats:
    def test_f32_roundtrip(self):
        xs = np.array([1.0, np.pi, -2.5e7])
        np.testing.assert_array_equal(
            FloatFormat("f32").quantize(xs),
            xs.astype(np.float32).astype(np.float64),
        )

    def test_bf16_mantissa_truncation(self):
        q = float(FloatFormat("bf16").quantize(1.0 + 2**-10))
        assert q in (1.0, 1.0078125)  # 7-bit mantissa neighbours

    def test_bf16_preserves_nan(self):
        assert np.isnan(FloatFormat("bf16").quantize(float("nan")))

    def test_unknown_format_rejected(self):
        with pytest.raises(EverestError):
            FloatFormat("f8")


class TestFormatSpecs:
    @pytest.mark.parametrize("spec,bits", [
        ("f64", 64), ("f32", 32), ("bf16", 16),
        ("fixed<8.8>", 16), ("ufixed<4.12>", 16), ("posit<16,1>", 16),
    ])
    def test_make_format_and_bits(self, spec, bits):
        assert format_bits(make_format(spec)) == bits

    def test_bad_spec(self):
        with pytest.raises(EverestError):
            make_format("float128")

    def test_sweep_orders_error_by_precision(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, 500)
        reports = quantization_sweep(data, ["f64", "f32", "bf16"])
        assert reports["f64"].rms_error == 0.0
        assert reports["f32"].rms_error < reports["bf16"].rms_error

    def test_error_report_shape_mismatch(self):
        with pytest.raises(EverestError):
            error_report(np.zeros(3), np.zeros(4))
