"""Tests for custom data formats: fixed point, posit, small floats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EverestError
from repro.numerics import (
    FixedPointFormat,
    FloatFormat,
    PositFormat,
    error_report,
    format_bits,
    make_format,
    quantization_sweep,
    quantize,
)


class TestFixedPoint:
    def test_basic_quantization(self):
        fmt = FixedPointFormat(8, 8)
        np.testing.assert_allclose(fmt.quantize([1.5, -2.25]), [1.5, -2.25])

    def test_resolution(self):
        fmt = FixedPointFormat(4, 4)
        assert fmt.resolution == 1 / 16

    def test_saturation(self):
        fmt = FixedPointFormat(4, 4)  # max ~7.9375
        assert fmt.quantize(100.0) == fmt.max_value
        assert fmt.quantize(-100.0) == fmt.min_value

    def test_wrapping_mode(self):
        fmt = FixedPointFormat(4, 0, saturate=False)
        # 8 wraps to -8 in 4-bit two's complement.
        assert fmt.quantize(8.0) == -8.0

    def test_unsigned_range(self):
        fmt = FixedPointFormat(4, 4, signed=False)
        assert fmt.min_value == 0.0
        assert fmt.quantize(-1.0) == 0.0

    def test_arithmetic_add_mul(self):
        fmt = FixedPointFormat(8, 8)
        a, b = fmt.encode(1.5), fmt.encode(2.5)
        assert fmt.decode(fmt.add(a, b)) == 4.0
        assert fmt.decode(fmt.mul(a, b)) == pytest.approx(3.75)

    def test_division_by_zero(self):
        fmt = FixedPointFormat(8, 8)
        with pytest.raises(EverestError):
            fmt.div(fmt.encode(1.0), fmt.encode(0.0))

    def test_width_limit(self):
        with pytest.raises(EverestError):
            FixedPointFormat(40, 40)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(-100, 100))
    def test_quantization_error_bounded(self, x):
        fmt = FixedPointFormat(8, 8)
        q = float(fmt.quantize(x))
        assert abs(q - x) <= fmt.resolution / 2 + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(st.floats(-7, 7), st.floats(-7, 7))
    def test_add_matches_real_within_lsb(self, x, y):
        fmt = FixedPointFormat(8, 8)
        got = fmt.decode(fmt.add(fmt.encode(x), fmt.encode(y)))
        assert abs(float(got) - (x + y)) <= 2 * fmt.resolution


class TestPosit:
    @pytest.mark.parametrize("es", [0, 1, 2])
    def test_exhaustive_roundtrip_8bit(self, es):
        fmt = PositFormat(8, es)
        for bits in range(256):
            value = fmt.decode_one(bits)
            if np.isnan(value):
                continue
            assert fmt.encode_one(value) == bits, hex(bits)

    def test_known_values(self):
        fmt = PositFormat(16, 1)
        assert fmt.encode_one(1.0) == 0x4000
        assert fmt.decode_one(0x4000) == 1.0
        assert fmt.encode_one(-1.0) == 0xC000
        assert fmt.encode_one(0.0) == 0
        assert np.isnan(fmt.decode_one(fmt.nar))

    def test_saturation_at_maxpos(self):
        fmt = PositFormat(8, 0)
        huge = fmt.encode_one(1e30)
        assert fmt.decode_one(huge) == fmt.maxpos

    def test_never_rounds_to_zero(self):
        fmt = PositFormat(16, 1)
        tiny = fmt.encode_one(1e-300)
        assert fmt.decode_one(tiny) == fmt.minpos

    @settings(max_examples=100, deadline=None)
    @given(st.floats(min_value=1e-4, max_value=1e4))
    def test_quantization_monotone(self, x):
        fmt = PositFormat(16, 1)
        qa = float(fmt.quantize(x))
        qb = float(fmt.quantize(x * 1.01))
        assert qb >= qa

    @settings(max_examples=60, deadline=None)
    @given(st.floats(-1e3, 1e3), st.floats(-1e3, 1e3))
    def test_add_commutative(self, x, y):
        fmt = PositFormat(16, 1)
        a, b = fmt.encode(x), fmt.encode(y)
        assert fmt.add(a, b) == fmt.add(b, a)

    def test_relative_error_small_near_one(self):
        fmt = PositFormat(16, 1)
        xs = np.linspace(0.5, 2.0, 100)
        rel = np.abs(fmt.quantize(xs) - xs) / xs
        # posit<16,1> has ~12 fraction bits near 1.0.
        assert rel.max() < 2**-11


class TestFloatFormats:
    def test_f32_roundtrip(self):
        xs = np.array([1.0, np.pi, -2.5e7])
        np.testing.assert_array_equal(
            FloatFormat("f32").quantize(xs),
            xs.astype(np.float32).astype(np.float64),
        )

    def test_bf16_mantissa_truncation(self):
        q = float(FloatFormat("bf16").quantize(1.0 + 2**-10))
        assert q in (1.0, 1.0078125)  # 7-bit mantissa neighbours

    def test_bf16_preserves_nan(self):
        assert np.isnan(FloatFormat("bf16").quantize(float("nan")))

    def test_unknown_format_rejected(self):
        with pytest.raises(EverestError):
            FloatFormat("f8")


class TestFormatSpecs:
    @pytest.mark.parametrize("spec,bits", [
        ("f64", 64), ("f32", 32), ("bf16", 16),
        ("fixed<8.8>", 16), ("ufixed<4.12>", 16), ("posit<16,1>", 16),
    ])
    def test_make_format_and_bits(self, spec, bits):
        assert format_bits(make_format(spec)) == bits

    def test_bad_spec(self):
        with pytest.raises(EverestError):
            make_format("float128")

    def test_sweep_orders_error_by_precision(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, 500)
        reports = quantization_sweep(data, ["f64", "f32", "bf16"])
        assert reports["f64"].rms_error == 0.0
        assert reports["f32"].rms_error < reports["bf16"].rms_error

    def test_error_report_shape_mismatch(self):
        with pytest.raises(EverestError):
            error_report(np.zeros(3), np.zeros(4))
