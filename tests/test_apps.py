"""Tests for the four use-case applications."""

import numpy as np
import pytest

from repro.apps.airquality import (
    DecisionPolicy,
    ForecastCorrector,
    Site,
    WeatherParams,
    campaign_cost,
    direction_error_deg,
    peak_concentration,
    plan_days,
    plume_concentration,
    receptor_grid,
    stability_class,
)
from repro.apps.energy import (
    KernelRidge,
    WindFarm,
    backtest,
    synthesize_history,
    update_frequency_study,
)
from repro.apps.traffic import (
    GaussianMixture1D,
    RoadNetwork,
    SegmentSpeedModel,
    SpeedCNN,
    SpeedProfile,
    departure_profile,
    generate_fcd,
    match_one,
    matching_accuracy,
    origin_destination_matrix,
    ptdr_montecarlo,
    synthetic_segment_models,
)
from repro.apps.traffic.models import diurnal_congestion
from repro.apps.wrf import (
    AtmosphereState,
    GridSpec,
    ThreeDVar,
    WRFProxy,
    prepare_inputs,
    run_ensemble,
    synthetic_observations,
    tau_major_ekl,
    tau_major_reference,
)
from repro.apps.wrf.rrtmg import tau_major_vectorized


class TestWRFProxy:
    def test_three_rrtmg_implementations_agree(self):
        state = AtmosphereState.standard()
        inputs = prepare_inputs(state, band=2)
        reference = tau_major_reference(inputs)
        np.testing.assert_allclose(tau_major_vectorized(inputs), reference)
        np.testing.assert_allclose(tau_major_ekl(inputs), reference)

    def test_radiation_fraction_near_thirty_percent(self):
        model = WRFProxy(AtmosphereState.standard())
        model.run(5)
        assert 0.15 <= model.radiation_fraction() <= 0.5

    def test_step_advances_time_and_stays_finite(self):
        model = WRFProxy(AtmosphereState.standard(GridSpec(10, 10, 4)))
        state = model.run(10)
        assert state.time_hours == pytest.approx(10 / 60)
        assert np.isfinite(state.temperature).all()
        assert np.isfinite(state.humidity).all()

    def test_assimilation_reduces_error(self):
        truth = AtmosphereState.standard(GridSpec(12, 12, 6), seed=9)
        background = truth.perturbed(1.0, seed=5)
        da = ThreeDVar()
        observations = synthetic_observations(truth, 80, seed=1)
        analysis = da.assimilate(background, observations)
        assert da.analysis_error(analysis, truth) \
            < da.analysis_error(background, truth)

    def test_ensemble_spread_grows_with_perturbation(self):
        initial = AtmosphereState.standard(GridSpec(10, 10, 4))
        small = run_ensemble(initial, members=4, steps=2,
                             perturbation=0.1, seed=0)
        large = run_ensemble(initial, members=4, steps=2,
                             perturbation=1.0, seed=0)
        assert large.spread_field("temperature").mean() \
            > small.spread_field("temperature").mean()

    def test_wind_diagnostics(self):
        state = AtmosphereState.standard()
        speed = state.wind_speed_at(2)
        direction = state.wind_direction_at(2)
        assert (speed >= 0).all()
        assert ((0 <= direction) & (direction < 360)).all()


class TestEnergy:
    def test_power_curve_regions(self):
        farm = WindFarm()
        curve = farm.turbine
        assert curve.power_kw(1.0) == 0.0
        assert curve.power_kw(30.0) == 0.0
        assert 0 < curve.power_kw(8.0) < curve.rated_kw
        assert curve.power_kw(15.0) == curve.rated_kw

    def test_hub_height_extrapolation(self):
        farm = WindFarm()
        assert farm.wind_at_hub(8.0) > 8.0

    def test_kernel_ridge_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, (200, 1))
        y = np.sin(2 * X[:, 0]) + rng.normal(0, 0.05, 200)
        model = KernelRidge(alpha=1e-2, gamma=2.0).fit(X, y)
        grid = np.linspace(-2, 2, 50)[:, None]
        error = np.abs(model.predict(grid) - np.sin(2 * grid[:, 0]))
        assert error.mean() < 0.1

    def test_backtest_beats_persistence(self):
        farm = WindFarm()
        history = synthesize_history(farm, hours=24 * 100, seed=2)
        result = backtest(history, farm)
        assert result.improvement > 0.1
        assert result.rmse_mw >= result.mae_mw

    def test_staler_forecasts_hurt(self):
        farm = WindFarm()
        history = synthesize_history(farm, hours=24 * 100, seed=3)
        errors = update_frequency_study(history, farm, ages=(1, 24))
        assert errors[1] < errors[24]


class TestAirQuality:
    def test_stability_classes(self):
        assert stability_class(1.0, daytime=True) == "A"
        assert stability_class(6.0, daytime=True) == "D"
        assert stability_class(1.0, daytime=False) == "F"

    def test_plume_is_downwind(self):
        grid = receptor_grid(3000.0, 31)
        conc = plume_concentration(grid, 100.0, 5.0, 270.0, Site())
        X, Y = grid
        east = conc[X > 500].sum()
        west = conc[X < -500].sum()
        assert east > west * 10  # westerly wind blows the plume east

    def test_concentration_scales_with_emission(self):
        site = Site()
        low = peak_concentration(100.0, 4.0, 180.0, site)
        high = peak_concentration(1000.0, 4.0, 180.0, site)
        assert high == pytest.approx(10 * low, rel=1e-6)

    def test_corrector_reduces_direction_error(self):
        rng = np.random.default_rng(5)
        n = 300
        truth = WeatherParams(
            temperature_10m=288 + rng.normal(0, 3, n),
            wind_speed=np.abs(rng.normal(6, 2, n)),
            wind_direction=rng.uniform(0, 360, n),
        )
        bias_dir = 25.0
        mean = WeatherParams(
            temperature_10m=truth.temperature_10m + 1.5,
            wind_speed=truth.wind_speed * 1.2,
            wind_direction=(truth.wind_direction + bias_dir) % 360,
        )
        spread = WeatherParams(
            temperature_10m=np.full(n, 0.5),
            wind_speed=np.full(n, 0.4),
            wind_direction=np.full(n, 10.0),
        )
        corrector = ForecastCorrector().fit(mean, spread, truth)
        corrected = corrector.correct(mean, spread)
        raw_error = direction_error_deg(mean.wind_direction,
                                        truth.wind_direction).mean()
        new_error = direction_error_deg(corrected.wind_direction,
                                        truth.wind_direction).mean()
        assert new_error < raw_error
        assert np.abs(corrected.wind_speed - truth.wind_speed).mean() \
            < np.abs(mean.wind_speed - truth.wind_speed).mean()

    def test_decision_campaign_costs(self):
        rng = np.random.default_rng(6)
        days = 10
        wind = rng.uniform(2, 8, days)
        direction = rng.uniform(0, 360, days)
        emissions = rng.uniform(50, 400, days)
        policy = DecisionPolicy(limit_g_m3=2e-5)
        plans = plan_days(wind, direction, wind, direction, emissions,
                          Site(), policy)
        costs = campaign_cost(plans)
        assert costs["total_eur"] >= 0
        assert costs["reduction_days"] == sum(p.reduce for p in plans)


class TestTraffic:
    def test_map_matching_accuracy(self):
        network = RoadNetwork(6, 6, seed=4)
        rng = np.random.default_rng(7)
        accuracies = []
        for _ in range(4):
            route = network.random_route(rng)
            trajectory = generate_fcd(network, route, rng)
            matched = match_one(trajectory, network)
            accuracies.append(matching_accuracy(matched, trajectory))
        assert np.mean(accuracies) > 0.7

    def test_matched_speeds_plausible(self):
        network = RoadNetwork(5, 5, seed=1)
        rng = np.random.default_rng(2)
        route = network.random_route(rng)
        trajectory = generate_fcd(network, route, rng)
        matched = match_one(trajectory, network)
        assert len(matched.speeds_ms) == len(matched.segments)
        assert all(0 <= s <= 40 for s in matched.speeds_ms)

    def test_gmm_recovers_two_modes(self):
        rng = np.random.default_rng(0)
        data = np.concatenate([rng.normal(5, 1, 300),
                               rng.normal(13, 1.5, 300)])
        mixture = GaussianMixture1D(2, seed=0).fit(data)
        means = np.sort(mixture.means)
        assert abs(means[0] - 5) < 0.5
        assert abs(means[1] - 13) < 0.7

    def test_gmm_sampling_matches_mean(self):
        rng = np.random.default_rng(1)
        data = rng.normal(10, 2, 500)
        mixture = GaussianMixture1D(2, seed=0).fit(data)
        samples = mixture.sample(2000, rng)
        assert abs(samples.mean() - 10) < 0.5

    def test_speed_profile_binning(self):
        observations = [(8 * 3600.0, 5.0), (8 * 3600.0 + 100, 7.0),
                        (20 * 3600.0, 13.0)]
        profile = SpeedProfile.from_observations(0, observations, 14.0)
        assert profile.speed_at(8 * 3600.0) == 6.0
        assert profile.speed_at(20 * 3600.0) == 13.0
        assert profile.speed_at(3 * 3600.0) == 14.0  # free flow fallback

    def test_cnn_learns_diurnal_pattern(self):
        t = np.arange(600) * 900.0
        series = 13 * np.array([diurnal_congestion(x) for x in t])
        series += np.random.default_rng(3).normal(0, 0.3, len(t))
        cnn = SpeedCNN(window=16, seed=0)
        losses = cnn.fit(series, epochs=10, lr=3e-3)
        assert losses[-1] < losses[0] * 0.8
        prediction = cnn.predict_speed(series[:32])
        assert 0 < prediction < 20

    def test_ptdr_peak_slower_than_night(self):
        network = RoadNetwork(5, 5, seed=3)
        rng = np.random.default_rng(4)
        route = network.random_route(rng)
        models = synthetic_segment_models(network, route, seed=1)
        peak = ptdr_montecarlo(models, 8 * 3600.0, samples=600, seed=0)
        night = ptdr_montecarlo(models, 3 * 3600.0, samples=600, seed=0)
        assert peak.median_s > night.median_s
        assert peak.percentile_s(95) >= peak.median_s

    def _time_invariant_models(self, segments=4):
        """Segment models whose speed distribution ignores the clock, so
        any correlation between departures is purely RNG-stream reuse."""
        return [
            SegmentSpeedModel(
                length_m=500.0,
                interval_mean=np.full(96, 12.0),
                interval_std=np.full(96, 1.5),
            )
            for _ in range(segments)
        ]

    def test_departure_profile_deterministic(self):
        models = self._time_invariant_models()
        a = departure_profile(models, [0.0, 450.0], samples=100, seed=7)
        b = departure_profile(models, [0.0, 450.0], samples=100, seed=7)
        for dep in a:
            np.testing.assert_array_equal(a[dep].samples_s,
                                          b[dep].samples_s)

    def test_subsecond_departures_get_distinct_streams(self):
        # Regression: seeds were derived as seed + int(departure), so
        # departures 100.0, 100.25 and 100.75 all truncated to the same
        # stream and produced identical Monte-Carlo draws.
        models = self._time_invariant_models()
        profile = departure_profile(models, [100.0, 100.25, 100.75],
                                    samples=200, seed=0)
        drawn = [profile[dep].samples_s for dep in (100.0, 100.25, 100.75)]
        assert not np.array_equal(drawn[0], drawn[1])
        assert not np.array_equal(drawn[1], drawn[2])

    def test_seed_departure_pairs_do_not_collide(self):
        # Regression: (seed=0, dep=900) used to reuse (seed=900, dep=0)'s
        # stream — with time-invariant models the two sweeps returned
        # bitwise-identical samples.
        models = self._time_invariant_models()
        a = departure_profile(models, [900.0], samples=300,
                              seed=0)[900.0].samples_s
        b = departure_profile(models, [0.0], samples=300,
                              seed=900)[0.0].samples_s
        assert not np.array_equal(a, b)

    def test_odm_conserves_trips(self):
        network = RoadNetwork(4, 4)
        odm = origin_destination_matrix(network, trips=5000, zones=6,
                                        seed=0)
        assert odm.sum() == 5000
        assert odm.shape == (6, 6)
