"""Shared test configuration: ensure all EVEREST dialects are registered.

Importing :mod:`repro.dialects` populates the global dialect registry that
the IR verifier consults; production entry points (basecamp, the lowering
helpers) import it the same way.
"""

import pytest

import repro.dialects  # noqa: F401 (import for registration side effect)


@pytest.fixture(scope="session")
def rrtmg_inputs():
    """Fig. 3 kernel inputs — the same dict the benchmark suite's
    fixture builds (one shared source, repro.apps.wrf.rrtmg)."""
    from repro.apps.wrf.rrtmg import sample_inputs

    return sample_inputs()


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the golden IR snapshots in tests/ir/golden/ instead "
             "of comparing against them",
    )
