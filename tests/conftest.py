"""Shared test configuration: ensure all EVEREST dialects are registered.

Importing :mod:`repro.dialects` populates the global dialect registry that
the IR verifier consults; production entry points (basecamp, the lowering
helpers) import it the same way.
"""

import repro.dialects  # noqa: F401 (import for registration side effect)
