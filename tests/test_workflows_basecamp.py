"""Tests for workflows, microservices, DOSA and the basecamp CLI."""

import numpy as np
import pytest

from repro.basecamp.cli import main
from repro.dosa import OSA_CLOUDFPGA, coverage, partition_model, simulate_pipeline
from repro.errors import WorkflowError
from repro.frontends.condrust import FIG4_MAP_MATCHING
from repro.frontends.ekl import FIG3_MAJOR_ABSORBER
from repro.frontends.onnx_front import example_cnn
from repro.runtime import default_cluster
from repro.workflows import (
    LexisPlatform,
    MicroserviceRegistry,
    Request,
    RuntimeService,
    WorkflowSpec,
    WorkflowTask,
)


class TestLexis:
    def _spec(self):
        spec = WorkflowSpec("forecast")
        spec.add(WorkflowTask("ingest", lambda: 10))
        spec.add(WorkflowTask("simulate", lambda x: x * 2,
                              after=["ingest"]))
        spec.add(WorkflowTask("predict", lambda x: x + 1,
                              after=["simulate"]))
        return spec

    def test_deploy_and_results(self):
        platform = LexisPlatform(default_cluster(2))
        client = platform.deploy(self._spec())
        client.compute()
        results = platform.results("forecast")
        assert results["predict"] == 21

    def test_fpga_marking_changes_placement(self):
        spec = self._spec()
        spec.mark_for_fpga("simulate", fpga_seconds=1e-3)
        assert spec.task("simulate").location == "fpga"
        platform = LexisPlatform(default_cluster(2))
        client = platform.deploy(spec)
        schedule = client.compute()
        task = next(t for t in client.graph.tasks.values()
                    if t.name == "simulate")
        node = schedule.placements[task.task_id].node
        assert client.cluster.node(node).has_fpga

    def test_deploy_with_policy_selection(self):
        platform = LexisPlatform(default_cluster(2), policy="min-load")
        client = platform.deploy(self._spec())
        assert client.scheduler.name == "min-load"
        client.compute()
        assert platform.results("forecast")["predict"] == 21
        # Per-deploy override beats the platform default.
        override = platform.deploy(self._spec(), policy="round-robin")
        assert override.scheduler.name == "round-robin"

    def test_cyclic_workflow_rejected(self):
        spec = WorkflowSpec("bad")
        spec.add(WorkflowTask("a", lambda: 0, after=["b"]))
        spec.add(WorkflowTask("b", lambda: 0, after=["a"]))
        with pytest.raises(WorkflowError):
            LexisPlatform(default_cluster(1)).deploy(spec)

    def test_duplicate_task_rejected(self):
        spec = WorkflowSpec("dup")
        spec.add(WorkflowTask("a", lambda: 0))
        with pytest.raises(WorkflowError):
            spec.add(WorkflowTask("a", lambda: 0))


class TestMicroservices:
    def test_register_and_call(self):
        registry = MicroserviceRegistry()

        @registry.service("POST", "/detect")
        def detect(request: Request) -> dict:
            return {"count": len(request.payload["data"])}

        response = registry.call("POST", "/detect", {"data": [1, 2, 3]})
        assert response.ok
        assert response.body["count"] == 3

    def test_missing_route_404(self):
        registry = MicroserviceRegistry()
        assert registry.call("GET", "/nope").status == 404

    def test_handler_error_500(self):
        registry = MicroserviceRegistry()
        registry.register("GET", "/boom",
                          lambda req: 1 / 0)
        assert registry.call("GET", "/boom").status == 500

    def test_duplicate_route_rejected(self):
        registry = MicroserviceRegistry()
        registry.register("GET", "/a", lambda r: {})
        with pytest.raises(WorkflowError):
            registry.register("GET", "/a", lambda r: {})


class TestRuntimeService:
    def _service(self):
        registry = MicroserviceRegistry()
        service = RuntimeService(registry, default_cluster(2))
        return registry, service

    def _job(self, name="etl", policy=None):
        job = {"name": name, "tasks": [
            {"name": "ingest", "cpu_flops": 2e9},
            {"name": "simulate", "after": ["ingest"], "cores": 4,
             "cpu_flops": 8e9},
            {"name": "predict", "after": ["simulate"], "fpga": True,
             "fpga_seconds": 1e-3},
        ]}
        if policy:
            job["policy"] = policy
        return job

    def test_routes_registered(self):
        registry, _ = self._service()
        assert "POST /runtime/jobs" in registry.routes_list()
        assert "GET /runtime/policies" in registry.routes_list()

    def test_job_deploys_through_engine(self):
        registry, _ = self._service()
        response = registry.call("POST", "/runtime/jobs",
                                 self._job(policy="min-load"))
        assert response.ok
        body = response.body
        assert body["policy"] == "min-load"
        assert body["makespan_seconds"] > 0
        assert set(body["placements"]) == {"ingest", "simulate", "predict"}
        # Dependencies hold through the REST boundary.
        assert body["placements"]["ingest"]["finish"] \
            <= body["placements"]["simulate"]["start"] + 1e-12

    def test_policies_and_job_listing(self):
        registry, _ = self._service()
        policies = registry.call("GET", "/runtime/policies").body["policies"]
        assert {"heft", "round-robin", "min-load"} <= set(policies)
        registry.call("POST", "/runtime/jobs", self._job("j1"))
        registry.call("POST", "/runtime/jobs", self._job("j2", "heft"))
        jobs = registry.call("GET", "/runtime/jobs").body["jobs"]
        assert {job["name"] for job in jobs} == {"j1", "j2"}
        utilization = registry.call("GET", "/runtime/utilization",
                                    {"name": "j1"})
        assert utilization.ok
        assert set(utilization.body["utilization"]) \
            == {"node0", "node1"}

    def test_bad_requests_are_client_errors(self):
        registry, _ = self._service()
        assert registry.call("POST", "/runtime/jobs", {}).status == 400
        assert registry.call(
            "POST", "/runtime/jobs",
            {"name": "x", "policy": "bogus",
             "tasks": [{"name": "a"}]},
        ).status == 400
        # Unschedulable (no node has 99 cores) maps to 400, not 500.
        assert registry.call(
            "POST", "/runtime/jobs",
            {"name": "y", "tasks": [{"name": "a", "cores": 99}]},
        ).status == 400
        assert registry.call("GET", "/runtime/utilization",
                             {"name": "nope"}).status == 400

    def test_duplicate_job_rejected(self):
        registry, _ = self._service()
        assert registry.call("POST", "/runtime/jobs", self._job()).ok
        assert registry.call("POST", "/runtime/jobs",
                             self._job()).status == 400


class TestDOSA:
    def test_coverage_check(self):
        model = example_cnn()
        assert all(coverage(model, OSA_CLOUDFPGA).values())

    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_partition_functional_equivalence(self, ranks):
        model = example_cnn()
        plan = partition_model(model, ranks)
        assert plan.num_ranks == ranks
        samples = [np.random.default_rng(i).normal(size=model.input_shape)
                   for i in range(3)]
        expected = [model.forward(s) for s in samples]
        result = simulate_pipeline(plan, samples)
        for got, want in zip(result["outputs"], expected):
            np.testing.assert_allclose(got, want)

    def test_partitions_are_contiguous_and_complete(self):
        model = example_cnn()
        plan = partition_model(model, 3)
        covered = [i for p in plan.partitions for i in p.layer_indices]
        assert covered == list(range(len(model.layers)))

    def test_throughput_positive(self):
        plan = partition_model(example_cnn(), 2)
        assert plan.throughput_fps() > 0


class TestBasecampCLI(object):
    def test_compile_report(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(FIG3_MAJOR_ABSORBER)
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "kernel tau_major" in out

    def test_synthesize_with_format(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(FIG3_MAJOR_ABSORBER)
        assert main(["synthesize", str(source), "--format",
                     "fixed<8.8>"]) == 0
        assert "fixed" in capsys.readouterr().out

    def test_olympus_dse(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(FIG3_MAJOR_ABSORBER)
        assert main(["olympus", str(source)]) == 0
        out = capsys.readouterr().out
        assert "design space" in out and "selected:" in out

    SMALL_KERNEL = """
    kernel small {
      index i: 4
      input a[i]: f64
      output y
      y = a * 2.0
    }
    """

    def test_run_with_npy_inputs(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(self.SMALL_KERNEL)
        data = tmp_path / "a.npy"
        np.save(data, np.arange(4.0))
        assert main(["run", str(source), "--input", f"a={data}"]) == 0
        out = capsys.readouterr().out
        assert "backend=compiled" in out
        assert "y: shape=(4,)" in out
        assert "0." in out and "6." in out  # [0, 2, 4, 6]

    def test_run_with_random_inputs_and_time(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(FIG3_MAJOR_ABSORBER)
        assert main(["run", str(source), "--random-seed", "0",
                     "--time"]) == 0
        out = capsys.readouterr().out
        assert "tau_abs" in out
        assert "run time" in out and "x" in out

    def test_run_interpreter_backend(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(self.SMALL_KERNEL)
        assert main(["run", str(source), "--random-seed", "3",
                     "--backend", "interpreter"]) == 0
        assert "backend=interpreter" in capsys.readouterr().out

    def test_run_missing_input_is_an_error(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(self.SMALL_KERNEL)
        assert main(["run", str(source)]) == 1
        assert "missing input" in capsys.readouterr().err

    def test_run_unknown_input_name_rejected(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(self.SMALL_KERNEL)
        data = tmp_path / "b.npy"
        np.save(data, np.arange(4.0))
        assert main(["run", str(source), "--random-seed", "0",
                     "--input", f"b={data}"]) == 1
        assert "unknown --input" in capsys.readouterr().err

    def test_dialects_graph(self, capsys):
        assert main(["dialects"]) == 0
        out = capsys.readouterr().out
        assert "ekl -> esn" in out
        assert "[ok]" in out

    def test_condrust(self, tmp_path, capsys):
        source = tmp_path / "m.rs"
        source.write_text(FIG4_MAP_MATCHING)
        assert main(["condrust", str(source)]) == 0
        assert "dfg.graph" in capsys.readouterr().out

    def test_detect(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        data = np.concatenate([rng.normal(0, 1, (120, 2)),
                               rng.normal(8, 0.5, (6, 2))])
        path = tmp_path / "d.csv"
        np.savetxt(path, data, delimiter=",")
        out = tmp_path / "report.json"
        assert main(["detect", str(path), "--output", str(out),
                     "--trials", "8"]) == 0
        assert out.exists()

    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "alveo-u55c" in capsys.readouterr().out

    def test_runtime_all_policies(self, capsys):
        assert main(["runtime", "--tasks", "24", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        for policy in ("heft", "round-robin", "min-load"):
            assert policy in out
        assert "makespan" in out

    def test_runtime_single_policy_with_failure(self, capsys):
        assert main(["runtime", "--policy", "heft", "--tasks", "24",
                     "--nodes", "3", "--fail", "node1@2.0"]) == 0
        out = capsys.readouterr().out
        assert "failing node1" in out
        assert "rescheduled=" in out

    def test_runtime_bad_policy_rejected(self, capsys):
        assert main(["runtime", "--policy", "bogus"]) == 1
        assert "unknown scheduling policy" in capsys.readouterr().err

    def test_runtime_bad_fail_spec_rejected(self, capsys):
        assert main(["runtime", "--fail", "node1"]) == 1
        assert "NODE@SIM_SECONDS" in capsys.readouterr().err
        assert main(["runtime", "--fail", "node1@fast"]) == 1
        assert "NODE@SIM_SECONDS" in capsys.readouterr().err
        assert main(["runtime", "--fail", "@2.0"]) == 1
        assert "NODE@SIM_SECONDS" in capsys.readouterr().err

    def test_error_reported_cleanly(self, capsys):
        assert main(["compile", "/nonexistent.ekl"]) == 1
        assert "error" in capsys.readouterr().err
