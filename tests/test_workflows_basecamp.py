"""Tests for workflows, microservices, DOSA and the basecamp CLI."""

import numpy as np
import pytest

from repro.basecamp.cli import main
from repro.dosa import OSA_CLOUDFPGA, coverage, partition_model, simulate_pipeline
from repro.errors import WorkflowError
from repro.frontends.condrust import FIG4_MAP_MATCHING
from repro.frontends.ekl import FIG3_MAJOR_ABSORBER
from repro.frontends.onnx_front import example_cnn
from repro.runtime import default_cluster
from repro.workflows import (
    LexisPlatform,
    MicroserviceRegistry,
    Request,
    WorkflowSpec,
    WorkflowTask,
)


class TestLexis:
    def _spec(self):
        spec = WorkflowSpec("forecast")
        spec.add(WorkflowTask("ingest", lambda: 10))
        spec.add(WorkflowTask("simulate", lambda x: x * 2,
                              after=["ingest"]))
        spec.add(WorkflowTask("predict", lambda x: x + 1,
                              after=["simulate"]))
        return spec

    def test_deploy_and_results(self):
        platform = LexisPlatform(default_cluster(2))
        client = platform.deploy(self._spec())
        client.compute()
        results = platform.results("forecast")
        assert results["predict"] == 21

    def test_fpga_marking_changes_placement(self):
        spec = self._spec()
        spec.mark_for_fpga("simulate", fpga_seconds=1e-3)
        assert spec.task("simulate").location == "fpga"
        platform = LexisPlatform(default_cluster(2))
        client = platform.deploy(spec)
        schedule = client.compute()
        task = next(t for t in client.graph.tasks.values()
                    if t.name == "simulate")
        node = schedule.placements[task.task_id].node
        assert client.cluster.node(node).has_fpga

    def test_cyclic_workflow_rejected(self):
        spec = WorkflowSpec("bad")
        spec.add(WorkflowTask("a", lambda: 0, after=["b"]))
        spec.add(WorkflowTask("b", lambda: 0, after=["a"]))
        with pytest.raises(WorkflowError):
            LexisPlatform(default_cluster(1)).deploy(spec)

    def test_duplicate_task_rejected(self):
        spec = WorkflowSpec("dup")
        spec.add(WorkflowTask("a", lambda: 0))
        with pytest.raises(WorkflowError):
            spec.add(WorkflowTask("a", lambda: 0))


class TestMicroservices:
    def test_register_and_call(self):
        registry = MicroserviceRegistry()

        @registry.service("POST", "/detect")
        def detect(request: Request) -> dict:
            return {"count": len(request.payload["data"])}

        response = registry.call("POST", "/detect", {"data": [1, 2, 3]})
        assert response.ok
        assert response.body["count"] == 3

    def test_missing_route_404(self):
        registry = MicroserviceRegistry()
        assert registry.call("GET", "/nope").status == 404

    def test_handler_error_500(self):
        registry = MicroserviceRegistry()
        registry.register("GET", "/boom",
                          lambda req: 1 / 0)
        assert registry.call("GET", "/boom").status == 500

    def test_duplicate_route_rejected(self):
        registry = MicroserviceRegistry()
        registry.register("GET", "/a", lambda r: {})
        with pytest.raises(WorkflowError):
            registry.register("GET", "/a", lambda r: {})


class TestDOSA:
    def test_coverage_check(self):
        model = example_cnn()
        assert all(coverage(model, OSA_CLOUDFPGA).values())

    @pytest.mark.parametrize("ranks", [1, 2, 3, 4])
    def test_partition_functional_equivalence(self, ranks):
        model = example_cnn()
        plan = partition_model(model, ranks)
        assert plan.num_ranks == ranks
        samples = [np.random.default_rng(i).normal(size=model.input_shape)
                   for i in range(3)]
        expected = [model.forward(s) for s in samples]
        result = simulate_pipeline(plan, samples)
        for got, want in zip(result["outputs"], expected):
            np.testing.assert_allclose(got, want)

    def test_partitions_are_contiguous_and_complete(self):
        model = example_cnn()
        plan = partition_model(model, 3)
        covered = [i for p in plan.partitions for i in p.layer_indices]
        assert covered == list(range(len(model.layers)))

    def test_throughput_positive(self):
        plan = partition_model(example_cnn(), 2)
        assert plan.throughput_fps() > 0


class TestBasecampCLI(object):
    def test_compile_report(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(FIG3_MAJOR_ABSORBER)
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "kernel tau_major" in out

    def test_synthesize_with_format(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(FIG3_MAJOR_ABSORBER)
        assert main(["synthesize", str(source), "--format",
                     "fixed<8.8>"]) == 0
        assert "fixed" in capsys.readouterr().out

    def test_olympus_dse(self, tmp_path, capsys):
        source = tmp_path / "k.ekl"
        source.write_text(FIG3_MAJOR_ABSORBER)
        assert main(["olympus", str(source)]) == 0
        out = capsys.readouterr().out
        assert "design space" in out and "selected:" in out

    def test_dialects_graph(self, capsys):
        assert main(["dialects"]) == 0
        out = capsys.readouterr().out
        assert "ekl -> esn" in out
        assert "[ok]" in out

    def test_condrust(self, tmp_path, capsys):
        source = tmp_path / "m.rs"
        source.write_text(FIG4_MAP_MATCHING)
        assert main(["condrust", str(source)]) == 0
        assert "dfg.graph" in capsys.readouterr().out

    def test_detect(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        data = np.concatenate([rng.normal(0, 1, (120, 2)),
                               rng.normal(8, 0.5, (6, 2))])
        path = tmp_path / "d.csv"
        np.savetxt(path, data, delimiter=",")
        out = tmp_path / "report.json"
        assert main(["detect", str(path), "--output", str(out),
                     "--trials", "8"]) == 0
        assert out.exists()

    def test_info(self, capsys):
        assert main(["info"]) == 0
        assert "alveo-u55c" in capsys.readouterr().out

    def test_error_reported_cleanly(self, capsys):
        assert main(["compile", "/nonexistent.ekl"]) == 1
        assert "error" in capsys.readouterr().err
