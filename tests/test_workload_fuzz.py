"""Generative workload fuzzing of the runtime engine (smoke tier).

Each seeded case builds a random completable workload with
:mod:`tools.workloadfuzz` — heterogeneous cluster, random DAG, streamed
arrivals, constrained failure injections — runs it through every
registered policy and asserts the full scheduler invariant suite:
completeness (no lost/double-executed task), dependency order, no core
overcommit (cross-checked against ``NodeTimeline.peak_usage``),
replay determinism, incremental ≡ baseline HEFT, and makespan
monotonicity under cluster growth.

``tools/workloadfuzz.py --count N`` runs a longer standalone campaign
(``make fuzz-runtime``); triage tips live in docs/runtime.md.
"""

import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "tools")
)

from workloadfuzz import (  # noqa: E402
    build_cluster,
    generate_case,
    run_case,
)

N_SEEDS = 200


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_workload_fuzz(seed):
    # Import inside the test so a failure message names the seed's
    # check, and late imports never shadow collection.
    from workloadfuzz import check_workload

    check_workload(seed)


def test_generator_is_deterministic():
    assert generate_case(13) == generate_case(13)


def test_generator_cases_are_completable():
    """Every generated failure schedule leaves survivors that can host
    every task (cores and FPGA needs)."""
    for seed in range(40):
        case = generate_case(seed)
        failed = {name for _, name in case.failures}
        cluster = build_cluster(case)
        survivors = [n for n in cluster.nodes.values()
                     if n.name not in failed]
        assert survivors
        for spec in case.tasks:
            assert any(spec.cores <= node.cores
                       and (not spec.fpga or node.has_fpga)
                       for node in survivors), (seed, spec)


def test_run_case_returns_live_engine_state():
    case = generate_case(3)
    engine, schedule, calls = run_case(case, "heft")
    assert len(schedule.placements) == len(case.tasks)
    assert sum(calls.values()) >= len(case.tasks)
