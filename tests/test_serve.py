"""Tests for the ``basecamp serve`` multi-tenant daemon.

Service-level tests drive :class:`BasecampService.handle` directly;
HTTP-level tests boot a real :class:`BasecampServer` on an ephemeral
port and exercise concurrency: single-flight deduplication of identical
in-flight compiles, and admission-control rejection (429 + Retry-After)
when the executor saturates.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.basecamp.serve import (
    BasecampServer,
    BasecampService,
    ServiceSaturated,
)
from repro.errors import EverestError
from repro.pipeline import PipelineSession

ADD = """
kernel add {
  index i: 6
  input a[i]: f64
  input b[i]: f64
  output c
  c = a + b
}
"""

SCALE = """
kernel scale {
  index i: 6
  input a[i]: f64
  output c
  c = a * 3.0
}
"""


def post(url, endpoint, payload, timeout=30):
    """POST JSON; returns (status, decoded body, headers)."""
    request = urllib.request.Request(
        f"{url}/{endpoint}", data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), \
                dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def get(url, path, timeout=30):
    try:
        with urllib.request.urlopen(f"{url}{path}",
                                    timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture
def server():
    """A started ephemeral-port server, shut down after the test."""
    instance = BasecampServer(port=0).start()
    try:
        yield instance
    finally:
        instance.shutdown()


class TestService:
    def test_compile_reports_kernel_and_key(self):
        service = BasecampService()
        result = service.handle("compile", {"source": ADD})
        assert result["kernel"] == "add"
        assert len(result["key"]) == 64
        assert result["total_cycles"] > 0
        assert result["number_format"] == "f64"
        assert set(result["resources"]) == {"lut", "ff", "dsp", "bram"}

    def test_compile_with_number_format(self):
        service = BasecampService()
        base = service.handle("compile", {"source": ADD})
        fixed = service.handle(
            "compile", {"source": ADD, "number_format": "fixed<8.8>"})
        assert fixed["number_format"].startswith("fixed")
        assert fixed["key"] != base["key"]

    def test_execute_with_seed_and_full_outputs(self):
        service = BasecampService()
        result = service.handle("execute", {
            "source": ADD, "random_seed": 0, "full_outputs": True})
        expected = PipelineSession().execute(
            ADD, _seeded_inputs(service, ADD, 0))
        np.testing.assert_array_equal(
            np.array(result["outputs"]["c"]["values"]),
            expected.outputs["c"])
        assert result["backend"] == "compiled"
        assert result["outputs"]["c"]["shape"] == [6]

    def test_execute_with_explicit_inputs(self):
        service = BasecampService()
        a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        b = [1.0] * 6
        result = service.handle("execute", {
            "source": ADD, "inputs": {"a": a, "b": b},
            "full_outputs": True})
        assert result["outputs"]["c"]["values"] == \
            [x + 1.0 for x in a]

    def test_execute_missing_input_rejected(self):
        service = BasecampService()
        with pytest.raises(EverestError, match="missing input"):
            service.handle("execute", {"source": ADD})

    def test_runtime_all_policies(self):
        service = BasecampService()
        result = service.handle(
            "runtime", {"policy": "all", "tasks": 8, "nodes": 2})
        names = [entry["policy"] for entry in result["results"]]
        assert len(names) >= 3 and names == sorted(names)
        assert all(entry["makespan"] > 0 for entry in result["results"])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(EverestError, match="unknown endpoint"):
            BasecampService().handle("frobnicate", {})

    def test_missing_source_rejected(self):
        with pytest.raises(EverestError, match="source"):
            BasecampService().handle("compile", {})

    def test_bad_opt_level_rejected(self):
        with pytest.raises(EverestError, match="opt_level"):
            BasecampService().handle(
                "compile", {"source": ADD, "opt_level": 9})

    def test_sizing_validated(self):
        with pytest.raises(EverestError):
            BasecampService(max_workers=0)
        with pytest.raises(EverestError):
            BasecampService(queue_limit=-1)

    def test_stats_shape(self):
        service = BasecampService()
        service.handle("compile", {"source": ADD})
        stats = service.stats()
        assert stats["server"]["requests"] == 1
        assert stats["server"]["ok"] == 1
        assert stats["cache"]["entries"] > 0
        assert {"leaders", "waits"} == set(stats["singleflight"])


def _seeded_inputs(service, source, seed):
    from repro.basecamp.inputs import gather_inputs

    lowered = service.session.lower(source)
    return gather_inputs(lowered.module, lowered.kernel.name, {}, seed)


class TestHTTP:
    def test_healthz_and_stats(self, server):
        status, body = get(server.url, "/healthz")
        assert (status, body) == (200, {"status": "ok"})
        status, body = get(server.url, "/stats")
        assert status == 200
        assert body["server"]["requests"] == 0

    def test_unknown_path_404(self, server):
        status, body = get(server.url, "/nope")
        assert status == 404
        assert "unknown path" in body["error"]

    def test_invalid_json_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/compile", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "invalid JSON" in json.loads(excinfo.value.read())["error"]

    def test_sdk_error_maps_to_400(self, server):
        status, body, _ = post(server.url, "compile",
                               {"source": "kernel broken {"})
        assert status == 400
        assert "error" in body

    def test_cache_shared_across_requests(self, server):
        status, first, _ = post(server.url, "compile", {"source": ADD})
        assert status == 200
        status, second, _ = post(server.url, "compile", {"source": ADD})
        assert status == 200
        assert second == first
        _, stats = get(server.url, "/stats")
        assert stats["cache"]["hits"] > 0

    def test_single_flight_dedups_identical_inflight_compiles(self):
        session = PipelineSession()
        release = threading.Event()
        hls_runs = []
        original = session.registry.get("hls")

        def gated_hls(payload, **params):
            hls_runs.append(1)
            assert release.wait(timeout=30)
            return original.fn(payload, **params)

        session.register("hls", gated_hls, replace=True)
        server = BasecampServer(port=0, session=session,
                                max_workers=8).start()
        try:
            clients = 6
            with ThreadPoolExecutor(max_workers=clients) as pool:
                futures = [
                    pool.submit(post, server.url, "compile",
                                {"source": SCALE})
                    for _ in range(clients)
                ]
                # Wait until every client is admitted and in flight,
                # then release the gated leader.
                deadline = time.monotonic() + 30
                while server.service.stats()["server"]["active"] < clients:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                release.set()
                replies = [f.result(timeout=60) for f in futures]
            assert all(status == 200 for status, _, _ in replies)
            bodies = [body for _, body, _ in replies]
            assert all(body == bodies[0] for body in bodies)
            # The demonstrable dedup claim: six concurrent identical
            # compiles executed the HLS stage exactly once.
            assert len(hls_runs) == 1
            assert session.singleflight.waits > 0
        finally:
            server.shutdown()

    def test_saturation_rejected_with_retry_after(self):
        session = PipelineSession()
        entered = threading.Event()
        release = threading.Event()
        original = session.registry.get("hls")

        def gated_hls(payload, **params):
            entered.set()
            assert release.wait(timeout=30)
            return original.fn(payload, **params)

        session.register("hls", gated_hls, replace=True)
        server = BasecampServer(port=0, session=session,
                                max_workers=1, queue_limit=1).start()
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                first = pool.submit(post, server.url, "compile",
                                    {"source": SCALE})
                assert entered.wait(timeout=30)
                second = pool.submit(post, server.url, "compile",
                                     {"source": SCALE})
                deadline = time.monotonic() + 30
                while server.service.stats()["server"]["active"] < 2:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
                # Executor full, queue full: the third client is turned
                # away immediately with a Retry-After hint.
                status, body, headers = post(server.url, "compile",
                                             {"source": SCALE})
                assert status == 429
                assert "saturated" in body["error"]
                assert int(headers["Retry-After"]) >= 1
                assert body["retry_after"] == int(headers["Retry-After"])
                release.set()
                assert first.result(timeout=60)[0] == 200
                assert second.result(timeout=60)[0] == 200
            stats = server.service.stats()["server"]
            assert stats["rejected"] == 1
            assert stats["ok"] == 2
        finally:
            server.shutdown()

    def test_clean_shutdown_idempotent_socket(self):
        server = BasecampServer(port=0).start()
        url = server.url
        assert get(url, "/healthz")[0] == 200
        server.shutdown()
        with pytest.raises((urllib.error.URLError, ConnectionError,
                            OSError)):
            urllib.request.urlopen(f"{url}/healthz", timeout=2)

    def test_saturated_error_type(self):
        error = ServiceSaturated("full", retry_after=7)
        assert isinstance(error, EverestError)
        assert error.retry_after == 7
