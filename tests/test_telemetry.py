"""Tests for the unified telemetry subsystem (``repro.telemetry``).

Four layers, tested bottom-up:

* the span tracer — hierarchical parenting through ``contextvars``,
  explicit-parent override for worker threads, the disabled null
  tracer's invariants;
* the metrics registry — exact totals under an 8-thread hammer,
  idempotent registration, Prometheus data-model validation;
* the exporters — Chrome trace-event JSON schema (what Perfetto
  loads), Prometheus text exposition, PipelineReport reconstruction;
* the integrations — PipelineSession stage spans with cache /
  single-flight attribution, the serve daemon's ``GET /metrics`` body
  agreeing with ``/stats``, the ``span_id`` echo, and the Retry-After
  EWMA floor regression.
"""

import io
import json
import logging
import math
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.basecamp.serve import (
    BasecampServer,
    BasecampService,
    ServiceSaturated,
)
from repro.errors import EverestError
from repro.pipeline import PipelineSession
from repro.telemetry.export import (
    VIRTUAL_PID,
    WALL_PID,
    chrome_trace,
    prometheus_text,
    report_from_spans,
    write_chrome_trace,
)
from repro.telemetry.log import (
    configure_logging,
    get_logger,
    kv,
    resolve_level,
)
from repro.telemetry.metrics import MetricsRegistry, get_registry
from repro.telemetry.trace import (
    NULL_TRACER,
    Tracer,
    current_span,
    disable,
    enable,
    get_tracer,
)

ADD = """
kernel add {
  index i: 6
  input a[i]: f64
  input b[i]: f64
  output c
  c = a + b
}
"""


@pytest.fixture(autouse=True)
def _restore_null_tracer():
    """No test leaks a recording tracer into the process default."""
    disable()
    yield
    disable()


# -- tracer ------------------------------------------------------------------


class TestTracer:
    def test_nested_spans_record_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        spans = {s.name: s for s in tracer.spans()}
        assert spans["outer"].parent_id == 0
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].duration >= 0.0

    def test_completion_order_is_inner_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_explicit_parent_overrides_context(self):
        """Worker threads don't inherit the submitter's contextvars; the
        instrumentation captures ``current_span()`` before submit and
        passes it explicitly — exactly this pattern."""
        tracer = Tracer()
        with tracer.span("submit") as submit:
            captured = current_span()

            def worker():
                assert current_span() is None  # fresh thread, no context
                with tracer.span("tile", parent=captured):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = {s.name: s for s in tracer.spans()}
        assert spans["tile"].parent_id == submit.span_id
        assert spans["tile"].thread_name != spans["submit"].thread_name

    def test_exception_annotates_and_unwinds(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"
        assert current_span() is None

    def test_record_span_virtual_clock(self):
        tracer = Tracer()
        span = tracer.record_span("task:t0", 3.0, 7.5, track="node-1",
                                  category="task", attrs={"cores": 2})
        assert span.clock == "virtual"
        assert span.start == 3.0
        assert span.duration == 4.5
        assert span.track == "node-1"
        assert tracer.spans()[0] is span

    def test_enable_disable_swap_process_tracer(self):
        assert get_tracer() is NULL_TRACER
        recording = enable()
        assert get_tracer() is recording
        disable()
        assert get_tracer() is NULL_TRACER

    def test_null_tracer_invariants(self):
        null_span = NULL_TRACER.span("anything")
        assert NULL_TRACER.span("other") is null_span  # one singleton
        assert not NULL_TRACER.enabled
        assert null_span.span_id == 0  # falsy: the "tracing off" check
        with null_span as entered:
            entered.set("key", "value")
            entered.attrs["key"] = "value"
        assert null_span.attrs == {}  # writes never accumulate
        assert NULL_TRACER.spans() == []


# -- metrics -----------------------------------------------------------------


class TestMetrics:
    def test_counter_hammered_from_8_threads_is_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", labels=("side",))
        per_thread = 5000

        def hammer(i):
            side = "left" if i % 2 == 0 else "right"
            for _ in range(per_thread):
                counter.inc(side=side)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        assert counter.value(side="left") == 4 * per_thread
        assert counter.value(side="right") == 4 * per_thread
        assert counter.total() == 8 * per_thread

    def test_histogram_hammered_from_8_threads_is_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds",
                                       buckets=(0.01, 0.1, 1.0))
        per_thread = 2000

        def hammer(i):
            for j in range(per_thread):
                histogram.observe(0.005 if j % 2 == 0 else 0.5)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(hammer, range(8)))
        total = 8 * per_thread
        assert histogram.count() == total
        assert histogram.sum_value() == pytest.approx(
            total // 2 * 0.005 + total // 2 * 0.5)
        buckets = dict(histogram.cumulative_buckets())
        assert buckets[0.01] == total // 2
        assert buckets[1.0] == total
        assert buckets[math.inf] == total  # cumulative, ends at count

    def test_registry_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ("a",))
        assert registry.counter("x_total", "help", ("a",)) is first
        with pytest.raises(EverestError, match="already registered"):
            registry.gauge("x_total")
        with pytest.raises(EverestError, match="already registered"):
            registry.counter("x_total", labels=("b",))

    def test_invalid_names_and_labels_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(EverestError, match="invalid metric name"):
            registry.counter("bad-name")
        with pytest.raises(EverestError, match="invalid label name"):
            registry.counter("ok_total", labels=("bad-label",))
        with pytest.raises(EverestError, match="strictly increasing"):
            registry.histogram("h_seconds", buckets=(1.0, 0.5))

    def test_counter_cannot_decrease_and_wants_exact_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("endpoint",))
        with pytest.raises(EverestError, match="cannot decrease"):
            counter.inc(-1, endpoint="x")
        with pytest.raises(EverestError, match="wants labels"):
            counter.inc()  # missing the endpoint label
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.dec(2)
        assert gauge.value() == 3


# -- exporters ---------------------------------------------------------------


def _trace_schema_check(trace):
    """Assert the Chrome trace-event contract Perfetto relies on."""
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    assert trace["displayTimeUnit"] == "ms"
    for event in trace["traceEvents"]:
        for key in ("name", "ph", "ts", "pid", "tid"):
            assert key in event, f"event missing {key!r}: {event}"
        assert event["ph"] in ("X", "M")
        assert isinstance(event["name"], str)
        assert isinstance(event["ts"], (int, float))
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
            assert event["args"]["span_id"] >= 1
            assert event["args"]["parent_id"] >= 0
        else:
            assert event["name"] in ("process_name", "thread_name")
            assert "name" in event["args"]


class TestChromeTrace:
    def test_wall_and_virtual_spans_split_by_pid(self):
        tracer = Tracer()
        with tracer.span("compile", category="compile"):
            pass
        tracer.record_span("task:a", 0.0, 2.0, track="node-0")
        tracer.record_span("task:b", 1.0, 3.0, track="node-1")
        trace = chrome_trace(tracer)
        _trace_schema_check(trace)

        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        assert by_name["compile"]["pid"] == WALL_PID
        assert by_name["task:a"]["pid"] == VIRTUAL_PID
        # Distinct tracks get distinct virtual tids.
        assert by_name["task:a"]["tid"] != by_name["task:b"]["tid"]
        # Virtual timestamps are simulated-seconds in microseconds.
        assert by_name["task:a"]["ts"] == 0.0
        assert by_name["task:a"]["dur"] == 2e6

        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        lanes = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert {"node-0", "node-1"} <= lanes

    def test_non_scalar_attrs_stringified(self):
        tracer = Tracer()
        with tracer.span("s", attrs={"shape": (3, 4), "ok": True}):
            pass
        (event,) = [e for e in chrome_trace(tracer)["traceEvents"]
                    if e["ph"] == "X"]
        assert event["args"]["shape"] == "(3, 4)"
        assert event["args"]["ok"] is True

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("only"):
            pass
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer)
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == count
        _trace_schema_check(loaded)


# One Prometheus text-format line: name, optional {labels}, value.
_PROM_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_PROM_SAMPLE = (r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
                rf"(\{{{_PROM_LABEL}(,{_PROM_LABEL})*\}})?"
                r" (NaN|[+-]Inf|-?[0-9].*)$")


def _prometheus_parse_check(text):
    import re

    pattern = re.compile(_PROM_SAMPLE)
    for line in text.rstrip("\n").split("\n"):
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert pattern.match(line), f"unparseable sample line: {line!r}"


class TestPrometheusText:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests", ("ep",)).inc(ep="c")
        registry.gauge("depth", "queue depth").set(3)
        histogram = registry.histogram("lat_seconds", "latency",
                                       buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)

        text = prometheus_text(registry)
        _prometheus_parse_check(text)
        assert "# TYPE req_total counter" in text
        assert '\nreq_total{ep="c"} 1\n' in text
        assert "# TYPE depth gauge" in text
        assert "\ndepth 3\n" in text
        assert "# TYPE lat_seconds histogram" in text
        assert '\nlat_seconds_bucket{le="0.1"} 1\n' in text
        assert '\nlat_seconds_bucket{le="1"} 2\n' in text
        assert '\nlat_seconds_bucket{le="+Inf"} 2\n' in text
        assert "\nlat_seconds_count 2\n" in text
        assert "lat_seconds_sum 0.55" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("e_total", labels=("v",)).inc(v='a"b\nc')
        text = prometheus_text(registry)
        assert 'e_total{v="a\\"b\\nc"} 1' in text
        _prometheus_parse_check(text)

    def test_duplicate_names_across_registries_rendered_once(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("shared_total").inc()
        second.counter("shared_total").inc(5)
        text = prometheus_text(first, second)
        assert text.count("# TYPE shared_total counter") == 1
        assert "shared_total 1" in text  # first registry wins


class TestReportFromSpans:
    def test_stage_spans_rebuild_pipeline_report(self):
        tracer = enable()
        session = PipelineSession()
        session.lower(ADD)
        report = report_from_spans(tracer)
        assert report.events  # stage spans became report events
        stage_names = {event.stage for event in report.events}
        assert stage_names <= {s.name.split(":", 1)[1]
                               for s in tracer.spans()
                               if s.category == "stage"}
        assert "stage events" in report.summary()


# -- integrations ------------------------------------------------------------


class TestSessionInstrumentation:
    def test_cached_rerun_annotates_stage_spans(self):
        tracer = enable()
        session = PipelineSession()
        session.lower(ADD)
        first = {s.name for s in tracer.spans()
                 if s.category == "stage"}
        assert first  # the lowering pipeline emitted stage spans
        tracer.clear()
        session.lower(ADD)
        cached = [s for s in tracer.spans() if s.category == "stage"
                  and s.attrs.get("cached")]
        assert cached  # second run hits the session cache

    def test_execute_emits_run_span_under_stage_tree(self):
        # A source no other test compiles: the process-global executor
        # cache must miss so the codegen.compile span is emitted.
        source = ADD.replace("a + b", "a * 2.0 + b * 3.0")
        tracer = enable()
        PipelineSession().execute(source, {
            "a": [1.0] * 6, "b": [2.0] * 6})
        names = [s.name for s in tracer.spans()]
        assert "execute/run" in names
        assert any(n.startswith("stage:") for n in names)
        assert any(s.name == "codegen.compile" for s in tracer.spans())


class TestServeTelemetry:
    def test_metrics_text_agrees_with_stats(self):
        service = BasecampService()
        service.handle("compile", {"source": ADD})
        service.handle("compile", {"source": ADD})
        with pytest.raises(EverestError):
            service.handle("execute", {"source": ADD, "inputs": {}})

        stats = service.stats()["server"]
        assert stats["requests"] == 3
        assert stats["ok"] == 2
        assert stats["errors"] == 1

        text = service.metrics_text()
        _prometheus_parse_check(text)
        assert 'basecamp_requests_total{endpoint="compile"} 2' in text
        assert 'basecamp_responses_total{outcome="ok"} 2' in text
        assert 'basecamp_responses_total{outcome="error"} 1' in text
        # The latency histogram covers every admitted request —
        # its count must equal ok + errors from /stats.
        latency = service.metrics.get("basecamp_request_seconds")
        assert latency.total_count() == stats["ok"] + stats["errors"]
        assert 'basecamp_request_seconds_count{endpoint="compile"} 2' \
            in text

    def test_http_metrics_endpoint(self):
        server = BasecampServer(port=0).start()
        try:
            def post(endpoint, payload):
                request = urllib.request.Request(
                    f"{server.url}/{endpoint}",
                    data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=30) as resp:
                    return json.loads(resp.read())

            post("compile", {"source": ADD})
            with urllib.request.urlopen(f"{server.url}/metrics",
                                        timeout=30) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == \
                    "text/plain; version=0.0.4; charset=utf-8"
                text = response.read().decode("utf-8")
        finally:
            server.shutdown()
        _prometheus_parse_check(text)
        assert 'basecamp_requests_total{endpoint="compile"} 1' in text
        assert "basecamp_active_requests" in text
        assert "repro_codegen_cache_total" in text  # global registry too

    def test_request_span_tree_and_span_id_echo(self):
        tracer = enable()
        server = BasecampServer(port=0).start()
        try:
            request = urllib.request.Request(
                f"{server.url}/compile",
                data=json.dumps({"source": ADD}).encode("utf-8"),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                body = json.loads(response.read())
        finally:
            server.shutdown()
            disable()
        spans = {s.span_id: s for s in tracer.spans()}
        request_spans = [s for s in spans.values()
                         if s.name == "request:compile"]
        assert len(request_spans) == 1
        root = request_spans[0]
        assert body["span_id"] == root.span_id  # echoed to the client
        assert root.attrs["status"] == 200
        # Stage spans hang off the request span (context propagation
        # across the handler thread).
        children = [s for s in spans.values()
                    if s.parent_id == root.span_id]
        assert children
        for span in spans.values():
            if span.category == "stage":
                parent = span
                while parent.parent_id:
                    parent = spans[parent.parent_id]
                assert parent is root

    def test_span_id_not_echoed_when_disabled(self):
        service = BasecampService()
        result = service.handle("compile", {"source": ADD})
        assert "span_id" not in result


class TestRetryAfterFloor:
    """Regression: a burst of sub-millisecond requests used to decay
    the latency EWMA to ~0, flattening the Retry-After hint."""

    def test_release_floors_the_ewma(self):
        service = BasecampService(max_workers=1, queue_limit=0)
        service._admit()
        for _ in range(50):  # decay hard with zero-latency releases
            service._release(0.0)
            service._admit()
        service._release(0.0)
        assert service._ewma_seconds >= 0.001

    def test_saturated_hint_stays_in_clamp(self):
        service = BasecampService(max_workers=1, queue_limit=1)
        service._ewma_seconds = 0.0  # worst pre-floor state
        service._admit()
        service._admit()
        with pytest.raises(ServiceSaturated) as excinfo:
            service._admit()
        assert 1 <= excinfo.value.retry_after <= 30
        rejected = service.metrics.get("basecamp_responses_total")
        assert rejected.value(outcome="rejected") == 1


# -- logging -----------------------------------------------------------------


class TestLogging:
    def test_logfmt_line_shape(self):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("serve").info("request done %s", kv(status=200))
        line = stream.getvalue().strip()
        assert line.startswith("ts=")
        assert " level=info logger=repro.serve msg=" in line
        assert "status=200" in line

    def test_kv_quotes_when_needed(self):
        assert kv(path="/compile") == "path=/compile"
        assert kv(msg="two words") == 'msg="two words"'
        assert kv(expr="a=b") == 'expr="a=b"'

    def test_configure_is_idempotent(self):
        stream = io.StringIO()
        root = configure_logging("debug", stream=stream)
        configure_logging("error", stream=stream)
        handlers = [h for h in root.handlers
                    if isinstance(h, logging.StreamHandler)]
        assert len(handlers) == 1  # retuned, not stacked
        assert root.level == logging.ERROR
        get_logger("x").warning("dropped")
        assert stream.getvalue() == ""

    def test_resolve_level_rejects_unknown(self):
        assert resolve_level("DEBUG") == logging.DEBUG
        with pytest.raises(EverestError, match="unknown log level"):
            resolve_level("loud")


class TestGlobalRegistryInstrumentation:
    def test_codegen_cache_counter_moves(self):
        from repro.tensorpipe.codegen import compile_numpy

        counter = get_registry().counter(
            "repro_codegen_cache_total",
            "Executor compile-cache lookups by result", ("result",))
        before = counter.total()
        PipelineSession().execute(ADD, {"a": [1.0] * 6, "b": [2.0] * 6})
        assert compile_numpy is not None  # the instrumented entry point
        assert counter.total() > before
