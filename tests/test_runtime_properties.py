"""Property-style cross-policy assertions on small enumerable graphs.

The generative fuzzer (tests/test_workload_fuzz.py) checks the scheduler
invariant suite on random workloads; this module applies the *same*
checkers — imported from :mod:`tools.workloadfuzz`, so an invariant-
checker bug surfaces here on a readable case first — to an exhaustive
enumeration of tiny graphs:

* every DAG on 3 tasks (all 8 dependency patterns over the index order);
* the canonical ≤6-task shapes: chain, diamond, fan-out, fan-in, and a
  double diamond.

Every registered policy must satisfy every invariant on every graph.
"""

import itertools
import os
import sys

import pytest

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "tools")
)

from workloadfuzz import (  # noqa: E402
    ENGINE_INVARIANTS,
    NodeSpec,
    TaskSpec,
    WorkloadCase,
    check_incremental_heft,
    check_makespan_monotonic,
    run_case,
)

from repro.runtime.engine.policies import POLICIES  # noqa: E402

_NODES = [NodeSpec(cores=8, core_gflops=2.5, fpga=True),
          NodeSpec(cores=4, core_gflops=1.5, fpga=False)]

_SHAPES = {
    "chain6": [(), (0,), (1,), (2,), (3,), (4,)],
    "diamond": [(), (0,), (0,), (1, 2)],
    "fanout5": [(), (0,), (0,), (0,), (0,)],
    "fanin5": [(), (), (), (), (0, 1, 2, 3)],
    "double-diamond": [(), (0,), (0,), (1, 2), (3,), (3,)],
}
# All DAGs on 3 tasks: each of the 3 forward pairs is an edge or not.
for bits in itertools.product([0, 1], repeat=3):
    deps = {1: [], 2: []}
    if bits[0]:
        deps[1].append(0)
    if bits[1]:
        deps[2].append(0)
    if bits[2]:
        deps[2].append(1)
    _SHAPES[f"dag3-{bits[0]}{bits[1]}{bits[2]}"] = \
        [(), tuple(deps[1]), tuple(deps[2])]


def _case(name: str, shape) -> WorkloadCase:
    # Deterministic per-task resources: varied cores (including exactly
    # a node's capacity), one FPGA task when the graph is big enough.
    tasks = []
    for index, deps in enumerate(shape):
        cores = [1, 2, 4, 8, 3, 2][index % 6]
        fpga = index == 3
        tasks.append(TaskSpec(
            index=index, deps=tuple(deps), cores=cores,
            cpu_flops=1e9 * (index + 1), fpga=fpga,
            fpga_seconds=1e-3 if fpga else 0.0,
            output_bytes=4096 * index,
        ))
    return WorkloadCase(seed=0, nodes=list(_NODES),
                        tasks=tasks, arrivals=[(0.0, tuple(
                            range(len(tasks))))])


@pytest.mark.parametrize("name", sorted(_SHAPES))
@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_every_policy_satisfies_every_invariant(name, policy):
    case = _case(name, _SHAPES[name])
    engine, schedule, calls = run_case(case, policy)
    for invariant in ENGINE_INVARIANTS:
        invariant(case, policy, engine, schedule, calls)


@pytest.mark.parametrize("name", sorted(_SHAPES))
def test_heft_variants_and_monotonicity(name):
    case = _case(name, _SHAPES[name])
    check_incremental_heft(case)
    check_makespan_monotonic(case)
