"""Tests for the executor-backend registry, the tiled parallel runner
and the generated-C backend.

The registry contract: ``interpreter``, ``compiled``,
``compiled-parallel`` and ``cbackend`` produce bit-for-bit identical
float64 results on the golden kernels; an unknown name raises listing
the registered ones; the C backend either runs native code or falls
back to ``compiled`` with the reason recorded — and a compiler crash
mid-build can never poison the on-disk artifact cache.
"""

import os
import stat
import sys

import numpy as np
import pytest

from repro.errors import EverestError
from repro.frontends.ekl import FIG3_MAJOR_ABSORBER, parse_kernel
from repro.frontends.ekl.lower import lower_ekl_to_esn, lower_kernel_to_ekl
from repro.ir import CanonicalizePass, FusionPass, verify
from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine
from repro.tensorpipe.affine_interp import run_affine
from repro.tensorpipe.backends import (
    BACKENDS,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.tensorpipe.cbackend import (
    CBackend,
    clear_cbackend_cache,
    find_cc,
    probe_supported,
    reset_probe_cache,
)
from repro.tensorpipe.codegen import compile_affine
from repro.tensorpipe.parallel import (
    DEFAULT_TILE_THRESHOLD,
    _pool_for,
    make_tile,
    resolve_jobs,
    shutdown_pool,
    split_ranges,
    tile_threshold,
)

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))

ALL_BACKENDS = ["interpreter", "compiled", "compiled-parallel", "cbackend"]

GOLDEN = {
    "elementwise": """
kernel k {
  index i: 5
  input a[i]: f64
  input b[i]: f64
  output c
  c = a * b + 2.0
}
""",
    "contraction": """
kernel k {
  index i: 4, j: 5
  input A[i, j]: f64
  input x[j]: f64
  output y
  y = sum[j](A * x)
}
""",
    "gather": """
kernel k {
  index i: 4
  input idx[i]: i64
  input table[9]: f64
  output c
  c = table[idx]
}
""",
    "chain": """
kernel k {
  index i: 23, j: 3
  input a[i, j]: f64
  input b[i, j]: f64
  output out
  t0 = a * b + a
  t1 = sin(t0) - b
  out = sum[j](t1 * t1 + t0)
}
""",
}


def golden_inputs(name):
    rng = np.random.default_rng(hash(name) % (2 ** 31))
    if name == "elementwise":
        return {"a": rng.normal(size=5), "b": rng.normal(size=5)}
    if name == "contraction":
        return {"A": rng.normal(size=(4, 5)), "x": rng.normal(size=5)}
    if name == "gather":
        return {"idx": np.array([0, 8, 3, 3]), "table": np.arange(9.0)}
    return {"a": rng.normal(size=(23, 3)), "b": rng.normal(size=(23, 3))}


def lower_optimized(source):
    kernel = parse_kernel(source)
    module = lower_teil_to_affine(
        lower_esn_to_teil(
            lower_ekl_to_esn(lower_kernel_to_ekl(kernel),
                             canonicalize=False),
            canonicalize=False,
        ),
        canonicalize=False,
    )
    CanonicalizePass().run(module)
    FusionPass().run(module)
    verify(module)
    return kernel.name, module


class TestRegistry:
    def test_stock_backends_registered(self):
        assert set(ALL_BACKENDS) <= set(registered_backends())

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_resolve_by_name(self, name):
        assert resolve_backend(name).name == name

    def test_unknown_name_lists_registered(self):
        with pytest.raises(EverestError) as err:
            resolve_backend("copmiled")
        message = str(err.value)
        assert "copmiled" in message
        for name in ALL_BACKENDS:
            assert name in message

    def test_instance_passthrough(self):
        backend = resolve_backend("compiled")
        assert resolve_backend(backend) is backend

    def test_non_conforming_object_rejected(self):
        with pytest.raises(EverestError):
            resolve_backend(object())

    def test_register_custom_and_duplicate(self):
        class Custom:
            name = "custom-test"

            def compile(self, module, func_name, *, cache=True):
                return compile_affine(module, func_name, backend="compiled",
                                      cache=cache)

        try:
            register_backend(Custom())
            assert resolve_backend("custom-test").name == "custom-test"
            with pytest.raises(EverestError):
                register_backend(Custom())
            register_backend(Custom(), replace=True)
        finally:
            BACKENDS.pop("custom-test", None)

    def test_register_validates_interface(self):
        class NoCompile:
            name = "broken"

        with pytest.raises(EverestError):
            register_backend(NoCompile())
        with pytest.raises(EverestError):
            register_backend(type("Anon", (), {"name": "",
                                               "compile": lambda s: 0})())


class TestDifferential:
    @pytest.mark.parametrize("name", sorted(GOLDEN))
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_golden_bitwise(self, name, backend):
        func_name, module = lower_optimized(GOLDEN[name])
        inputs = golden_inputs(name)
        expected = run_affine(module, func_name, inputs)
        kernel = compile_affine(module, func_name, backend=backend)
        got = kernel.run(inputs)
        assert set(got) == set(expected)
        for key in expected:
            np.testing.assert_array_equal(
                got[key], expected[key],
                err_msg=f"{backend} diverges on {name}:{key}")

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_fig3_bitwise(self, backend, rrtmg_inputs):
        func_name, module = lower_optimized(FIG3_MAJOR_ABSORBER)
        expected = run_affine(module, func_name, rrtmg_inputs)
        kernel = compile_affine(module, func_name, backend=backend)
        got = kernel.run(rrtmg_inputs)
        for key in expected:
            np.testing.assert_array_equal(got[key], expected[key])


class TestParallel:
    def test_resolve_jobs_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(5) == 5
        assert resolve_jobs() == 3

    def test_resolve_jobs_default_capped(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert 1 <= resolve_jobs() <= 8

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_resolve_jobs_rejects_invalid_env(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_JOBS", bad)
        with pytest.raises(EverestError):
            resolve_jobs()

    def test_resolve_jobs_rejects_invalid_explicit(self):
        with pytest.raises(EverestError):
            resolve_jobs(0)

    def test_split_ranges_cover_and_balance(self):
        for extent in (1, 2, 7, 64, 97):
            for parts in (1, 2, 3, 8, 200):
                ranges = split_ranges(extent, parts)
                assert ranges[0][0] == 0 and ranges[-1][1] == extent
                sizes = [t1 - t0 for t0, t1 in ranges]
                assert sum(sizes) == extent
                assert max(sizes) - min(sizes) <= 1
                for (_, a), (b, _) in zip(ranges, ranges[1:]):
                    assert a == b

    def test_tile_runner_serial_below_threshold(self):
        calls = []
        tile = make_tile(jobs=4, threshold=1000)
        tile(lambda t0, t1: calls.append((t0, t1)), 8, work=10)
        assert calls == [(0, 8)]

    def test_tile_runner_splits_above_threshold(self):
        calls = []
        tile = make_tile(jobs=4, threshold=1)
        tile(lambda t0, t1: calls.append((t0, t1)), 8, work=10)
        assert sorted(calls) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_tile_runner_propagates_worker_exceptions(self):
        tile = make_tile(jobs=2, threshold=1)

        def boom(t0, t1):
            raise ValueError("worker failed")

        with pytest.raises(ValueError):
            tile(boom, 8, work=10)

    @pytest.mark.parametrize("jobs", [1, 2, 3, 5])
    def test_forced_tiling_is_bitwise(self, monkeypatch, jobs):
        monkeypatch.setenv("REPRO_TILE_THRESHOLD", "1")
        func_name, module = lower_optimized(GOLDEN["chain"])
        inputs = golden_inputs("chain")
        expected = compile_affine(module, func_name,
                                  backend="compiled").run(inputs)
        kernel = compile_affine(module, func_name,
                                backend="compiled-parallel")
        assert kernel.tileable_nests > 0
        got = kernel.run(inputs, jobs=jobs)
        for key in expected:
            np.testing.assert_array_equal(got[key], expected[key])

    def test_tile_threshold_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_TILE_THRESHOLD", raising=False)
        assert tile_threshold() == DEFAULT_TILE_THRESHOLD
        monkeypatch.setenv("REPRO_TILE_THRESHOLD", "123")
        assert tile_threshold() == 123

    @pytest.mark.parametrize("bad", ["lots", "-1", "1.5"])
    def test_tile_threshold_rejects_invalid_env(self, monkeypatch, bad):
        # Regression: a typo'd REPRO_TILE_THRESHOLD used to leak a raw
        # ValueError; it now validates like REPRO_JOBS.
        monkeypatch.setenv("REPRO_TILE_THRESHOLD", bad)
        with pytest.raises(EverestError, match="REPRO_TILE_THRESHOLD"):
            tile_threshold()

    def test_pool_grow_does_not_invalidate_held_pools(self):
        # Regression: growing the shared pool used to shutdown() the old
        # one, so a thread that fetched it before the grow crashed on
        # submit with "cannot schedule new futures after shutdown".
        shutdown_pool()
        try:
            held = _pool_for(2)
            grown = _pool_for(4)
            assert grown is not held
            assert held.submit(lambda: 42).result(timeout=10) == 42
        finally:
            shutdown_pool()

    def test_pool_grow_race_two_threads(self):
        import threading

        shutdown_pool()
        try:
            got_pool = threading.Event()
            grown = threading.Event()
            result = []

            def tile_thread():
                pool = _pool_for(2)
                got_pool.set()
                # The other thread grows the pool before we submit.
                assert grown.wait(timeout=10)
                result.append(pool.submit(lambda: "ran").result(timeout=10))

            worker = threading.Thread(target=tile_thread)
            worker.start()
            assert got_pool.wait(timeout=10)
            _pool_for(6)
            grown.set()
            worker.join(timeout=10)
            assert result == ["ran"]
        finally:
            shutdown_pool()

    def test_shutdown_pool_allows_reuse(self):
        tile = make_tile(jobs=2, threshold=1)
        out = []
        tile(lambda t0, t1: out.append((t0, t1)), 4, work=10)
        shutdown_pool()
        tile2 = make_tile(jobs=2, threshold=1)
        out2 = []
        tile2(lambda t0, t1: out2.append((t0, t1)), 4, work=10)
        assert sorted(out) == sorted(out2)

    def test_session_execute_accepts_jobs(self):
        from repro.pipeline.session import PipelineSession

        session = PipelineSession()
        rng = np.random.default_rng(9)
        inputs = {"a": rng.normal(size=(23, 3)),
                  "b": rng.normal(size=(23, 3))}
        got = session.execute(GOLDEN["chain"], inputs,
                              backend="compiled-parallel", jobs=2)
        ref = session.execute(GOLDEN["chain"], inputs,
                              backend="interpreter")
        np.testing.assert_array_equal(got.outputs["out"],
                                      ref.outputs["out"])


@pytest.fixture
def isolated_cbackend(monkeypatch, tmp_path):
    """Redirect the cbackend's disk cache and drop in-memory state so
    REPRO_CC / cache assertions see a fresh world."""
    monkeypatch.setenv("REPRO_CBACKEND_CACHE", str(tmp_path))
    clear_cbackend_cache()
    reset_probe_cache()
    yield tmp_path
    clear_cbackend_cache()
    reset_probe_cache()


class TestCBackend:
    def test_runs_native_or_records_fallback(self):
        func_name, module = lower_optimized(GOLDEN["elementwise"])
        kernel = compile_affine(module, func_name, backend="cbackend",
                                cache=False)
        if kernel.backend == "cbackend":
            assert not kernel.fallback
            assert "repro_kernel" in kernel.source
        else:
            assert kernel.backend == "compiled"
            assert kernel.fallback.startswith("cbackend:")

    def test_probe_rejected_op_falls_back_bitwise(self, isolated_cbackend):
        source = """
kernel k {
  index i: 12
  input a[i]: f64
  output out
  out = exp(a) + tanh(a)
}
"""
        func_name, module = lower_optimized(source)
        inputs = {"a": np.random.default_rng(11).normal(size=12)}
        expected = run_affine(module, func_name, inputs)
        kernel = compile_affine(module, func_name, backend="cbackend",
                                cache=False)
        cc = find_cc()
        supported = probe_supported(cc) if cc else None
        if supported is not None and {"math.exp", "math.tanh"} <= supported:
            assert kernel.backend == "cbackend"  # libm matches here
        else:
            assert kernel.backend == "compiled"
            assert "cbackend:" in kernel.fallback
        got = kernel.run(inputs)
        for key in expected:
            np.testing.assert_array_equal(got[key], expected[key])

    def test_no_compiler_falls_back_cleanly(self, isolated_cbackend,
                                            monkeypatch):
        monkeypatch.setattr("repro.tensorpipe.cbackend.find_cc",
                            lambda: None)
        func_name, module = lower_optimized(GOLDEN["elementwise"])
        kernel = CBackend().compile(module, func_name, cache=False)
        assert kernel.backend == "compiled"
        assert "no C compiler" in kernel.fallback
        inputs = golden_inputs("elementwise")
        expected = run_affine(module, func_name, inputs)
        got = kernel.run(inputs)
        np.testing.assert_array_equal(got["c"], expected["c"])

    def test_failing_cc_leaves_no_partial_artifact(self, isolated_cbackend,
                                                   monkeypatch, tmp_path):
        # A compiler that writes garbage to its -o target and then dies:
        # the atomic-rename install must keep the poison out of the
        # cache, and compilation must degrade to the numpy backend.
        poison_cc = tmp_path / "poison-cc.sh"
        poison_cc.write_text(
            "#!/bin/sh\n"
            "out=\"\"\n"
            "prev=\"\"\n"
            "for arg in \"$@\"; do\n"
            "  if [ \"$prev\" = \"-o\" ]; then out=\"$arg\"; fi\n"
            "  prev=\"$arg\"\n"
            "done\n"
            "if [ -n \"$out\" ]; then echo POISON > \"$out\"; fi\n"
            "exit 1\n")
        poison_cc.chmod(poison_cc.stat().st_mode | stat.S_IEXEC)
        monkeypatch.setenv("REPRO_CC", str(poison_cc))
        reset_probe_cache()
        func_name, module = lower_optimized(GOLDEN["elementwise"])
        kernel = CBackend().compile(module, func_name, cache=False)
        assert kernel.backend == "compiled"
        assert "cbackend:" in kernel.fallback
        leftovers = [name for name in os.listdir(isolated_cbackend)
                     if name.endswith(".so") or name.startswith(".")]
        assert leftovers == [], \
            f"poisoned/partial artifacts left behind: {leftovers}"
        inputs = golden_inputs("elementwise")
        expected = run_affine(module, func_name, inputs)
        np.testing.assert_array_equal(kernel.run(inputs)["c"],
                                      expected["c"])

    def test_disk_cache_reused_across_instances(self, isolated_cbackend):
        if find_cc() is None or probe_supported(find_cc()) is None:
            pytest.skip("no working C compiler on this host")
        func_name, module = lower_optimized(GOLDEN["elementwise"])
        first = CBackend().compile(module, func_name)
        assert first.backend == "cbackend"
        artifacts = [name for name in os.listdir(isolated_cbackend)
                     if name.endswith(".so")]
        assert artifacts  # probe + kernel objects installed atomically
        clear_cbackend_cache()
        second = CBackend().compile(module.clone(), func_name)
        assert second.backend == "cbackend"
        assert second.key == first.key

    def test_gather_wraps_negative_semantics(self, isolated_cbackend):
        # Golden gather uses in-range indices; the emitted C must match
        # numpy's advanced indexing bit-for-bit either way.
        func_name, module = lower_optimized(GOLDEN["gather"])
        inputs = golden_inputs("gather")
        expected = run_affine(module, func_name, inputs)
        kernel = CBackend().compile(module, func_name, cache=False)
        got = kernel.run(inputs)
        np.testing.assert_array_equal(got["c"], expected["c"])


class TestCLI:
    def test_run_backend_and_jobs(self, tmp_path, capsys):
        from repro.basecamp.cli import main

        source = tmp_path / "k.ekl"
        source.write_text(GOLDEN["chain"])
        code = main(["run", str(source), "--random-seed", "1",
                     "--backend", "compiled-parallel", "--jobs", "2",
                     "--time"])
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=compiled-parallel" in out

    def test_run_unknown_backend_lists_available(self, tmp_path, capsys):
        from repro.basecamp.cli import main

        source = tmp_path / "k.ekl"
        source.write_text(GOLDEN["elementwise"])
        code = main(["run", str(source), "--random-seed", "1",
                     "--backend", "copmiled"])
        assert code != 0
        err = capsys.readouterr().err
        assert "unknown executor backend" in err
        assert "compiled-parallel" in err
