"""DNN partitioning across network-attached FPGAs (the DOSA core).

Splits a sequential model into contiguous per-node partitions balancing
compute (MACs), then simulates steady-state pipelined inference over the
ZRLMPI fabric: each node computes its partition and streams its activation
tensor to the next rank over the 10 Gb/s link.  Throughput is limited by
the slowest stage — compute- or communication-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.dosa.osa import OperationSet, OSA_CLOUDFPGA, require_coverage
from repro.errors import EverestError
from repro.frontends.onnx_front import Model, run_layer
from repro.platforms.network import LinkModel, ZRLMPIFabric


@dataclass
class Partition:
    """One contiguous run of layers assigned to one FPGA rank."""

    rank: int
    layer_indices: List[int]
    macs: int
    output_bytes: int

    @property
    def num_layers(self) -> int:
        return len(self.layer_indices)


@dataclass
class PartitionPlan:
    """A complete model-to-ranks assignment."""

    model: Model
    partitions: List[Partition]
    operation_set: OperationSet

    @property
    def num_ranks(self) -> int:
        return len(self.partitions)

    def stage_compute_seconds(self, partition: Partition) -> float:
        return self.operation_set.layer_seconds(partition.macs)

    def stage_comm_seconds(self, partition: Partition,
                           link: LinkModel) -> float:
        if partition.rank == self.num_ranks - 1:
            return 0.0
        return link.message_seconds(partition.output_bytes)

    def bottleneck_seconds(self, link: Optional[LinkModel] = None) -> float:
        """Steady-state time per inference (pipeline bottleneck stage)."""
        link = link or LinkModel()
        return max(
            max(self.stage_compute_seconds(p), self.stage_comm_seconds(p, link))
            for p in self.partitions
        )

    def throughput_fps(self, link: Optional[LinkModel] = None) -> float:
        return 1.0 / self.bottleneck_seconds(link)


def partition_model(model: Model, num_ranks: int,
                    operation_set: OperationSet = OSA_CLOUDFPGA
                    ) -> PartitionPlan:
    """Balance contiguous layer runs across ``num_ranks`` by MAC count."""
    if num_ranks < 1:
        raise EverestError("need at least one rank")
    if num_ranks > len(model.layers):
        raise EverestError(
            f"{num_ranks} ranks for {len(model.layers)} layers"
        )
    require_coverage(model, operation_set)
    macs = [model.layer_macs(i) for i in range(len(model.layers))]
    partitions: List[Partition] = []
    start = 0
    running = 0
    rank = 0
    remaining_total = sum(macs)
    for i, layer_macs in enumerate(macs):
        running += layer_macs
        remaining_layers = len(macs) - i - 1
        ranks_after_this = num_ranks - rank - 1
        # Adaptive balance target: remaining work over remaining ranks.
        target = remaining_total / (num_ranks - rank)
        must_close = remaining_layers == ranks_after_this
        want_close = (running >= target and ranks_after_this > 0
                      and remaining_layers >= ranks_after_this)
        if (must_close or want_close) and ranks_after_this >= 0 \
                and rank < num_ranks - 1:
            out_shape = model.shape_after(i)
            partitions.append(Partition(
                rank, list(range(start, i + 1)), running,
                int(np.prod(out_shape)) * 4,  # f32 activations
            ))
            remaining_total -= running
            rank += 1
            start = i + 1
            running = 0
    out_shape = model.output_shape()
    partitions.append(Partition(
        rank, list(range(start, len(macs))), running,
        int(np.prod(out_shape)) * 4,
    ))
    if len(partitions) != num_ranks:
        raise EverestError(
            f"partitioning produced {len(partitions)} ranks, "
            f"wanted {num_ranks}"
        )
    return PartitionPlan(model, partitions, operation_set)


def simulate_pipeline(plan: PartitionPlan, batch: List[np.ndarray],
                      link: Optional[LinkModel] = None) -> dict:
    """Functionally execute a batch through the partitioned pipeline.

    Every sample flows rank to rank over a :class:`ZRLMPIFabric`; the
    result is bit-identical to single-node inference, plus the fabric's
    timing: makespan, messages and effective throughput.
    """
    fabric = ZRLMPIFabric(plan.num_ranks, link or LinkModel())
    outputs: List[np.ndarray] = []
    for sample_tag, sample in enumerate(batch):
        activation = sample
        for partition in plan.partitions:
            rank = partition.rank
            if rank > 0:
                activation = fabric.recv(rank, tag=sample_tag)
            for layer_index in partition.layer_indices:
                layer = plan.model.layers[layer_index]
                activation = run_layer(layer, activation)
            fabric.compute(rank, plan.stage_compute_seconds(partition))
            if rank < plan.num_ranks - 1:
                fabric.send(rank, rank + 1, activation,
                            int(activation.size) * 4, tag=sample_tag)
        outputs.append(activation)
    return {
        "outputs": outputs,
        "makespan_seconds": fabric.makespan,
        "messages": fabric.sent_messages,
        "bytes_on_wire": fabric.sent_bytes,
        "throughput_fps": len(batch) / fabric.makespan
        if fabric.makespan else float("inf"),
    }
