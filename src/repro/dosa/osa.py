"""Operation Set Architectures (OSA).

Ringlein et al. ("Advancing Compilation of DNNs for FPGAs using Operation
Set Architectures", IEEE CAL 2023) propose treating the set of operations a
DNN accelerator implements like an ISA: a compiler can then target any
engine that *covers* the model's operation set.  The paper uses this level
(the ``jabbah`` dialect) to converge ML frontends and to distribute models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List

from repro.errors import EverestError
from repro.frontends.onnx_front import Model


@dataclass(frozen=True)
class OperationSet:
    """The operation set one accelerator engine implements."""

    name: str
    ops: FrozenSet[str]
    # Sustained throughput per op kind, in MACs per cycle.
    macs_per_cycle: int = 64
    clock_mhz: float = 156.0

    def covers(self, kinds) -> bool:
        return set(kinds) <= self.ops

    def layer_seconds(self, macs: int) -> float:
        cycles = macs / self.macs_per_cycle
        return cycles / (self.clock_mhz * 1e6)


# The operation set of the cloudFPGA DNN engine (conv-centric inference set).
OSA_CLOUDFPGA = OperationSet(
    name="cloudfpga-haddoc-like",
    ops=frozenset({"conv2d", "relu", "maxpool2", "flatten", "dense"}),
    macs_per_cycle=64,
    clock_mhz=156.0,
)


def coverage(model: Model, operation_set: OperationSet) -> Dict[str, bool]:
    """Which model layers the operation set covers."""
    return {layer.name: layer.kind in operation_set.ops
            for layer in model.layers}


def require_coverage(model: Model, operation_set: OperationSet) -> None:
    missing: List[str] = [
        layer.name for layer in model.layers
        if layer.kind not in operation_set.ops
    ]
    if missing:
        raise EverestError(
            f"operation set {operation_set.name!r} does not cover: {missing}"
        )
