"""DOSA: organic compilation for DNN inference on distributed FPGAs.

The paper's system-generation tool for *network-attached* FPGAs (§V-C,
Ringlein et al., EDGE 2023): a DNN expressed at the Operation Set
Architecture level is partitioned across cloudFPGA nodes, and ZRLMPI
communication routines are inserted between partitions.
"""

from repro.dosa.osa import OperationSet, OSA_CLOUDFPGA, coverage
from repro.dosa.partition import (
    Partition,
    PartitionPlan,
    partition_model,
    simulate_pipeline,
)

__all__ = [
    "OperationSet",
    "OSA_CLOUDFPGA",
    "coverage",
    "Partition",
    "PartitionPlan",
    "partition_model",
    "simulate_pipeline",
]
