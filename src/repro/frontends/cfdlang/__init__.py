"""CFDlang: the legacy tensor DSL for fluid-dynamics methods (paper §V-A1).

The paper lists CFDlang (Rink et al., RWDSL 2018) among the DSLs the SDK
"leverages for physics simulations"; its dialect lowers to TeIL just like
EKL.  The subset implemented here covers the published language core:

* declarations: ``var input u : [m n]`` / ``var output v : [m]`` /
  ``var t : [m n]`` (dimensions are extents; scalars use ``[]``);
* assignments ``v = expr``;
* elementwise ``+ - * /``, outer product ``#``, and contraction
  ``expr . [[i j] [k l]]`` over 1-based dimension pairs.

Example (a matrix-vector product)::

    var input A : [4 5]
    var input x : [5]
    var output y : [4]
    y = (A # x) . [[2 3]]
"""

from repro.frontends.cfdlang.parser import parse_program
from repro.frontends.cfdlang.interp import run_program
from repro.frontends.cfdlang.lower import (
    lower_program_to_cfdlang,
    lower_cfdlang_to_teil,
)

__all__ = [
    "parse_program",
    "run_program",
    "lower_program_to_cfdlang",
    "lower_cfdlang_to_teil",
]
