"""Numpy reference interpreter for CFDlang programs."""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.errors import FrontendError, TypeCheckError
from repro.frontends.cfdlang.parser import Expr, Program


def _shape_of(expr: Expr, program: Program,
              env_shapes: Dict[str, Tuple[int, ...]]) -> Tuple[int, ...]:
    if expr.kind == "name":
        if expr.name in env_shapes:
            return env_shapes[expr.name]
        return program.decl(expr.name).shape
    if expr.kind == "num":
        return ()
    if expr.kind in ("add", "sub", "mul", "div"):
        lhs = _shape_of(expr.children[0], program, env_shapes)
        rhs = _shape_of(expr.children[1], program, env_shapes)
        if lhs and rhs and lhs != rhs:
            raise TypeCheckError(
                f"elementwise {expr.kind} on mismatched shapes {lhs} vs {rhs}"
            )
        return lhs or rhs
    if expr.kind == "product":
        lhs = _shape_of(expr.children[0], program, env_shapes)
        rhs = _shape_of(expr.children[1], program, env_shapes)
        return lhs + rhs
    if expr.kind == "contract":
        inner = _shape_of(expr.children[0], program, env_shapes)
        dropped = set()
        for a, b in expr.pairs:
            if not (1 <= a <= len(inner) and 1 <= b <= len(inner)):
                raise TypeCheckError(f"contraction pair ({a} {b}) out of range")
            if inner[a - 1] != inner[b - 1]:
                raise TypeCheckError(
                    f"contraction pair ({a} {b}) over unequal extents"
                )
            dropped.update((a - 1, b - 1))
        return tuple(e for i, e in enumerate(inner) if i not in dropped)
    raise FrontendError(f"unknown expression kind {expr.kind!r}")


def _eval(expr: Expr, program: Program, env: Dict[str, np.ndarray]):
    if expr.kind == "name":
        if expr.name not in env:
            raise FrontendError(f"value {expr.name!r} not available")
        return env[expr.name]
    if expr.kind == "num":
        return np.float64(expr.value)
    if expr.kind in ("add", "sub", "mul", "div"):
        a = _eval(expr.children[0], program, env)
        b = _eval(expr.children[1], program, env)
        return {"add": np.add, "sub": np.subtract, "mul": np.multiply,
                "div": np.divide}[expr.kind](a, b)
    if expr.kind == "product":
        a = _eval(expr.children[0], program, env)
        b = _eval(expr.children[1], program, env)
        return np.tensordot(a, b, axes=0)
    if expr.kind == "contract":
        inner = np.asarray(_eval(expr.children[0], program, env))
        # Contract each 1-based dimension pair via an einsum: paired
        # dimensions share a letter; unpaired dimensions survive in order.
        letters = [chr(ord("a") + i) for i in range(inner.ndim)]
        contracted = set()
        for a, b in expr.pairs:
            letters[b - 1] = letters[a - 1]
            contracted.update((a - 1, b - 1))
        out = "".join(letters[i] for i in range(inner.ndim)
                      if i not in contracted)
        return np.einsum(f"{''.join(letters)}->{out}", inner)
    raise FrontendError(f"unknown expression kind {expr.kind!r}")


def run_program(program: Program,
                inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Execute the program; returns its output tensors."""
    env: Dict[str, np.ndarray] = {}
    shapes: Dict[str, Tuple[int, ...]] = {}
    for decl in program.decls:
        if decl.io == "input":
            if decl.name not in inputs:
                raise FrontendError(f"missing input {decl.name!r}")
            array = np.asarray(inputs[decl.name], dtype=np.float64)
            if tuple(array.shape) != decl.shape:
                raise FrontendError(
                    f"input {decl.name!r}: expected {decl.shape}, "
                    f"got {tuple(array.shape)}"
                )
            env[decl.name] = array
            shapes[decl.name] = decl.shape
    for assign in program.assigns:
        shape = _shape_of(assign.value, program, shapes)
        declared = program.decl(assign.target).shape
        if shape != declared:
            raise TypeCheckError(
                f"assignment to {assign.target!r}: expression shape {shape} "
                f"does not match declaration {declared}"
            )
        env[assign.target] = np.asarray(_eval(assign.value, program, env))
        shapes[assign.target] = shape
    outputs = {}
    for decl in program.decls:
        if decl.io == "output":
            if decl.name not in env:
                raise FrontendError(f"output {decl.name!r} never assigned")
            outputs[decl.name] = env[decl.name]
    return outputs
