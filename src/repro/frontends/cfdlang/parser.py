"""Parser for the CFDlang subset."""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import FrontendError


@dataclass
class Decl:
    name: str
    io: str  # 'input' | 'output' | 'var'
    shape: Tuple[int, ...]
    line: int = 0


@dataclass
class Expr:
    """Expression tree node.

    ``kind`` is one of ``name``, ``num``, ``add``, ``sub``, ``mul``, ``div``,
    ``product`` (outer product ``#``) or ``contract`` with 1-based dimension
    ``pairs``.
    """

    kind: str
    name: str = ""
    value: float = 0.0
    children: List["Expr"] = field(default_factory=list)
    pairs: List[Tuple[int, int]] = field(default_factory=list)


@dataclass
class Assign:
    target: str
    value: Expr
    line: int = 0


@dataclass
class Program:
    decls: List[Decl] = field(default_factory=list)
    assigns: List[Assign] = field(default_factory=list)

    def decl(self, name: str) -> Decl:
        for d in self.decls:
            if d.name == name:
                return d
        raise FrontendError(f"undeclared tensor {name!r}")


_TOKEN_RE = re.compile(
    r"(?P<comment>//[^\n]*)|(?P<num>\d+\.\d*|\d+)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op>[-+*/#.:=\[\]()])|(?P<ws>\s+)|(?P<bad>.)"
)


class _Parser:
    def __init__(self, source: str):
        self.tokens: List[Tuple[str, str, int]] = []
        line = 1
        for m in _TOKEN_RE.finditer(source):
            kind, text = m.lastgroup, m.group(0)
            if kind in ("ws", "comment"):
                line += text.count("\n")
                continue
            if kind == "bad":
                raise FrontendError(f"bad character {text!r}", line, 0)
            self.tokens.append((kind, text, line))
        self.tokens.append(("eof", "", line))
        self.pos = 0

    def peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str, int]:
        tok = self.tokens[self.pos]
        if tok[0] != "eof":
            self.pos += 1
        return tok

    def expect(self, text: str) -> None:
        kind, got, line = self.next()
        if got != text:
            raise FrontendError(f"expected {text!r}, found {got!r}", line, 0)

    def parse(self) -> Program:
        program = Program()
        while self.peek()[0] != "eof":
            kind, text, line = self.peek()
            if text == "var":
                program.decls.append(self._parse_decl())
            else:
                program.assigns.append(self._parse_assign())
        return program

    def _parse_decl(self) -> Decl:
        _, _, line = self.next()  # 'var'
        kind, text, _ = self.peek()
        io = "var"
        if text in ("input", "output"):
            io = text
            self.next()
        name = self.next()[1]
        self.expect(":")
        self.expect("[")
        shape: List[int] = []
        while self.peek()[1] != "]":
            kind, text, tline = self.next()
            if kind != "num":
                raise FrontendError(f"expected extent, found {text!r}",
                                    tline, 0)
            shape.append(int(text))
        self.expect("]")
        return Decl(name, io, tuple(shape), line)

    def _parse_assign(self) -> Assign:
        kind, name, line = self.next()
        if kind != "ident":
            raise FrontendError(f"expected assignment target, got {name!r}",
                                line, 0)
        self.expect("=")
        value = self._parse_expr()
        return Assign(name, value, line)

    # precedence: contraction (postfix) > '#' > '*' '/' > '+' '-'
    def _parse_expr(self) -> Expr:
        lhs = self._parse_term()
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            rhs = self._parse_term()
            lhs = Expr("add" if op == "+" else "sub", children=[lhs, rhs])
        return lhs

    def _parse_term(self) -> Expr:
        lhs = self._parse_product()
        while self.peek()[1] in ("*", "/"):
            op = self.next()[1]
            rhs = self._parse_product()
            lhs = Expr("mul" if op == "*" else "div", children=[lhs, rhs])
        return lhs

    def _parse_product(self) -> Expr:
        lhs = self._parse_postfix()
        while self.peek()[1] == "#":
            self.next()
            rhs = self._parse_postfix()
            lhs = Expr("product", children=[lhs, rhs])
        return lhs

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self.peek()[1] == ".":
            self.next()
            self.expect("[")
            pairs: List[Tuple[int, int]] = []
            while self.peek()[1] == "[":
                self.next()
                a = int(self.next()[1])
                b = int(self.next()[1])
                self.expect("]")
                pairs.append((a, b))
            self.expect("]")
            expr = Expr("contract", children=[expr], pairs=pairs)
        return expr

    def _parse_primary(self) -> Expr:
        kind, text, line = self.next()
        if text == "(":
            inner = self._parse_expr()
            self.expect(")")
            return inner
        if kind == "num":
            return Expr("num", value=float(text))
        if kind == "ident":
            return Expr("name", name=text)
        raise FrontendError(f"unexpected token {text!r}", line, 0)


def parse_program(source: str) -> Program:
    """Parse CFDlang source text."""
    return _Parser(source).parse()
