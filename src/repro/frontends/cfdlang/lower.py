"""Lowering of CFDlang programs: frontend -> ``cfdlang`` dialect -> ``teil``.

The cfdlang dialect keeps the language's surface structure (declarations,
outer products, paired contractions); the teil lowering normalizes it to the
same sum-of-products form EKL reaches, so the rest of the flow (loop
generation, HLS, Olympus) is shared — the convergence the paper's Fig. 5
depicts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dialects import register_lowering
from repro.errors import LoweringError
from repro.frontends.cfdlang.parser import Expr, Program
from repro.ir import Builder, Module, Operation, Value, types as T
from repro.ir.core import Block, Region


@register_lowering("cfdlang-frontend", "cfdlang")
def lower_program_to_cfdlang(program: Program, name: str = "cfd") -> Module:
    """Lower a parsed program into a module holding one cfdlang.program."""
    module = Module()
    body = Block()
    program_op = Operation.create(
        "cfdlang.program", [], [], {"sym_name": name}, [Region([body])]
    )
    module.append(program_op)
    builder = Builder.at_end(body)
    env: Dict[str, Value] = {}
    for decl in program.decls:
        if decl.io != "input":
            continue
        op = builder.create(
            "cfdlang.decl", [], [T.TensorType(decl.shape, T.f64)],
            {"name": decl.name, "io": decl.io},
        )
        env[decl.name] = op.results[0]

    def lower_expr(expr: Expr) -> Value:
        if expr.kind == "name":
            if expr.name not in env:
                raise LoweringError(f"value {expr.name!r} unavailable")
            return env[expr.name]
        if expr.kind == "num":
            op = builder.create("arith.constant", [],
                                [T.TensorType((), T.f64)],
                                {"value": expr.value})
            return op.results[0]
        if expr.kind in ("add", "sub", "mul", "div"):
            lhs = lower_expr(expr.children[0])
            rhs = lower_expr(expr.children[1])
            ty = lhs.type if isinstance(lhs.type, T.TensorType) and \
                lhs.type.rank else rhs.type
            op = builder.create(f"cfdlang.{expr.kind}", [lhs, rhs], [ty])
            return op.results[0]
        if expr.kind == "product":
            lhs = lower_expr(expr.children[0])
            rhs = lower_expr(expr.children[1])
            shape = lhs.type.shape + rhs.type.shape
            op = builder.create("cfdlang.product", [lhs, rhs],
                                [T.TensorType(shape, T.f64)])
            return op.results[0]
        if expr.kind == "contract":
            inner = lower_expr(expr.children[0])
            dropped = set()
            for a, b in expr.pairs:
                dropped.update((a - 1, b - 1))
            shape = tuple(e for i, e in enumerate(inner.type.shape)
                          if i not in dropped)
            op = builder.create(
                "cfdlang.contract", [inner], [T.TensorType(shape, T.f64)],
                {"pairs": [list(p) for p in expr.pairs]},
            )
            return op.results[0]
        raise LoweringError(f"unknown expression kind {expr.kind!r}")

    for assign in program.assigns:
        value = lower_expr(assign.value)
        builder.create("cfdlang.assign", [value], [],
                       {"name": assign.target})
        env[assign.target] = value
    return module


@register_lowering("cfdlang", "teil")
def lower_cfdlang_to_teil(module: Module, *, canonicalize: bool = True) -> Module:
    """Convert cfdlang ops into teil tensor ops inside a func.

    Canonicalizes the result (fold/DCE/CSE) unless ``canonicalize=False``.
    """
    out = Module()
    for program_op in module.body:
        if program_op.name != "cfdlang.program":
            continue
        body = Block()
        func = Operation.create(
            "func.func", [], [],
            {"sym_name": program_op.attr("sym_name"),
             "function_type": T.FunctionType((), ()),
             "kernel_lang": "teil"},
            [Region([body])],
        )
        out.append(func)
        builder = Builder.at_end(body)
        mapping: Dict[Value, Value] = {}
        outputs: List[Value] = []
        output_names: List[str] = []
        for op in program_op.regions[0].entry:
            if op.name == "cfdlang.decl":
                axes = [f"d{i}" for i in range(op.results[0].type.rank)]
                new = builder.create("ekl.arg", [], [op.results[0].type],
                                     {"name": op.attr("name"), "axes": axes})
                mapping[op.results[0]] = new.results[0]
            elif op.name == "arith.constant":
                new = builder.create("arith.constant", [],
                                     [op.results[0].type],
                                     dict(op.attributes))
                mapping[op.results[0]] = new.results[0]
            elif op.name in ("cfdlang.add", "cfdlang.sub", "cfdlang.mul",
                             "cfdlang.div"):
                fn = {"add": "addf", "sub": "subf", "mul": "mulf",
                      "div": "divf"}[op.opname]
                rank = op.results[0].type.rank
                axes = [f"d{i}" for i in range(rank)]
                new = builder.create(
                    "teil.map", [mapping[o] for o in op.operands],
                    [op.results[0].type], {"fn": fn, "axes": axes},
                )
                mapping[op.results[0]] = new.results[0]
            elif op.name == "cfdlang.product":
                mapping[op.results[0]] = _lower_product(builder, op, mapping)
            elif op.name == "cfdlang.contract":
                mapping[op.results[0]] = _lower_contract(builder, op, mapping)
            elif op.name == "cfdlang.assign":
                outputs.append(mapping[op.operands[0]])
                output_names.append(op.attr("name"))
        builder.create("func.return", outputs, [], {"names": output_names})
    if canonicalize:
        from repro.ir.canonicalize import canonicalize_module

        canonicalize_module(out)
    return out


def _lower_product(builder: Builder, op: Operation,
                   mapping: Dict[Value, Value]) -> Value:
    """Outer product: broadcast both sides to the joint space, multiply."""
    lhs, rhs = op.operands
    joint = op.results[0].type
    lhs_rank = lhs.type.rank
    joint_axes = [f"d{i}" for i in range(joint.rank)]
    lhs_axes = joint_axes[:lhs_rank]
    rhs_axes = joint_axes[lhs_rank:]
    lhs_b = builder.create(
        "teil.broadcast", [mapping[lhs]], [joint],
        {"in_axes": lhs_axes, "axes": joint_axes},
    ).results[0]
    rhs_b = builder.create(
        "teil.broadcast", [mapping[rhs]], [joint],
        {"in_axes": rhs_axes, "axes": joint_axes},
    ).results[0]
    return builder.create("teil.map", [lhs_b, rhs_b], [joint],
                          {"fn": "mulf", "axes": joint_axes}).results[0]


def _lower_contract(builder: Builder, op: Operation,
                    mapping: Dict[Value, Value]) -> Value:
    """Paired contraction: a diagonal gather followed by a reduction."""
    inner = op.operands[0]
    inner_type = inner.type
    pairs = [(a - 1, b - 1) for a, b in op.attr("pairs")]
    # Diagonal extraction: axes in a pair share one loop index.  Model it as
    # a teil.gather whose output axes reuse the first axis label of each pair.
    labels = [f"d{i}" for i in range(inner_type.rank)]
    for a, b in pairs:
        labels[b] = labels[a]
    out_axes: List[str] = []
    diag_shape: List[int] = []
    for i, label in enumerate(labels):
        if label not in out_axes:
            out_axes.append(label)
            diag_shape.append(inner_type.shape[i])
    diag_type = T.TensorType(tuple(diag_shape), T.f64)
    diag = builder.create(
        "teil.gather", [mapping[inner]], [diag_type],
        {"axes": out_axes, "binding": [-1] * inner_type.rank,
         "base_axes": labels, "sub_axes": []},
    ).results[0]
    # Reduce the paired labels.
    contracted = sorted({labels[a] for a, _ in pairs})
    positions = [out_axes.index(label) for label in contracted]
    if not positions:
        return diag
    return builder.create(
        "teil.reduce", [diag], [op.results[0].type],
        {"axes": positions, "kind": "add",
         "out_axes": [a for a in out_axes if a not in contracted]},
    ).results[0]
