"""Axis-labelling rules of the EVEREST Kernel Language.

EKL values are *labelled tensors*: every axis is either **named** by an
Einstein index (``"x"``, ``"g"``) or **anonymous** (created by stacking
``[a, b]``).  These rules are shared by the interpreter and the dialect
lowering, so both agree exactly on shapes.

Subscript binding (the paper's "index re-association" and "subscripted
subscripts") works in two passes:

1. a subscript expression that is a *plain index name* matching a named axis
   of the base binds that axis;
2. the remaining expressions bind, in order, first the anonymous axes and
   then the still-unbound named axes.

Leftover *named* axes stay free (they keep participating in Einstein
matching by name); leftover *anonymous* axes are an error — a stacked value
must be fully bound before use in arithmetic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import TypeCheckError

_anon_counter = itertools.count()


@dataclass(frozen=True)
class Anon:
    """A unique label for one anonymous (stack-created) axis."""

    uid: int

    def __repr__(self) -> str:
        return f"<anon{self.uid}>"


def fresh_anon() -> Anon:
    return Anon(next(_anon_counter))


AxisLabel = object  # str for named axes, Anon for anonymous ones


def is_named(label: AxisLabel) -> bool:
    return isinstance(label, str)


def ordered_union(axes_lists: Sequence[Sequence[AxisLabel]]) -> List[AxisLabel]:
    """Union of axis labels, keeping first-appearance order."""
    seen: List[AxisLabel] = []
    for axes in axes_lists:
        for label in axes:
            if label not in seen:
                seen.append(label)
    return seen


def check_all_named(axes: Sequence[AxisLabel], context: str) -> None:
    for label in axes:
        if not is_named(label):
            raise TypeCheckError(
                f"{context}: value has an unbound stacked axis; "
                "subscript it to bind the axis before use"
            )


@dataclass
class SubscriptPlan:
    """How a subscript binds the base's axes.

    ``binding[i]`` is the subscript-expression position bound to base axis
    ``i``, or None when the (named) axis stays free.  ``result_axes`` is the
    axis order of the subscript's result.
    """

    binding: List[Optional[int]]
    result_axes: List[AxisLabel]


def plan_subscript(
    base_axes: Sequence[AxisLabel],
    sub_plain_index: Sequence[Optional[str]],
    sub_axes: Sequence[Sequence[AxisLabel]],
    context: str = "subscript",
) -> SubscriptPlan:
    """Compute the binding of subscript expressions to base axes.

    ``sub_plain_index[j]`` is the index name when subscript expression ``j``
    is a bare index, else None.  ``sub_axes[j]`` lists the free axes of
    subscript expression ``j``.
    """
    n_axes = len(base_axes)
    n_subs = len(sub_plain_index)
    if n_subs > n_axes:
        raise TypeCheckError(
            f"{context}: {n_subs} subscripts for a rank-{n_axes} value"
        )
    binding: List[Optional[int]] = [None] * n_axes
    used = [False] * n_subs
    # Pass 1: plain index names re-associate matching named axes.
    for j, plain in enumerate(sub_plain_index):
        if plain is None:
            continue
        for i, label in enumerate(base_axes):
            if binding[i] is None and label == plain:
                binding[i] = j
                used[j] = True
                break
    # Pass 2: remaining expressions bind anonymous axes first, then the
    # unbound named axes, in axis order.
    remaining_exprs = [j for j in range(n_subs) if not used[j]]
    anon_slots = [i for i, l in enumerate(base_axes)
                  if binding[i] is None and not is_named(l)]
    named_slots = [i for i, l in enumerate(base_axes)
                   if binding[i] is None and is_named(l)]
    slots = anon_slots + named_slots
    if len(remaining_exprs) > len(slots):
        raise TypeCheckError(f"{context}: too many subscript expressions")
    for j, slot in zip(remaining_exprs, slots):
        binding[slot] = j
    # Every anonymous axis must now be bound.
    for i, label in enumerate(base_axes):
        if binding[i] is None and not is_named(label):
            raise TypeCheckError(
                f"{context}: stacked axis #{i} left unbound"
            )
    # Result axes: walk base axes in order; bound axes contribute their
    # expression's axes, free named axes contribute themselves.
    contributions: List[Sequence[AxisLabel]] = []
    for i, label in enumerate(base_axes):
        if binding[i] is None:
            contributions.append([label])
        else:
            contributions.append(list(sub_axes[binding[i]]))
    return SubscriptPlan(binding, ordered_union(contributions))
