"""Numpy interpreter for the EVEREST Kernel Language.

This is both the language's reference semantics and the SDK's CPU execution
path: ``compile`` via :mod:`repro.frontends.ekl.lower` reuses the same axis
rules, so the interpreter's results validate the hardware path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FrontendError, TypeCheckError
from repro.frontends.ekl import ast
from repro.frontends.ekl.axes import (
    AxisLabel,
    check_all_named,
    fresh_anon,
    is_named,
    ordered_union,
    plan_subscript,
)

_DTYPES = {"f64": np.float64, "f32": np.float32, "i64": np.int64,
           "i32": np.int32}


@dataclass
class Labelled:
    """A value during evaluation: an ndarray plus one label per axis."""

    array: np.ndarray
    axes: Tuple[AxisLabel, ...]

    def __post_init__(self) -> None:
        if self.array.ndim != len(self.axes):
            raise TypeCheckError(
                f"internal: {self.array.ndim} dims vs {len(self.axes)} labels"
            )


class KernelEnv:
    """Declaration tables and the value environment of one kernel run."""

    def __init__(self, kernel: ast.Kernel):
        self.kernel = kernel
        self.consts: Dict[str, int] = {}
        for decl in kernel.consts:
            self.consts[decl.name] = decl.value
        self.index_extents: Dict[str, int] = {}
        for decl in kernel.indices:
            self.index_extents[decl.name] = self._resolve_extent(
                decl.extent, decl
            )
        self.inputs: Dict[str, ast.InputDecl] = {}
        for decl in kernel.inputs:
            self._check_input(decl)
            self.inputs[decl.name] = decl
        self.values: Dict[str, Labelled] = {}

    def _resolve_extent(self, extent, node) -> int:
        if isinstance(extent, int):
            return extent
        if extent in self.consts:
            return self.consts[extent]
        raise TypeCheckError(
            f"unknown extent {extent!r}", node.line, node.column
        )

    def _check_input(self, decl: ast.InputDecl) -> None:
        for dim in decl.dims:
            name = dim.index_name
            if name is not None and name not in self.index_extents \
                    and name not in self.consts:
                raise TypeCheckError(
                    f"input {decl.name!r}: unknown dimension {name!r}",
                    decl.line, decl.column,
                )

    def input_axes(self, decl: ast.InputDecl) -> Tuple[AxisLabel, ...]:
        """Axis labels of an input: index names where declared, else anon."""
        labels: List[AxisLabel] = []
        for dim in decl.dims:
            if dim.index_name is not None and dim.index_name in self.index_extents:
                labels.append(dim.index_name)
            else:
                labels.append(fresh_anon())
        return tuple(labels)

    def input_shape(self, decl: ast.InputDecl) -> Tuple[int, ...]:
        shape: List[int] = []
        for dim in decl.dims:
            if dim.index_name is not None and dim.index_name in self.index_extents:
                shape.append(self.index_extents[dim.index_name])
            else:
                shape.append(self._resolve_extent(dim.extent, decl))
        return tuple(shape)


def _align(values: Sequence[Labelled], context: str) -> Tuple[List[np.ndarray],
                                                              List[AxisLabel]]:
    """Broadcast values to a common axis ordering (all axes must be named)."""
    for value in values:
        check_all_named(value.axes, context)
    union = ordered_union([v.axes for v in values])
    arrays: List[np.ndarray] = []
    for value in values:
        present = [a for a in union if a in value.axes]
        perm = [value.axes.index(a) for a in present]
        arr = value.array.transpose(perm)
        shape = []
        dim = 0
        for a in union:
            if a in value.axes:
                shape.append(arr.shape[dim])
                dim += 1
            else:
                shape.append(1)
        arrays.append(arr.reshape(shape))
    return arrays, union


class Interpreter:
    """Evaluates one kernel over concrete numpy inputs."""

    def __init__(self, kernel: ast.Kernel):
        self.kernel = kernel
        self.env = KernelEnv(kernel)

    # -- public API --------------------------------------------------------------

    def run(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the kernel body; returns arrays for each declared output.

        Output arrays have their axes ordered as named-index
        first-appearance order of the defining expression (or the explicit
        target subscript order when the assignment wrote ``out[x, g] = ...``).
        """
        env = self.env
        env.values = {}
        for decl in self.kernel.inputs:
            if decl.name not in inputs:
                raise FrontendError(f"missing input {decl.name!r}")
            array = np.asarray(inputs[decl.name], dtype=_DTYPES[decl.dtype])
            expected = env.input_shape(decl)
            if tuple(array.shape) != expected:
                raise FrontendError(
                    f"input {decl.name!r}: expected shape {expected}, "
                    f"got {tuple(array.shape)}"
                )
            env.values[decl.name] = Labelled(array, env.input_axes(decl))
        for stmt in self.kernel.body:
            self._exec_assign(stmt)
        outputs: Dict[str, np.ndarray] = {}
        for out in self.kernel.outputs:
            if out.name not in env.values:
                raise FrontendError(f"output {out.name!r} was never assigned")
            value = env.values[out.name]
            check_all_named(value.axes, f"output {out.name!r}")
            outputs[out.name] = value.array
        return outputs

    def output_axes(self, name: str) -> Tuple[str, ...]:
        """Axis labels of an output after :meth:`run`."""
        return tuple(self.env.values[name].axes)  # type: ignore[return-value]

    # -- statements ---------------------------------------------------------------

    def _exec_assign(self, stmt: ast.Assign) -> None:
        if stmt.target in self.env.inputs or stmt.target in self.env.consts \
                or stmt.target in self.env.index_extents:
            raise TypeCheckError(
                f"cannot assign to declared name {stmt.target!r}",
                stmt.line, stmt.column,
            )
        value = self._eval(stmt.value)
        if stmt.target_axes is not None:
            check_all_named(value.axes, f"assignment to {stmt.target!r}")
            wanted = list(stmt.target_axes)
            if sorted(map(str, value.axes)) != sorted(wanted):
                raise TypeCheckError(
                    f"assignment to {stmt.target!r}: axes {wanted} do not "
                    f"match value axes {list(value.axes)}",
                    stmt.line, stmt.column,
                )
            perm = [value.axes.index(a) for a in wanted]
            value = Labelled(value.array.transpose(perm), tuple(wanted))
        self.env.values[stmt.target] = value

    # -- expressions ----------------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> Labelled:
        if isinstance(expr, ast.IntLit):
            return Labelled(np.asarray(expr.value, np.int64), ())
        if isinstance(expr, ast.FloatLit):
            return Labelled(np.asarray(expr.value, np.float64), ())
        if isinstance(expr, ast.Name):
            return self._eval_name(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self._eval(expr.operand)
            return Labelled(-operand.array, operand.axes)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr)
        if isinstance(expr, ast.StackExpr):
            return self._eval_stack(expr)
        if isinstance(expr, ast.SelectExpr):
            arrays, union = _align(
                [self._eval(expr.cond), self._eval(expr.then),
                 self._eval(expr.otherwise)],
                "select",
            )
            return Labelled(np.where(arrays[0], arrays[1], arrays[2]),
                            tuple(union))
        if isinstance(expr, ast.SumExpr):
            return self._eval_sum(expr)
        if isinstance(expr, ast.CallExpr):
            return self._eval_call(expr)
        raise FrontendError(f"unhandled expression node {type(expr).__name__}")

    def _eval_name(self, expr: ast.Name) -> Labelled:
        name = expr.ident
        env = self.env
        if name in env.values:
            return env.values[name]
        if name in env.index_extents:
            extent = env.index_extents[name]
            return Labelled(np.arange(extent, dtype=np.int64), (name,))
        if name in env.consts:
            return Labelled(np.asarray(env.consts[name], np.int64), ())
        raise TypeCheckError(f"unknown name {name!r}", expr.line, expr.column)

    def _eval_binop(self, expr: ast.BinOp) -> Labelled:
        lhs = self._eval(expr.lhs)
        rhs = self._eval(expr.rhs)
        arrays, union = _align([lhs, rhs], f"operator {expr.op!r}")
        a, b = arrays
        op = expr.op
        if op == "+":
            out = a + b
        elif op == "-":
            out = a - b
        elif op == "*":
            out = a * b
        elif op == "/":
            out = np.asarray(a, np.float64) / np.asarray(b, np.float64)
        elif op == "%":
            out = a % b
        elif op == "<=":
            out = a <= b
        elif op == "<":
            out = a < b
        elif op == ">=":
            out = a >= b
        elif op == ">":
            out = a > b
        elif op == "==":
            out = a == b
        elif op == "!=":
            out = a != b
        else:
            raise FrontendError(f"unknown operator {op!r}",
                                expr.line, expr.column)
        return Labelled(out, tuple(union))

    def _eval_subscript(self, expr: ast.Subscript) -> Labelled:
        base = self._eval(expr.base)
        sub_values = [self._eval(e) for e in expr.indices]
        for j, sub in enumerate(sub_values):
            check_all_named(sub.axes, f"subscript expression #{j}")
            if not np.issubdtype(sub.array.dtype, np.integer):
                raise TypeCheckError(
                    f"subscript expression #{j} is not integer-valued",
                    expr.line, expr.column,
                )
        plain = [
            e.ident if isinstance(e, ast.Name)
            and e.ident in self.env.index_extents else None
            for e in expr.indices
        ]
        plan = plan_subscript(
            base.axes, plain, [s.axes for s in sub_values],
            context=f"subscript at {expr.line}:{expr.column}",
        )
        result_axes = plan.result_axes
        # Build one integer index array per base axis, all aligned to
        # result_axes, then apply a single advanced-indexing gather.
        index_arrays: List[np.ndarray] = []
        for i, label in enumerate(base.axes):
            extent = base.array.shape[i]
            if plan.binding[i] is None:
                arr = np.arange(extent, dtype=np.int64)
                shape = [1] * len(result_axes)
                shape[result_axes.index(label)] = extent
                index_arrays.append(arr.reshape(shape))
            else:
                sub = sub_values[plan.binding[i]]
                index_arrays.append(_to_axes(sub, result_axes))
                low = sub.array.min(initial=0)
                high = sub.array.max(initial=0)
                if low < 0 or high >= extent:
                    raise FrontendError(
                        f"subscript out of bounds on axis #{i}: "
                        f"[{low}, {high}] not within [0, {extent})",
                        expr.line, expr.column,
                    )
        gathered = base.array[tuple(index_arrays)]
        return Labelled(gathered, tuple(result_axes))

    def _eval_stack(self, expr: ast.StackExpr) -> Labelled:
        values = [self._eval(e) for e in expr.elements]
        arrays, union = _align(values, "stack")
        broadcast = np.broadcast_shapes(*[a.shape for a in arrays])
        stacked = np.stack([np.broadcast_to(a, broadcast) for a in arrays],
                           axis=-1)
        return Labelled(stacked, tuple(union) + (fresh_anon(),))

    def _eval_sum(self, expr: ast.SumExpr) -> Labelled:
        body = self._eval(expr.body)
        check_all_named(body.axes, "sum")
        positions = []
        for name in expr.over:
            if name not in body.axes:
                raise TypeCheckError(
                    f"sum over {name!r}, but the body has axes "
                    f"{list(body.axes)}", expr.line, expr.column,
                )
            positions.append(body.axes.index(name))
        out = body.array.sum(axis=tuple(positions))
        remaining = tuple(a for a in body.axes if a not in expr.over)
        return Labelled(out, remaining)

    def _eval_call(self, expr: ast.CallExpr) -> Labelled:
        args = [self._eval(a) for a in expr.args]
        unary = {"exp": np.exp, "log": np.log, "sqrt": np.sqrt, "sin": np.sin,
                 "cos": np.cos, "tanh": np.tanh, "abs": np.abs}
        binary = {"min": np.minimum, "max": np.maximum, "pow": np.power}
        if expr.fn in unary:
            if len(args) != 1:
                raise TypeCheckError(f"{expr.fn} takes one argument",
                                     expr.line, expr.column)
            return Labelled(unary[expr.fn](args[0].array), args[0].axes)
        if expr.fn in binary:
            if len(args) != 2:
                raise TypeCheckError(f"{expr.fn} takes two arguments",
                                     expr.line, expr.column)
            arrays, union = _align(args, expr.fn)
            return Labelled(binary[expr.fn](arrays[0], arrays[1]),
                            tuple(union))
        raise TypeCheckError(f"unknown intrinsic {expr.fn!r}",
                             expr.line, expr.column)


def _to_axes(value: Labelled, target_axes: Sequence[AxisLabel]) -> np.ndarray:
    """Reshape/transpose ``value`` so its axes align with ``target_axes``."""
    present = [a for a in target_axes if a in value.axes]
    perm = [value.axes.index(a) for a in present]
    arr = value.array.transpose(perm)
    shape = []
    dim = 0
    for a in target_axes:
        if a in value.axes:
            shape.append(arr.shape[dim])
            dim += 1
        else:
            shape.append(1)
    return arr.reshape(shape)


def run_kernel(
    kernel: ast.Kernel, inputs: Mapping[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """Parseless entry point: execute an already-parsed kernel."""
    return Interpreter(kernel).run(inputs)
