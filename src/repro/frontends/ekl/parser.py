"""Recursive-descent parser for the EVEREST Kernel Language."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FrontendError
from repro.frontends.ekl import ast
from repro.frontends.ekl.lexer import Token, tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "==": 10, "!=": 10, "<=": 10, "<": 10, ">=": 10, ">": 10,
    "+": 20, "-": 20,
    "*": 30, "/": 30, "%": 30,
}

_INTRINSICS = frozenset({"exp", "log", "sqrt", "sin", "cos", "tanh", "abs",
                         "min", "max", "pow"})


class EKLParser:
    """Parses one ``kernel name { ... }`` definition."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str) -> FrontendError:
        tok = self.current
        return FrontendError(message, tok.line, tok.column)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def skip_newlines(self) -> None:
        while self.current.kind == "newline" or (
            self.current.kind == "op" and self.current.text == ";"
        ):
            self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.current
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            want = text or kind
            raise self.error(f"expected {want!r}, found {self.current.text!r}")
        return tok

    def end_statement(self) -> None:
        if self.current.kind == "eof":
            return
        if self.current.kind == "op" and self.current.text == "}":
            return
        if self.accept("newline") or self.accept("op", ";"):
            self.skip_newlines()
            return
        raise self.error(f"expected end of statement, found {self.current.text!r}")

    # -- kernel ------------------------------------------------------------------

    def parse_kernel(self) -> ast.Kernel:
        self.skip_newlines()
        self.expect("kw", "kernel")
        name = self.expect("ident").text
        self.expect("op", "{")
        self.skip_newlines()
        kernel = ast.Kernel(name=name)
        while not (self.current.kind == "op" and self.current.text == "}"):
            if self.current.kind == "eof":
                raise self.error("unexpected end of input inside kernel body")
            self._parse_statement(kernel)
        self.expect("op", "}")
        self.skip_newlines()
        if self.current.kind != "eof":
            raise self.error("trailing input after kernel")
        if not kernel.outputs:
            raise self.error(f"kernel {name!r} declares no outputs")
        return kernel

    def _parse_statement(self, kernel: ast.Kernel) -> None:
        tok = self.current
        if tok.kind == "kw" and tok.text == "const":
            kernel.consts.append(self._parse_const())
        elif tok.kind == "kw" and tok.text == "index":
            kernel.indices.extend(self._parse_index())
        elif tok.kind == "kw" and tok.text == "input":
            kernel.inputs.append(self._parse_input())
        elif tok.kind == "kw" and tok.text == "output":
            self.advance()
            while True:
                out = self.expect("ident")
                kernel.outputs.append(
                    ast.OutputDecl(out.text, line=out.line, column=out.column)
                )
                if not self.accept("op", ","):
                    break
            self.end_statement()
        else:
            kernel.body.append(self._parse_assign())

    def _parse_const(self) -> ast.ConstDecl:
        start = self.expect("kw", "const")
        name = self.expect("ident").text
        self.expect("op", "=")
        value = int(self.expect("int").text)
        self.end_statement()
        return ast.ConstDecl(name, value, line=start.line, column=start.column)

    def _parse_index(self) -> List[ast.IndexDecl]:
        start = self.expect("kw", "index")
        decls: List[ast.IndexDecl] = []
        while True:
            name = self.expect("ident").text
            self.expect("op", ":")
            if self.current.kind == "int":
                extent: object = int(self.advance().text)
            else:
                extent = self.expect("ident").text
            decls.append(
                ast.IndexDecl(name, extent, line=start.line, column=start.column)
            )
            if not self.accept("op", ","):
                break
        self.end_statement()
        return decls

    def _parse_input(self) -> ast.InputDecl:
        start = self.expect("kw", "input")
        name = self.expect("ident").text
        dims: List[ast.Dim] = []
        if self.accept("op", "["):
            while True:
                tok = self.current
                if tok.kind == "int":
                    self.advance()
                    dims.append(ast.Dim(int(tok.text), None,
                                        line=tok.line, column=tok.column))
                else:
                    ident = self.expect("ident").text
                    # Resolved later: index name -> named axis, const -> extent.
                    dims.append(ast.Dim(ident, ident,
                                        line=tok.line, column=tok.column))
                if not self.accept("op", ","):
                    break
            self.expect("op", "]")
        dtype = "f64"
        if self.accept("op", ":"):
            tok = self.current
            if tok.kind == "kw" and tok.text in ("f64", "f32", "i64", "i32"):
                dtype = self.advance().text
            else:
                raise self.error(f"unknown dtype {tok.text!r}")
        self.end_statement()
        return ast.InputDecl(name, dims, dtype, line=start.line,
                             column=start.column)

    def _parse_assign(self) -> ast.Assign:
        target = self.expect("ident")
        target_axes: Optional[List[str]] = None
        if self.accept("op", "["):
            target_axes = []
            while True:
                target_axes.append(self.expect("ident").text)
                if not self.accept("op", ","):
                    break
            self.expect("op", "]")
        self.expect("op", "=")
        value = self._parse_expr()
        self.end_statement()
        return ast.Assign(target.text, target_axes, value,
                          line=target.line, column=target.column)

    # -- expressions ----------------------------------------------------------------

    def _parse_expr(self, min_prec: int = 0) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self.current
            if tok.kind != "op" or tok.text not in _PRECEDENCE:
                return lhs
            prec = _PRECEDENCE[tok.text]
            if prec < min_prec:
                return lhs
            self.advance()
            rhs = self._parse_expr(prec + 1)
            lhs = ast.BinOp(tok.text, lhs, rhs, line=tok.line, column=tok.column)

    def _parse_unary(self) -> ast.Expr:
        tok = self.current
        if tok.kind == "op" and tok.text == "-":
            self.advance()
            operand = self._parse_unary()
            return ast.UnaryOp("-", operand, line=tok.line, column=tok.column)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self.current.kind == "op" and self.current.text == "[":
            open_tok = self.advance()
            indices: List[ast.Expr] = []
            while True:
                indices.append(self._parse_expr())
                if not self.accept("op", ","):
                    break
            self.expect("op", "]")
            expr = ast.Subscript(expr, indices, line=open_tok.line,
                                 column=open_tok.column)
        return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self.current
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(int(tok.text), line=tok.line, column=tok.column)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(float(tok.text), line=tok.line,
                                column=tok.column)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            inner = self._parse_expr()
            self.expect("op", ")")
            return inner
        if tok.kind == "op" and tok.text == "[":
            self.advance()
            elements: List[ast.Expr] = []
            while True:
                elements.append(self._parse_expr())
                if not self.accept("op", ","):
                    break
            self.expect("op", "]")
            return ast.StackExpr(elements, line=tok.line, column=tok.column)
        if tok.kind == "kw" and tok.text == "select":
            self.advance()
            self.expect("op", "(")
            cond = self._parse_expr()
            self.expect("op", ",")
            then = self._parse_expr()
            self.expect("op", ",")
            otherwise = self._parse_expr()
            self.expect("op", ")")
            return ast.SelectExpr(cond, then, otherwise, line=tok.line,
                                  column=tok.column)
        if tok.kind == "kw" and tok.text == "sum":
            self.advance()
            self.expect("op", "[")
            over: List[str] = []
            while True:
                over.append(self.expect("ident").text)
                if not self.accept("op", ","):
                    break
            self.expect("op", "]")
            self.expect("op", "(")
            body = self._parse_expr()
            self.expect("op", ")")
            return ast.SumExpr(over, body, line=tok.line, column=tok.column)
        if tok.kind == "ident":
            self.advance()
            if tok.text in _INTRINSICS and self.current.kind == "op" \
                    and self.current.text == "(":
                self.advance()
                args: List[ast.Expr] = [self._parse_expr()]
                while self.accept("op", ","):
                    args.append(self._parse_expr())
                self.expect("op", ")")
                return ast.CallExpr(tok.text, args, line=tok.line,
                                    column=tok.column)
            return ast.Name(tok.text, line=tok.line, column=tok.column)
        raise self.error(f"unexpected token {tok.text!r} in expression")


def parse_kernel(source: str) -> ast.Kernel:
    """Parse EKL source text into a :class:`~repro.frontends.ekl.ast.Kernel`."""
    return EKLParser(source).parse_kernel()
