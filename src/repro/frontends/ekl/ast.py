"""Abstract syntax tree for the EVEREST Kernel Language.

The language (documented fully in ``repro.frontends.ekl.__init__``) is a
declaration block followed by Einstein-notation assignments:

* indices have declared extents and name tensor axes;
* inputs declare dimensions either as extents (positional axes) or as index
  names (named axes, enabling bare use of the tensor in expressions);
* ``[a, b]`` stacks expressions along a new anonymous trailing axis
  ("in-place construction");
* subscripting re-associates named axes and binds anonymous axes;
* ``sum[i, j](expr)`` reduces over named indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


@dataclass
class Node:
    """Base AST node; every node records its source position."""

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


# -- expressions ------------------------------------------------------------------


@dataclass
class IntLit(Node):
    value: int


@dataclass
class FloatLit(Node):
    value: float


@dataclass
class Name(Node):
    """A bare identifier: an index, an input or an assigned variable."""

    ident: str


@dataclass
class BinOp(Node):
    op: str  # + - * / % and comparisons <= < >= > == !=
    lhs: "Expr"
    rhs: "Expr"


@dataclass
class UnaryOp(Node):
    op: str  # -
    operand: "Expr"


@dataclass
class Subscript(Node):
    """``base[e1, ..., ek]`` — tensor indexing / axis re-association."""

    base: "Expr"
    indices: List["Expr"]


@dataclass
class StackExpr(Node):
    """``[e1, e2, ...]`` — stack along a new anonymous trailing axis."""

    elements: List["Expr"]


@dataclass
class SelectExpr(Node):
    """``select(cond, a, b)`` — elementwise ternary choice."""

    cond: "Expr"
    then: "Expr"
    otherwise: "Expr"


@dataclass
class SumExpr(Node):
    """``sum[i, j](expr)`` — Einstein summation over named indices."""

    over: List[str]
    body: "Expr"


@dataclass
class CallExpr(Node):
    """Scalar intrinsic application: ``exp(x)``, ``sqrt(x)``, ...."""

    fn: str
    args: List["Expr"]


Expr = Union[
    IntLit, FloatLit, Name, BinOp, UnaryOp, Subscript, StackExpr, SelectExpr,
    SumExpr, CallExpr,
]


# -- declarations and statements --------------------------------------------------


@dataclass
class ConstDecl(Node):
    name: str
    value: int


@dataclass
class IndexDecl(Node):
    name: str
    extent: Union[int, str]  # an integer or a const name


@dataclass
class Dim(Node):
    """One declared input dimension: an extent or an index name."""

    extent: Optional[Union[int, str]]  # int literal or const name
    index_name: Optional[str]  # set when the dim is a named axis


@dataclass
class InputDecl(Node):
    name: str
    dims: List[Dim]  # empty for scalars
    dtype: str  # 'f64' | 'f32' | 'i64' | 'i32'


@dataclass
class OutputDecl(Node):
    name: str


@dataclass
class Assign(Node):
    """``target[axes...] = expr`` (the subscript on the target is optional)."""

    target: str
    target_axes: Optional[List[str]]
    value: Expr


Statement = Union[ConstDecl, IndexDecl, InputDecl, OutputDecl, Assign]


@dataclass
class Kernel(Node):
    """A complete EKL kernel."""

    name: str
    consts: List[ConstDecl] = field(default_factory=list)
    indices: List[IndexDecl] = field(default_factory=list)
    inputs: List[InputDecl] = field(default_factory=list)
    outputs: List[OutputDecl] = field(default_factory=list)
    body: List[Assign] = field(default_factory=list)

    def input_names(self) -> Tuple[str, ...]:
        return tuple(decl.name for decl in self.inputs)

    def output_names(self) -> Tuple[str, ...]:
        return tuple(decl.name for decl in self.outputs)
