"""Lexer for the EVEREST Kernel Language.

Statements are newline-terminated (like the paper's Fig. 3 listing);
newlines inside parentheses or brackets are insignificant, so multi-line
parenthesized expressions work naturally.  Semicolons are accepted as
explicit statement terminators as well.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import FrontendError

KEYWORDS = frozenset(
    {"kernel", "const", "index", "input", "output", "select", "sum", "f64",
     "f32", "i64", "i32"}
)

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|\#[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|==|!=|->|[-+*/%<>=(){}\[\],:;])
  | (?P<newline>\n)
  | (?P<ws>[ \t\r]+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'int' | 'float' | 'ident' | 'kw' | 'op' | 'newline' | 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize EKL source; raises :class:`FrontendError` on bad characters."""
    tokens: List[Token] = []
    depth = 0
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group(0)
        column = match.start() - line_start + 1
        if kind == "ws" or kind == "comment":
            pass
        elif kind == "newline":
            if depth == 0:
                if tokens and tokens[-1].kind != "newline":
                    tokens.append(Token("newline", "\n", line, column))
            line += 1
            line_start = match.end()
        elif kind == "bad":
            raise FrontendError(f"unexpected character {text!r}", line, column)
        else:
            # Only () and [] suppress newlines; {} delimits the kernel body,
            # where newlines must keep terminating statements.
            if text in "([":
                depth += 1
            elif text in ")]":
                depth = max(0, depth - 1)
            if kind == "ident" and text in KEYWORDS:
                kind = "kw"
            tokens.append(Token(kind, text, line, column))
    tokens.append(Token("eof", "", line, 1))
    return tokens


def strip_adjacent_newlines(tokens: List[Token]) -> Iterator[Token]:
    """Collapse runs of newline tokens (already done by tokenize)."""
    return iter(tokens)
