"""The EVEREST Kernel Language (EKL).

EKL is the paper's high-level kernel language (§V-A1): a "general syntax
for Einstein notation" extended — beyond what TVM or CFDlang offered — with
**in-place construction** (``[a, b]`` stacking), **broadcasting**, **index
re-association** and **subscripted subscripts** (tensors indexed by
tensor-valued expressions).  The paper's Fig. 3 shows the major-absorber
optical-depth computation of the WRF RRTMG radiation module; that exact
listing compiles and runs here (see :data:`FIG3_MAJOR_ABSORBER`).

Language summary
----------------

A kernel is declarations followed by assignments::

    kernel tau_major {
      const ncol = 16
      index x: ncol, t: 2, p: 2, e: 2, g: 16
      input press[x]: f64
      input strato: f64
      input bnd: i64
      input bnd_to_flav[2, 16]: i64
      output tau_abs
      i_strato = select(press[x] <= strato, 1, 0)
      ...
    }

* ``index name: extent`` declares an Einstein index;
* ``input name[dims]: dtype`` declares a tensor input; a dimension may be an
  index name (giving the axis that name, enabling bare use of the tensor)
  or an extent (a positional axis that must always be subscripted);
* ``output name`` marks an assigned variable as a kernel result;
* statements are newline-terminated; parenthesized expressions span lines.

Semantics: every value is a tensor whose axes are labelled by index names
(or anonymous, for stack-created axes).  Elementwise operators align
operands by axis *name* and broadcast.  ``x[i, j]`` binds axes by the
two-pass rule documented in :mod:`repro.frontends.ekl.axes`.  ``sum[i](e)``
contracts over named indices.  ``select(c, a, b)`` chooses elementwise.

The only divergence from the paper's listing: Fig. 3 reuses the name ``p``
both for the pressure input (``p[x]``) and the pressure-interpolation index
(``f_major[..., t, p, e]``).  EKL requires distinct names, so the pressure
input is called ``press`` here; every other token is verbatim.
"""

from repro.frontends.ekl import ast
from repro.frontends.ekl.interp import Interpreter, run_kernel
from repro.frontends.ekl.parser import parse_kernel

# The paper's Fig. 3 listing (see module docstring for the one rename).
# tau^M_g = sum_dT sum_dp sum_deta  r * alpha * k   — written with the
# figure's index names t (dT), p (dp), e (deta).
FIG3_MAJOR_ABSORBER = """
kernel tau_major {
  const ncol = 16
  const ngpt = 16
  const nbnd = 14
  const ntemp = 8
  const npress = 8
  const neta = 4

  index x: ncol, t: 2, p: 2, e: 2, g: ngpt

  input press[x]: f64
  input strato: f64
  input bnd: i64
  input bnd_to_flav[2, nbnd]: i64
  input j_T[x]: i64
  input j_p[x]: i64
  input j_eta[nbnd, x, p]: i64
  input r_mix[nbnd, x, 2]: f64
  input f_major[nbnd, x, 2, 2, 2]: f64
  input k_major[ntemp, npress, neta, ngpt]: f64

  output tau_abs

  i_strato = select(press[x] <= strato, 1, 0)
  i_flav = bnd_to_flav[i_strato, bnd]
  i_T = [j_T, j_T + 1]
  i_eta = [j_eta[i_flav[x], x, p], j_eta[i_flav[x], x, p] + 1]
  i_p = [j_p + i_strato, j_p + i_strato + 1]
  tau_abs = sum[t, p, e](r_mix[i_flav[x], x, e]
          * f_major[i_flav[x], x, t, p, e]
          * k_major[i_T[x, t], i_p[x, p], i_eta[x, e], g])
}
"""

__all__ = [
    "ast",
    "parse_kernel",
    "run_kernel",
    "Interpreter",
    "FIG3_MAJOR_ABSORBER",
]
