"""Lowering of EKL kernels into MLIR: AST -> ``ekl`` dialect -> ``esn``.

The first stage mirrors the interpreter's axis semantics (they share
:mod:`repro.frontends.ekl.axes`), producing one ``ekl`` op per AST node
annotated with axis labels and shaped tensor types.  The second stage
removes named axes: every value gets a fixed axis order, broadcasts become
explicit, products-with-summation become ``esn.einsum`` and subscripts
become ``esn.gather``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dialects import register_lowering
from repro.errors import LoweringError, TypeCheckError
from repro.frontends.ekl import ast
from repro.frontends.ekl.axes import (
    Anon,
    AxisLabel,
    check_all_named,
    fresh_anon,
    is_named,
    ordered_union,
    plan_subscript,
)
from repro.frontends.ekl.interp import KernelEnv
from repro.ir import Builder, Module, Operation, Value, types as T


def _axis_attr(axes: Sequence[AxisLabel]) -> List[str]:
    return [a if is_named(a) else f"~{a.uid}" for a in axes]


_DTYPE_TYPES = {"f64": T.f64, "f32": T.f32, "i64": T.i64, "i32": T.i32,
                "i1": T.i1}


@dataclass
class Shaped:
    """Lowering-time value descriptor: IR value + axes + extents + dtype."""

    value: Value
    axes: Tuple[AxisLabel, ...]
    shape: Tuple[int, ...]
    dtype: str

    def extent_of(self, label: AxisLabel) -> int:
        return self.shape[self.axes.index(label)]


class EKLLowering:
    """AST -> ``ekl`` dialect for one kernel."""

    def __init__(self, kernel: ast.Kernel):
        self.kernel = kernel
        self.env = KernelEnv(kernel)
        self.values: Dict[str, Shaped] = {}
        self.builder: Builder = Builder()

    def lower(self) -> Module:
        """Produce a module holding one ``ekl.kernel``."""
        from repro.ir.core import Block, Region

        module = Module()
        body = Block()
        region = Region([body])
        index_space = {
            name: extent for name, extent in self.env.index_extents.items()
        }
        kernel_op = Operation.create(
            "ekl.kernel", [], [],
            {"sym_name": self.kernel.name, "index_space": index_space},
            [region],
        )
        module.append(kernel_op)
        self.builder = Builder.at_end(body)
        for decl in self.kernel.inputs:
            axes = self.env.input_axes(decl)
            shape = self.env.input_shape(decl)
            op = self.builder.create(
                "ekl.arg", [], [T.TensorType(shape, _DTYPE_TYPES[decl.dtype])],
                {"name": decl.name, "axes": _axis_attr(axes)},
            )
            self.values[decl.name] = Shaped(op.result, axes, shape, decl.dtype)
        for stmt in self.kernel.body:
            self._lower_assign(stmt)
        outputs = []
        names = []
        for out in self.kernel.outputs:
            if out.name not in self.values:
                raise LoweringError(f"output {out.name!r} never assigned")
            outputs.append(self.values[out.name].value)
            names.append(out.name)
        self.builder.create("ekl.yield", outputs, [], {"names": names})
        return module

    # -- statements ------------------------------------------------------------

    def _lower_assign(self, stmt: ast.Assign) -> None:
        shaped = self._lower_expr(stmt.value)
        if stmt.target_axes is not None:
            check_all_named(shaped.axes, f"assignment to {stmt.target!r}")
            wanted = tuple(stmt.target_axes)
            if sorted(map(str, shaped.axes)) != sorted(wanted):
                raise TypeCheckError(
                    f"assignment to {stmt.target!r}: axes mismatch",
                    stmt.line, stmt.column,
                )
            if wanted != shaped.axes:
                perm = [shaped.axes.index(a) for a in wanted]
                new_shape = tuple(shaped.shape[i] for i in perm)
                op = self.builder.create(
                    "ekl.subscript", [shaped.value],
                    [T.TensorType(new_shape, _DTYPE_TYPES[shaped.dtype])],
                    {"axes": _axis_attr(wanted), "reassociate": list(wanted)},
                )
                shaped = Shaped(op.result, wanted, new_shape, shaped.dtype)
        self.values[stmt.target] = shaped

    # -- expressions --------------------------------------------------------------

    def _make(self, name: str, operands: Sequence[Shaped],
              axes: Sequence[AxisLabel], shape: Sequence[int], dtype: str,
              extra_attrs: Optional[dict] = None) -> Shaped:
        attrs = {"axes": _axis_attr(axes)}
        attrs.update(extra_attrs or {})
        op = self.builder.create(
            name, [s.value for s in operands],
            [T.TensorType(tuple(shape), _DTYPE_TYPES[dtype])], attrs,
        )
        return Shaped(op.result, tuple(axes), tuple(shape), dtype)

    def _union_shape(self, operands: Sequence[Shaped]) -> Tuple[
            List[AxisLabel], List[int]]:
        union = ordered_union([s.axes for s in operands])
        shape = []
        for label in union:
            extent = None
            for s in operands:
                if label in s.axes:
                    extent = s.extent_of(label)
                    break
            shape.append(extent if extent is not None else 1)
        return union, shape

    def _lower_expr(self, expr: ast.Expr) -> Shaped:
        if isinstance(expr, ast.IntLit):
            return self._make("ekl.literal", [], [], [], "i64",
                              {"value": expr.value})
        if isinstance(expr, ast.FloatLit):
            return self._make("ekl.literal", [], [], [], "f64",
                              {"value": expr.value})
        if isinstance(expr, ast.Name):
            return self._lower_name(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self._lower_expr(expr.operand)
            zero = self._make("ekl.literal", [], [], [], operand.dtype,
                              {"value": 0 if operand.dtype.startswith("i")
                               else 0.0})
            return self._make("ekl.sub", [zero, operand], operand.axes,
                              operand.shape, operand.dtype)
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, ast.Subscript):
            return self._lower_subscript(expr)
        if isinstance(expr, ast.StackExpr):
            operands = [self._lower_expr(e) for e in expr.elements]
            for operand in operands:
                check_all_named(operand.axes, "stack")
            union, shape = self._union_shape(operands)
            dtype = _join_dtype([s.dtype for s in operands])
            return self._make("ekl.stack", operands,
                              list(union) + [fresh_anon()],
                              shape + [len(operands)], dtype)
        if isinstance(expr, ast.SelectExpr):
            cond = self._lower_expr(expr.cond)
            then = self._lower_expr(expr.then)
            other = self._lower_expr(expr.otherwise)
            union, shape = self._union_shape([cond, then, other])
            dtype = _join_dtype([then.dtype, other.dtype])
            return self._make("ekl.select", [cond, then, other], union,
                              shape, dtype)
        if isinstance(expr, ast.SumExpr):
            body = self._lower_expr(expr.body)
            check_all_named(body.axes, "sum")
            for name in expr.over:
                if name not in body.axes:
                    raise TypeCheckError(
                        f"sum over {name!r} not in body axes",
                        expr.line, expr.column,
                    )
            axes = [a for a in body.axes if a not in expr.over]
            shape = [body.extent_of(a) for a in axes]
            return self._make("ekl.sum", [body], axes, shape, body.dtype,
                              {"over": list(expr.over)})
        if isinstance(expr, ast.CallExpr):
            operands = [self._lower_expr(a) for a in expr.args]
            union, shape = self._union_shape(operands)
            dtype = "f64" if expr.fn not in ("min", "max") else \
                _join_dtype([s.dtype for s in operands])
            return self._make("ekl.call", operands, union, shape, dtype,
                              {"fn": expr.fn})
        raise LoweringError(f"unhandled AST node {type(expr).__name__}")

    def _lower_name(self, expr: ast.Name) -> Shaped:
        name = expr.ident
        if name in self.values:
            return self.values[name]
        if name in self.env.index_extents:
            extent = self.env.index_extents[name]
            return self._make("ekl.index", [], [name], [extent], "i64",
                              {"name": name})
        if name in self.env.consts:
            return self._make("ekl.literal", [], [], [], "i64",
                              {"value": self.env.consts[name]})
        raise TypeCheckError(f"unknown name {name!r}", expr.line, expr.column)

    _BINOP_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div",
                  "%": "mod", "<=": "cmp_le", "<": "cmp_lt",
                  ">=": "cmp_ge", ">": "cmp_gt", "==": "cmp_eq"}

    def _lower_binop(self, expr: ast.BinOp) -> Shaped:
        lhs = self._lower_expr(expr.lhs)
        rhs = self._lower_expr(expr.rhs)
        union, shape = self._union_shape([lhs, rhs])
        kind = self._BINOP_OPS.get(expr.op)
        if kind is None:
            raise LoweringError(f"operator {expr.op!r} not lowerable")
        if kind.startswith("cmp"):
            dtype = "i1"
        elif kind == "div":
            dtype = "f64"
        else:
            dtype = _join_dtype([lhs.dtype, rhs.dtype])
        opname = "ekl.mul" if kind == "mod" else f"ekl.{kind}"
        return self._make(opname, [lhs, rhs], union, shape, dtype)

    def _lower_subscript(self, expr: ast.Subscript) -> Shaped:
        base = self._lower_expr(expr.base)
        subs = [self._lower_expr(e) for e in expr.indices]
        for j, sub in enumerate(subs):
            check_all_named(sub.axes, f"subscript expression #{j}")
        plain = [
            e.ident if isinstance(e, ast.Name)
            and e.ident in self.env.index_extents else None
            for e in expr.indices
        ]
        plan = plan_subscript(base.axes, plain, [s.axes for s in subs],
                              context=f"subscript at {expr.line}")
        result_axes = plan.result_axes
        shape = []
        for label in result_axes:
            extent = None
            for source in [base] + subs:
                if label in source.axes:
                    extent = source.extent_of(label)
                    break
            shape.append(extent if extent is not None else 1)
        binding_attr = [b if b is not None else -1 for b in plan.binding]
        return self._make(
            "ekl.subscript", [base] + subs, result_axes, shape, base.dtype,
            {"binding": binding_attr},
        )


def _join_dtype(dtypes: Sequence[str]) -> str:
    """Usual arithmetic conversions: any float operand makes the result f64."""
    if any(d.startswith("f") for d in dtypes):
        return "f64" if "f64" in dtypes or "i64" in dtypes else "f32"
    if "i64" in dtypes:
        return "i64"
    if all(d == "i1" for d in dtypes):
        return "i1"
    return "i64"


@register_lowering("ekl-frontend", "ekl")
def lower_kernel_to_ekl(kernel: ast.Kernel) -> Module:
    """Front door: EKL AST to a module holding one ``ekl.kernel``."""
    return EKLLowering(kernel).lower()


@register_lowering("ekl", "esn")
def lower_ekl_to_esn(module: Module, *, canonicalize: bool = True) -> Module:
    """Convert ``ekl`` ops into the Einstein-notation dialect.

    Named axes disappear: every value receives a concrete axis order (the
    ``axes`` attribute order from the ekl level) and broadcasts, gathers,
    einsums and maps become explicit.  The result is canonicalized
    (fold/DCE/CSE, see :mod:`repro.ir.canonicalize`) unless
    ``canonicalize=False`` asks for the raw lowering.
    """
    from repro.ir.canonicalize import canonicalize_module
    from repro.ir.core import Block, Region

    out = Module()
    for op in module.body:
        if op.name != "ekl.kernel":
            continue
        body = Block()
        region = Region([body])
        func = Operation.create(
            "func.func", [], [],
            {"sym_name": op.attr("sym_name"),
             "function_type": T.FunctionType((), ()),
             "kernel_lang": "esn"},
            [region],
        )
        out.append(func)
        builder = Builder.at_end(body)
        mapping: Dict[Value, Value] = {}
        for inner in op.regions[0].entry:
            _convert_ekl_op(inner, builder, mapping)
    return canonicalize_module(out) if canonicalize else out


_EKL_TO_MAP_FN = {"ekl.add": "addf", "ekl.sub": "subf", "ekl.mul": "mulf",
                  "ekl.div": "divf", "ekl.min": "minimumf",
                  "ekl.max": "maximumf", "ekl.cmp_le": "cmp_le",
                  "ekl.cmp_lt": "cmp_lt", "ekl.cmp_ge": "cmp_ge",
                  "ekl.cmp_gt": "cmp_gt", "ekl.cmp_eq": "cmp_eq"}


def _convert_ekl_op(op: Operation, builder: Builder,
                    mapping: Dict[Value, Value]) -> None:
    def operand(i: int) -> Value:
        return mapping[op.operands[i]]

    axes = op.attr("axes")
    if op.name == "ekl.arg":
        new = builder.create("ekl.arg", [], [op.results[0].type],
                             {"name": op.attr("name"), "axes": axes})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "ekl.literal":
        new = builder.create("arith.constant", [], [op.results[0].type],
                             {"value": op.attr("value")})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "ekl.index":
        extent = op.results[0].type.shape[0]
        new = builder.create("esn.iota", [], [op.results[0].type],
                             {"extent": extent, "axes": axes})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name in _EKL_TO_MAP_FN:
        operands = [_broadcast_to(builder, mapping[o], op, axes)
                    for o in op.operands]
        new = builder.create("esn.map", operands, [op.results[0].type],
                             {"fn": _EKL_TO_MAP_FN[op.name], "axes": axes})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "ekl.call":
        operands = [_broadcast_to(builder, mapping[o], op, axes)
                    for o in op.operands]
        new = builder.create("esn.map", operands, [op.results[0].type],
                             {"fn": op.attr("fn"), "axes": axes})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "ekl.select":
        operands = [_broadcast_to(builder, mapping[o], op, axes)
                    for o in op.operands]
        new = builder.create("esn.select", operands, [op.results[0].type],
                             {"axes": axes})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "ekl.stack":
        operands = [_broadcast_to(builder, mapping[o], op, axes[:-1])
                    for o in op.operands]
        new = builder.create("esn.stack", operands, [op.results[0].type],
                             {"axes": axes})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "ekl.subscript":
        operands = [mapping[o] for o in op.operands]
        new = builder.create(
            "esn.gather", operands, [op.results[0].type],
            {"spec": "reassoc", "axes": axes,
             "binding": op.attr("binding") or [],
             "base_axes": _producer_axes(op.operands[0]),
             "sub_axes": [
                 _producer_axes(o) for o in op.operands[1:]
             ]},
        )
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "ekl.sum":
        # Fuse mul-trees under a sum into one einsum when possible.
        source = op.operands[0]
        factors = _collect_mul_factors(source)
        if factors is not None and len(factors) >= 2:
            spec, ordered = _einsum_spec(factors, op)
            new = builder.create(
                "esn.einsum", [mapping[f] for f in ordered],
                [op.results[0].type], {"spec": spec, "axes": axes},
            )
            mapping[op.results[0]] = new.results[0]
            return
        body_axes = _producer_axes(op.operands[0])
        positions = [body_axes.index(n) for n in op.attr("over")]
        new = builder.create("esn.reduce", [operand(0)],
                             [op.results[0].type],
                             {"axes": positions, "out_axes": axes})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "ekl.yield":
        builder.create("func.return", [mapping[o] for o in op.operands], [],
                       {"names": op.attr("names")})
        return
    raise LoweringError(f"cannot convert {op.name} to esn")


def _axes_of(producer: Operation) -> Optional[List[str]]:
    """The axis *labels* of an op's result.

    ``esn.reduce`` keeps its reduction positions (ints) in ``axes`` and
    the surviving output labels in ``out_axes`` — consumers of the result
    must read the latter or they would treat positions as labels (this
    miscompiled every kernel that reuses a ``sum[...]`` result in a later
    broadcasting expression; found by the executor fuzzer).
    """
    out_axes = producer.attr("out_axes")
    if out_axes is not None:
        return out_axes
    return producer.attr("axes")


def _producer_axes(value: Value) -> List[str]:
    producer = value.owner_op()
    if producer is None:
        raise LoweringError("esn conversion: value has no producer")
    return _axes_of(producer) or []


def _broadcast_to(builder: Builder, value: Value, user: Operation,
                  target_axes: List[str]) -> Value:
    """Insert an esn.broadcast unless the axes already match."""
    source_axes = None
    producer = value.owner_op()
    if producer is not None:
        source_axes = _axes_of(producer)
    if source_axes == list(target_axes):
        return value
    result_elem = value.type.element if isinstance(value.type, T.TensorType) \
        else value.type
    user_type = user.results[0].type
    shape = []
    source_shape = value.type.shape if isinstance(value.type, T.TensorType) \
        else ()
    for i, label in enumerate(target_axes):
        if source_axes and label in source_axes:
            shape.append(source_shape[source_axes.index(label)])
        else:
            shape.append(user_type.shape[i]
                         if isinstance(user_type, T.TensorType) else 1)
    op = builder.create(
        "esn.broadcast", [value],
        [T.TensorType(tuple(shape), result_elem)],
        {"in_axes": source_axes or [], "axes": list(target_axes)},
    )
    return op.results[0]


def _collect_mul_factors(value: Value) -> Optional[List[Value]]:
    """Flatten a tree of ekl.mul ops into its leaf factors."""
    producer = value.owner_op()
    if producer is None:
        return None
    if producer.name != "ekl.mul":
        return None
    factors: List[Value] = []

    def walk(v: Value) -> None:
        p = v.owner_op()
        if p is not None and p.name == "ekl.mul":
            for o in p.operands:
                walk(o)
        else:
            factors.append(v)

    walk(value)
    return factors


def _einsum_spec(factors: List[Value], sum_op: Operation) -> Tuple[str, List[Value]]:
    """Build an einsum spec string from factor axes and the sum's result."""
    letters = "abcdefghijklmnopqrstuvwxyz"
    label_to_letter: Dict[str, str] = {}

    def letter_for(label: str) -> str:
        if label not in label_to_letter:
            label_to_letter[label] = letters[len(label_to_letter)]
        return label_to_letter[label]

    parts = []
    for factor in factors:
        axes = _producer_axes(factor)
        parts.append("".join(letter_for(a) for a in axes))
    out_axes = sum_op.attr("axes") or []
    out = "".join(letter_for(a) for a in out_axes)
    return ",".join(parts) + "->" + out, factors
