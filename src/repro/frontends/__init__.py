"""Language frontends of the EVEREST SDK.

* :mod:`repro.frontends.ekl` — the EVEREST Kernel Language (Einstein
  notation tensor kernels, paper §V-A1, Fig. 3);
* :mod:`repro.frontends.condrust` — the ConDRust coordination language
  (deterministic dataflow from a Rust subset, paper §V-A2, Fig. 4);
* :mod:`repro.frontends.cfdlang` — the legacy CFDlang tensor DSL;
* :mod:`repro.frontends.onnx_front` — ONNX-like ML model ingestion feeding
  the jabbah operation-set dialect and DOSA.
"""
