"""ONNX-like model ingestion (the SDK's ML entry point).

The paper: "As input, the SDK supports standard ONNX ML models" which are
read into the ``jabbah`` dialect and handled at the Operation Set
Architecture (OSA) level for distribution by DOSA.  Offline we define a
minimal ONNX-equivalent model description — a sequential graph of the
standard inference layers — with

* a numpy forward pass (:meth:`Model.forward`) used as the functional
  reference,
* a lowering into ``jabbah`` IR (:func:`lower_model_to_jabbah`),
* per-layer compute/parameter statistics that DOSA's partitioner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dialects import register_lowering
from repro.errors import FrontendError
from repro.ir import Builder, Module, Operation, types as T
from repro.ir.core import Block, Region


@dataclass
class Layer:
    """One layer of a sequential model.

    ``kind`` is one of ``conv2d``, ``relu``, ``maxpool2``, ``flatten``,
    ``dense``.  ``weights``/``bias`` are set for conv2d (OIHW) and dense
    (out x in).
    """

    kind: str
    name: str
    weights: Optional[np.ndarray] = None
    bias: Optional[np.ndarray] = None
    attrs: Dict[str, int] = field(default_factory=dict)

    def param_count(self) -> int:
        count = 0
        if self.weights is not None:
            count += self.weights.size
        if self.bias is not None:
            count += self.bias.size
        return count


@dataclass
class Model:
    """A sequential ML model: the offline stand-in for an ONNX file."""

    name: str
    input_shape: Tuple[int, ...]  # (C, H, W) or (features,)
    layers: List[Layer] = field(default_factory=list)

    # -- construction helpers ----------------------------------------------------

    def conv2d(self, out_channels: int, kernel: int,
               rng: np.random.Generator) -> "Model":
        in_shape = self.output_shape()
        if len(in_shape) != 3:
            raise FrontendError("conv2d requires a (C, H, W) input")
        c_in = in_shape[0]
        scale = np.sqrt(2.0 / (c_in * kernel * kernel))
        weights = rng.normal(0.0, scale, (out_channels, c_in, kernel, kernel))
        bias = np.zeros(out_channels)
        self.layers.append(Layer("conv2d", f"conv{len(self.layers)}",
                                 weights, bias, {"kernel": kernel}))
        return self

    def relu(self) -> "Model":
        self.layers.append(Layer("relu", f"relu{len(self.layers)}"))
        return self

    def maxpool2(self) -> "Model":
        self.layers.append(Layer("maxpool2", f"pool{len(self.layers)}"))
        return self

    def flatten(self) -> "Model":
        self.layers.append(Layer("flatten", f"flatten{len(self.layers)}"))
        return self

    def dense(self, out_features: int, rng: np.random.Generator) -> "Model":
        in_shape = self.output_shape()
        if len(in_shape) != 1:
            raise FrontendError("dense requires a flattened input")
        in_features = in_shape[0]
        scale = np.sqrt(2.0 / in_features)
        weights = rng.normal(0.0, scale, (out_features, in_features))
        bias = np.zeros(out_features)
        self.layers.append(Layer("dense", f"dense{len(self.layers)}",
                                 weights, bias))
        return self

    # -- shape/compute analysis ------------------------------------------------------

    def shape_after(self, layer_index: int) -> Tuple[int, ...]:
        shape = self.input_shape
        for layer in self.layers[: layer_index + 1]:
            shape = _layer_output_shape(layer, shape)
        return shape

    def output_shape(self) -> Tuple[int, ...]:
        return self.shape_after(len(self.layers) - 1) if self.layers \
            else self.input_shape

    def layer_macs(self, layer_index: int) -> int:
        """Multiply-accumulate count of one layer (DOSA's cost metric)."""
        layer = self.layers[layer_index]
        in_shape = self.shape_after(layer_index - 1) if layer_index else \
            self.input_shape
        out_shape = self.shape_after(layer_index)
        if layer.kind == "conv2d":
            k = layer.attrs["kernel"]
            c_out, h, w = out_shape
            return c_out * h * w * in_shape[0] * k * k
        if layer.kind == "dense":
            return int(np.prod(out_shape)) * int(np.prod(in_shape))
        return int(np.prod(out_shape))

    def total_macs(self) -> int:
        return sum(self.layer_macs(i) for i in range(len(self.layers)))

    # -- execution --------------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the model on one input sample."""
        if tuple(x.shape) != self.input_shape:
            raise FrontendError(
                f"model {self.name}: expected input {self.input_shape}, "
                f"got {tuple(x.shape)}"
            )
        for layer in self.layers:
            x = run_layer(layer, x)
        return x


def _layer_output_shape(layer: Layer, in_shape: Tuple[int, ...]):
    if layer.kind == "conv2d":
        k = layer.attrs["kernel"]
        c, h, w = in_shape
        return (layer.weights.shape[0], h - k + 1, w - k + 1)
    if layer.kind == "maxpool2":
        c, h, w = in_shape
        return (c, h // 2, w // 2)
    if layer.kind == "flatten":
        return (int(np.prod(in_shape)),)
    if layer.kind == "dense":
        return (layer.weights.shape[0],)
    return in_shape


def run_layer(layer: Layer, x: np.ndarray) -> np.ndarray:
    """Numpy forward of one layer (valid padding, stride 1 / pool 2)."""
    if layer.kind == "conv2d":
        k = layer.attrs["kernel"]
        windows = np.lib.stride_tricks.sliding_window_view(x, (k, k),
                                                           axis=(1, 2))
        # windows: (C_in, H', W', k, k); weights: (C_out, C_in, k, k)
        out = np.einsum("cxyhw,ochw->oxy", windows, layer.weights)
        return out + layer.bias[:, None, None]
    if layer.kind == "relu":
        return np.maximum(x, 0.0)
    if layer.kind == "maxpool2":
        c, h, w = x.shape
        trimmed = x[:, : h // 2 * 2, : w // 2 * 2]
        return trimmed.reshape(c, h // 2, 2, w // 2, 2).max(axis=(2, 4))
    if layer.kind == "flatten":
        return x.reshape(-1)
    if layer.kind == "dense":
        return layer.weights @ x + layer.bias
    raise FrontendError(f"unknown layer kind {layer.kind!r}")


@register_lowering("onnx-frontend", "jabbah")
def lower_model_to_jabbah(model: Model) -> Module:
    """Lower a model into a ``jabbah.model`` operation-set graph."""
    module = Module()
    body = Block([T.TensorType(model.input_shape, T.f32)])
    graph = Operation.create(
        "jabbah.model", [], [],
        {"sym_name": model.name,
         "input_shape": list(model.input_shape)},
        [Region([body])],
    )
    module.append(graph)
    builder = Builder.at_end(body)
    value = body.args[0]
    for i, layer in enumerate(model.layers):
        out_shape = model.shape_after(i)
        operands = [value]
        if layer.weights is not None:
            weights = builder.create(
                "jabbah.weights", [],
                [T.TensorType(layer.weights.shape, T.f32)],
                {"layer": layer.name, "params": int(layer.param_count())},
            )
            operands.append(weights.results[0])
        node = builder.create(
            "jabbah.op", operands, [T.TensorType(out_shape, T.f32)],
            {"osa": layer.kind, "layer": layer.name,
             "macs": int(model.layer_macs(i)), **layer.attrs},
        )
        value = node.results[0]
    builder.create("jabbah.output", [value], [])
    return module


@register_lowering("jabbah", "dfg")
def lower_jabbah_to_dfg(module: Module) -> Module:
    """Convert a jabbah model graph into a dfg dataflow (for DOSA/runtime)."""
    out = Module()
    for graph in module.body:
        if graph.name != "jabbah.model":
            continue
        entry = graph.regions[0].entry
        body = Block([a.type for a in entry.args])
        dfg_graph = Operation.create(
            "dfg.graph", [], [],
            {"sym_name": graph.attr("sym_name"),
             "param_names": ["input"], "param_types": ["Tensor"],
             "return_type": "Tensor"},
            [Region([body])],
        )
        out.append(dfg_graph)
        builder = Builder.at_end(body)
        mapping = dict(zip(entry.args, body.args))
        for op in entry:
            if op.name == "jabbah.weights":
                const = builder.create("arith.constant", [],
                                       [op.results[0].type],
                                       {"value": op.attr("layer")})
                mapping[op.results[0]] = const.results[0]
            elif op.name == "jabbah.op":
                node = builder.create(
                    "dfg.node", [mapping[o] for o in op.operands],
                    [op.results[0].type],
                    {"callee": op.attr("osa"), "binding": op.attr("layer"),
                     "macs": op.attr("macs")},
                )
                mapping[op.results[0]] = node.results[0]
            elif op.name == "jabbah.output":
                builder.create("dfg.output", [mapping[op.operands[0]]], [])
    return out


def example_cnn(name: str = "traffic_speed_cnn",
                seed: int = 7) -> Model:
    """A small CNN like the traffic use case's road-speed predictor."""
    rng = np.random.default_rng(seed)
    model = Model(name, (1, 24, 24))
    model.conv2d(8, 3, rng).relu().maxpool2()
    model.conv2d(16, 3, rng).relu().maxpool2()
    model.flatten().dense(32, rng).relu().dense(4, rng)
    return model
