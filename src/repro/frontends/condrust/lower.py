"""Lowering of ConDRust functions into the ``dfg`` dialect.

Each function becomes a ``dfg.graph`` whose block arguments are the function
parameters and whose body is one ``dfg.node`` per call, wired by SSA values.
The deterministic schedule is the topological order of the graph — which is
simply the source order, since ConDRust is single-assignment.

Kernel attributes (``#[kernel(offloaded = true, ...)]``) are copied onto the
node so Olympus and the runtime can decide placement.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dialects import register_lowering
from repro.errors import LoweringError
from repro.frontends.condrust import ast
from repro.frontends.condrust.ownership import check_ownership
from repro.ir import Builder, Module, Operation, Value, types as T
from repro.ir.core import Block, Region


def _opaque_type(type_name: str) -> T.Type:
    """ConDRust's rich nominal types map onto dynamic tensors in the IR.

    The type *name* is preserved as metadata for interface generation (the
    paper: "the language uses rich types to pass the information to
    hardware-level interface generation").
    """
    return T.TensorType((None,), T.f64)


@register_lowering("condrust-frontend", "dfg")
def lower_program_to_dfg(program: ast.Program) -> Module:
    """Ownership-check and lower a whole program to dfg graphs."""
    check_ownership(program)
    module = Module()
    for fn in program.functions:
        _lower_function(fn, module)
    return module


def _lower_function(fn: ast.Function, module: Module) -> Operation:
    body = Block([_opaque_type(p.type_name) for p in fn.params])
    graph = Operation.create(
        "dfg.graph", [], [],
        {
            "sym_name": fn.name,
            "param_names": [p.name for p in fn.params],
            "param_types": [p.type_name for p in fn.params],
            "return_type": fn.return_type or "Unit",
        },
        [Region([body])],
    )
    module.append(graph)
    builder = Builder.at_end(body)
    env: Dict[str, Value] = {
        p.name: body.args[i] for i, p in enumerate(fn.params)
    }

    def lower_expr(expr: ast.Expr, type_name: str) -> Value:
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                raise LoweringError(f"undefined value {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, ast.Call):
            args = [lower_expr(a, "Value") for a in expr.args]
            attrs: dict = {"callee": expr.callee, "result_type": type_name}
            node = builder.create(
                "dfg.node", args, [_opaque_type(type_name)], attrs
            )
            return node.results[0]
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            const = builder.create(
                "arith.constant", [], [_opaque_type("Literal")],
                {"value": expr.value},
            )
            return const.results[0]
        if isinstance(expr, ast.StrLit):
            const = builder.create(
                "arith.constant", [], [_opaque_type("Str")],
                {"value": expr.value},
            )
            return const.results[0]
        raise LoweringError(
            f"cannot lower expression {type(expr).__name__} to dfg"
        )

    for stmt in fn.body:
        value = lower_expr(stmt.value, stmt.type_name or "Value")
        producer = value.owner_op()
        if stmt.attr is not None:
            if producer is None or producer.name != "dfg.node":
                raise LoweringError(
                    "#[kernel] attribute must annotate a call"
                )
            for key, attr_value in stmt.attr.params.items():
                producer.set_attr(key, attr_value)
        if producer is not None and producer.name == "dfg.node":
            producer.set_attr("binding", stmt.name)
        env[stmt.name] = value
    assert fn.tail is not None  # guaranteed by the ownership checker
    result = lower_expr(fn.tail, fn.return_type or "Value")
    builder.create("dfg.output", [result], [])
    return graph
