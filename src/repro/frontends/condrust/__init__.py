"""ConDRust: the EVEREST coordination language (paper §V-A2, Fig. 4).

ConDRust is an imperative coordination language based on a subset of Rust.
It connects software and hardware components (EKL kernels, ONNX models,
plain host functions) into a *provably deterministic* dataflow graph:

* functions are single-assignment — every ``let`` binds a fresh name;
* immutable bindings may be read by many consumers (shared borrows);
* ``let mut`` bindings may be consumed by exactly one call (the unique
  borrow rule) — this is what makes the extracted dataflow deterministic;
* ``#[kernel(...)]`` attributes mark calls for FPGA offloading and carry
  deployment metadata (``offloaded``, ``multiplicity``, ``path``).

Programs lower to the ``dfg`` dialect (:mod:`repro.frontends.condrust.lower`)
and execute through :mod:`repro.frontends.condrust.execute` with a registry
of node implementations — on the host, or through the virtualized FPGA
runtime for offloaded nodes.

:data:`FIG4_MAP_MATCHING` holds the paper's Fig. 4 listing verbatim; the
traffic use case (:mod:`repro.apps.traffic`) provides real implementations
of ``projection``, ``build_trellis``, ``viterbi`` and ``interpolate``.
"""

from repro.frontends.condrust.parser import parse_program
from repro.frontends.condrust.ownership import check_ownership
from repro.frontends.condrust.lower import lower_program_to_dfg
from repro.frontends.condrust.execute import DataflowExecutor

# The paper's Fig. 4 listing, verbatim.
FIG4_MAP_MATCHING = """
fn match_one(gv: GpsVector, mapcell: MapCell) -> RoadSpeedVector {
    #[kernel(offloaded = true, multiplicity = [1, 1, 1, 1],
             path = "projection.cpp")]
    let cv: CandiVector = projection(gv, mapcell);
    let t: Trellis = build_trellis(gv, cv, mapcell);
    let rsvbb: RoadSpeedVector = viterbi(t, cv);
    interpolate(rsvbb, mapcell)
}
"""

__all__ = [
    "parse_program",
    "check_ownership",
    "lower_program_to_dfg",
    "DataflowExecutor",
    "FIG4_MAP_MATCHING",
]
