"""Deterministic execution of ``dfg`` graphs.

The executor walks a lowered ConDRust graph in topological (source) order,
calling a registered Python implementation for every ``dfg.node``.  Nodes
marked ``offloaded = true`` are routed through an *offload handler* — by
default a pass-through, in the full SDK the virtualized FPGA runtime
(:mod:`repro.runtime`).  The executor also records the schedule *waves*
(sets of nodes whose inputs were already available), which is the
parallelism ConDRust exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import RuntimeSchedulingError
from repro.ir import Module, Operation, Value


@dataclass
class NodeRecord:
    """Execution record of one dataflow node."""

    callee: str
    binding: str
    offloaded: bool
    wave: int
    attrs: Dict[str, object] = field(default_factory=dict)


class DataflowExecutor:
    """Executes dfg graphs against a registry of node implementations."""

    def __init__(self, module: Module):
        self.module = module
        self.registry: Dict[str, Callable] = {}
        self.offload_handler: Optional[Callable] = None
        self.trace: List[NodeRecord] = []

    def register(self, name: str, fn: Callable) -> "DataflowExecutor":
        """Register the implementation of a node callee."""
        self.registry[name] = fn
        return self

    def register_all(self, impls: Dict[str, Callable]) -> "DataflowExecutor":
        self.registry.update(impls)
        return self

    def set_offload_handler(self, handler: Callable) -> None:
        """``handler(callee, fn, args, attrs)`` runs offloaded nodes."""
        self.offload_handler = handler

    def run(self, graph_name: str, *args):
        """Execute one graph with positional arguments; returns its output."""
        graph = self.module.lookup(graph_name)
        if graph.name != "dfg.graph":
            raise RuntimeSchedulingError(f"{graph_name} is not a dfg.graph")
        entry = graph.regions[0].entry
        if len(args) != len(entry.args):
            raise RuntimeSchedulingError(
                f"{graph_name} expects {len(entry.args)} arguments, "
                f"got {len(args)}"
            )
        env: Dict[Value, object] = dict(zip(entry.args, args))
        ready_at: Dict[Value, int] = {arg: 0 for arg in entry.args}
        self.trace = []
        result = None
        for op in entry.operations:
            if op.name == "arith.constant":
                env[op.results[0]] = op.attr("value")
                ready_at[op.results[0]] = 0
            elif op.name == "dfg.node":
                result_value = self._run_node(op, env, ready_at)
                env[op.results[0]] = result_value
            elif op.name == "dfg.output":
                result = env[op.operands[0]]
            else:
                raise RuntimeSchedulingError(
                    f"unexpected op in dfg graph: {op.name}"
                )
        return result

    def _run_node(self, op: Operation, env: Dict[Value, object],
                  ready_at: Dict[Value, int]):
        callee = op.attr("callee")
        if callee not in self.registry:
            raise RuntimeSchedulingError(
                f"no implementation registered for node {callee!r}"
            )
        fn = self.registry[callee]
        arg_values = [env[operand] for operand in op.operands]
        wave = 1 + max((ready_at[o] for o in op.operands), default=0)
        offloaded = bool(op.attr("offloaded", False))
        attrs = {k: op.attr(k) for k in ("multiplicity", "path", "binding")
                 if k in op.attributes}
        self.trace.append(
            NodeRecord(callee, op.attr("binding") or "", offloaded, wave,
                       attrs)
        )
        if offloaded and self.offload_handler is not None:
            result = self.offload_handler(callee, fn, arg_values, attrs)
        else:
            result = fn(*arg_values)
        ready_at[op.results[0]] = wave
        return result

    def waves(self) -> List[List[str]]:
        """Nodes grouped by schedule wave (the exposed parallelism)."""
        if not self.trace:
            return []
        depth = max(record.wave for record in self.trace)
        grouped: List[List[str]] = [[] for _ in range(depth)]
        for record in self.trace:
            grouped[record.wave - 1].append(record.callee)
        return grouped
