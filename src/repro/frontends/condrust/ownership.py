"""The ConDRust ownership checker.

ConDRust inherits Rust's aliasing discipline, which is what makes the
extracted dataflow *provably deterministic* (paper §V-A2): two nodes may
race only if one of them mutates shared state, and the type system rules
that out.  The subset's rules:

* **single assignment** — a name is bound at most once per function;
* **definition before use** — values flow forward only (the graph is a DAG
  by construction);
* **shared borrows** — an immutable binding may feed any number of calls;
* **unique borrows** — a ``let mut`` binding may feed *exactly one* call
  (its single consumer may mutate it without observable interference);
* a function's tail expression must exist and may not read moved-out
  mutable values.

Violations raise :class:`repro.errors.OwnershipError`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.errors import OwnershipError
from repro.frontends.condrust import ast


def _expr_uses(expr: ast.Expr, uses: List[str]) -> None:
    if isinstance(expr, ast.VarRef):
        uses.append(expr.name)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            _expr_uses(arg, uses)
    elif isinstance(expr, (ast.TupleExpr, ast.ArrayLit)):
        for element in expr.elements:
            _expr_uses(element, uses)


def check_function(fn: ast.Function) -> None:
    """Check one function; raises :class:`OwnershipError` on violation."""
    defined: Set[str] = set()
    mutable: Set[str] = set()
    consumed: Dict[str, int] = {}

    def define(name: str, is_mut: bool, node: ast.Node) -> None:
        if name in defined:
            raise OwnershipError(
                f"{fn.name}: name {name!r} bound twice (single assignment)",
                node.line, node.column,
            )
        defined.add(name)
        if is_mut:
            mutable.add(name)

    def use_all(expr: ast.Expr, node: ast.Node) -> None:
        uses: List[str] = []
        _expr_uses(expr, uses)
        for name in uses:
            if name not in defined:
                raise OwnershipError(
                    f"{fn.name}: use of undefined value {name!r}",
                    node.line, node.column,
                )
            if name in mutable:
                count = consumed.get(name, 0) + 1
                consumed[name] = count
                if count > 1:
                    raise OwnershipError(
                        f"{fn.name}: mutable value {name!r} consumed "
                        f"{count} times (unique borrow violated)",
                        node.line, node.column,
                    )

    for param in fn.params:
        define(param.name, False, param)
    for stmt in fn.body:
        use_all(stmt.value, stmt)
        define(stmt.name, stmt.mutable, stmt)
    if fn.tail is None:
        raise OwnershipError(
            f"{fn.name}: function has no tail expression (nothing returned)",
            fn.line, fn.column,
        )
    use_all(fn.tail, fn)


def check_ownership(program: ast.Program) -> None:
    """Check every function of a program."""
    for fn in program.functions:
        check_function(fn)
