"""Tokenizer and parser for the ConDRust subset (Rust-like syntax)."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import FrontendError
from repro.frontends.condrust import ast

_TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?)
  | (?P<int>\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>->|\#\[|[(){}\[\],;:=.&])
  | (?P<ws>[\s]+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset({"fn", "let", "mut", "true", "false"})


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group(0)
        column = match.start() - line_start + 1
        if kind in ("ws", "comment"):
            line += text.count("\n")
            if "\n" in text:
                line_start = match.start() + text.rfind("\n") + 1
            continue
        if kind == "bad":
            raise FrontendError(f"unexpected character {text!r}", line, column)
        if kind == "ident" and text in _KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text, line, column))
    tokens.append(Token("eof", "", line, 1))
    return tokens


class CondrustParser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def error(self, message: str) -> FrontendError:
        tok = self.current
        return FrontendError(message, tok.line, tok.column)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.current
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            raise self.error(
                f"expected {text or kind!r}, found {self.current.text!r}"
            )
        return tok

    # -- grammar ---------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.current.kind != "eof":
            program.functions.append(self.parse_function())
        if not program.functions:
            raise self.error("no functions found")
        return program

    def parse_function(self) -> ast.Function:
        start = self.expect("kw", "fn")
        name = self.expect("ident").text
        self.expect("op", "(")
        params: List[ast.Param] = []
        if not (self.current.kind == "op" and self.current.text == ")"):
            while True:
                pname = self.expect("ident").text
                self.expect("op", ":")
                self.accept("op", "&")  # reference types read identically
                ptype = self.expect("ident").text
                params.append(ast.Param(pname, ptype))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return_type = None
        if self.accept("op", "->"):
            return_type = self.expect("ident").text
        self.expect("op", "{")
        body: List[ast.LetStmt] = []
        tail: Optional[ast.Expr] = None
        while not (self.current.kind == "op" and self.current.text == "}"):
            attr = None
            if self.current.kind == "op" and self.current.text == "#[":
                attr = self._parse_attr()
            if self.current.kind == "kw" and self.current.text == "let":
                stmt = self._parse_let()
                stmt.attr = attr
                body.append(stmt)
            else:
                if attr is not None:
                    raise self.error("attribute must precede a let binding")
                tail = self._parse_expr()
                self.accept("op", ";")
                break
        self.expect("op", "}")
        return ast.Function(name, params, return_type, body, tail,
                            line=start.line, column=start.column)

    def _parse_attr(self) -> ast.KernelAttr:
        start = self.expect("op", "#[")
        kind = self.expect("ident").text
        if kind != "kernel":
            raise self.error(f"unknown attribute {kind!r}")
        params: dict = {}
        if self.accept("op", "("):
            while True:
                key = self.expect("ident").text
                self.expect("op", "=")
                params[key] = self._parse_attr_value()
                if not self.accept("op", ","):
                    break
            self.expect("op", ")")
        self.expect("op", "]")
        return ast.KernelAttr(params, line=start.line, column=start.column)

    def _parse_attr_value(self):
        tok = self.current
        if tok.kind == "kw" and tok.text in ("true", "false"):
            self.advance()
            return tok.text == "true"
        if tok.kind == "int":
            self.advance()
            return int(tok.text)
        if tok.kind == "float":
            self.advance()
            return float(tok.text)
        if tok.kind == "string":
            self.advance()
            return tok.text[1:-1]
        if tok.kind == "op" and tok.text == "[":
            self.advance()
            values = []
            if not (self.current.kind == "op" and self.current.text == "]"):
                while True:
                    values.append(self._parse_attr_value())
                    if not self.accept("op", ","):
                        break
            self.expect("op", "]")
            return values
        raise self.error(f"bad attribute value {tok.text!r}")

    def _parse_let(self) -> ast.LetStmt:
        start = self.expect("kw", "let")
        mutable = self.accept("kw", "mut") is not None
        name = self.expect("ident").text
        type_name = None
        if self.accept("op", ":"):
            self.accept("op", "&")
            type_name = self.expect("ident").text
        self.expect("op", "=")
        value = self._parse_expr()
        self.expect("op", ";")
        return ast.LetStmt(name, type_name, value, mutable,
                           line=start.line, column=start.column)

    def _parse_expr(self) -> ast.Expr:
        tok = self.current
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(int(tok.text), line=tok.line, column=tok.column)
        if tok.kind == "float":
            self.advance()
            return ast.FloatLit(float(tok.text), line=tok.line,
                                column=tok.column)
        if tok.kind == "string":
            self.advance()
            return ast.StrLit(tok.text[1:-1], line=tok.line, column=tok.column)
        if tok.kind == "kw" and tok.text in ("true", "false"):
            self.advance()
            return ast.BoolLit(tok.text == "true", line=tok.line,
                               column=tok.column)
        if tok.kind == "op" and tok.text == "(":
            self.advance()
            elements = [self._parse_expr()]
            while self.accept("op", ","):
                elements.append(self._parse_expr())
            self.expect("op", ")")
            if len(elements) == 1:
                return elements[0]
            return ast.TupleExpr(elements, line=tok.line, column=tok.column)
        if tok.kind == "ident":
            self.advance()
            if self.current.kind == "op" and self.current.text == "(":
                self.advance()
                args: List[ast.Expr] = []
                if not (self.current.kind == "op" and
                        self.current.text == ")"):
                    while True:
                        self.accept("op", "&")
                        args.append(self._parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return ast.Call(tok.text, args, line=tok.line,
                                column=tok.column)
            return ast.VarRef(tok.text, line=tok.line, column=tok.column)
        raise self.error(f"unexpected token {tok.text!r} in expression")


def parse_program(source: str) -> ast.Program:
    """Parse ConDRust source into a :class:`~ast.Program`."""
    return CondrustParser(source).parse_program()
