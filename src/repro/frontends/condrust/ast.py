"""AST for the ConDRust subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


@dataclass
class VarRef(Node):
    name: str


@dataclass
class IntLit(Node):
    value: int


@dataclass
class FloatLit(Node):
    value: float


@dataclass
class BoolLit(Node):
    value: bool


@dataclass
class StrLit(Node):
    value: str


@dataclass
class ArrayLit(Node):
    elements: List["Expr"]


@dataclass
class Call(Node):
    callee: str
    args: List["Expr"]


@dataclass
class TupleExpr(Node):
    elements: List["Expr"]


Expr = Union[VarRef, IntLit, FloatLit, BoolLit, StrLit, ArrayLit, Call,
             TupleExpr]


@dataclass
class KernelAttr(Node):
    """A ``#[kernel(...)]`` attribute: deployment metadata for one call."""

    params: Dict[str, object] = field(default_factory=dict)

    @property
    def offloaded(self) -> bool:
        return bool(self.params.get("offloaded", False))


@dataclass
class LetStmt(Node):
    name: str
    type_name: Optional[str]
    value: Expr
    mutable: bool = False
    attr: Optional[KernelAttr] = None


@dataclass
class Param(Node):
    name: str
    type_name: str


@dataclass
class Function(Node):
    name: str
    params: List[Param] = field(default_factory=list)
    return_type: Optional[str] = None
    body: List[LetStmt] = field(default_factory=list)
    tail: Optional[Expr] = None


@dataclass
class Program(Node):
    functions: List[Function] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
