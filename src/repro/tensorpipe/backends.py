"""The pluggable executor-backend registry (entry-point style).

Mirrors the scheduler policy registry
(:data:`repro.runtime.engine.POLICIES`): every backend exposes

* ``name`` — the registry key (``basecamp run --backend``,
  ``session.execute(backend=...)``);
* ``compile(module, func_name, *, cache=True)`` — returning a
  :class:`~repro.tensorpipe.codegen.CompiledKernel` whose ``run`` is
  bit-for-bit identical to the reference
  :class:`~repro.tensorpipe.affine_interp.AffineInterpreter` on float64.

Stock backends:

==================  ==========================================================
``interpreter``     the reference tree-walking interpreter
``compiled``        vectorized-numpy codegen (PR 4), one array op per nest
``compiled-parallel``  the tiled variant: large nests shard their outer
                    parallel axis across a worker pool
                    (:mod:`repro.tensorpipe.parallel`)
``compiled-arena``  the statically planned variant: local buffers are
                    views into one preallocated per-run arena
                    (:mod:`repro.tensorpipe.arena`), sized by liveness
                    over the entry block's ``memref.alloc`` ops
``cbackend``        generated C compiled via ``cc`` + ``ctypes`` at
                    cache-fill time; falls back cleanly to ``compiled``
                    when no C compiler exists or an op's libm result is
                    not bit-identical to numpy
==================  ==========================================================

Register custom backends with :func:`register_backend`; any object with
``name`` and a ``compile`` method qualifies.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.errors import EverestError
from repro.ir import Module
from repro.tensorpipe.codegen import CompiledKernel, compile_numpy


class NumpyBackend:
    """``interpreter`` / ``compiled`` / ``compiled-parallel`` /
    ``compiled-arena``: thin registry wrappers over
    :func:`~repro.tensorpipe.codegen.compile_numpy`."""

    def __init__(self, name: str, *, tiled: bool = False,
                 arena: bool = False):
        self.name = name
        self.tiled = tiled
        self.arena = arena

    def compile(self, module: Module, func_name: str, *,
                cache: bool = True) -> CompiledKernel:
        return compile_numpy(module, func_name, backend=self.name,
                             tiled=self.tiled, arena=self.arena, cache=cache)

    def __repr__(self) -> str:
        return f"<backend {self.name}>"


BACKENDS: Dict[str, object] = {}


def register_backend(backend, *, replace: bool = False):
    """Register an executor backend under ``backend.name``."""
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        raise EverestError("executor backend needs a non-empty string name")
    if not callable(getattr(backend, "compile", None)):
        raise EverestError(
            f"executor backend {name!r} does not implement "
            "compile(module, func_name, *, cache=True)")
    if name in BACKENDS and not replace:
        raise EverestError(f"executor backend {name!r} already registered "
                           "(pass replace=True to override)")
    BACKENDS[name] = backend
    return backend


def resolve_backend(backend: Union[str, object]):
    """Accept a backend instance or a registry name; raise with the
    registered names on a typo."""
    if isinstance(backend, str):
        resolved = BACKENDS.get(backend)
        if resolved is None:
            raise EverestError(
                f"unknown executor backend {backend!r}; "
                f"available: {', '.join(sorted(BACKENDS))}")
        return resolved
    if callable(getattr(backend, "compile", None)):
        return backend
    raise EverestError(
        f"{type(backend).__name__} does not implement the executor-backend "
        "interface (compile(module, func_name, *, cache=True))")


def registered_backends() -> Dict[str, object]:
    """A snapshot of the registry (name -> backend instance)."""
    return dict(BACKENDS)


register_backend(NumpyBackend("interpreter"))
register_backend(NumpyBackend("compiled"))
register_backend(NumpyBackend("compiled-parallel", tiled=True))
register_backend(NumpyBackend("compiled-arena", arena=True))

from repro.tensorpipe.cbackend import CBackend  # noqa: E402 (needs BACKENDS)

register_backend(CBackend())
