"""Compiled executor for lowered ``affine`` functions (codegen -> numpy).

:class:`AffineCompiler` walks one lowered affine function and emits Python
source: ``affine.for`` nests become native loops, and every *perfect* nest
with a straight-line load/compute/store body is vectorized — the loop
dimensions that index the stored buffer become numpy slice/grid
dimensions, while reduction dimensions (loop IVs the store does not use)
stay as sequential Python loops so accumulation order — and therefore
every float64 bit — matches :class:`~repro.tensorpipe.affine_interp.
AffineInterpreter` exactly.  Gather-style computed indices are handled by
broadcasting integer index grids through numpy advanced indexing.

This is the CPU analog of the SDK's HLS flow (paper §V): the same affine
module either goes to the hardware backends (``fsm``/``hw``) or, through
this compiler, to a fast host executor.  The bit-for-bit contract with the
interpreter is enforced differentially by the test suite on every golden
kernel and on fuzz-generated modules at all optimization levels.

Compilation results are cached by module content hash (the chained
fingerprint machinery of :mod:`repro.pipeline.cache`); any op outside the
supported set falls back to the interpreter, never to a wrong answer.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import EverestError
from repro.ir import Module, Operation, Value, types as T
from repro.ir.printer import print_module
from repro.pipeline.cache import fingerprint
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import get_tracer
from repro.tensorpipe.affine_interp import (
    AffineInterpreter,
    _dtype_for,
    bind_buffers,
)
from repro.tensorpipe.arena import ArenaPlan, plan_arena

# Process-wide codegen metrics (the serve daemon exports them under
# GET /metrics; see docs/observability.md for the naming rules).
_CACHE_EVENTS = get_registry().counter(
    "repro_codegen_cache_total",
    "Compile-cache lookups of the numpy codegen backends", ("result",))
_ARENA_BYTES = get_registry().gauge(
    "repro_arena_planned_bytes",
    "Planned static-arena footprint of the latest compiled-arena kernel")


class UnsupportedAffineOp(EverestError):
    """Raised internally when a function contains an op codegen cannot
    compile; :func:`compile_affine` catches it and falls back to the
    interpreter backend."""


_DTYPE_SRC = {
    "f64": "np.float64", "f32": "np.float32", "i64": "np.int64",
    "i32": "np.int32", "i1": "np.bool_", "index": "np.int64",
}

# Ops counted as one floating-point operation per loop iteration (the
# HLS engine's FLOP model uses the same set — see test_hls cross-check).
FLOAT_OPS = frozenset({
    "arith.addf", "arith.subf", "arith.mulf", "arith.divf",
    "arith.maximumf", "arith.minimumf", "arith.powf", "arith.negf",
    "math.exp", "math.log", "math.sqrt", "math.sin", "math.cos",
    "math.tanh", "math.abs",
})

# name -> (scalar template, vector template).  Scalar templates reproduce
# the interpreter's expressions verbatim; vector templates are the numpy
# array forms that are bit-identical to the scalar ufunc path.
_BINOP_SRC = {
    "arith.addf": ("({a} + {b})", "({a} + {b})"),
    "arith.subf": ("({a} - {b})", "({a} - {b})"),
    "arith.mulf": ("({a} * {b})", "({a} * {b})"),
    "arith.divf": ("({a} / {b})", "({a} / {b})"),
    "arith.maximumf": ("np.maximum({a}, {b})", "np.maximum({a}, {b})"),
    "arith.minimumf": ("np.minimum({a}, {b})", "np.minimum({a}, {b})"),
    "arith.powf": ("np.power({a}, {b})", "np.power({a}, {b})"),
    "arith.addi": ("({a} + {b})", "({a} + {b})"),
    "arith.subi": ("({a} - {b})", "({a} - {b})"),
    "arith.muli": ("({a} * {b})", "({a} * {b})"),
    "arith.divsi": ("(int({a}) // int({b}))", "({a} // {b})"),
    "arith.remsi": ("(int({a}) % int({b}))", "({a} % {b})"),
    "arith.maxsi": ("max({a}, {b})", "np.maximum({a}, {b})"),
    "arith.minsi": ("min({a}, {b})", "np.minimum({a}, {b})"),
}

_CMP_SRC = {"le": "<=", "lt": "<", "ge": ">=", "gt": ">", "eq": "==",
            "ne": "!="}

_MATH_SRC = {
    "math.exp": "np.exp", "math.log": "np.log", "math.sqrt": "np.sqrt",
    "math.sin": "np.sin", "math.cos": "np.cos", "math.tanh": "np.tanh",
    "math.abs": "np.abs",
}


def _literal(value) -> str:
    """A source literal that reconstructs the attribute value exactly."""
    if isinstance(value, bool):
        return repr(value)
    if isinstance(value, float):
        if value != value:
            return "float('nan')"
        if value == float("inf"):
            return "float('inf')"
        if value == float("-inf"):
            return "float('-inf')"
        return repr(value)  # repr(float) round-trips bit-exactly
    if isinstance(value, int):
        return repr(value)
    raise UnsupportedAffineOp(f"cannot inline constant {value!r}")


def _trip(lower: int, upper: int, step: int) -> int:
    if step <= 0:
        raise UnsupportedAffineOp(f"non-positive loop step {step}")
    return max(0, -(-(upper - lower) // step))


@dataclass
class _Loop:
    """One level of an ``affine.for`` nest during compilation."""

    iv: Value
    lower: int
    upper: int
    step: int

    @property
    def extent(self) -> int:
        return _trip(self.lower, self.upper, self.step)

    def range_src(self) -> str:
        return f"range({self.lower}, {self.upper}, {self.step})"

    def slice_src(self, dim: Optional[int]) -> str:
        """Basic-indexing slice covering this loop's iteration space."""
        if self.lower == 0 and self.step == 1 and \
                (dim is None or self.upper == dim):
            return ":"
        step = "" if self.step == 1 else f":{self.step}"
        return f"{self.lower}:{self.upper}{step}"


@dataclass
class CompiledKernel:
    """An executable artifact for one affine function.

    ``backend`` is ``"compiled"`` when the generated numpy source is in
    use and ``"interpreter"`` when compilation fell back to
    :class:`AffineInterpreter`.  ``run`` has the exact signature and
    semantics of ``AffineInterpreter.run`` — including bit-for-bit float64
    results.
    """

    func_name: str
    backend: str
    source: str = ""
    key: str = ""
    flops: int = 0
    vectorized_nests: int = 0
    scalar_nests: int = 0
    tileable_nests: int = 0
    arena_bytes: int = 0
    arena_slots: int = 0
    fallback: str = ""
    _func: Optional[Operation] = field(default=None, repr=False)
    _fn: Optional[object] = field(default=None, repr=False)
    _interp: Optional[AffineInterpreter] = field(default=None, repr=False)
    _runner: Optional[object] = field(default=None, repr=False)

    def run(self, inputs: Mapping[str, np.ndarray], *,
            jobs: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Execute over ``inputs``.  ``jobs`` sizes the worker pool of the
        ``compiled-parallel`` backend (None: ``REPRO_JOBS`` or the CPU
        count, capped at 8); other backends ignore it."""
        if self.backend == "interpreter":
            return self._interp.run(inputs)
        buffers, output_names = bind_buffers(self._func, inputs)
        if self._runner is not None:
            self._runner(buffers)
        elif self.backend == "compiled-parallel":
            from repro.tensorpipe.parallel import make_tile

            self._fn(buffers, make_tile(jobs))
        else:
            self._fn(buffers)
        arg_names = self._func.attr("arg_names")
        by_name = dict(zip(arg_names, buffers))
        return {name: by_name[name] for name in output_names}

    def __str__(self) -> str:
        return (f"CompiledKernel({self.func_name}, backend={self.backend}, "
                f"vectorized={self.vectorized_nests}, "
                f"scalar={self.scalar_nests}, flops={self.flops})")


class AffineCompiler:
    """Emits and compiles Python/numpy source for one affine function.

    With ``tiled=True`` every vectorizable nest whose outermost output
    dimension is a plain ``0..N`` parallel axis is emitted as a local
    closure over a half-open row range and handed to a ``__tile`` runner
    (see :mod:`repro.tensorpipe.parallel`): ``__tile(fn, extent, work)``
    either calls ``fn(0, extent)`` serially or splits the rows across a
    worker pool.  Reduction axes are never split, so results are bitwise
    identical to the serial source for any tile count.
    """

    def __init__(self, module: Module, func_name: str, *,
                 tiled: bool = False, arena: Optional[ArenaPlan] = None):
        self.module = module
        self.func = module.lookup(func_name)
        if self.func.attr("kernel_lang") != "affine":
            raise EverestError(f"{func_name} is not an affine-level function")
        self.func_name = func_name
        self.tiled = tiled
        self.arena = arena
        self.lines: List[str] = []
        self.indent = 1
        # Scalar-context expression for each Value (vars, literals, ivs).
        self.expr: Dict[Value, str] = {}
        self.counter = 0
        self.vectorized_nests = 0
        self.scalar_nests = 0
        self.tileable_nests = 0

    # -- source assembly -----------------------------------------------------

    def _fresh(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def generate(self) -> str:
        """Emit the module-level source for this function."""
        entry = self.func.regions[0].entry
        header = "def __kernel(args, __tile):" if self.tiled \
            else "def __kernel(args):"
        self.lines = [header]
        for i, arg in enumerate(entry.args):
            name = f"a{i}"
            self.expr[arg] = name
            self._emit(f"{name} = args[{i}]")
        if self.arena is not None and self.arena.total_bytes:
            # Per-run arena: concurrent runs of one cached kernel (the
            # serve daemon) must not share scratch memory.
            self._emit(f"__arena = np.empty({self.arena.total_bytes}, "
                       f"dtype=np.uint8)")
        self._emit_block_scalar(entry)
        self._emit("return None")
        return "\n".join(self.lines) + "\n"

    # -- scalar (native-loop) emission ---------------------------------------

    def _emit_block_scalar(self, block) -> None:
        for op in block.operations:
            self._emit_op_scalar(op)

    def _emit_op_scalar(self, op: Operation) -> None:
        name = op.name
        if name == "affine.for":
            if self._try_vectorize(op):
                self.vectorized_nests += 1
                return
            self.scalar_nests += 1
            self._emit_loop_scalar(op)
            return
        if name in ("affine.yield", "func.return"):
            return
        if name == "memref.alloc":
            ref = op.results[0].type
            var = self._fresh()
            slot = self.arena.op_slots.get(id(op)) if self.arena else None
            if slot is not None:
                dtype = _DTYPE_SRC.get(str(ref.element), "np.float64")
                self._emit(f"{var} = __arena[{slot.offset}:"
                           f"{slot.offset + slot.size}].view({dtype})"
                           f".reshape({tuple(ref.shape)!r})")
                # memref.alloc zero-init contract: slots are reused, so
                # the fill is what keeps arena runs bitwise-identical.
                self._emit(f"{var}.fill(0)")
            else:
                self._emit(f"{var} = np.zeros({tuple(ref.shape)!r}, "
                           f"{_DTYPE_SRC.get(str(ref.element), 'np.float64')})")
            self.expr[op.results[0]] = var
            return
        if name == "memref.copy":
            src = self.expr[op.operands[0]]
            dst = self.expr[op.operands[1]]
            self._emit(f"np.copyto({dst}, {src})")
            return
        if name == "arith.constant":
            self.expr[op.results[0]] = _literal(op.attr("value"))
            return
        if name == "memref.load":
            buffer = self.expr[op.operands[0]]
            indices = [self.expr[o] for o in op.operands[1:]]
            var = self._fresh()
            sub = ", ".join(indices) if indices else "()"
            self._emit(f"{var} = {buffer}[{sub}]")
            self.expr[op.results[0]] = var
            return
        if name == "memref.store":
            value = self.expr[op.operands[0]]
            buffer = self.expr[op.operands[1]]
            indices = [self.expr[o] for o in op.operands[2:]]
            sub = ", ".join(indices) if indices else "()"
            self._emit(f"{buffer}[{sub}] = {value}")
            return
        template = self._compute_template(op, vector=False)
        if template is None:
            raise UnsupportedAffineOp(f"cannot compile op {name}")
        var = self._fresh()
        self._emit(f"{var} = {template}")
        self.expr[op.results[0]] = var

    def _emit_loop_scalar(self, op: Operation) -> None:
        loop = _Loop(op.regions[0].entry.args[0], op.attr("lower"),
                     op.attr("upper"), op.attr("step"))
        iv = self._fresh("i")
        self.expr[loop.iv] = iv
        self._emit(f"for {iv} in {loop.range_src()}:")
        self.indent += 1
        body = op.regions[0].entry
        if all(o.name in ("affine.yield",) for o in body.operations):
            self._emit("pass")
        else:
            self._emit_block_scalar(body)
        self.indent -= 1

    def _operand_src(self, value: Value, vector: bool,
                     ctx: Optional[Dict[Value, Tuple[str, str]]] = None) -> str:
        if ctx is not None and value in ctx:
            return ctx[value][0]
        if value in self.expr:
            return self.expr[value]
        raise UnsupportedAffineOp("operand defined outside compiled scope")

    def _compute_template(self, op: Operation, vector: bool,
                          ctx: Optional[Dict[Value, Tuple[str, str]]] = None
                          ) -> Optional[str]:
        """Source expression for a pure compute op, or None if unknown."""
        name = op.name
        ops = [self._operand_src(o, vector, ctx) for o in op.operands]
        if name in _BINOP_SRC:
            template = _BINOP_SRC[name][1 if vector else 0]
            return template.format(a=ops[0], b=ops[1])
        if name in ("arith.cmpf", "arith.cmpi"):
            cmp = _CMP_SRC.get(op.attr("predicate"))
            if cmp is None:
                raise UnsupportedAffineOp(
                    f"unknown predicate {op.attr('predicate')!r}")
            return f"({ops[0]} {cmp} {ops[1]})"
        if name == "arith.select":
            if vector:
                return f"np.where({ops[0]}, {ops[1]}, {ops[2]})"
            return f"({ops[1]} if {ops[0]} else {ops[2]})"
        if name == "arith.negf":
            return f"(-{ops[0]})"
        if name in _MATH_SRC:
            return f"{_MATH_SRC[name]}({ops[0]})"
        if name == "arith.index_cast":
            return ops[0]
        if name == "arith.sitofp":
            if vector:
                return f"np.asarray({ops[0]}).astype(np.float64)"
            return f"float({ops[0]})"
        if name == "arith.fptosi":
            if vector:
                return f"np.asarray({ops[0]}).astype(np.int64)"
            return f"int({ops[0]})"
        if name in ("arith.truncf", "arith.extf"):
            dtype = _DTYPE_SRC.get(str(op.results[0].type), "np.float64")
            if vector:
                return f"np.asarray({ops[0]}).astype({dtype})"
            return f"{dtype}({ops[0]})"
        return None

    # -- nest vectorization ---------------------------------------------------

    def _collect_perfect_nest(
            self, for_op: Operation
    ) -> Optional[Tuple[List[_Loop], List[Operation]]]:
        loops: List[_Loop] = []
        current = for_op
        while True:
            block = current.regions[0].entry
            loops.append(_Loop(block.args[0], current.attr("lower"),
                               current.attr("upper"), current.attr("step")))
            ops = list(block.operations)
            inner = [o for o in ops if o.name == "affine.for"]
            if len(ops) == 2 and len(inner) == 1 and ops[0] is inner[0] \
                    and ops[1].name == "affine.yield":
                current = inner[0]
                continue
            if inner:
                return None  # imperfect nest: scalar loops handle it
            body = [o for o in ops if o.name != "affine.yield"]
            return loops, body

    _VECTOR_OPS = frozenset(
        {"memref.load", "memref.store", "arith.constant", "arith.cmpf",
         "arith.cmpi", "arith.select", "arith.negf", "arith.index_cast",
         "arith.sitofp", "arith.fptosi", "arith.truncf", "arith.extf"}
        | set(_BINOP_SRC) | set(_MATH_SRC)
    )

    def _try_vectorize(self, for_op: Operation) -> bool:
        """Emit a vectorized form of a perfect nest; False if not possible."""
        collected = self._collect_perfect_nest(for_op)
        if collected is None:
            return False
        loops, body = collected
        if not all(op.name in self._VECTOR_OPS for op in body):
            return False
        if any(loop.step <= 0 for loop in loops):
            return False
        stores = [op for op in body if op.name == "memref.store"]
        if not stores:
            # No memory effects: the nest is dead, nothing to execute.
            return True

        iv_to_loop = {loop.iv: loop for loop in loops}
        # Body-local classification: value -> (expr, kind).
        # kind: 'const' literal | 'vec' computed array-expression.
        ctx: Dict[Value, Tuple[str, str]] = {}
        consts = {}
        for op in body:
            if op.name == "arith.constant":
                consts[op.results[0]] = op.attr("value")

        def index_kind(value: Value) -> str:
            if value in iv_to_loop:
                return "iv"
            if value in consts:
                return "const"
            if value in self.expr:
                return "scalar"  # outer iv / outer scalar / constant
            return "computed"

        # The output space: loop IVs the stores index, in store order.
        out_ivs: List[Value] = []
        for idx in stores[0].operands[2:]:
            if index_kind(idx) == "iv":
                if idx in out_ivs:
                    return False
                out_ivs.append(idx)
        for store in stores:
            kinds = [index_kind(idx) for idx in store.operands[2:]]
            if any(kind == "computed" for kind in kinds):
                return False
            ivs = [idx for idx in store.operands[2:]
                   if index_kind(idx) == "iv"]
            if ivs != out_ivs:
                return False
        out_pos = {iv: i for i, iv in enumerate(out_ivs)}
        red_loops = [loop for loop in loops if loop.iv not in out_pos]

        # Loop-carried-dependence check: a buffer that is both stored and
        # loaded in this body must be accessed at the *same* indices
        # (the sequential-reduction pattern); anything else could alias
        # across vectorized iterations.
        stored_indices: Dict[Value, List[Tuple[Value, ...]]] = {}
        for store in stores:
            stored_indices.setdefault(store.operands[1], []).append(
                tuple(store.operands[2:]))
        for op in body:
            if op.name != "memref.load":
                continue
            buffer = op.operands[0]
            if buffer in stored_indices:
                patterns = stored_indices[buffer]
                if len(patterns) != 1 or tuple(op.operands[1:]) != patterns[0]:
                    return False

        # The tiled variant shards the outermost output dimension: the
        # nest body is wrapped in a closure over a half-open row range
        # ``[__t0, __t1)`` and dispatched through the ``__tile`` runner.
        # Only a plain 0..N unit-step axis tiles (ranges then compose by
        # plain slicing); reduction loops stay sequential inside every
        # tile, so chunking cannot reorder a single accumulation.
        tile_iv: Optional[Value] = None
        if self.tiled and out_ivs:
            outer = iv_to_loop[out_ivs[0]]
            if outer.lower == 0 and outer.step == 1:
                tile_iv = out_ivs[0]

        # -- emission ---------------------------------------------------------
        emitted: List[str] = []
        base_indent = self.indent + (1 if tile_iv is not None else 0)

        def emit(text: str, extra: int = 0) -> None:
            emitted.append("    " * (base_indent + extra) + text)

        # Integer index grids for the output dimensions (used by loads
        # with computed gather indices and by IVs consumed as values).
        grid_of: Dict[Value, str] = {}

        def grid(iv: Value) -> str:
            if iv not in grid_of:
                loop = iv_to_loop[iv]
                var = self._fresh("g")
                shape = tuple(iv_to_loop[o].extent if o is iv else 1
                              for o in out_ivs)
                if iv is tile_iv:
                    tile_shape = tuple(-1 if o is iv else 1 for o in out_ivs)
                    emit(f"{var} = np.arange(__t0, __t1)"
                         f".reshape({tile_shape!r})")
                else:
                    emit(f"{var} = np.arange({loop.lower}, {loop.upper}, "
                         f"{loop.step}).reshape({shape!r})")
                grid_of[iv] = var
            return grid_of[iv]

        loop_lines: List[str] = []
        depth = 0
        red_iv_var: Dict[Value, str] = {}
        for loop in red_loops:
            var = self._fresh("i")
            red_iv_var[loop.iv] = var
            loop_lines.append(("    " * (base_indent + depth)
                               + f"for {var} in {loop.range_src()}:"))
            depth += 1

        def value_src(value: Value) -> str:
            """Vector-context expression for an operand."""
            if value in ctx:
                return ctx[value][0]
            if value in red_iv_var:
                return red_iv_var[value]
            if value in out_pos:
                return grid(value)
            if value in self.expr:
                return self.expr[value]
            raise UnsupportedAffineOp("operand outside nest scope")

        def index_src_basic(value: Value, dim: Optional[int]) -> str:
            kind = index_kind(value)
            if value is tile_iv:
                return "__t0:__t1"
            if kind == "iv" and value in out_pos:
                return iv_to_loop[value].slice_src(dim)
            if kind == "iv":
                return red_iv_var[value]
            if kind == "const":
                return _literal(consts[value])
            return self.expr[value]

        def index_src_advanced(value: Value) -> str:
            kind = index_kind(value)
            if kind == "iv" and value in out_pos:
                return grid(value)
            if kind == "iv":
                return red_iv_var[value]
            if kind == "const":
                return _literal(consts[value])
            if kind == "scalar":
                return self.expr[value]
            return ctx[value][0]

        body_lines: List[str] = []

        def emit_body(text: str) -> None:
            body_lines.append("    " * (base_indent + depth) + text)

        try:
            for op in body:
                if op.name == "arith.constant":
                    ctx[op.results[0]] = (_literal(op.attr("value")), "const")
                    continue
                if op.name == "memref.load":
                    buffer_val = op.operands[0]
                    buffer = self.expr.get(buffer_val)
                    if buffer is None:
                        raise UnsupportedAffineOp("load from local buffer")
                    ref = buffer_val.type
                    indices = list(op.operands[1:])
                    kinds = [index_kind(idx) for idx in indices]
                    var = self._fresh()
                    out_idx = [idx for idx in indices if idx in out_pos]
                    if not indices:
                        emit_body(f"{var} = {buffer}[()]")
                    elif "computed" not in kinds and \
                            len(out_idx) == len(set(out_idx)):
                        parts = [
                            index_src_basic(idx, ref.shape[d])
                            for d, idx in enumerate(indices)
                        ]
                        expr = f"{buffer}[{', '.join(parts)}]"
                        present = [idx for idx in indices if idx in out_pos]
                        wanted = sorted(present, key=out_pos.get)
                        if present != wanted:
                            perm = tuple(present.index(iv) for iv in wanted)
                            expr += f".transpose{perm!r}"
                        if present and len(present) < len(out_ivs):
                            pad = ", ".join(
                                ":" if iv in present else "None"
                                for iv in out_ivs)
                            expr = f"({expr})[{pad}]"
                        emit_body(f"{var} = {expr}")
                    else:
                        parts = [index_src_advanced(idx) for idx in indices]
                        emit_body(f"{var} = {buffer}[{', '.join(parts)}]")
                    ctx[op.results[0]] = (var, "vec")
                    continue
                if op.name == "memref.store":
                    value = op.operands[0]
                    buffer_val = op.operands[1]
                    buffer = self.expr.get(buffer_val)
                    if buffer is None:
                        raise UnsupportedAffineOp("store to local buffer")
                    ref = buffer_val.type
                    indices = list(op.operands[2:])
                    if value in ctx:
                        value_expr = ctx[value][0]
                    else:
                        value_expr = value_src(value)
                    if not indices:
                        emit_body(f"{buffer}[()] = {value_expr}")
                    else:
                        parts = [
                            index_src_basic(idx, ref.shape[d])
                            for d, idx in enumerate(indices)
                        ]
                        emit_body(f"{buffer}[{', '.join(parts)}] "
                                  f"= {value_expr}")
                    continue
                template = self._vector_compute(op, value_src)
                var = self._fresh()
                emit_body(f"{var} = {template}")
                ctx[op.results[0]] = (var, "vec")
        except UnsupportedAffineOp:
            return False

        if tile_iv is not None:
            fn_name = self._fresh("__nest")
            work = 1
            for loop in loops:
                work *= loop.extent
            pad = "    " * self.indent
            self.lines.append(f"{pad}def {fn_name}(__t0, __t1):")
            self.lines.extend(emitted)
            self.lines.extend(loop_lines)
            self.lines.extend(body_lines)
            self.lines.append(f"{pad}__tile({fn_name}, "
                              f"{iv_to_loop[tile_iv].extent}, {work})")
            self.tileable_nests += 1
            return True

        self.lines.extend(emitted)     # grids (before the red loops)
        self.lines.extend(loop_lines)  # sequential reduction loops
        self.lines.extend(body_lines)  # vectorized body
        return True

    def _vector_compute(self, op: Operation, resolve) -> str:
        name = op.name
        ops = [resolve(o) for o in op.operands]
        if name in _BINOP_SRC:
            return _BINOP_SRC[name][1].format(a=ops[0], b=ops[1])
        if name in ("arith.cmpf", "arith.cmpi"):
            cmp = _CMP_SRC.get(op.attr("predicate"))
            if cmp is None:
                raise UnsupportedAffineOp(
                    f"unknown predicate {op.attr('predicate')!r}")
            return f"({ops[0]} {cmp} {ops[1]})"
        if name == "arith.select":
            return f"np.where({ops[0]}, {ops[1]}, {ops[2]})"
        if name == "arith.negf":
            return f"(-{ops[0]})"
        if name in _MATH_SRC:
            return f"{_MATH_SRC[name]}({ops[0]})"
        if name == "arith.index_cast":
            return ops[0]
        if name == "arith.sitofp":
            return f"np.asarray({ops[0]}).astype(np.float64)"
        if name == "arith.fptosi":
            return f"np.asarray({ops[0]}).astype(np.int64)"
        if name in ("arith.truncf", "arith.extf"):
            dtype = _DTYPE_SRC.get(str(op.results[0].type), "np.float64")
            return f"np.asarray({ops[0]}).astype({dtype})"
        raise UnsupportedAffineOp(f"cannot vectorize op {name}")


# -- FLOP accounting ---------------------------------------------------------


def count_flops(func: Operation) -> int:
    """Static floating-point-operation count of one affine function.

    Every op in :data:`FLOAT_OPS` counts once per enclosing-loop trip
    product.  The HLS engine computes the same quantity from its nest
    reports; ``tests/test_hls.py`` cross-checks the two.
    """

    def visit(block, trip: int) -> int:
        total = 0
        for op in block.operations:
            if op.name == "affine.for":
                inner = _trip(op.attr("lower"), op.attr("upper"),
                              op.attr("step") or 1)
                total += visit(op.regions[0].entry, trip * inner)
            elif op.name in FLOAT_OPS:
                total += trip
            for region in op.regions:
                if op.name == "affine.for":
                    break
                for inner_block in region.blocks:
                    total += visit(inner_block, trip)
        return total

    return visit(func.regions[0].entry, 1)


# -- public entry points -----------------------------------------------------

_COMPILE_CACHE: Dict[str, CompiledKernel] = {}
_CACHE_LOCK = threading.Lock()


def compile_cache_stats() -> Tuple[int, int]:
    """(entries, hits) of the process-wide compile cache."""
    with _CACHE_LOCK:
        return len(_COMPILE_CACHE), _CACHE_HITS[0]


_CACHE_HITS = [0]


def clear_compile_cache() -> None:
    with _CACHE_LOCK:
        _COMPILE_CACHE.clear()
        _CACHE_HITS[0] = 0


def _static_flops(func: Operation) -> int:
    try:
        return count_flops(func)
    except UnsupportedAffineOp:
        # e.g. negative-step loops: executable, but outside the static
        # FLOP model.  Never let the internal exception escape — the
        # contract is interpreter fallback, not a crash.
        return 0


def compile_numpy(module: Module, func_name: str, *,
                  backend: str = "compiled", tiled: bool = False,
                  arena: bool = False,
                  cache: bool = True) -> CompiledKernel:
    """The numpy compilation core behind the ``interpreter``,
    ``compiled``, ``compiled-parallel`` and ``compiled-arena`` registry
    backends.

    Results are cached by content hash of the printed module plus the
    function name and backend, so repeated compiles of an identical
    module are free.  Functions containing unsupported ops degrade to
    the interpreter backend (same results, interpreter speed);
    ``backend="interpreter"`` forces that path (baseline/differential
    runs).  ``tiled`` selects the sharded source variant executed
    through :mod:`repro.tensorpipe.parallel`; ``arena`` runs the static
    planner of :mod:`repro.tensorpipe.arena` and emits local buffers as
    views into one preallocated per-run arena.
    """
    key = fingerprint("affine-codegen", print_module(module), func_name,
                      backend)
    if cache:
        with _CACHE_LOCK:
            hit = _COMPILE_CACHE.get(key)
            if hit is not None:
                _CACHE_HITS[0] += 1
                _CACHE_EVENTS.inc(result="hit")
                return hit
        _CACHE_EVENTS.inc(result="miss")
    tracer = get_tracer()
    with tracer.span("codegen.compile", category="compile") as span:
        if tracer.enabled:
            span.attrs.update(func=func_name, backend=backend)
        func = module.lookup(func_name)
        flops = _static_flops(func)
        kernel = None
        if backend != "interpreter":
            plan = plan_arena(func) if arena else None
            if plan is not None:
                _ARENA_BYTES.set(plan.total_bytes)
            compiler = AffineCompiler(module, func_name, tiled=tiled,
                                      arena=plan)
            try:
                source = compiler.generate()
                namespace = {"np": np}
                code = compile(source, f"<affine-codegen:{func_name}>",
                               "exec")
                exec(code, namespace)
                kernel = CompiledKernel(
                    func_name=func_name, backend=backend, source=source,
                    key=key, flops=flops,
                    vectorized_nests=compiler.vectorized_nests,
                    scalar_nests=compiler.scalar_nests,
                    tileable_nests=compiler.tileable_nests,
                    arena_bytes=plan.total_bytes if plan else 0,
                    arena_slots=len(plan.slots) if plan else 0,
                    _func=func, _fn=namespace["__kernel"],
                )
            except UnsupportedAffineOp:
                kernel = None
        if kernel is None:
            fallback = backend if backend != "interpreter" else ""
            kernel = CompiledKernel(
                func_name=func_name, backend="interpreter", key=key,
                flops=flops, fallback=fallback,
                _interp=AffineInterpreter(module, func_name),
            )
            span.set("fallback", True)
        if kernel.arena_bytes:
            span.set("arena_bytes", kernel.arena_bytes)
    if cache:
        with _CACHE_LOCK:
            _COMPILE_CACHE[key] = kernel
    return kernel


def compile_affine(module: Module, func_name: str, *,
                   backend: str = "compiled",
                   cache: bool = True) -> CompiledKernel:
    """Compile one affine function with the named executor backend.

    ``backend`` is resolved through the
    :mod:`repro.tensorpipe.backends` registry (``interpreter`` /
    ``compiled`` / ``compiled-parallel`` / ``cbackend`` plus anything
    registered by the embedding application); an unknown name raises
    with the list of registered backends.  A backend instance is
    accepted directly.
    """
    from repro.tensorpipe.backends import resolve_backend

    return resolve_backend(backend).compile(module, func_name, cache=cache)


def run_affine_compiled(module: Module, func_name: str,
                        inputs: Mapping[str, np.ndarray]
                        ) -> Dict[str, np.ndarray]:
    """Compile (cached) and execute; drop-in for
    :func:`repro.tensorpipe.affine_interp.run_affine`."""
    return compile_affine(module, func_name).run(inputs)
