"""A reference interpreter for lowered ``affine`` functions.

Executes the loop nests produced by :mod:`repro.tensorpipe.lower_teil`
directly over numpy buffers.  It exists to *cross-validate the compilation
pipeline*: the EKL interpreter (language semantics) and this interpreter
(compiled semantics) must agree bit-for-bit on float64 — a property the
test suite checks on every kernel, including the paper's Fig. 3 listing.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.errors import EverestError
from repro.ir import Module, Operation, Value, types as T

# Scalar semantics are the numpy ufuncs, NOT the Python builtins /
# ``math`` module: numpy's scalar ufunc path and its array loops produce
# bit-identical results, which is what lets the compiled backend
# (:mod:`repro.tensorpipe.codegen`) vectorize these ops and still agree
# with this interpreter bit-for-bit.  ``math.exp``/builtin ``max`` do not
# share that property (different libm paths, different NaN/-0.0 rules).
_BINOPS = {
    "arith.addf": lambda a, b: a + b,
    "arith.subf": lambda a, b: a - b,
    "arith.mulf": lambda a, b: a * b,
    "arith.divf": lambda a, b: a / b,
    "arith.maximumf": np.maximum,
    "arith.minimumf": np.minimum,
    "arith.powf": np.power,
    "arith.addi": lambda a, b: a + b,
    "arith.subi": lambda a, b: a - b,
    "arith.muli": lambda a, b: a * b,
    "arith.divsi": lambda a, b: int(a) // int(b),
    "arith.maxsi": max,
    "arith.minsi": min,
    "arith.remsi": lambda a, b: int(a) % int(b),
}

_CMPS = {"le": lambda a, b: a <= b, "lt": lambda a, b: a < b,
         "ge": lambda a, b: a >= b, "gt": lambda a, b: a > b,
         "eq": lambda a, b: a == b, "ne": lambda a, b: a != b}

_MATH = {"math.exp": np.exp, "math.log": np.log, "math.sqrt": np.sqrt,
         "math.sin": np.sin, "math.cos": np.cos, "math.tanh": np.tanh,
         "math.abs": np.abs}

_NUMPY_DTYPES = {
    "f64": np.float64, "f32": np.float32, "i64": np.int64, "i32": np.int32,
    "i1": np.bool_, "index": np.int64,
}


def _dtype_for(ty: T.Type):
    return _NUMPY_DTYPES.get(str(ty), np.float64)


def bind_buffers(func: Operation, inputs: Mapping[str, np.ndarray]):
    """Allocate the argument buffers for one affine function call.

    Inputs are copied (and shape/dtype checked) into fresh arrays; output
    buffers are zero-initialized.  Returns ``(buffers, output_names)``
    where ``buffers`` follows the entry-block argument order.  Shared by
    the interpreter and the compiled backend so both execute over
    identically prepared memory.
    """
    entry = func.regions[0].entry
    arg_names: List[str] = func.attr("arg_names")
    num_outputs: int = func.attr("num_outputs")
    buffers: List[np.ndarray] = []
    for i, arg in enumerate(entry.args):
        name = arg_names[i]
        ref = arg.type
        assert isinstance(ref, T.MemRefType)
        dtype = _dtype_for(ref.element)
        if i < len(entry.args) - num_outputs:
            if name not in inputs:
                raise EverestError(f"missing input {name!r}")
            array = np.asarray(inputs[name], dtype=dtype)
            if tuple(array.shape) != tuple(ref.shape):
                raise EverestError(
                    f"input {name!r}: expected {ref.shape}, "
                    f"got {array.shape}"
                )
            buffers.append(array.copy())
        else:
            buffers.append(np.zeros(ref.shape, dtype=dtype))
    return buffers, arg_names[len(entry.args) - num_outputs:]


class AffineInterpreter:
    """Executes one lowered affine function over numpy inputs."""

    def __init__(self, module: Module, func_name: str):
        self.func = module.lookup(func_name)
        if self.func.attr("kernel_lang") != "affine":
            raise EverestError(f"{func_name} is not an affine-level function")

    def run(self, inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run the function; returns the output buffers by name."""
        entry = self.func.regions[0].entry
        arg_names: List[str] = self.func.attr("arg_names")
        buffers, output_names = bind_buffers(self.func, inputs)
        env: Dict[Value, object] = {}
        by_name: Dict[str, np.ndarray] = {}
        for i, arg in enumerate(entry.args):
            env[arg] = buffers[i]
            by_name[arg_names[i]] = buffers[i]
        self._run_block(entry, env)
        return {name: by_name[name] for name in output_names}

    # -- execution ------------------------------------------------------------

    def _run_block(self, block, env: Dict[Value, object]) -> None:
        for op in block.operations:
            self._run_op(op, env)

    def _run_op(self, op: Operation, env: Dict[Value, object]) -> None:
        name = op.name
        if name == "affine.for":
            lower, upper, step = op.attr("lower"), op.attr("upper"), \
                op.attr("step")
            body = op.regions[0].entry
            for iv in range(lower, upper, step):
                env[body.args[0]] = iv
                self._run_block(body, env)
            return
        if name in ("affine.yield", "func.return"):
            return
        if name == "memref.alloc":
            ref = op.results[0].type
            env[op.results[0]] = np.zeros(ref.shape, _dtype_for(ref.element))
            return
        if name == "memref.load":
            buffer = env[op.operands[0]]
            indices = tuple(int(env[o]) for o in op.operands[1:])
            env[op.results[0]] = buffer[indices] if indices else buffer[()]
            return
        if name == "memref.store":
            value = env[op.operands[0]]
            buffer = env[op.operands[1]]
            indices = tuple(int(env[o]) for o in op.operands[2:])
            if indices:
                buffer[indices] = value
            else:
                buffer[()] = value
            return
        if name == "memref.copy":
            src = env[op.operands[0]]
            dst = env[op.operands[1]]
            np.copyto(dst, src)
            return
        if name == "arith.constant":
            env[op.results[0]] = op.attr("value")
            return
        if name in _BINOPS:
            a, b = env[op.operands[0]], env[op.operands[1]]
            env[op.results[0]] = _BINOPS[name](a, b)
            return
        if name in ("arith.cmpf", "arith.cmpi"):
            a, b = env[op.operands[0]], env[op.operands[1]]
            env[op.results[0]] = _CMPS[op.attr("predicate")](a, b)
            return
        if name == "arith.select":
            cond = env[op.operands[0]]
            env[op.results[0]] = env[op.operands[1]] if cond \
                else env[op.operands[2]]
            return
        if name in ("arith.index_cast", "arith.sitofp", "arith.fptosi",
                    "arith.truncf", "arith.extf"):
            value = env[op.operands[0]]
            if name == "arith.fptosi":
                value = int(value)
            elif name == "arith.sitofp":
                value = float(value)
            elif name in ("arith.truncf", "arith.extf"):
                # Round through the *target* precision: a truncf to f32
                # must lose mantissa bits, not silently keep computing in
                # f64 (and an extf must widen so later arithmetic promotes).
                value = _dtype_for(op.results[0].type)(value)
            env[op.results[0]] = value
            return
        if name == "arith.negf":
            env[op.results[0]] = -env[op.operands[0]]
            return
        if name in _MATH:
            env[op.results[0]] = _MATH[name](env[op.operands[0]])
            return
        raise EverestError(f"affine interpreter: unhandled op {name}")


def run_affine(module: Module, func_name: str,
               inputs: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Convenience wrapper around :class:`AffineInterpreter`."""
    return AffineInterpreter(module, func_name).run(inputs)
