"""Generated-C executor backend (``cc`` + ``ctypes`` at cache-fill time).

:class:`CBackend` emits one C translation unit per affine function —
native scalar loops over raw row-major pointers — compiles it with the
system C compiler into a shared object, and binds it through
:mod:`ctypes`.  This is the SDK's "kernel library" rung (the hardware
backends emit HLS C++ from the same affine module; sailfish-style
Python-defined device kernels are the exemplar): zero numpy dispatch
overhead, one fused pass over memory per nest.

Bitwise contract
----------------
The backend participates in the same bit-for-bit float64 differential
contract as the numpy backends, which constrains the emitted C:

* IEEE ``+ - * /``, ``sqrt``, ``fabs`` and float casts are exactly
  rounded in both numpy and C — always safe.  ``-ffp-contract=off``
  keeps the compiler from fusing multiply-adds (FMA changes bits).
* libm transcendentals (``exp``, ``log``, ``tanh``, ``pow``, ...) are
  *not* guaranteed to match numpy's SIMD loops bit-for-bit, so a
  one-time **runtime probe** compiles a tiny program and compares each
  candidate against the numpy ufunc over adversarial inputs; only ops
  whose results are bitwise identical are admitted.  A kernel using a
  rejected op falls back to the ``compiled`` numpy backend with the
  reason recorded on the artifact (``kernel.fallback``).
* ``arith.divsi``/``remsi`` are emitted as *floor* division/modulo
  (numpy semantics; C ``/`` truncates), ``arith.maximumf`` as the
  NaN-propagating ``(a >= b || a != a) ? a : b``, and negative gather
  indices wrap once like numpy's.

Cache poisoning guard
---------------------
Artifacts live in a content-addressed on-disk cache (``key.so``).  The
compiler writes source and object to dot-prefixed temporaries and
installs with an atomic ``os.replace``; a ``cc`` crash mid-build leaves
*nothing* under the final name, so a later process can never load a
truncated artifact.  ``REPRO_CBACKEND_CACHE`` overrides the cache
directory, ``REPRO_CC`` the compiler (both used by the regression
tests); with no compiler on PATH every compile cleanly falls back.
"""

from __future__ import annotations

import ctypes
import dataclasses
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.errors import EverestError
from repro.ir import Module, Operation, Value
from repro.ir.printer import print_module
from repro.pipeline.cache import fingerprint
from repro.telemetry.metrics import get_registry
from repro.telemetry.trace import get_tracer
from repro.tensorpipe.codegen import (
    CompiledKernel,
    UnsupportedAffineOp,
    _static_flops,
    compile_numpy,
)

_CTYPE = {
    "f64": "double", "f32": "float", "i64": "int64_t", "i32": "int32_t",
    "i1": "uint8_t", "index": "int64_t",
}

_CMP_C = {"le": "<=", "lt": "<", "ge": ">=", "gt": ">", "eq": "==",
          "ne": "!="}

# Simple infix ops whose C semantics match numpy exactly on every
# operand type we emit (IEEE arithmetic / two's-complement int64).
_INFIX_C = {
    "arith.addf": "+", "arith.subf": "-", "arith.mulf": "*",
    "arith.divf": "/",
    "arith.addi": "+", "arith.subi": "-", "arith.muli": "*",
}

_MATH_C = {"math.exp": "exp", "math.log": "log", "math.sqrt": "sqrt",
           "math.sin": "sin", "math.cos": "cos", "math.tanh": "tanh"}

_HELPERS = """\
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

static inline int64_t repro_wrap(int64_t i, int64_t n)
    { return i < 0 ? i + n : i; }
static inline int64_t repro_divfloor(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b) != 0 && ((a < 0) != (b < 0))) --q;
    return q;
}
static inline int64_t repro_modfloor(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
static inline double repro_fmax(double a, double b)
    { return (a >= b || a != a) ? a : b; }
static inline double repro_fmin(double a, double b)
    { return (a <= b || a != a) ? a : b; }
"""


def _c_float_literal(value: float) -> str:
    if value != value:
        return "NAN"
    if value == float("inf"):
        return "INFINITY"
    if value == float("-inf"):
        return "-INFINITY"
    # repr round-trips doubles exactly and strtod is correctly rounded.
    text = repr(float(value))
    return text


class CEmitter:
    """Emit one affine function as a C translation unit."""

    def __init__(self, module: Module, func_name: str,
                 supported: FrozenSet[str]):
        self.func = module.lookup(func_name)
        if self.func.attr("kernel_lang") != "affine":
            raise EverestError(f"{func_name} is not an affine-level function")
        self.supported = supported
        self.lines: List[str] = []
        self.indent = 1
        self.counter = 0
        self.expr: Dict[Value, str] = {}
        self.ctype: Dict[Value, str] = {}
        # Value -> (var, shape tuple, element ctype) for memref buffers.
        self.buffers: Dict[Value, Tuple[str, Tuple[int, ...], str]] = {}
        self.nonneg: set = set()       # values provably >= 0 (loop IVs)
        self.allocs: List[str] = []

    def _fresh(self, prefix: str = "v") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def _ct(self, value: Value) -> str:
        ct = _CTYPE.get(str(value.type))
        if ct is None:
            raise UnsupportedAffineOp(
                f"no C type for {value.type}")
        return ct

    def generate(self) -> str:
        entry = self.func.regions[0].entry
        self.lines = [_HELPERS, "void repro_kernel(void **args) {"]
        for i, arg in enumerate(entry.args):
            ref = arg.type
            ct = _CTYPE.get(str(ref.element))
            if ct is None:
                raise UnsupportedAffineOp(f"no C type for {ref.element}")
            var = f"a{i}"
            self._emit(f"{ct} *{var} = ({ct} *) args[{i}];")
            self.buffers[arg] = (var, tuple(ref.shape), ct)
        for op in entry.operations:
            self._emit_op(op)
        for var in self.allocs:
            self._emit(f"free({var});")
        self.lines.append("}")
        return "\n".join(self.lines) + "\n"

    # -- per-op emission -----------------------------------------------------

    def _emit_op(self, op: Operation) -> None:
        name = op.name
        if name in ("affine.yield", "func.return"):
            return
        if name == "affine.for":
            lower, upper = op.attr("lower"), op.attr("upper")
            step = op.attr("step")
            if step is None or step <= 0:
                raise UnsupportedAffineOp(f"non-positive loop step {step}")
            iv = op.regions[0].entry.args[0]
            var = self._fresh("i")
            self.expr[iv] = var
            self.ctype[iv] = "int64_t"
            self.nonneg.add(iv)
            self._emit(f"for (int64_t {var} = {lower}; {var} < {upper}; "
                       f"{var} += {step}) {{")
            self.indent += 1
            for inner in op.regions[0].entry.operations:
                self._emit_op(inner)
            self.indent -= 1
            self._emit("}")
            return
        if name == "memref.alloc":
            ref = op.results[0].type
            ct = _CTYPE.get(str(ref.element))
            if ct is None:
                raise UnsupportedAffineOp(f"no C type for {ref.element}")
            count = 1
            for dim in ref.shape:
                count *= dim
            var = self._fresh("buf")
            # calloc zero-fills: identical to the np.zeros the numpy
            # backends allocate (all-zero bits are +0.0 / 0 / false).
            self._emit(f"{ct} *{var} = ({ct} *) calloc({max(count, 1)}, "
                       f"sizeof({ct}));")
            self.buffers[op.results[0]] = (var, tuple(ref.shape), ct)
            self.allocs.append(var)
            return
        if name == "memref.copy":
            src, dst = op.operands[0], op.operands[1]
            if src not in self.buffers or dst not in self.buffers:
                raise UnsupportedAffineOp("copy of unknown buffer")
            svar, shape, ct = self.buffers[src]
            dvar = self.buffers[dst][0]
            count = 1
            for dim in shape:
                count *= dim
            self._emit(f"memcpy({dvar}, {svar}, "
                       f"{max(count, 1)} * sizeof({ct}));")
            return
        if name == "memref.load":
            buffer = op.operands[0]
            if buffer not in self.buffers:
                raise UnsupportedAffineOp("load from unknown buffer")
            var = self._fresh()
            ct = self._ct(op.results[0])
            index = self._flat_index(buffer, list(op.operands[1:]))
            self._emit(f"{ct} {var} = {self.buffers[buffer][0]}[{index}];")
            self.expr[op.results[0]] = var
            self.ctype[op.results[0]] = ct
            return
        if name == "memref.store":
            value, buffer = op.operands[0], op.operands[1]
            if buffer not in self.buffers:
                raise UnsupportedAffineOp("store to unknown buffer")
            bvar, _, ct = self.buffers[buffer]
            index = self._flat_index(buffer, list(op.operands[2:]))
            self._emit(f"{bvar}[{index}] = ({ct})({self._operand(value)});")
            return
        if name == "arith.constant":
            self._emit_constant(op)
            return
        expr = self._compute(op)
        var = self._fresh()
        ct = self._ct(op.results[0])
        self._emit(f"{ct} {var} = {expr};")
        self.expr[op.results[0]] = var
        self.ctype[op.results[0]] = ct

    def _emit_constant(self, op: Operation) -> None:
        value = op.attr("value")
        result = op.results[0]
        ct = self._ct(result)
        if isinstance(value, bool):
            literal = "1" if value else "0"
        elif isinstance(value, float):
            literal = _c_float_literal(value)
        elif isinstance(value, int):
            literal = repr(value)
            if value >= 0:
                self.nonneg.add(result)
        else:
            raise UnsupportedAffineOp(f"cannot inline constant {value!r}")
        # Cast into the result's C type so f32 constants participate in
        # float arithmetic (numpy keeps the narrow type the same way).
        self.expr[result] = f"(({ct})({literal}))"
        self.ctype[result] = ct

    def _operand(self, value: Value) -> str:
        expr = self.expr.get(value)
        if expr is None:
            raise UnsupportedAffineOp("operand defined outside C scope")
        return expr

    def _flat_index(self, buffer: Value, indices: List[Value]) -> str:
        _, shape, _ = self.buffers[buffer]
        if len(indices) != len(shape):
            raise UnsupportedAffineOp("rank-mismatched memory access")
        if not indices:
            return "0"
        strides = []
        acc = 1
        for dim in reversed(shape):
            strides.append(acc)
            acc *= dim
        strides.reverse()
        parts = []
        for value, dim, stride in zip(indices, shape, strides):
            expr = self._operand(value)
            if value not in self.nonneg:
                # numpy wraps one negative step (gather indices).
                expr = f"repro_wrap({expr}, {dim})"
            parts.append(expr if stride == 1 else f"({expr}) * {stride}")
        return " + ".join(parts)

    def _compute(self, op: Operation) -> str:
        name = op.name
        ops = [self._operand(o) for o in op.operands]
        cts = [self.ctype.get(o, "") for o in op.operands]
        if name in _INFIX_C:
            return f"({ops[0]} {_INFIX_C[name]} {ops[1]})"
        if name in ("arith.divsi", "arith.remsi"):
            fn = "repro_divfloor" if name == "arith.divsi" else \
                "repro_modfloor"
            return f"{fn}({ops[0]}, {ops[1]})"
        if name == "arith.maxsi":
            return f"({ops[0]} > {ops[1]} ? {ops[0]} : {ops[1]})"
        if name == "arith.minsi":
            return f"({ops[0]} < {ops[1]} ? {ops[0]} : {ops[1]})"
        if name in ("arith.maximumf", "arith.minimumf", "arith.powf"):
            self._require(name)
            self._require_double(name, cts)
            fn = {"arith.maximumf": "repro_fmax",
                  "arith.minimumf": "repro_fmin",
                  "arith.powf": "pow"}[name]
            return f"{fn}({ops[0]}, {ops[1]})"
        if name in ("arith.cmpf", "arith.cmpi"):
            cmp = _CMP_C.get(op.attr("predicate"))
            if cmp is None:
                raise UnsupportedAffineOp(
                    f"unknown predicate {op.attr('predicate')!r}")
            return f"({ops[0]} {cmp} {ops[1]})"
        if name == "arith.select":
            return f"({ops[0]} ? {ops[1]} : {ops[2]})"
        if name == "arith.negf":
            return f"(-{ops[0]})"
        if name in _MATH_C:
            self._require(name)
            self._require_double(name, cts)
            return f"{_MATH_C[name]}({ops[0]})"
        if name == "math.abs":
            if cts[0] == "double":
                return f"fabs({ops[0]})"
            if cts[0] == "float":
                return f"fabsf({ops[0]})"
            return f"({ops[0]} < 0 ? -{ops[0]} : {ops[0]})"
        if name == "arith.index_cast":
            return f"(int64_t)({ops[0]})"
        if name in ("arith.sitofp", "arith.fptosi", "arith.truncf",
                    "arith.extf"):
            return f"({self._ct(op.results[0])})({ops[0]})"
        raise UnsupportedAffineOp(f"cannot emit C for op {name}")

    def _require(self, name: str) -> None:
        if name not in self.supported:
            raise UnsupportedAffineOp(
                f"{name}: host libm is not bit-identical to numpy")

    @staticmethod
    def _require_double(name: str, cts: List[str]) -> None:
        if any(ct != "double" for ct in cts):
            raise UnsupportedAffineOp(
                f"{name}: only double precision is probed against numpy")


# -- compiler / artifact cache ------------------------------------------------


class CCompileError(EverestError):
    """``cc`` failed; callers fall back to the numpy backend."""


def find_cc() -> Optional[str]:
    """The C compiler to use: ``REPRO_CC`` (tests) or ``cc`` on PATH."""
    override = os.environ.get("REPRO_CC")
    if override:
        return override
    return shutil.which("cc")


def cache_dir() -> str:
    base = os.environ.get("REPRO_CBACKEND_CACHE")
    if not base:
        base = os.path.join(tempfile.gettempdir(),
                            f"repro-cbackend-{os.getuid()}")
    os.makedirs(base, exist_ok=True)
    return base


#: Outcomes of ``cc`` invocations (``cached`` = .so already installed).
_CC_RUNS = get_registry().counter(
    "repro_cbackend_cc_total",
    "C-backend shared-object builds by outcome", ("result",))


def compile_shared_object(cc: str, source: str, key: str) -> str:
    """Compile ``source`` into ``<cache>/<key>.so``; atomic install.

    Source and object are written to dot-prefixed temporaries and moved
    into place with ``os.replace`` only after ``cc`` succeeded, so a
    failed build can never leave a partial artifact under the final
    name (cache-poisoning guard).  Raises :class:`CCompileError` on
    failure, with all temporaries removed.
    """
    directory = cache_dir()
    so_path = os.path.join(directory, f"{key}.so")
    if os.path.exists(so_path):
        _CC_RUNS.inc(result="cached")
        return so_path
    pid = os.getpid()
    tmp_c = os.path.join(directory, f".{key}.{pid}.c")
    tmp_so = os.path.join(directory, f".{key}.{pid}.so")
    try:
        with open(tmp_c, "w") as handle:
            handle.write(source)
        command = [cc, "-O2", "-fPIC", "-shared", "-ffp-contract=off",
                   "-o", tmp_so, tmp_c, "-lm"]
        tracer = get_tracer()
        with tracer.span("cbackend.cc", category="compile") as span:
            if tracer.enabled:
                span.attrs.update(cc=cc, key=key)
            try:
                proc = subprocess.run(command, capture_output=True,
                                      text=True)
            except OSError as error:
                _CC_RUNS.inc(result="error")
                raise CCompileError(f"cannot run {cc!r}: {error}")
            if proc.returncode != 0 or not os.path.exists(tmp_so):
                _CC_RUNS.inc(result="error")
                detail = (proc.stderr or proc.stdout or "").strip()
                raise CCompileError(
                    f"{cc} exited with {proc.returncode}"
                    + (f": {detail[:500]}" if detail else ""))
        _CC_RUNS.inc(result="ok")
        os.replace(tmp_so, so_path)
        # Keep the source next to the object for inspection (same
        # atomic discipline; losing this race is harmless).
        os.replace(tmp_c, os.path.join(directory, f"{key}.c"))
        return so_path
    finally:
        for leftover in (tmp_c, tmp_so):
            try:
                os.remove(leftover)
            except OSError:
                pass


_LOADED: Dict[str, object] = {}
_LOAD_LOCK = threading.Lock()


def _load_kernel(so_path: str):
    with _LOAD_LOCK:
        fn = _LOADED.get(so_path)
        if fn is None:
            lib = ctypes.CDLL(so_path)
            fn = lib.repro_kernel
            fn.argtypes = [ctypes.POINTER(ctypes.c_void_p)]
            fn.restype = None
            _LOADED[so_path] = fn
        return fn


# -- the libm-vs-numpy probe --------------------------------------------------

_PROBE_CACHE: Dict[Tuple[str, str], Optional[FrozenSet[str]]] = {}
_PROBE_LOCK = threading.Lock()


def _probe_inputs() -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(0x5EED)
    a = np.concatenate([
        rng.uniform(-50.0, 50.0, 2000),
        rng.uniform(-1e-3, 1e-3, 500),
        rng.normal(0.0, 1e4, 500),
        np.array([0.0, -0.0, 1.0, -1.0, np.inf, -np.inf, np.nan,
                  np.pi, -np.pi, 1e-300, 1e300]),
    ])
    b = rng.permutation(a)
    return a, b


_PROBE_REFS = {
    "math.exp": lambda a, b: np.exp(a),
    "math.log": lambda a, b: np.log(np.abs(a) + 1e-6),
    "math.sqrt": lambda a, b: np.sqrt(np.abs(a)),
    "math.sin": lambda a, b: np.sin(a),
    "math.cos": lambda a, b: np.cos(a),
    "math.tanh": lambda a, b: np.tanh(a),
    "arith.powf": lambda a, b: np.power(np.abs(a) + 0.5,
                                        np.clip(b, -3.0, 3.0)),
    "arith.maximumf": lambda a, b: np.maximum(a, b),
    "arith.minimumf": lambda a, b: np.minimum(a, b),
}

# The C loop bodies mirror the reference preprocessing above so both
# sides evaluate the candidate op over identical finite/special inputs.
_PROBE_BODIES = {
    "math.exp": "out[i] = exp(a[i]);",
    "math.log": "out[i] = log(fabs(a[i]) + 1e-6);",
    "math.sqrt": "out[i] = sqrt(fabs(a[i]));",
    "math.sin": "out[i] = sin(a[i]);",
    "math.cos": "out[i] = cos(a[i]);",
    "math.tanh": "out[i] = tanh(a[i]);",
    "arith.powf": ("double e = b[i] < -3.0 ? -3.0 : "
                   "(b[i] > 3.0 ? 3.0 : b[i]); "
                   "if (b[i] != b[i]) e = b[i]; "
                   "out[i] = pow(fabs(a[i]) + 0.5, e);"),
    "arith.maximumf": "out[i] = repro_fmax(a[i], b[i]);",
    "arith.minimumf": "out[i] = repro_fmin(a[i], b[i]);",
}


def probe_supported(cc: str) -> Optional[FrozenSet[str]]:
    """Which probed ops match numpy bit-for-bit under ``cc`` + libm.

    Returns None when the probe itself cannot be built (no working
    compiler): the caller falls back for every kernel.  Results are
    cached per (compiler, cache-dir) for the process lifetime.
    """
    cache_key = (cc, cache_dir())
    with _PROBE_LOCK:
        if cache_key in _PROBE_CACHE:
            return _PROBE_CACHE[cache_key]
    names = sorted(_PROBE_BODIES)
    cases = "\n".join(
        f"        case {i}: {_PROBE_BODIES[name]} break;"
        for i, name in enumerate(names))
    source = (_HELPERS + f"""
void repro_kernel(void **args) {{
    const double *a = (const double *) args[0];
    const double *b = (const double *) args[1];
    double *out = (double *) args[2];
    const int64_t *meta = (const int64_t *) args[3];
    int64_t n = meta[0], op = meta[1];
    for (int64_t i = 0; i < n; ++i) switch (op) {{
{cases}
    }}
}}
""")
    key = fingerprint("cbackend-probe", source)
    supported: Optional[FrozenSet[str]]
    try:
        so_path = compile_shared_object(cc, source, key)
        fn = _load_kernel(so_path)
        a, b = _probe_inputs()
        out = np.empty_like(a)
        passed = []
        for i, name in enumerate(names):
            meta = np.array([a.size, i], dtype=np.int64)
            ptrs = (ctypes.c_void_p * 4)(a.ctypes.data, b.ctypes.data,
                                         out.ctypes.data, meta.ctypes.data)
            fn(ptrs)
            with np.errstate(all="ignore"):
                reference = _PROBE_REFS[name](a, b)
            if np.array_equal(out, reference, equal_nan=True):
                passed.append(name)
        supported = frozenset(passed)
    except (CCompileError, OSError):
        supported = None
    with _PROBE_LOCK:
        _PROBE_CACHE[cache_key] = supported
    return supported


def reset_probe_cache() -> None:
    """Forget probe results (tests that redirect ``REPRO_CC``)."""
    with _PROBE_LOCK:
        _PROBE_CACHE.clear()


# -- the backend --------------------------------------------------------------

_CBACKEND_CACHE: Dict[str, CompiledKernel] = {}
_CBACKEND_LOCK = threading.Lock()


class CBackend:
    """``cbackend``: generated C, with clean fallback to ``compiled``."""

    name = "cbackend"

    def compile(self, module: Module, func_name: str, *,
                cache: bool = True) -> CompiledKernel:
        key = fingerprint("affine-cbackend", print_module(module), func_name)
        if cache:
            with _CBACKEND_LOCK:
                hit = _CBACKEND_CACHE.get(key)
                if hit is not None:
                    return hit
        kernel = self._compile(module, func_name, key, cache)
        if cache:
            with _CBACKEND_LOCK:
                _CBACKEND_CACHE[key] = kernel
        return kernel

    def _compile(self, module: Module, func_name: str, key: str,
                 cache: bool) -> CompiledKernel:
        cc = find_cc()
        if cc is None:
            return self._fallback(module, func_name, cache,
                                  "no C compiler (cc) on PATH")
        supported = probe_supported(cc)
        if supported is None:
            return self._fallback(module, func_name, cache,
                                  f"probe build failed under {cc!r}")
        try:
            source = CEmitter(module, func_name, supported).generate()
        except UnsupportedAffineOp as error:
            return self._fallback(module, func_name, cache, str(error))
        try:
            so_path = compile_shared_object(cc, source, key)
            fn = _load_kernel(so_path)
        except (CCompileError, OSError) as error:
            return self._fallback(module, func_name, cache, str(error))
        func = module.lookup(func_name)

        def runner(buffers):
            ptrs = (ctypes.c_void_p * len(buffers))(
                *[buffer.ctypes.data for buffer in buffers])
            fn(ptrs)

        return CompiledKernel(
            func_name=func_name, backend="cbackend", source=source,
            key=key, flops=_static_flops(func),
            _func=func, _runner=runner,
        )

    @staticmethod
    def _fallback(module: Module, func_name: str, cache: bool,
                  reason: str) -> CompiledKernel:
        kernel = compile_numpy(module, func_name, backend="compiled",
                               cache=cache)
        return dataclasses.replace(kernel, fallback=f"cbackend: {reason}")

    def __repr__(self) -> str:
        return f"<backend {self.name}>"


def clear_cbackend_cache() -> None:
    """Drop in-memory artifacts (the on-disk .so cache is untouched)."""
    with _CBACKEND_LOCK:
        _CBACKEND_CACHE.clear()
