"""Tile runner for the ``compiled-parallel`` backend.

The tiled source that :class:`~repro.tensorpipe.codegen.AffineCompiler`
emits wraps each shardable nest in a closure ``fn(t0, t1)`` over a
half-open row range and calls ``__tile(fn, extent, work)``.  This module
provides that runner: small nests (``work`` below a threshold) run
serially as ``fn(0, extent)``; large ones split ``[0, extent)`` into
balanced contiguous chunks executed on a persistent thread pool.  The
generated numpy code releases the GIL inside array operations, so even
a modest pool overlaps memory stalls — and chunked evaluation of long
expression chains additionally keeps tiles cache-resident, which is why
the tiled path beats one full-array pass on large kernels.

Chunking never changes results: the split axis is an output (parallel)
dimension, every reduction loop runs in full inside each chunk, and
chunks write disjoint row ranges of the destination buffers.

Pool sizing: an explicit ``jobs`` argument (``basecamp run --jobs`` /
``session.execute(jobs=...)``) wins, then the ``REPRO_JOBS`` environment
variable, then ``os.cpu_count()`` capped at 8.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional

from repro.errors import EverestError
from repro.telemetry.trace import current_span, get_tracer

#: Minimum per-nest iteration count (loop-trip product) before the tile
#: runner fans out; below it the closure runs serially — thread handoff
#: would cost more than it buys.  Tests override via ``REPRO_TILE_THRESHOLD``.
DEFAULT_TILE_THRESHOLD = 65536

_POOL: Optional[ThreadPoolExecutor] = None
_POOL_SIZE = 0
_POOL_LOCK = threading.Lock()
#: Pools replaced by a grow, kept alive until :func:`shutdown_pool`:
#: a thread that fetched the pool before the grow may still submit to
#: it, and ``ThreadPoolExecutor.shutdown`` (with or without ``wait``)
#: would make that submit raise.  Growth is monotone and capped by the
#: largest ``jobs`` ever requested, so the retired set stays small.
_RETIRED: List[ThreadPoolExecutor] = []


def _env_int(name: str, minimum: int) -> Optional[int]:
    """Parse an integer environment knob, or None when unset/empty.

    Both pool knobs (``REPRO_JOBS``, ``REPRO_TILE_THRESHOLD``) validate
    through here so a typo'd value surfaces as a uniform
    :class:`EverestError` instead of a raw ``ValueError``.
    """
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise EverestError(
            f"{name} must be an integer, got {raw!r}") from None
    if value < minimum:
        raise EverestError(f"{name} must be >= {minimum}, got {value}")
    return value


def resolve_jobs(explicit: Optional[int] = None) -> int:
    """The worker-pool size: explicit > ``REPRO_JOBS`` > cpu count (<=8)."""
    if explicit is not None:
        jobs = int(explicit)
        if jobs < 1:
            raise EverestError(f"jobs must be >= 1, got {jobs}")
        return jobs
    env = _env_int("REPRO_JOBS", 1)
    if env is not None:
        return env
    return min(8, os.cpu_count() or 1)


def tile_threshold() -> int:
    env = _env_int("REPRO_TILE_THRESHOLD", 0)
    return DEFAULT_TILE_THRESHOLD if env is None else env


def _pool_for(jobs: int) -> ThreadPoolExecutor:
    """The shared pool, grown (never shrunk) to at least ``jobs`` workers.

    Growing *retires* the smaller pool instead of shutting it down: a
    concurrent kernel that already holds the old pool must still be able
    to submit its tiles (``shutdown`` would fail that submit with
    "cannot schedule new futures after shutdown").  Retired pools keep
    their idle workers until :func:`shutdown_pool` reaps them.
    """
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        if _POOL is None or _POOL_SIZE < jobs:
            if _POOL is not None:
                _RETIRED.append(_POOL)
            _POOL = ThreadPoolExecutor(
                max_workers=jobs, thread_name_prefix="repro-tile")
            _POOL_SIZE = jobs
        return _POOL


def pool_size() -> int:
    """Current worker count of the shared pool (0 before first fan-out);
    exported as the ``repro_tile_pool_workers`` gauge by the serve
    daemon's ``GET /metrics``."""
    with _POOL_LOCK:
        return _POOL_SIZE


def shutdown_pool() -> None:
    """Tear down the shared worker pool (tests, interpreter shutdown)."""
    global _POOL, _POOL_SIZE
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown(wait=True)
        for pool in _RETIRED:
            pool.shutdown(wait=True)
        _RETIRED.clear()
        _POOL = None
        _POOL_SIZE = 0


def split_ranges(extent: int, parts: int) -> List[tuple]:
    """Balanced contiguous half-open chunks covering ``[0, extent)``."""
    parts = max(1, min(parts, extent))
    base, rem = divmod(extent, parts)
    ranges = []
    start = 0
    for i in range(parts):
        stop = start + base + (1 if i < rem else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def make_tile(jobs: Optional[int] = None,
              threshold: Optional[int] = None) -> Callable:
    """Build the ``__tile`` runner a tiled kernel invocation binds to."""
    jobs = resolve_jobs(jobs)
    limit = tile_threshold() if threshold is None else threshold

    def __tile(fn: Callable[[int, int], None], extent: int,
               work: int) -> None:
        if jobs <= 1 or extent < 2 or work < limit:
            fn(0, extent)
            return
        ranges = split_ranges(extent, jobs)
        if len(ranges) == 1:
            fn(0, extent)
            return
        pool = _pool_for(jobs)
        tracer = get_tracer()
        if tracer.enabled:
            # Context vars do not cross the pool boundary, so capture the
            # submitting span here and hand it to each worker explicitly —
            # tile spans then parent under the stage/run span that fanned
            # out, and land on their worker's thread track in the trace.
            parent = current_span()

            def run_chunk(t0: int, t1: int) -> None:
                with tracer.span("tile", parent=parent, category="exec") \
                        as span:
                    span.attrs.update(rows=t1 - t0, t0=t0, work=work)
                    fn(t0, t1)

            futures = [pool.submit(run_chunk, t0, t1) for t0, t1 in ranges]
        else:
            futures = [pool.submit(fn, t0, t1) for t0, t1 in ranges]
        for future in futures:
            future.result()  # propagate worker exceptions

    return __tile
