"""Static arena memory planning for lowered ``affine`` functions.

The lowering pipeline materializes every intermediate tensor as a
top-level ``memref.alloc`` in the function's entry block, so buffer
lifetimes are fully static: a buffer is born at its alloc statement and
dies after the last top-level statement that (transitively, through loop
nests) touches it.  :func:`plan_arena` turns that observation into a
classic static memory plan —

1. **liveness**: the live range of each alloc is the half-open span of
   entry-block statement indices ``[start, end]`` covering the alloc and
   every statement whose nest uses the buffer;
2. **first-fit placement**: allocs are placed in program order at the
   lowest offset (aligned to the element size) that does not overlap any
   already-placed slot with an intersecting live range.

Two buffers share bytes exactly when their live ranges are disjoint, so
the resulting :class:`ArenaPlan` is correct by construction for any
executor that runs top-level statements in program order — which all of
ours do.  The compiled backend (``compiled-arena``) carves numpy views
out of one ``np.empty(total_bytes, np.uint8)`` arena per run and
re-establishes the ``memref.alloc`` zero-init contract
(:data:`repro.ir.analysis.MEMREF_ALLOC_ZERO_INIT`) with an explicit
``.fill(0)`` on every slot — slots are *reused*, so the fill is what
keeps arena execution bitwise-identical to the per-buffer ``np.zeros``
path.

The same planner backs the HLS engine's
``KernelReport.planned_arena_bytes`` (with the number format's element
widths via ``element_bytes``) and the Olympus PLM-sharing solver
(:func:`repro.olympus.plm_sharing.requests_from_arena`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.ir import Operation, types as T
from repro.tensorpipe.affine_interp import _dtype_for

__all__ = [
    "ArenaPlan",
    "ArenaSlot",
    "default_element_bytes",
    "plan_arena",
]


def default_element_bytes(element: T.Type) -> int:
    """Bytes per element as the numpy executors store it.

    This intentionally follows :func:`repro.tensorpipe.affine_interp.
    _dtype_for` (unknown element types run as float64) rather than the
    declared bit width, so arena views always match the arrays the
    reference interpreter would allocate.
    """
    return int(np.dtype(_dtype_for(element)).itemsize)


@dataclass(frozen=True)
class ArenaSlot:
    """One planned buffer: an aligned byte range plus its live range."""

    name: str
    offset: int
    size: int
    align: int
    start: int          # entry-block statement index of the alloc
    end: int            # last top-level statement index using the buffer
    shape: Tuple[int, ...]
    dtype: str

    def overlaps_lifetime(self, start: int, end: int) -> bool:
        return self.start <= end and start <= self.end

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape) or "scalar"
        return (f"{self.name}: [{self.offset}, {self.offset + self.size}) "
                f"{dims}:{self.dtype} live [{self.start}, {self.end}]")


@dataclass
class ArenaPlan:
    """The output of :func:`plan_arena` for one affine function.

    ``total_bytes`` is the arena's peak footprint; ``unshared_bytes`` is
    what per-buffer allocation would have used, so ``saving`` is the
    fraction of memory the liveness-based sharing reclaimed.
    ``op_slots`` maps ``id(alloc_op)`` to its slot for the codegen that
    planned against the same in-memory function.
    """

    func_name: str
    slots: List[ArenaSlot] = field(default_factory=list)
    total_bytes: int = 0
    unshared_bytes: int = 0
    op_slots: Dict[int, ArenaSlot] = field(default_factory=dict, repr=False)

    @property
    def saving(self) -> float:
        if self.unshared_bytes <= 0:
            return 0.0
        return 1.0 - self.total_bytes / self.unshared_bytes

    def __str__(self) -> str:
        lines = [f"arena {self.func_name}: {self.total_bytes} bytes "
                 f"({len(self.slots)} slots, "
                 f"{self.saving * 100.0:.0f}% shared)"]
        lines.extend(f"  {slot}" for slot in self.slots)
        return "\n".join(lines)


def _align_up(offset: int, align: int) -> int:
    if align <= 1:
        return offset
    return -(-offset // align) * align


def _first_fit(placed: List[ArenaSlot], start: int, end: int,
               size: int, align: int) -> int:
    """Lowest aligned offset whose byte range is free for ``[start, end]``."""
    live = sorted(
        (slot for slot in placed if slot.overlaps_lifetime(start, end)),
        key=lambda slot: slot.offset,
    )
    offset = 0
    for slot in live:
        if offset + size <= slot.offset:
            break
        offset = _align_up(max(offset, slot.offset + slot.size), align)
    return offset


def _top_level_index(op: Operation,
                     stmt_index: Dict[int, int]) -> Optional[int]:
    """Entry-block statement index of the nest containing ``op``."""
    current: Optional[Operation] = op
    while current is not None:
        index = stmt_index.get(id(current))
        if index is not None:
            return index
        block = current.parent
        if block is None or block.parent is None:
            return None
        current = block.parent.parent_op
    return None


def plan_arena(
    func: Operation,
    *,
    element_bytes: Optional[Callable[[T.Type], int]] = None,
) -> ArenaPlan:
    """Plan one arena for the top-level ``memref.alloc`` ops of ``func``.

    ``element_bytes`` maps an element type to its storage width;
    the default matches the numpy executors
    (:func:`default_element_bytes`), and the HLS engine substitutes the
    active number format's widths.  Allocs with non-static shapes (or
    nested inside loops, whose lifetime is per-iteration) receive no
    slot and keep their private allocation.
    """
    width = element_bytes or default_element_bytes
    entry = func.regions[0].entry
    statements = list(entry.operations)
    stmt_index = {id(op): i for i, op in enumerate(statements)}

    plan = ArenaPlan(func_name=str(func.attr("sym_name") or "<func>"))
    for index, op in enumerate(statements):
        if op.name != "memref.alloc":
            continue
        ref = op.results[0].type
        if not isinstance(ref, T.MemRefType):
            continue
        shape = tuple(ref.shape)
        if not all(isinstance(dim, int) and dim >= 0 for dim in shape):
            continue  # dynamic shape: leave it privately allocated
        align = width(ref.element)
        elements = 1
        for dim in shape:
            elements *= dim
        size = align * elements
        plan.unshared_bytes += size

        end = index
        for user, _operand_index in op.results[0].uses:
            user_index = _top_level_index(user, stmt_index)
            # A user outside the entry block's statement nests (should
            # not happen for lowered functions) pins the buffer live to
            # the end of the function.
            end = max(end,
                      len(statements) if user_index is None else user_index)

        offset = _first_fit(plan.slots, index, end, size, align)
        slot = ArenaSlot(
            name=f"buf{len(plan.slots)}", offset=offset, size=size,
            align=align, start=index, end=end, shape=shape,
            dtype=str(ref.element),
        )
        plan.slots.append(slot)
        plan.op_slots[id(op)] = slot
        plan.total_bytes = max(plan.total_bytes, offset + size)
    return plan
