"""Lowering of TeIL tensor ops into ``affine`` loop nests over ``memref``\\ s.

This produces the form the HLS engine synthesizes: a function whose
arguments are input memrefs followed by output memrefs, with one loop nest
per tensor operation.  Rank-0 tensors become plain scalars.

The generated code is deliberately *naive* (one nest per op, no fusion):
Olympus and the HLS engine then apply the paper's optimizations — loop
pipelining, memory partitioning, double buffering — on this canonical form.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dialects import register_lowering
from repro.errors import LoweringError
from repro.ir import Builder, Module, Operation, Value, types as T
from repro.ir.core import Block, Region

# Kind tags for lowered values.
_MEMREF = "memref"
_SCALAR = "scalar"

_MATH_FNS = {"exp", "log", "sqrt", "sin", "cos", "tanh", "abs"}
_CMP_FNS = {"cmp_le": "le", "cmp_lt": "lt", "cmp_ge": "ge", "cmp_gt": "gt",
            "cmp_eq": "eq"}


@register_lowering("teil", "affine")
def lower_teil_to_affine(module: Module, *, canonicalize: bool = True) -> Module:
    """Lower every teil function in ``module`` to affine loop nests.

    Canonicalizes the result (fold/DCE/CSE inside the loop bodies) unless
    ``canonicalize=False``.
    """
    from repro.ir.canonicalize import canonicalize_module

    out = Module()
    for func in module.body:
        if func.name != "func.func":
            continue
        _LoopGenerator(func, out).run()
    return canonicalize_module(out) if canonicalize else out


class _LoopGenerator:
    def __init__(self, func: Operation, out_module: Module):
        self.func = func
        self.out_module = out_module
        self.mapping: Dict[Value, Tuple[str, Value]] = {}
        self.builder = Builder()
        self.arg_names: List[str] = []
        self.output_names: List[str] = []

    def run(self) -> Operation:
        ops = list(self.func.regions[0].entry)
        args = [op for op in ops if op.name == "ekl.arg"]
        returns = [op for op in ops if op.name == "func.return"]
        if len(returns) != 1:
            raise LoweringError("teil function must have exactly one return")
        ret = returns[0]
        # Build the new function signature: input memrefs then output memrefs.
        arg_types: List[T.Type] = []
        for arg in args:
            ty = arg.results[0].type
            arg_types.append(_memref_for(ty))
            self.arg_names.append(arg.attr("name"))
        out_types: List[T.Type] = []
        for value in ret.operands:
            out_types.append(_memref_for(value.type))
        self.output_names = list(ret.attr("names") or
                                 [f"out{i}" for i in range(len(ret.operands))])
        entry = Block(arg_types + out_types)
        new_func = Operation.create(
            "func.func", [], [],
            {"sym_name": self.func.attr("sym_name"),
             "function_type": T.FunctionType(tuple(arg_types + out_types), ()),
             "kernel_lang": "affine",
             "arg_names": self.arg_names + self.output_names,
             "num_outputs": len(out_types)},
            [Region([entry])],
        )
        self.out_module.append(new_func)
        self.builder = Builder.at_end(entry)
        for i, arg in enumerate(args):
            self.mapping[arg.results[0]] = (_MEMREF, entry.args[i])
        for op in ops:
            if op.name == "ekl.arg":
                continue
            if op.name == "func.return":
                for j, value in enumerate(op.operands):
                    kind, lowered = self.mapping[value]
                    out_arg = entry.args[len(args) + j]
                    self.builder.create("memref.copy", [lowered, out_arg], [])
                break
            self._lower_op(op)
        self.builder.create("func.return", [], [])
        return new_func

    # -- helpers -------------------------------------------------------------------

    def _alloc(self, tensor_type: T.TensorType) -> Value:
        ref = _memref_for(tensor_type)
        return self.builder.create("memref.alloc", [], [ref]).result

    def _nest(self, shape: Tuple[int, ...]) -> Tuple[List[Value], Builder]:
        """Emit a loop nest over ``shape``; returns (ivs, body builder).

        Each loop body is created with its ``affine.yield`` terminator
        already in place; the returned builder inserts before it.
        """
        ivs: List[Value] = []
        builder = self.builder
        for extent in shape:
            body = Block([T.index])
            builder.create(
                "affine.for", [], [],
                {"lower": 0, "upper": int(extent), "step": 1},
                [Region([body])],
            )
            terminator = Builder.at_end(body).create("affine.yield", [], [])
            ivs.append(body.args[0])
            builder = Builder.before(terminator)
        return ivs, builder

    def _load(self, builder: Builder, value: Value, ivs: List[Value]) -> Value:
        kind, lowered = self.mapping[value]
        if kind == _SCALAR:
            return lowered
        ref_type = lowered.type
        assert isinstance(ref_type, T.MemRefType)
        element = ref_type.element
        return builder.create("memref.load", [lowered] + list(ivs),
                              [element]).result

    def _scalar_op(self, builder: Builder, fn: str, operands: List[Value],
                   element: T.Type) -> Value:
        """Emit the arith/math op for a teil.map function name."""
        is_float = isinstance(element, T.FloatType)
        if fn in _CMP_FNS:
            name = "arith.cmpf" if _is_float_value(operands[0]) else "arith.cmpi"
            return builder.create(name, operands, [T.i1],
                                  {"predicate": _CMP_FNS[fn]}).result
        if fn in _MATH_FNS:
            return builder.create(f"math.{fn}", operands, [element]).result
        if fn == "pow":
            return builder.create("arith.powf", operands, [element]).result
        base = {"addf": "add", "subf": "sub", "mulf": "mul", "divf": "div",
                "minimumf": "minimum", "maximumf": "maximum",
                "min": "minimum", "max": "maximum"}.get(fn)
        if base is None:
            raise LoweringError(f"unknown scalar function {fn!r}")
        if is_float:
            name = {"add": "arith.addf", "sub": "arith.subf",
                    "mul": "arith.mulf", "div": "arith.divf",
                    "minimum": "arith.minimumf",
                    "maximum": "arith.maximumf"}[base]
        else:
            name = {"add": "arith.addi", "sub": "arith.subi",
                    "mul": "arith.muli", "div": "arith.divsi",
                    "minimum": "arith.minsi", "maximum": "arith.maxsi"}[base]
        return builder.create(name, operands, [element]).result

    # -- per-op lowering ---------------------------------------------------------

    def _lower_op(self, op: Operation) -> None:
        name = op.name
        if name == "arith.constant":
            ty = op.results[0].type
            element = ty.element if isinstance(ty, T.TensorType) else ty
            const = self.builder.create("arith.constant", [], [element],
                                        {"value": op.attr("value")})
            self.mapping[op.results[0]] = (_SCALAR, const.result)
            return
        handler = {
            "teil.map": self._lower_map,
            "teil.select": self._lower_select,
            "teil.stack": self._lower_stack,
            "teil.broadcast": self._lower_broadcast,
            "teil.reduce": self._lower_reduce,
            "teil.gather": self._lower_gather,
            "teil.transpose": self._lower_transpose,
            "teil.iota": self._lower_iota,
        }.get(name)
        if handler is None:
            raise LoweringError(f"cannot lower {name} to affine")
        handler(op)

    def _result_info(self, op: Operation) -> Tuple[T.TensorType, Value]:
        ty = op.results[0].type
        assert isinstance(ty, T.TensorType)
        if ty.rank == 0:
            # Rank-0 results stay scalars only for constants; allocate a
            # rank-0 memref so loops can still store into it.
            pass
        buf = self._alloc(ty)
        self.mapping[op.results[0]] = (_MEMREF, buf)
        return ty, buf

    def _lower_map(self, op: Operation) -> None:
        ty, buf = self._result_info(op)
        ivs, body = self._nest(ty.shape)
        loaded = [self._load(body, o, ivs) for o in op.operands]
        value = self._scalar_op(body, op.attr("fn"), loaded, ty.element)
        body.create("memref.store", [value, buf] + ivs, [])

    def _lower_select(self, op: Operation) -> None:
        ty, buf = self._result_info(op)
        ivs, body = self._nest(ty.shape)
        cond = self._load(body, op.operands[0], ivs)
        then = self._load(body, op.operands[1], ivs)
        other = self._load(body, op.operands[2], ivs)
        value = body.create("arith.select", [cond, then, other],
                            [ty.element]).result
        body.create("memref.store", [value, buf] + ivs, [])

    def _lower_stack(self, op: Operation) -> None:
        ty, buf = self._result_info(op)
        outer_shape = ty.shape[:-1]
        ivs, body = self._nest(outer_shape)
        for j, operand in enumerate(op.operands):
            loaded = self._load(body, operand, ivs)
            idx = body.create("arith.constant", [], [T.index],
                              {"value": j}).result
            body.create("memref.store", [loaded, buf] + ivs + [idx], [])

    def _lower_broadcast(self, op: Operation) -> None:
        ty, buf = self._result_info(op)
        in_axes = op.attr("in_axes") or []
        axes = op.attr("axes") or []
        ivs, body = self._nest(ty.shape)
        src_ivs = [ivs[axes.index(a)] for a in in_axes]
        loaded = self._load(body, op.operands[0], src_ivs)
        body.create("memref.store", [loaded, buf] + ivs, [])

    def _lower_reduce(self, op: Operation) -> None:
        ty, buf = self._result_info(op)
        positions = set(op.attr("axes"))
        src_type = op.operands[0].type
        assert isinstance(src_type, T.TensorType)
        # Phase 1: zero-fill the accumulator buffer.
        ivs, body = self._nest(ty.shape)
        zero = body.create(
            "arith.constant", [], [ty.element],
            {"value": 0.0 if isinstance(ty.element, T.FloatType) else 0},
        ).result
        body.create("memref.store", [zero, buf] + ivs, [])
        # Phase 2: accumulate over the full input space.
        full_ivs, body = self._nest(src_type.shape)
        out_ivs = [iv for i, iv in enumerate(full_ivs) if i not in positions]
        current = body.create("memref.load", [buf] + out_ivs,
                              [ty.element]).result
        loaded = self._load(body, op.operands[0], full_ivs)
        add = "arith.addf" if isinstance(ty.element, T.FloatType) \
            else "arith.addi"
        total = body.create(add, [current, loaded], [ty.element]).result
        body.create("memref.store", [total, buf] + out_ivs, [])

    def _lower_gather(self, op: Operation) -> None:
        ty, buf = self._result_info(op)
        out_axes = op.attr("axes") or []
        base_axes = op.attr("base_axes") or []
        sub_axes = op.attr("sub_axes") or []
        binding = op.attr("binding") or []
        base = op.operands[0]
        subs = list(op.operands[1:])
        ivs, body = self._nest(ty.shape)
        iv_of = {label: ivs[i] for i, label in enumerate(out_axes)}
        base_indices: List[Value] = []
        for i, label in enumerate(base_axes):
            bound = binding[i] if i < len(binding) else -1
            if bound == -1:
                if label not in iv_of:
                    raise LoweringError(
                        f"gather: free axis {label!r} missing from output"
                    )
                base_indices.append(iv_of[label])
            else:
                sub = subs[bound]
                labels = sub_axes[bound] if bound < len(sub_axes) else []
                sub_ivs = [iv_of[l] for l in labels]
                loaded = self._load(body, sub, sub_ivs)
                cast = body.create("arith.index_cast", [loaded],
                                   [T.index]).result
                base_indices.append(cast)
        kind, base_ref = self.mapping[base]
        if kind == _SCALAR:
            value = base_ref
        else:
            value = body.create("memref.load", [base_ref] + base_indices,
                                [ty.element]).result
        body.create("memref.store", [value, buf] + ivs, [])

    def _lower_transpose(self, op: Operation) -> None:
        ty, buf = self._result_info(op)
        perm = op.attr("perm")
        ivs, body = self._nest(ty.shape)
        src_ivs: List[Optional[Value]] = [None] * len(perm)
        for j, p in enumerate(perm):
            src_ivs[p] = ivs[j]
        loaded = self._load(body, op.operands[0], src_ivs)  # type: ignore
        body.create("memref.store", [loaded, buf] + ivs, [])

    def _lower_iota(self, op: Operation) -> None:
        ty, buf = self._result_info(op)
        ivs, body = self._nest(ty.shape)
        cast = body.create("arith.index_cast", [ivs[0]], [ty.element]).result
        body.create("memref.store", [cast, buf] + ivs, [])


def _memref_for(ty: T.Type) -> T.MemRefType:
    if isinstance(ty, T.TensorType):
        return T.MemRefType(ty.shape, ty.element)
    if isinstance(ty, T.MemRefType):
        return ty
    raise LoweringError(f"cannot form a memref for {ty}")


def _is_float_value(value: Value) -> bool:
    return isinstance(value.type, T.FloatType)
