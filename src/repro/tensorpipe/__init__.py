"""The tensor compilation pipeline: esn -> teil -> affine (paper §V-A, Fig. 5).

This package implements the middle of the paper's Fig. 5: the Einstein
notation dialect (``esn``) is lowered into the Tensor Intermediate Language
(``teil``), which is then lowered into explicit ``affine`` loop nests over
``memref`` buffers — the form the HLS engine (:mod:`repro.hls`) synthesizes.
"""

from repro.tensorpipe.lower_esn import lower_esn_to_teil
from repro.tensorpipe.lower_teil import lower_teil_to_affine


def compile_affine(module, func_name, **kwargs):
    """Lazy forward to :func:`repro.tensorpipe.codegen.compile_affine`
    (keeps ``import repro.tensorpipe`` free of the codegen machinery)."""
    from repro.tensorpipe.codegen import compile_affine as _compile

    return _compile(module, func_name, **kwargs)


__all__ = ["compile_affine", "lower_esn_to_teil", "lower_teil_to_affine"]
