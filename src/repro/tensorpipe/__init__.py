"""The tensor compilation pipeline: esn -> teil -> affine (paper §V-A, Fig. 5).

This package implements the middle of the paper's Fig. 5: the Einstein
notation dialect (``esn``) is lowered into the Tensor Intermediate Language
(``teil``), which is then lowered into explicit ``affine`` loop nests over
``memref`` buffers — the form the HLS engine (:mod:`repro.hls`) synthesizes.
"""

from repro.tensorpipe.lower_esn import lower_esn_to_teil
from repro.tensorpipe.lower_teil import lower_teil_to_affine

__all__ = ["lower_esn_to_teil", "lower_teil_to_affine"]
