"""Lowering of the Einstein-notation dialect (``esn``) into TeIL (``teil``).

``esn.einsum`` is decomposed into explicit broadcasts, an elementwise
product chain and a reduction — the classic sum-of-products normal form
TeIL uses; all other esn ops map 1:1 onto their teil counterparts.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dialects import register_lowering
from repro.errors import LoweringError
from repro.ir import Builder, Module, Operation, Value, types as T


@register_lowering("esn", "teil")
def lower_esn_to_teil(module: Module, *, canonicalize: bool = True) -> Module:
    """Rewrite every esn op in every function into teil ops.

    Canonicalizes the result (fold/DCE/CSE) unless ``canonicalize=False``.
    """
    from repro.ir.canonicalize import canonicalize_module
    from repro.ir.core import Block, Region

    out = Module()
    for func in module.body:
        if func.name != "func.func":
            continue
        body = Block()
        new_func = Operation.create(
            "func.func", [], [],
            {"sym_name": func.attr("sym_name"),
             "function_type": func.attributes["function_type"],
             "kernel_lang": "teil"},
            [Region([body])],
        )
        out.append(new_func)
        builder = Builder.at_end(body)
        mapping: Dict[Value, Value] = {}
        for op in func.regions[0].entry:
            _convert(op, builder, mapping)
    return canonicalize_module(out) if canonicalize else out


def _convert(op: Operation, builder: Builder,
             mapping: Dict[Value, Value]) -> None:
    def operands() -> List[Value]:
        return [mapping[o] for o in op.operands]

    if op.name in ("ekl.arg", "arith.constant"):
        clone = builder.create(op.name, [], [r.type for r in op.results],
                               dict(op.attributes))
        mapping[op.results[0]] = clone.results[0]
        return
    if op.name == "func.return":
        builder.create("func.return", operands(), [], dict(op.attributes))
        return
    if op.name == "esn.map":
        new = builder.create("teil.map", operands(),
                             [op.results[0].type],
                             {"fn": op.attr("fn"), "axes": op.attr("axes")})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "esn.select":
        new = builder.create("teil.select", operands(),
                             [op.results[0].type],
                             {"axes": op.attr("axes")})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "esn.stack":
        new = builder.create("teil.stack", operands(),
                             [op.results[0].type],
                             {"axes": op.attr("axes")})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "esn.broadcast":
        new = builder.create("teil.broadcast", operands(),
                             [op.results[0].type],
                             {"in_axes": op.attr("in_axes"),
                              "axes": op.attr("axes")})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "esn.iota":
        new = builder.create("teil.iota", [], [op.results[0].type],
                             {"axes": op.attr("axes")})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "esn.reduce":
        new = builder.create("teil.reduce", operands(),
                             [op.results[0].type],
                             {"axes": op.attr("axes"), "kind": "add",
                              "out_axes": op.attr("out_axes")})
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "esn.gather":
        new = builder.create(
            "teil.gather", operands(), [op.results[0].type],
            {"axes": op.attr("axes"), "binding": op.attr("binding"),
             "base_axes": op.attr("base_axes"),
             "sub_axes": op.attr("sub_axes") or []},
        )
        mapping[op.results[0]] = new.results[0]
        return
    if op.name == "esn.einsum":
        _convert_einsum(op, builder, mapping)
        return
    raise LoweringError(f"cannot lower {op.name} to teil")


def _convert_einsum(op: Operation, builder: Builder,
                    mapping: Dict[Value, Value]) -> None:
    """einsum = broadcast each factor to the union space, multiply, reduce."""
    spec = op.attr("spec")
    in_specs, out_spec = spec.split("->")
    factor_specs = in_specs.split(",")
    # Union iteration space, ordered by first appearance in the spec.
    union: List[str] = []
    for fs in factor_specs:
        for letter in fs:
            if letter not in union:
                union.append(letter)
    # Extents per letter, from the factor operand types.
    extents: Dict[str, int] = {}
    for fs, operand in zip(factor_specs, op.operands):
        ty = operand.type
        if not isinstance(ty, T.TensorType):
            raise LoweringError("einsum factor is not a tensor")
        for letter, extent in zip(fs, ty.shape):
            extents[letter] = extent
    element = op.results[0].type.element
    union_shape = tuple(extents[letter] for letter in union)
    union_type = T.TensorType(union_shape, element)
    # Broadcast every factor to the union space.
    broadcast: List[Value] = []
    for fs, operand in zip(factor_specs, op.operands):
        mapped = mapping[operand]
        if list(fs) == union:
            broadcast.append(mapped)
            continue
        bop = builder.create(
            "teil.broadcast", [mapped], [union_type],
            {"in_axes": list(fs), "axes": list(union)},
        )
        broadcast.append(bop.results[0])
    # Multiply pairwise.
    product = broadcast[0]
    for factor in broadcast[1:]:
        mop = builder.create("teil.map", [product, factor], [union_type],
                             {"fn": "mulf", "axes": list(union)})
        product = mop.results[0]
    # Reduce the letters not in the output.
    remaining = [letter for letter in union if letter in out_spec]
    reduce_positions = [i for i, letter in enumerate(union)
                        if letter not in out_spec]
    if reduce_positions:
        red_type = T.TensorType(
            tuple(extents[letter] for letter in remaining), element
        )
        rop = builder.create(
            "teil.reduce", [product], [red_type],
            {"axes": reduce_positions, "kind": "add",
             "out_axes": remaining},
        )
        product = rop.results[0]
    # Transpose if the remaining order differs from the requested output.
    if remaining != list(out_spec):
        perm = [remaining.index(letter) for letter in out_spec]
        top = builder.create("teil.transpose", [product],
                             [op.results[0].type], {"perm": perm})
        product = top.results[0]
    mapping[op.results[0]] = product
