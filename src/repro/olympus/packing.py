"""Iris-style data packing (paper §V-C, Soldavini et al., ASPDAC 2023).

A kernel that streams records over a wide memory bus wastes bandwidth when
each beat carries a single narrow field.  Packing groups fields into
bus-width words ("efficient data layouts for high bandwidth utilization"):
this module implements first-fit-decreasing packing of record fields into
beats and reports the bus efficiency before/after — the number
:class:`repro.platforms.memory.MemoryChannelModel` turns into transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import OlympusError


@dataclass(frozen=True)
class Field:
    """One record field: a name and a bit width."""

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise OlympusError(f"field {self.name!r} has no width")


@dataclass
class PackedWord:
    """One bus beat: the fields packed into it."""

    fields: List[Field] = field(default_factory=list)

    def used_bits(self) -> int:
        return sum(f.bits for f in self.fields)


@dataclass
class PackingPlan:
    """The layout of one record across bus beats."""

    bus_bits: int
    words: List[PackedWord]
    naive_words: int

    @property
    def beats_per_record(self) -> int:
        return len(self.words)

    @property
    def payload_bits_per_beat(self) -> float:
        total = sum(w.used_bits() for w in self.words)
        return total / len(self.words) if self.words else 0.0

    @property
    def efficiency(self) -> float:
        return self.payload_bits_per_beat / self.bus_bits

    @property
    def naive_efficiency(self) -> float:
        total = sum(w.used_bits() for w in self.words)
        return total / (self.naive_words * self.bus_bits) \
            if self.naive_words else 0.0

    @property
    def speedup_vs_naive(self) -> float:
        """Bandwidth gain over one-field-per-beat streaming."""
        if not self.words:
            return 1.0
        return self.naive_words / len(self.words)


def pack_fields(fields: Sequence[Field], bus_bits: int = 512) -> PackingPlan:
    """First-fit-decreasing packing of record fields into bus beats.

    Fields wider than the bus are split across beats (they occupy
    ``ceil(bits / bus)`` full beats; the remainder participates in packing).
    """
    if bus_bits <= 0:
        raise OlympusError("bus width must be positive")
    words: List[PackedWord] = []
    whole_beats = 0
    leftovers: List[Field] = []
    for f in fields:
        if f.bits >= bus_bits:
            full, rem = divmod(f.bits, bus_bits)
            whole_beats += full
            if rem:
                leftovers.append(Field(f"{f.name}.tail", rem))
        else:
            leftovers.append(f)
    for f in sorted(leftovers, key=lambda x: -x.bits):
        placed = False
        for word in words:
            if word.used_bits() + f.bits <= bus_bits:
                word.fields.append(f)
                placed = True
                break
        if not placed:
            words.append(PackedWord([f]))
    for _ in range(whole_beats):
        words.append(PackedWord([Field("wide.full", bus_bits)]))
    naive = len(leftovers) + whole_beats  # one beat per (sub)field
    return PackingPlan(bus_bits, words, naive)


def pack_stream(element_bits: int, bus_bits: int = 512) -> Tuple[int, float]:
    """Vector packing of a homogeneous stream: elements per beat and
    efficiency."""
    if element_bits <= 0:
        raise OlympusError("element width must be positive")
    per_beat = max(1, bus_bits // element_bits)
    efficiency = min(1.0, per_beat * element_bits / bus_bits)
    return per_beat, efficiency
