"""Private-local-memory (PLM) sharing across kernel stages.

Implements the optimization of Pilato et al. (TCAD 2017), cited as
Olympus's "private local memory sharing": buffers whose lifetimes do not
overlap can occupy the same on-chip memory.  Buffers live over stage
intervals; a first-fit offset allocator places each buffer at the lowest
address where it fits against all lifetime-overlapping neighbours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import OlympusError


@dataclass(frozen=True)
class BufferRequest:
    """A buffer and the [start, end] stage interval during which it lives."""

    name: str
    bytes: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.bytes <= 0:
            raise OlympusError(f"buffer {self.name!r} has no size")
        if self.end < self.start:
            raise OlympusError(f"buffer {self.name!r}: end before start")

    def overlaps(self, other: "BufferRequest") -> bool:
        return not (self.end < other.start or other.end < self.start)


@dataclass
class PLMAllocation:
    """Result of PLM sharing: per-buffer offsets in one shared memory."""

    offsets: Dict[str, int]
    total_bytes: int
    unshared_bytes: int

    @property
    def saving(self) -> float:
        """Fraction of PLM bytes saved versus dedicated buffers."""
        if self.unshared_bytes == 0:
            return 0.0
        return 1.0 - self.total_bytes / self.unshared_bytes


def share_plm(requests: List[BufferRequest]) -> PLMAllocation:
    """First-fit-decreasing address assignment with lifetime awareness."""
    placed: List[Tuple[BufferRequest, int]] = []
    offsets: Dict[str, int] = {}
    for request in sorted(requests, key=lambda r: -r.bytes):
        if request.name in offsets:
            raise OlympusError(f"duplicate buffer name {request.name!r}")
        # Candidate offsets: 0 and the end of every conflicting placement.
        conflicts = [
            (offset, offset + other.bytes)
            for other, offset in placed if request.overlaps(other)
        ]
        conflicts.sort()
        candidate = 0
        for lo, hi in conflicts:
            if candidate + request.bytes <= lo:
                break
            candidate = max(candidate, hi)
        offsets[request.name] = candidate
        placed.append((request, candidate))
    total = max((offsets[r.name] + r.bytes for r in requests), default=0)
    unshared = sum(r.bytes for r in requests)
    return PLMAllocation(offsets, total, unshared)


def requests_from_arena(plan) -> List[BufferRequest]:
    """Lift a compiler arena plan into PLM buffer requests.

    ``plan`` is duck-typed over :class:`repro.tensorpipe.arena.ArenaPlan`
    (anything with ``slots`` carrying ``name``/``size``/``start``/``end``
    works), so Olympus needs no import of the tensorpipe layer: the
    kernel compiler's liveness analysis feeds the PLM-sharing solver
    directly.  Zero-sized buffers cannot occupy PLM and are dropped.
    """
    return [
        BufferRequest(slot.name, slot.size, slot.start, slot.end)
        for slot in plan.slots if slot.size > 0
    ]


def peak_live_bytes(requests: List[BufferRequest]) -> int:
    """Lower bound on shared PLM size: the max over stages of live bytes."""
    if not requests:
        return 0
    last_stage = max(r.end for r in requests)
    peak = 0
    for stage in range(last_stage + 1):
        live = sum(r.bytes for r in requests if r.start <= stage <= r.end)
        peak = max(peak, live)
    return peak
