"""Olympus: system-level FPGA architecture generation (paper §V-C).

Composes the HLS kernel reports with the platform models to generate the
data-movement infrastructure around accelerators: PLM buffers (optionally
shared across stages), double buffering, kernel replication over memory
lanes, Iris-style data packing, and the host driver code.
"""

from repro.olympus.arch_gen import (
    ArchConfig,
    KernelInstance,
    LatencyBreakdown,
    OlympusGenerator,
    SystemArchitecture,
    lower_dfg_to_olympus,
    lower_olympus_to_evp,
)
from repro.olympus.host_codegen import build_driver, generate_driver_source
from repro.olympus.packing import (
    Field,
    PackedWord,
    PackingPlan,
    pack_fields,
    pack_stream,
)
from repro.olympus.plm_sharing import (
    BufferRequest,
    PLMAllocation,
    peak_live_bytes,
    requests_from_arena,
    share_plm,
)

__all__ = [
    "ArchConfig",
    "KernelInstance",
    "LatencyBreakdown",
    "OlympusGenerator",
    "SystemArchitecture",
    "lower_dfg_to_olympus",
    "lower_olympus_to_evp",
    "build_driver",
    "generate_driver_source",
    "Field",
    "PackedWord",
    "PackingPlan",
    "pack_fields",
    "pack_stream",
    "BufferRequest",
    "PLMAllocation",
    "peak_live_bytes",
    "requests_from_arena",
    "share_plm",
]
