"""Olympus: platform-aware FPGA system architecture generation (§V-C).

Olympus takes (1) the dataflow of kernel interactions (``dfg`` dialect),
(2) per-kernel HLS reports, and (3) the FPGA platform description, and
generates "a custom infrastructure for data movement and organization":

* **PLM buffers** for kernel operands, optionally **double-buffered** so
  transfers overlap compute (read/execute/write pipelining);
* **kernel replication** with the memory bus divided into **lanes** so each
  replica gets private bandwidth (Soldavini et al., TRETS 2023);
* **data packing** (Iris) raising bus payload efficiency;
* the host-side driver code that moves data and launches kernels.

The generated architecture is both a Python object
(:class:`SystemArchitecture`, consumed by the runtime/XRT simulation) and
``olympus``/``evp`` dialect IR (the Fig. 5 edges).
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dialects import register_lowering
from repro.errors import OlympusError
from repro.hls.resources import ResourceBudget
from repro.hls.synth import KernelReport
from repro.ir import Builder, Module, Operation, types as T
from repro.ir.core import Block, Region
from repro.olympus.packing import pack_stream
from repro.platforms.device import FPGADevice
from repro.platforms.memory import MemoryChannelModel, PLMConfig


@dataclass
class ArchConfig:
    """One point in Olympus's design space for a single kernel."""

    replicas: int = 1
    double_buffered: bool = True
    packed: bool = True
    plm_banks: int = 2

    def label(self) -> str:
        return (f"r{self.replicas}"
                f"{'_db' if self.double_buffered else ''}"
                f"{'_pack' if self.packed else ''}")


@dataclass
class LatencyBreakdown:
    """Per-invocation timing of one accelerated kernel."""

    transfer_in: float
    compute: float
    transfer_out: float
    double_buffered: bool

    # Tiles processed per invocation under read/execute/write pipelining.
    TILES = 8

    @property
    def total(self) -> float:
        stages = (self.transfer_in, self.compute, self.transfer_out)
        if self.double_buffered:
            # Classic tiled-pipeline makespan with T tiles: each stage is
            # split into T chunks, so  max(s) + (sum(s) - max(s)) / T.
            bottleneck = max(stages)
            return bottleneck + (sum(stages) - bottleneck) / self.TILES
        return sum(stages)


@dataclass
class KernelInstance:
    """A kernel placed on the device with a chosen configuration."""

    report: KernelReport
    config: ArchConfig
    plms: List[PLMConfig] = field(default_factory=list)
    lanes: int = 1
    bus_efficiency: float = 1.0

    @property
    def name(self) -> str:
        return self.report.name

    def resources(self) -> ResourceBudget:
        total = self.report.resources.scaled(self.config.replicas)
        for plm in self.plms:
            total.bram += plm.bram_blocks * self.config.replicas
        return total


@dataclass
class SystemArchitecture:
    """A complete generated FPGA system for one application."""

    name: str
    device: FPGADevice
    instances: List[KernelInstance] = field(default_factory=list)
    estimates: Dict[str, LatencyBreakdown] = field(default_factory=dict)

    def resources(self) -> ResourceBudget:
        total = ResourceBudget()
        for instance in self.instances:
            total = total.merged(instance.resources())
        return total

    def fits(self) -> bool:
        return self.resources().fits_in(self.device.usable_resources())

    def total_latency(self) -> float:
        return sum(e.total for e in self.estimates.values())

    def instance(self, name: str) -> KernelInstance:
        for inst in self.instances:
            if inst.name == name:
                return inst
        raise OlympusError(f"no kernel instance named {name!r}")


class OlympusGenerator:
    """Generates a :class:`SystemArchitecture` for a set of kernels."""

    def __init__(self, device: FPGADevice):
        self.device = device
        self.memory = MemoryChannelModel(device.default_memory(),
                                         device.clock_mhz)

    # -- estimation --------------------------------------------------------------

    def estimate(self, report: KernelReport,
                 config: ArchConfig) -> Tuple[LatencyBreakdown,
                                              KernelInstance]:
        """Latency and the configured instance for one design point."""
        spec = self.device.default_memory()
        max_lanes = spec.channels
        lanes = min(config.replicas, max_lanes)
        element_bits = report.port_width_bits
        if config.packed:
            _, efficiency = pack_stream(element_bits, spec.bus_width_bits)
            payload = int(spec.bus_width_bits * efficiency)
        else:
            payload = element_bits  # one element per beat
        t_in = self.memory.transfer(report.bytes_in, lanes=lanes,
                                    payload_bits_per_beat=payload).seconds
        t_out = self.memory.transfer(report.bytes_out, lanes=lanes,
                                     payload_bits_per_beat=payload).seconds
        compute = report.latency_seconds / config.replicas
        breakdown = LatencyBreakdown(t_in, compute, t_out,
                                     config.double_buffered)
        plms = [
            PLMConfig("in_tile",
                      max(1, report.bytes_in // max(1, config.replicas)),
                      banks=config.plm_banks,
                      double_buffered=config.double_buffered),
            PLMConfig("out_tile",
                      max(1, report.bytes_out // max(1, config.replicas)),
                      banks=config.plm_banks,
                      double_buffered=config.double_buffered),
        ]
        if report.planned_arena_bytes > 0:
            # Kernel-local scratch sized by the compiler's static arena
            # plan (lifetime-disjoint buffers already share bytes there);
            # never double-buffered — it holds no stream tiles.
            plms.append(PLMConfig("scratch", report.planned_arena_bytes,
                                  banks=1, double_buffered=False))
        instance = KernelInstance(report, config, plms, lanes,
                                  payload / spec.bus_width_bits)
        return breakdown, instance

    # -- design-space exploration -------------------------------------------------

    def candidate_configs(self, max_replicas: Optional[int] = None
                          ) -> List[ArchConfig]:
        """The enumeration order of the kernel design space."""
        if max_replicas is None:
            max_replicas = self.device.default_memory().channels
        configs = []
        replicas = 1
        while replicas <= max_replicas:
            for double_buffered in (False, True):
                for packed in (False, True):
                    configs.append(
                        ArchConfig(replicas, double_buffered, packed))
            replicas *= 2
        return configs

    def evaluate_config(self, report: KernelReport, config: ArchConfig,
                        budget: Optional[ResourceBudget] = None
                        ) -> Optional[Tuple[ArchConfig, LatencyBreakdown,
                                            ResourceBudget]]:
        """One design point, or ``None`` when it exceeds the device."""
        if budget is None:
            budget = self.device.usable_resources()
        breakdown, instance = self.estimate(report, config)
        resources = instance.resources()
        if not resources.fits_in(budget):
            return None
        return config, breakdown, resources

    def explore(self, report: KernelReport,
                max_replicas: Optional[int] = None,
                executor=None) -> List[
                    Tuple[ArchConfig, LatencyBreakdown, ResourceBudget]]:
        """Enumerate feasible configurations (the kernel's design space).

        ``executor`` (any :class:`concurrent.futures.Executor`) evaluates
        candidate configurations concurrently; ``Executor.map`` preserves
        enumeration order, so the result is identical to the serial path.
        """
        configs = self.candidate_configs(max_replicas)
        budget = self.device.usable_resources()
        evaluate = functools.partial(self.evaluate_config, report,
                                     budget=budget)
        if executor is None:
            evaluated = [evaluate(c) for c in configs]
        else:
            evaluated = list(executor.map(evaluate, configs))
        points = [point for point in evaluated if point is not None]
        if not points:
            raise OlympusError(
                f"kernel {report.name} does not fit on {self.device.name} "
                "in any configuration"
            )
        return points

    def best_config(self, report: KernelReport,
                    max_replicas: Optional[int] = None) -> ArchConfig:
        """The latency-optimal feasible configuration."""
        points = self.explore(report, max_replicas)
        best = min(points, key=lambda p: p[1].total)
        return best[0]

    # -- generation --------------------------------------------------------------

    def generate(self, name: str, reports: List[KernelReport],
                 configs: Optional[Dict[str, ArchConfig]] = None
                 ) -> SystemArchitecture:
        """Build the system architecture for a set of kernels."""
        system = SystemArchitecture(name, self.device)
        for report in reports:
            config = (configs or {}).get(report.name) \
                or self.best_config(report)
            breakdown, instance = self.estimate(report, config)
            system.instances.append(instance)
            system.estimates[report.name] = breakdown
        if not system.fits():
            raise OlympusError(
                f"system {name} exceeds {self.device.name} resources: "
                f"{system.resources()}"
            )
        return system

    # -- IR emission ----------------------------------------------------------------

    def emit_ir(self, system: SystemArchitecture) -> Module:
        """Emit the architecture as ``olympus`` dialect IR."""
        module = Module()
        body = Block()
        system_op = Operation.create(
            "olympus.system", [], [],
            {"sym_name": system.name, "platform": system.device.name},
            [Region([body])],
        )
        module.append(system_op)
        builder = Builder.at_end(body)
        for instance in system.instances:
            kernel = builder.create(
                "olympus.kernel", [], [T.NoneOpType()],
                {"callee": instance.name,
                 "replicas": instance.config.replicas,
                 "ii": instance.report.nests[0].ii
                 if instance.report.nests else 1,
                 "cycles": instance.report.total_cycles},
            )
            for plm in instance.plms:
                plm_op = builder.create(
                    "olympus.plm", [], [T.NoneOpType()],
                    {"bytes": plm.bytes, "banks": plm.banks,
                     "double_buffered": plm.double_buffered},
                )
                builder.create(
                    "olympus.dma", [plm_op.results[0], kernel.results[0]], [],
                    {"lanes": instance.lanes},
                )
        return module


# -- Fig. 5 lowering edges ------------------------------------------------------------


@register_lowering("dfg", "olympus")
def lower_dfg_to_olympus(module: Module,
                         device: Optional[FPGADevice] = None,
                         reports: Optional[Dict[str, KernelReport]] = None
                         ) -> Module:
    """Map offloaded dfg nodes onto an Olympus system architecture.

    Nodes marked ``offloaded`` get kernel instances; reports default to a
    synthetic one-cycle kernel when the HLS report is not supplied (enough
    for structural lowering in the dialect-graph benchmark).
    """
    from repro.platforms.device import alveo_u55c

    device = device or alveo_u55c()
    generator = OlympusGenerator(device)
    out = Module()
    for graph in module.body:
        if graph.name != "dfg.graph":
            continue
        kernel_reports: List[KernelReport] = []
        for op in graph.regions[0].entry:
            if op.name == "dfg.node" and op.attr("offloaded"):
                callee = op.attr("callee")
                if reports and callee in reports:
                    kernel_reports.append(reports[callee])
                else:
                    kernel_reports.append(
                        KernelReport(name=callee, bytes_in=4096,
                                     bytes_out=4096,
                                     clock_mhz=device.clock_mhz)
                    )
        if not kernel_reports:
            continue
        system = generator.generate(graph.attr("sym_name"), kernel_reports)
        ir = generator.emit_ir(system)
        for op in list(ir.body):
            op.parent.operations.remove(op)
            op.parent = None
            out.append(op)
    return out


@register_lowering("olympus", "evp")
def lower_olympus_to_evp(module: Module, node: str = "node0") -> Module:
    """Emit the EVEREST-platform deployment sequence for a system."""
    out = Module()
    body = Block()
    deploy_region = Operation.create(
        "func.func", [], [],
        {"sym_name": "deployment",
         "function_type": T.FunctionType((), ())},
        [Region([body])],
    )
    out.append(deploy_region)
    builder = Builder.at_end(body)
    for system_op in module.body:
        if system_op.name != "olympus.system":
            continue
        deploy = builder.create(
            "evp.deploy", [], [T.NoneOpType()],
            {"node": node, "system": system_op.attr("sym_name")},
        )
        for op in system_op.regions[0].entry:
            if op.name == "olympus.kernel":
                builder.create(
                    "evp.launch", [], [T.NoneOpType()],
                    {"kernel": op.attr("callee")},
                )
        builder.create("evp.barrier", [], [])
    builder.create("func.return", [], [])
    return out
