"""The ``basecamp`` command-line interface.

Subcommands mirror the SDK's phases (paper §IV):

* ``basecamp compile <kernel.ekl>`` — frontend → MLIR → loops → HLS report;
* ``basecamp synthesize <kernel.ekl> --format fixed<8.8>`` — HLS with a
  custom data format;
* ``basecamp olympus <kernel.ekl> --device alveo-u55c`` — system-level
  architecture generation with DSE;
* ``basecamp dialects`` — the registered dialect graph (Fig. 5);
* ``basecamp condrust <program.rs>`` — parse/check/lower a coordination
  program;
* ``basecamp detect <data.csv>`` — AutoML anomaly detection to JSON;
* ``basecamp info`` — platform catalog.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.errors import EverestError


def _compile_to_affine(source_path: str):
    from repro.frontends.ekl import parse_kernel
    from repro.frontends.ekl.lower import (
        lower_ekl_to_esn,
        lower_kernel_to_ekl,
    )
    from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine

    with open(source_path) as handle:
        kernel = parse_kernel(handle.read())
    module = lower_teil_to_affine(
        lower_esn_to_teil(lower_ekl_to_esn(lower_kernel_to_ekl(kernel)))
    )
    return kernel, module


def cmd_compile(args) -> int:
    from repro.ir import print_module, verify

    kernel, module = _compile_to_affine(args.source)
    verify(module)
    if args.emit == "mlir":
        print(print_module(module))
    else:
        from repro.hls import synthesize_kernel

        report = synthesize_kernel(module, kernel.name)
        print(report.summary())
    return 0


def cmd_synthesize(args) -> int:
    from repro.hls import synthesize_kernel
    from repro.numerics import make_format

    kernel, module = _compile_to_affine(args.source)
    fmt = make_format(args.format) if args.format else None
    report = synthesize_kernel(module, kernel.name, number_format=fmt)
    print(report.summary())
    return 0


def cmd_olympus(args) -> int:
    from repro.hls import synthesize_kernel
    from repro.olympus import OlympusGenerator
    from repro.platforms import device_by_name

    kernel, module = _compile_to_affine(args.source)
    report = synthesize_kernel(module, kernel.name)
    generator = OlympusGenerator(device_by_name(args.device))
    print(f"design space for {kernel.name} on {args.device}:")
    for config, latency, resources in generator.explore(report):
        print(f"  {config.label():18s} latency={latency.total * 1e6:10.2f}us"
              f"  LUT={resources.lut:8d} DSP={resources.dsp:6d}"
              f" BRAM={resources.bram:5d}")
    best = generator.best_config(report)
    print(f"selected: {best.label()}")
    return 0


def cmd_dialects(args) -> int:
    from repro.dialects import DIALECT_GRAPH, registered_edges
    from repro.ir import REGISTRY

    print("registered dialects:", ", ".join(REGISTRY.names()))
    implemented = set(registered_edges())
    print("lowering edges (Fig. 5):")
    for source, target in DIALECT_GRAPH:
        marker = "ok" if (source, target) in implemented else "--"
        print(f"  [{marker}] {source} -> {target}")
    return 0


def cmd_condrust(args) -> int:
    from repro.frontends.condrust import lower_program_to_dfg, parse_program
    from repro.ir import print_module, verify

    with open(args.source) as handle:
        program = parse_program(handle.read())
    module = lower_program_to_dfg(program)
    verify(module)
    print(print_module(module))
    return 0


def cmd_detect(args) -> int:
    import numpy as np

    from repro.anomaly import DetectionNode, ModelSelectionNode, load_data

    data = load_data(args.data)
    split = max(8, int(len(data) * 0.6))
    selection = ModelSelectionNode(seed=0).run(
        data[:split], data[split:], n_trials=args.trials
    )
    node = DetectionNode(selection)
    report = node.detect(data, output_path=args.output)
    print(f"detector: {report.detector}; "
          f"{len(report.anomalies)}/{report.n_samples} anomalous")
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(report.to_json())
    return 0


def cmd_info(args) -> int:
    from repro.platforms import CATALOG

    print("EVEREST target platforms:")
    for name, factory in sorted(CATALOG.items()):
        device = factory()
        attach = "network" if device.is_network_attached else "PCIe"
        memory = device.default_memory()
        print(f"  {name:18s} {attach:8s} LUT={device.resources.lut:>9}"
              f" DSP={device.resources.dsp:>5} {memory.kind.upper()}"
              f" {memory.bandwidth_gbps:.0f} GB/s @ {device.clock_mhz:.0f} MHz")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="basecamp",
        description="Single point of access to the EVEREST SDK "
                    "(DATE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile an EKL kernel")
    p.add_argument("source")
    p.add_argument("--emit", choices=["report", "mlir"], default="report")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("synthesize", help="HLS with a custom data format")
    p.add_argument("source")
    p.add_argument("--format", default=None,
                   help="f32 | bf16 | fixed<i.f> | posit<n,es>")
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("olympus", help="system-level architecture DSE")
    p.add_argument("source")
    p.add_argument("--device", default="alveo-u55c")
    p.set_defaults(fn=cmd_olympus)

    p = sub.add_parser("dialects", help="the Fig. 5 dialect graph")
    p.set_defaults(fn=cmd_dialects)

    p = sub.add_parser("condrust", help="lower a coordination program")
    p.add_argument("source")
    p.set_defaults(fn=cmd_condrust)

    p = sub.add_parser("detect", help="AutoML anomaly detection")
    p.add_argument("data")
    p.add_argument("--output", default=None)
    p.add_argument("--trials", type=int, default=20)
    p.set_defaults(fn=cmd_detect)

    p = sub.add_parser("info", help="platform catalog")
    p.set_defaults(fn=cmd_info)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except EverestError as error:
        print(f"basecamp: error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"basecamp: error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output truncated by a closed pipe (e.g. `basecamp ... | head`).
        return 0


if __name__ == "__main__":
    sys.exit(main())
