"""The ``basecamp`` command-line interface.

Subcommands mirror the SDK's phases (paper §IV):

* ``basecamp compile <kernel.ekl>`` — frontend → MLIR → loops → HLS report;
* ``basecamp synthesize <kernel.ekl> --format fixed<8.8>`` — HLS with a
  custom data format;
* ``basecamp olympus <kernel.ekl> --device alveo-u55c`` — system-level
  architecture generation with DSE;
* ``basecamp pipeline <kernel.ekl>`` — the full Fig. 2 flow with the
  per-stage timing/caching report;
* ``basecamp run <kernel.ekl> --random-seed 0 --time`` — compile to the
  vectorized-numpy CPU executor and run it (optionally racing the
  reference interpreter);
* ``basecamp dialects`` — the registered dialect graph (Fig. 5);
* ``basecamp condrust <program.rs>`` — parse/check/lower a coordination
  program;
* ``basecamp detect <data.csv>`` — AutoML anomaly detection to JSON;
* ``basecamp runtime --policy heft|round-robin|min-load|all`` — run a
  synthetic workflow through the event-driven runtime engine, optionally
  injecting a node failure (``--fail node1@5.0``);
* ``basecamp serve`` — the long-running multi-tenant compile-and-run
  daemon (JSON over HTTP, shared stage cache, single-flight dedup,
  admission control — see :mod:`repro.basecamp.serve`);
* ``basecamp info`` — platform catalog.

The EKL-compiling subcommands all run through one process-wide
:class:`repro.pipeline.PipelineSession`, so invoking several of them on
the same kernel (or the same one twice) reuses the cached stages.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.errors import EverestError


@contextmanager
def _tracing(path: Optional[str]) -> Iterator[None]:
    """Record telemetry spans for the wrapped command into ``path``.

    ``--trace out.json`` installs a recording tracer for the duration
    of the command and writes Chrome trace-event JSON on the way out —
    load it at https://ui.perfetto.dev (or ``chrome://tracing``).
    """
    if not path:
        yield
        return
    from repro.telemetry.export import write_chrome_trace
    from repro.telemetry.trace import disable, enable

    tracer = enable()
    try:
        yield
    finally:
        disable()
        events = write_chrome_trace(path, tracer)
        print(f"trace: {events} event(s) -> {path} "
              "(open in https://ui.perfetto.dev)", file=sys.stderr)


def _read_source(source_path: str) -> str:
    # Read here (not in the session) so a missing path stays a clean
    # FileNotFoundError instead of a parse error on the path string.
    with open(source_path) as handle:
        return handle.read()


def _session():
    from repro.pipeline import get_session

    return get_session()


def _compile_to_affine(source_path: str):
    """The pre-session compile helper, now a thin session wrapper.

    No in-repo callers remain; kept one release as a stable shim for
    out-of-tree scripts that drove the old CLI internals.
    """
    result = _session().lower(_read_source(source_path))
    return result.kernel, result.module


def cmd_compile(args) -> int:
    source = _read_source(args.source)
    if args.emit == "mlir":
        from repro.ir import print_module

        result = _session().lower(source, opt_level=args.opt_level)
        print(print_module(result.module))
    else:
        result = _session().compile(source, opt_level=args.opt_level)
        print(result.report.summary())
    return 0


def cmd_synthesize(args) -> int:
    result = _session().compile(_read_source(args.source),
                                number_format=args.format)
    print(result.report.summary())
    return 0


def cmd_olympus(args) -> int:
    result = _session().olympus(_read_source(args.source),
                                device=args.device,
                                parallel=not args.serial)
    print(f"design space for {result.system.instances[0].name} "
          f"on {args.device}:")
    for config, latency, resources in result.points:
        print(f"  {config.label():18s} latency={latency.total * 1e6:10.2f}us"
              f"  LUT={resources.lut:8d} DSP={resources.dsp:6d}"
              f" BRAM={resources.bram:5d}")
    print(f"selected: {result.best.label()}")
    return 0


def cmd_pipeline(args) -> int:
    with _tracing(args.trace):
        session = _session()
        plan = session.deploy(_read_source(args.source), device=args.device,
                              nodes=args.nodes, parallel=not args.serial,
                              opt_level=args.opt_level)
        schedule = plan.schedule
        print(f"deployed on {args.nodes} nodes: "
              f"{len(schedule.placements)} task(s), "
              f"makespan {schedule.makespan * 1e6:.2f} us")
        print(session.report.summary())
    return 0


def _gather_run_inputs(module, func_name: str, args):
    """Build the input dict for ``basecamp run`` from --input/--random-seed.

    ``--input name=file.npy`` loads arrays; the actual assembly (and the
    seed-filling of unbound inputs) is the same
    :func:`repro.basecamp.inputs.gather_inputs` the serve daemon uses.
    """
    import numpy as np

    from repro.basecamp.inputs import gather_inputs

    explicit = {}
    for spec in args.input or []:
        name, sep, path = spec.partition("=")
        if not sep or not name or not path:
            raise EverestError(f"--input wants NAME=FILE.npy, got {spec!r}")
        explicit[name] = np.load(path)
    return gather_inputs(
        module, func_name, explicit, args.random_seed,
        missing_hint="pass --input {name}=file.npy or --random-seed N",
        unknown_label="--input")


def cmd_run(args) -> int:
    with _tracing(args.trace):
        return _cmd_run(args)


def _cmd_run(args) -> int:
    import numpy as np

    session = _session()
    lowered = session.lower(_read_source(args.source),
                            opt_level=args.opt_level)
    inputs = _gather_run_inputs(lowered.module, lowered.kernel.name, args)
    result = session.execute(lowered.source, inputs, backend=args.backend,
                             opt_level=args.opt_level,
                             jobs=getattr(args, "jobs", None))
    kernel = result.kernel
    note = f" [fell back: {kernel.fallback}]" if kernel.fallback else ""
    arena = f", arena={kernel.arena_bytes}B/{kernel.arena_slots} slots" \
        if kernel.arena_bytes else ""
    print(f"kernel {kernel.func_name}: backend={kernel.backend} "
          f"({kernel.vectorized_nests} vectorized / "
          f"{kernel.scalar_nests} scalar nest(s), {kernel.flops} flops"
          f"{arena}){note}")
    for name, value in result.outputs.items():
        value = np.asarray(value)
        flat = np.array2string(value.ravel()[:6], precision=6,
                               separator=", ")
        suffix = " ..." if value.size > 6 else ""
        print(f"  {name}: shape={tuple(value.shape)} dtype={value.dtype} "
              f"mean={value.mean():.6g}")
        print(f"    {flat}{suffix}")
    if args.time:
        reference = session.execute(lowered.source, inputs,
                                    backend="interpreter",
                                    opt_level=args.opt_level)
        for name, value in result.outputs.items():
            got = np.asarray(value)
            ref = np.asarray(reference.outputs[name])
            # Bit-identical NaNs count as agreement (equal_nan trips on
            # integer dtypes, so only request it for floats).
            equal_nan = bool(np.issubdtype(got.dtype, np.floating))
            if not np.array_equal(got, ref, equal_nan=equal_nan):
                raise EverestError(
                    f"executor backends disagree on output {name!r}")
        speedup = reference.seconds / result.seconds \
            if result.seconds else float("inf")
        print(f"  run time: {result.seconds * 1e3:.3f} ms "
              f"({args.backend}) vs {reference.seconds * 1e3:.3f} ms "
              f"(interpreter): {speedup:.1f}x")
    return 0


def cmd_dialects(args) -> int:
    from repro.dialects import DIALECT_GRAPH, registered_edges
    from repro.ir import REGISTRY

    print("registered dialects:", ", ".join(REGISTRY.names()))
    implemented = set(registered_edges())
    print("lowering edges (Fig. 5):")
    for source, target in DIALECT_GRAPH:
        marker = "ok" if (source, target) in implemented else "--"
        print(f"  [{marker}] {source} -> {target}")
    return 0


def cmd_condrust(args) -> int:
    from repro.frontends.condrust import lower_program_to_dfg, parse_program
    from repro.ir import print_module, verify

    with open(args.source) as handle:
        program = parse_program(handle.read())
    module = lower_program_to_dfg(program)
    verify(module)
    print(print_module(module))
    return 0


def cmd_detect(args) -> int:
    import numpy as np

    from repro.anomaly import DetectionNode, ModelSelectionNode, load_data

    data = load_data(args.data)
    split = max(8, int(len(data) * 0.6))
    selection = ModelSelectionNode(seed=0).run(
        data[:split], data[split:], n_trials=args.trials
    )
    node = DetectionNode(selection)
    report = node.detect(data, output_path=args.output)
    print(f"detector: {report.detector}; "
          f"{len(report.anomalies)}/{report.n_samples} anomalous")
    if args.output:
        print(f"wrote {args.output}")
    else:
        print(report.to_json())
    return 0


def cmd_runtime(args) -> int:
    with _tracing(args.trace):
        return _cmd_runtime(args)


def _cmd_runtime(args) -> int:
    from repro.errors import EverestError
    from repro.runtime import ClusterMonitor, default_cluster
    from repro.runtime.engine import (
        POLICIES,
        RuntimeEngine,
        synthetic_workflow,
    )

    policies = sorted(POLICIES) if args.policy == "all" else [args.policy]
    failure = None
    if args.fail:
        node, _, at = args.fail.partition("@")
        try:
            failure = (node, float(at))
        except ValueError:
            raise EverestError(
                f"--fail wants NODE@SIM_SECONDS, got {args.fail!r}"
            ) from None
        if not node:
            raise EverestError(
                f"--fail wants NODE@SIM_SECONDS, got {args.fail!r}"
            )
    print(f"runtime engine: {args.tasks} tasks on {args.nodes} node(s)"
          + (f", failing {failure[0]} at t={failure[1]:g}s" if failure
             else ""))
    for policy in policies:
        cluster = default_cluster(args.nodes)
        engine = RuntimeEngine(cluster, policy=policy)
        synthetic_workflow(engine, n_tasks=args.tasks, seed=args.seed,
                           fpga_fraction=args.fpga_fraction)
        if failure:
            engine.fail_node_at(failure[1], failure[0])
        result = engine.run()
        report = ClusterMonitor(cluster).utilization(result)
        print(f"  {policy:12s} makespan={result.makespan:9.3f}s"
              f"  transfers={result.transfers_seconds * 1e3:7.2f}ms"
              f"  imbalance={report.imbalance:5.2f}"
              f"  rescheduled={result.rescheduled_tasks}")
    return 0


def cmd_serve(args) -> int:
    from repro.basecamp.serve import BasecampServer
    from repro.telemetry.log import configure_logging

    # --verbose is sugar for per-request access logging: it marks the
    # handler chatty (info-level) and raises the default log level so
    # the lines actually surface.  An explicit --log-level always wins.
    level = args.log_level
    if args.verbose and level == "warning":
        level = "info"
    configure_logging(level)
    server = BasecampServer(host=args.host, port=args.port,
                            max_workers=args.max_workers,
                            queue_limit=args.queue_limit,
                            quiet=not args.verbose)
    host, port = server.address
    print(f"basecamp serve: listening on http://{host}:{port} "
          f"({args.max_workers} worker(s), queue {args.queue_limit}); "
          "POST /compile /execute /runtime, GET /stats /metrics /healthz",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        stats = server.service.stats()["server"]
        print(f"basecamp serve: shut down after {stats['requests']} "
              f"request(s) ({stats['rejected']} rejected)", flush=True)
    return 0


def cmd_info(args) -> int:
    from repro.platforms import CATALOG

    print("EVEREST target platforms:")
    for name, factory in sorted(CATALOG.items()):
        device = factory()
        attach = "network" if device.is_network_attached else "PCIe"
        memory = device.default_memory()
        print(f"  {name:18s} {attach:8s} LUT={device.resources.lut:>9}"
              f" DSP={device.resources.dsp:>5} {memory.kind.upper()}"
              f" {memory.bandwidth_gbps:.0f} GB/s @ {device.clock_mhz:.0f} MHz")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="basecamp",
        description="Single point of access to the EVEREST SDK "
                    "(DATE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile an EKL kernel")
    p.add_argument("source")
    p.add_argument("--emit", choices=["report", "mlir"], default="report")
    p.add_argument("--opt-level", type=int, choices=[0, 1, 2], default=1,
                   help="0: raw lowering, 1: canonicalize (fold/DCE/CSE), "
                        "2: canonicalize + inline")
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("synthesize", help="HLS with a custom data format")
    p.add_argument("source")
    p.add_argument("--format", default=None,
                   help="f32 | bf16 | fixed<i.f> | posit<n,es>")
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("olympus", help="system-level architecture DSE")
    p.add_argument("source")
    p.add_argument("--device", default="alveo-u55c")
    p.add_argument("--serial", action="store_true",
                   help="disable the parallel DSE fan-out")
    p.set_defaults(fn=cmd_olympus)

    p = sub.add_parser("pipeline",
                       help="full Fig. 2 flow with the stage report")
    p.add_argument("source")
    p.add_argument("--device", default="alveo-u55c")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--serial", action="store_true",
                   help="disable the parallel DSE fan-out")
    p.add_argument("--opt-level", type=int, choices=[0, 1, 2], default=1,
                   help="0: raw lowering, 1: canonicalize (fold/DCE/CSE), "
                        "2: canonicalize + inline")
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record telemetry spans and write Chrome "
                        "trace-event JSON (view in Perfetto)")
    p.set_defaults(fn=cmd_pipeline)

    p = sub.add_parser("run",
                       help="compile and execute a kernel on the CPU "
                            "through a registered executor backend")
    p.add_argument("source")
    p.add_argument("--input", action="append", default=[],
                   metavar="NAME=FILE.npy",
                   help="bind one kernel input to a .npy file "
                        "(repeatable)")
    p.add_argument("--random-seed", type=int, default=None,
                   help="fill unbound inputs: floats uniform [0,1), "
                        "integers zero")
    p.add_argument("--backend", default="compiled",
                   help="executor backend name (resolved through the "
                        "registry: interpreter, compiled, "
                        "compiled-parallel, compiled-arena, cbackend, "
                        "...); an unknown name lists the registered ones")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker-pool size for the compiled-parallel "
                        "backend (default: REPRO_JOBS or the CPU count, "
                        "capped at 8)")
    p.add_argument("--opt-level", type=int, choices=[0, 1, 2], default=1,
                   help="0: raw lowering, 1: canonicalize (fold/DCE/CSE), "
                        "2: canonicalize + inline")
    p.add_argument("--time", action="store_true",
                   help="also run the interpreter backend, check the "
                        "outputs match and print the speedup")
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record telemetry spans and write Chrome "
                        "trace-event JSON (view in Perfetto)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("dialects", help="the Fig. 5 dialect graph")
    p.set_defaults(fn=cmd_dialects)

    p = sub.add_parser("condrust", help="lower a coordination program")
    p.add_argument("source")
    p.set_defaults(fn=cmd_condrust)

    p = sub.add_parser("detect", help="AutoML anomaly detection")
    p.add_argument("data")
    p.add_argument("--output", default=None)
    p.add_argument("--trials", type=int, default=20)
    p.set_defaults(fn=cmd_detect)

    p = sub.add_parser("runtime",
                       help="run a workflow through the event-driven "
                            "runtime engine")
    p.add_argument("--policy", default="all",
                   help="heft | round-robin | min-load | all")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--tasks", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--fpga-fraction", type=float, default=0.0,
                   help="fraction of tasks marked for FPGA offload")
    p.add_argument("--fail", default=None, metavar="NODE@SIM_SECONDS",
                   help="inject a node failure mid-run, e.g. node1@5.0")
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="record telemetry spans (simulated-clock task "
                        "placements included) as Chrome trace-event JSON")
    p.set_defaults(fn=cmd_runtime)

    p = sub.add_parser("serve",
                       help="run the multi-tenant compile-and-run daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="TCP port (0 binds an ephemeral port and prints it)")
    p.add_argument("--max-workers", type=int, default=4, metavar="N",
                   help="max concurrently executing requests")
    p.add_argument("--queue-limit", type=int, default=16, metavar="N",
                   help="max queued requests before 429 rejection")
    p.add_argument("--verbose", action="store_true",
                   help="log every request (shorthand for --log-level "
                        "info plus per-request access lines)")
    p.add_argument("--log-level", default="warning",
                   choices=["debug", "info", "warning", "error"],
                   help="threshold for the repro.* structured logger")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("info", help="platform catalog")
    p.set_defaults(fn=cmd_info)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except EverestError as error:
        print(f"basecamp: error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"basecamp: error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output truncated by a closed pipe (e.g. `basecamp ... | head`).
        return 0


if __name__ == "__main__":
    sys.exit(main())
