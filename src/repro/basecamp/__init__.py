"""basecamp — the single point of access to the EVEREST SDK (paper §IV).

"All tools within the SDK are wrapped under the ``basecamp`` command,
which provides a single point of access to the users of the SDK."
"""

from repro.basecamp.cli import main

__all__ = ["main"]

# The serve daemon (repro.basecamp.serve) is imported lazily by the
# `basecamp serve` subcommand; import it directly for the library API:
#   from repro.basecamp.serve import BasecampServer
