"""Kernel input assembly shared by ``basecamp run`` and ``basecamp serve``.

Both entry points face the same problem: a lowered kernel wants one
array per input argument, but the caller supplies only some of them
(``--input name=file.npy`` on the CLI, a JSON ``inputs`` object over
HTTP) plus, optionally, a seed to fill the rest.  :func:`gather_inputs`
performs that assembly against the kernel's argument list with uniform
error reporting.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import EverestError


def gather_inputs(module: Any, func_name: str,
                  explicit: Optional[Dict[str, Any]] = None,
                  random_seed: Optional[int] = None, *,
                  missing_hint: str = "bind it explicitly or pass a "
                                      "random seed",
                  unknown_label: str = "input") -> Dict[str, Any]:
    """Build the full input dict for one kernel invocation.

    ``explicit`` binds arrays by argument name; with ``random_seed``
    every remaining float input is drawn uniform [0, 1) and every
    integer input is zero-filled (always in-range for gather tables).
    Unknown or missing names raise :class:`EverestError`;
    ``missing_hint`` (``{name}``-formatted) and ``unknown_label`` let
    each entry point keep its own remediation wording.
    """
    import numpy as np

    from repro.ir import types as T

    func = module.lookup(func_name)
    entry = func.regions[0].entry
    arg_names = func.attr("arg_names")
    num_outputs = func.attr("num_outputs") or 0
    explicit = dict(explicit or {})
    rng = np.random.default_rng(random_seed) \
        if random_seed is not None else None
    inputs: Dict[str, Any] = {}
    for i, arg in enumerate(entry.args[:len(entry.args) - num_outputs]):
        name = arg_names[i]
        ref = arg.type
        if name in explicit:
            inputs[name] = np.asarray(explicit.pop(name))
            continue
        if rng is None:
            raise EverestError(
                f"missing input {name!r} "
                f"({missing_hint.format(name=name)})")
        shape = tuple(ref.shape)
        if isinstance(ref.element, T.FloatType):
            inputs[name] = rng.uniform(0.0, 1.0, shape)
        else:
            inputs[name] = np.zeros(shape, dtype=np.int64)
    if explicit:
        raise EverestError(
            f"unknown {unknown_label} name(s): "
            + ", ".join(sorted(explicit)))
    return inputs
