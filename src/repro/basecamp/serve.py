"""``basecamp serve`` — the multi-tenant compile-and-run daemon.

The SDK's phases (PipelineSession stage caching, the executor backends,
the RuntimeEngine) normally live for one CLI invocation.  This module
keeps them alive behind a long-running HTTP daemon (stdlib
:class:`~http.server.ThreadingHTTPServer`, JSON request/response) so
many tenants share one process:

* **one cross-request session** — every ``compile``/``execute`` request
  runs through a single :class:`~repro.pipeline.PipelineSession`, so the
  content-hash stage cache is shared by all clients;
* **single-flight deduplication** — identical in-flight compiles execute
  their stages exactly once (the session's ``run_stage`` blocks waiters
  on the leader's result; see ``SingleFlightStats``);
* **admission control** — at most ``max_workers`` requests execute
  concurrently and at most ``queue_limit`` wait; beyond that the daemon
  rejects with ``429`` and a ``Retry-After`` hint derived from recent
  request latency.

Endpoints (all JSON):

==================  ===================================================
``POST /compile``   ``{source, opt_level?, number_format?}`` -> HLS
                    report scalars + the stage-chain fingerprint
``POST /execute``   ``{source, backend?, opt_level?, jobs?,
                    random_seed?, inputs?, full_outputs?}`` -> output
                    summaries (shape/dtype/mean, values on request)
``POST /runtime``   ``{policy?, nodes?, tasks?, seed?, fpga_fraction?}``
                    -> per-policy makespan/transfers/rescheduled
``GET /stats``      cache, single-flight and admission counters
``GET /metrics``    the same state as Prometheus text exposition
``GET /healthz``    liveness probe
==================  ===================================================

Every counter behind ``/stats`` lives in a
:class:`~repro.telemetry.metrics.MetricsRegistry` owned by the service;
``/stats`` (the JSON view) and ``/metrics`` (the Prometheus view) read
the same registry, so the two can never disagree.  When a recording
tracer is installed (``repro.telemetry.trace.enable``), each POST grows
one span tree (request → stages → kernel run) and the response carries
its root ``span_id``.  Per-request access logging goes through the
``repro.serve`` structured logger (``--log-level info`` shows it).

SDK errors map to ``400`` with ``{"error": ...}``; saturation maps to
``429``; anything unexpected maps to ``500``.  See ``docs/serve.md``.
"""

from __future__ import annotations

import json
import logging
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import EverestError
from repro.pipeline import PipelineSession
from repro.telemetry.export import prometheus_text
from repro.telemetry.log import get_logger
from repro.telemetry.metrics import MetricsRegistry, get_registry
from repro.telemetry.trace import get_tracer

_LOG = get_logger("serve")

#: Upper bound on request bodies: kernels and input arrays are small;
#: anything bigger is a client bug, not a workload.
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Default daemon sizing: modest concurrency, a queue a few times deeper.
DEFAULT_MAX_WORKERS = 4
DEFAULT_QUEUE_LIMIT = 16


class ServiceSaturated(EverestError):
    """The daemon's execute+queue capacity is full (HTTP 429).

    ``retry_after`` is the seconds hint clients should back off for,
    derived from an exponential moving average of recent request
    latency times the current queue depth.
    """

    def __init__(self, message: str, retry_after: int = 1):
        super().__init__(message)
        self.retry_after = retry_after


class BasecampService:
    """Endpoint logic, independent of the HTTP plumbing.

    Owns the shared :class:`PipelineSession` and the admission-control
    state; the HTTP handler (and the tests, directly) call
    :meth:`handle`.
    """

    def __init__(self, *, session: Optional[PipelineSession] = None,
                 max_workers: int = DEFAULT_MAX_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT):
        if max_workers < 1:
            raise EverestError(
                f"max_workers must be >= 1, got {max_workers}")
        if queue_limit < 0:
            raise EverestError(
                f"queue_limit must be >= 0, got {queue_limit}")
        self.session = session if session is not None else PipelineSession()
        self.max_workers = max_workers
        self.queue_limit = queue_limit
        self._workers = threading.Semaphore(max_workers)
        self._lock = threading.Lock()
        self._active = 0
        self._ewma_seconds = 0.05
        self._started = time.time()
        # All request accounting lives in a service-private registry;
        # /stats and /metrics are two renderings of it.
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter(
            "basecamp_requests_total",
            "POST requests received, by endpoint", ("endpoint",))
        self._responses = self.metrics.counter(
            "basecamp_responses_total",
            "Request outcomes (ok / error / rejected)", ("outcome",))
        self._latency = self.metrics.histogram(
            "basecamp_request_seconds",
            "Wall latency of admitted requests, by endpoint",
            ("endpoint",))
        self._gauges = {
            name: self.metrics.gauge(f"basecamp_{name}", help)
            for name, help in (
                ("active_requests", "Requests admitted and not yet done"),
                ("max_workers", "Concurrent-execution limit"),
                ("queue_limit", "Admission queue depth limit"),
                ("ewma_request_seconds",
                 "Exponential moving average of request latency"),
                ("uptime_seconds", "Seconds since service start"),
                ("cache_entries", "Stage-cache entries in the session"),
                ("cache_hits", "Stage-cache hits since start"),
                ("cache_misses", "Stage-cache misses since start"),
                ("singleflight_leaders", "Single-flight leader executions"),
                ("singleflight_waits", "Single-flight waiter joins"),
                ("tile_pool_workers", "Worker threads in the tile pool"),
            )
        }

    # -- admission control -------------------------------------------------------------

    def _admit(self) -> None:
        with self._lock:
            if self._active >= self.max_workers + self.queue_limit:
                queued = self._active - self.max_workers
                hint = max(1, min(30, math.ceil(
                    self._ewma_seconds * max(1, queued)
                    / self.max_workers)))
                self._responses.inc(outcome="rejected")
                raise ServiceSaturated(
                    f"server saturated: {self.max_workers} executing, "
                    f"{queued} queued (queue limit {self.queue_limit}); "
                    f"retry in {hint}s", retry_after=hint)
            self._active += 1

    def _release(self, seconds: float) -> None:
        with self._lock:
            self._active -= 1
            # Floor the EWMA: sub-millisecond health-check-sized bodies
            # would otherwise decay it toward zero and the Retry-After
            # hint (ewma * queued / workers, ceil'd) would stop growing
            # with queue depth in any meaningful way.
            self._ewma_seconds = max(0.001, self._ewma_seconds
                                     + 0.2 * (seconds - self._ewma_seconds))

    # -- request dispatch --------------------------------------------------------------

    def handle(self, endpoint: str,
               payload: Dict[str, Any]) -> Dict[str, Any]:
        """Run one admitted request; raises :class:`EverestError` on
        bad parameters and :class:`ServiceSaturated` over capacity."""
        handler = {"compile": self._compile, "execute": self._execute,
                   "runtime": self._runtime}.get(endpoint)
        if handler is None:
            raise EverestError(f"unknown endpoint {endpoint!r}; "
                               "available: compile, execute, runtime")
        if not isinstance(payload, dict):
            raise EverestError("request body must be a JSON object")
        self._requests.inc(endpoint=endpoint)
        self._admit()
        start = time.perf_counter()
        try:
            with self._workers:  # blocking acquire == the bounded queue
                result = handler(payload)
            self._responses.inc(outcome="ok")
            return result
        except EverestError:
            self._responses.inc(outcome="error")
            raise
        finally:
            elapsed = time.perf_counter() - start
            self._latency.observe(elapsed, endpoint=endpoint)
            self._release(elapsed)

    # -- endpoints ---------------------------------------------------------------------

    @staticmethod
    def _source_of(payload: Dict[str, Any]) -> str:
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise EverestError("request needs a non-empty 'source' "
                               "(EKL kernel text)")
        return source

    @staticmethod
    def _opt_level(payload: Dict[str, Any]) -> int:
        level = payload.get("opt_level", 1)
        if level not in (0, 1, 2):
            raise EverestError(f"opt_level must be 0, 1 or 2, got {level!r}")
        return level

    def _compile(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        result = self.session.compile(
            self._source_of(payload),
            number_format=payload.get("number_format"),
            opt_level=self._opt_level(payload))
        report = result.report
        return {
            "kernel": report.name,
            "key": result.key,
            "number_format": report.number_format,
            "total_cycles": report.total_cycles,
            "latency_seconds": report.latency_seconds,
            "flops": report.flops,
            "resources": {"lut": report.resources.lut,
                          "ff": report.resources.ff,
                          "dsp": report.resources.dsp,
                          "bram": report.resources.bram},
        }

    def _execute(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        import numpy as np

        from repro.basecamp.inputs import gather_inputs

        source = self._source_of(payload)
        opt_level = self._opt_level(payload)
        backend = payload.get("backend", "compiled")
        jobs = payload.get("jobs")
        seed = payload.get("random_seed")
        explicit = payload.get("inputs") or {}
        if not isinstance(explicit, dict):
            raise EverestError("'inputs' must map input names to arrays")
        lowered = self.session.lower(source, opt_level=opt_level)
        inputs = gather_inputs(
            lowered.module, lowered.kernel.name, explicit, seed,
            missing_hint="add it to 'inputs' or pass 'random_seed'")
        result = self.session.execute(source, inputs, backend=backend,
                                      opt_level=opt_level, jobs=jobs)
        outputs: Dict[str, Any] = {}
        for name, value in result.outputs.items():
            value = np.asarray(value)
            entry: Dict[str, Any] = {
                "shape": list(value.shape),
                "dtype": str(value.dtype),
                "mean": float(value.mean()) if value.size else 0.0,
            }
            if payload.get("full_outputs"):
                entry["values"] = value.tolist()
            outputs[name] = entry
        return {
            "kernel": result.kernel.func_name,
            "key": result.key,
            "backend": result.kernel.backend,
            "fallback": result.kernel.fallback or "",
            "seconds": result.seconds,
            "outputs": outputs,
        }

    def _runtime(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        from repro.runtime import default_cluster
        from repro.runtime.engine import (
            POLICIES,
            RuntimeEngine,
            synthetic_workflow,
        )

        policy = payload.get("policy", "heft")
        policies = sorted(POLICIES) if policy == "all" else [policy]
        nodes = int(payload.get("nodes", 4))
        tasks = int(payload.get("tasks", 60))
        seed = int(payload.get("seed", 0))
        fpga_fraction = float(payload.get("fpga_fraction", 0.0))
        results = []
        for name in policies:
            cluster = default_cluster(nodes)
            engine = RuntimeEngine(cluster, policy=name)
            synthetic_workflow(engine, n_tasks=tasks, seed=seed,
                               fpga_fraction=fpga_fraction)
            outcome = engine.run()
            results.append({
                "policy": name,
                "makespan": outcome.makespan,
                "transfers_seconds": outcome.transfers_seconds,
                "rescheduled": outcome.rescheduled_tasks,
            })
        return {"nodes": nodes, "tasks": tasks, "results": results}

    # -- introspection -----------------------------------------------------------------

    def _refresh_gauges(self) -> None:
        """Sample point-in-time state into the gauges (scrape time)."""
        from repro.tensorpipe.parallel import pool_size

        cache = self.session.cache
        flight = self.session.singleflight
        with self._lock:
            active = self._active
            ewma = self._ewma_seconds
        gauges = self._gauges
        gauges["active_requests"].set(active)
        gauges["max_workers"].set(self.max_workers)
        gauges["queue_limit"].set(self.queue_limit)
        gauges["ewma_request_seconds"].set(ewma)
        gauges["uptime_seconds"].set(time.time() - self._started)
        gauges["cache_entries"].set(len(cache))
        gauges["cache_hits"].set(cache.stats.hits)
        gauges["cache_misses"].set(cache.stats.misses)
        gauges["singleflight_leaders"].set(flight.leaders)
        gauges["singleflight_waits"].set(flight.waits)
        gauges["tile_pool_workers"].set(pool_size())

    def stats(self) -> Dict[str, Any]:
        self._refresh_gauges()
        cache = self.session.cache
        flight = self.session.singleflight
        gauges = self._gauges
        return {
            "server": {
                "requests": int(self._requests.total()),
                "ok": int(self._responses.value(outcome="ok")),
                "rejected": int(self._responses.value(outcome="rejected")),
                "errors": int(self._responses.value(outcome="error")),
                "compile": int(self._requests.value(endpoint="compile")),
                "execute": int(self._requests.value(endpoint="execute")),
                "runtime": int(self._requests.value(endpoint="runtime")),
                "active": int(gauges["active_requests"].value()),
                "max_workers": self.max_workers,
                "queue_limit": self.queue_limit,
                "ewma_request_seconds":
                    gauges["ewma_request_seconds"].value(),
                "uptime_seconds": gauges["uptime_seconds"].value(),
            },
            "cache": {
                "entries": len(cache),
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "hit_rate": cache.stats.hit_rate,
            },
            "singleflight": {
                "leaders": flight.leaders,
                "waits": flight.waits,
            },
        }

    def metrics_text(self) -> str:
        """The service-private plus process-global registries rendered
        in Prometheus text exposition (the ``GET /metrics`` body)."""
        self._refresh_gauges()
        return prometheus_text(self.metrics, get_registry())


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-HTTP front of one :class:`BasecampService`."""

    # Set by the server factory.
    service: BasecampService
    quiet = True
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 (stdlib signature)
        # BaseHTTPRequestHandler writes straight to stderr; route the
        # per-request chatter through the structured logger instead so
        # one --log-level flag governs it (info when chatty was asked
        # for, debug otherwise — invisible at the default warning).
        _LOG.log(logging.DEBUG if self.quiet else logging.INFO,
                 "%s %s", self.address_string(), fmt % args)

    def _reply(self, status: int, body: Dict[str, Any],
               headers: Optional[Dict[str, str]] = None) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _reply_text(self, status: int, text: str,
                    content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        if self.path == "/healthz":
            self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        elif self.path == "/metrics":
            self._reply_text(200, self.service.metrics_text(),
                             "text/plain; version=0.0.4; charset=utf-8")
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}; "
                                       "GET /healthz, /stats, /metrics, or "
                                       "POST /compile, /execute, /runtime"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        endpoint = self.path.lstrip("/")
        tracer = get_tracer()
        with tracer.span(f"request:{endpoint}", category="request") as span:
            if tracer.enabled:
                span.attrs["endpoint"] = endpoint
            self._do_post(endpoint, span)

    def _do_post(self, endpoint: str, span) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                # Body left unread: drop the connection after replying.
                span.set("status", 413)
                self._reply(413, {"error": "request body too large"},
                            headers={"Connection": "close"})
                self.close_connection = True
                return
            raw = self.rfile.read(length) if length else b"{}"
            try:
                payload = json.loads(raw.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                span.set("status", 400)
                self._reply(400, {"error": f"invalid JSON body: {error}"})
                return
            result = self.service.handle(endpoint, payload)
            span.set("status", 200)
            if span.span_id:
                # Tracing is on: tie the response to its span tree.
                result["span_id"] = span.span_id
            self._reply(200, result)
        except ServiceSaturated as error:
            span.set("status", 429)
            self._reply(429, {"error": str(error),
                              "retry_after": error.retry_after},
                        headers={"Retry-After": str(error.retry_after)})
        except EverestError as error:
            span.set("status", 400)
            self._reply(400, {"error": str(error)})
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as error:  # noqa: BLE001 — daemon must not die
            span.set("status", 500)
            self._reply(500, {"error": f"internal error: "
                                       f"{type(error).__name__}: {error}"})


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for many short-lived tenant connections.

    The stdlib default listen backlog of 5 overflows under a burst of
    concurrent clients, and the kernel's SYN retransmit then shows up as
    a spurious ~1s latency cliff; admission control (not the accept
    queue) is the daemon's intended backpressure mechanism.
    """

    daemon_threads = True
    request_queue_size = 128


class BasecampServer:
    """A :class:`ThreadingHTTPServer` bound to one :class:`BasecampService`.

    ``port=0`` binds an ephemeral port (see :attr:`address`).  Use
    :meth:`start` for a background thread (tests, benchmarks) or
    :meth:`serve_forever` to occupy the calling thread (the CLI).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642, *,
                 session: Optional[PipelineSession] = None,
                 max_workers: int = DEFAULT_MAX_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 quiet: bool = True):
        self.service = BasecampService(session=session,
                                       max_workers=max_workers,
                                       queue_limit=queue_limit)
        handler = type("BoundHandler", (_Handler,),
                       {"service": self.service, "quiet": quiet})
        self._httpd = _Server((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The actually-bound (host, port)."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "BasecampServer":
        """Serve on a background thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="basecamp-serve", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving, join the background thread, close the socket."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()
