"""Core-capacity timeline index for one node (§VI-A placement hot path).

The resource manager answers one question thousands of times per schedule:
*given everything already committed to this node, when is the earliest
start for a task needing C cores for D seconds?*  The seed implementation
rescanned the full interval list for every candidate start — O(intervals²)
per query.  This module replaces it with an **event-sweep free-slot
index**: commitments are folded into a sorted breakpoint array holding the
core-usage level of every segment, so a query is a single bisect plus one
forward sweep (O(intervals) worst case, O(log intervals) to locate the
first segment), and a commit is a bisect-insert.

The index is shared by the offline list schedulers
(:class:`~repro.runtime.scheduler.HEFTScheduler`,
:class:`~repro.runtime.scheduler.RoundRobinScheduler`) and the online
:class:`~repro.runtime.engine.RuntimeEngine`, which additionally needs
:meth:`NodeTimeline.release` (to free reservations lost to a node
failure) and :meth:`NodeTimeline.load_after` (live load for the
``min-load`` dispatch policy).
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Tuple

from repro.errors import RuntimeSchedulingError


class NodeTimeline:
    """Event-sweep index of committed core usage on one node.

    Invariants: ``_times`` is sorted and unique; ``_levels[i]`` is the
    number of cores in use over ``[_times[i], _times[i+1])`` (the last
    segment extends to infinity and always has level 0, because every
    committed interval eventually ends); adjacent segments always have
    *different* levels (redundant breakpoints are coalesced away, so the
    index cannot grow without bound under commit/release churn).

    ``version`` increments on every :meth:`commit`/:meth:`release`; the
    incremental HEFT placer (:mod:`repro.runtime.placement`) uses it to
    invalidate cached per-node placement bounds without re-reading every
    timeline on every query.
    """

    def __init__(self, node):
        self.node = node
        self.version = 0
        self.intervals: List[Tuple[float, float, int]] = []
        self._times: List[float] = []
        self._levels: List[int] = []
        # Commitments sorted by end time, so load_after() can bisect to
        # the still-outstanding suffix instead of scanning history.
        self._by_end: List[Tuple[float, float, int]] = []
        self._fit_cache: Dict[int, Tuple[int, float]] = {}

    def _ensure_breakpoint(self, t: float) -> int:
        """Index of the breakpoint at ``t``, splitting a segment if needed."""
        i = bisect_left(self._times, t)
        if i < len(self._times) and self._times[i] == t:
            return i
        level = self._levels[i - 1] if i > 0 else 0
        self._times.insert(i, t)
        self._levels.insert(i, level)
        return i

    def usage_at(self, t: float) -> int:
        i = bisect_right(self._times, t) - 1
        return self._levels[i] if i >= 0 else 0

    def peak_usage(self, t0: float, t1: float) -> int:
        """Peak core usage over ``[t0, t1)``."""
        if not self._times:
            return 0
        i = max(0, bisect_right(self._times, t0) - 1)
        peak = 0
        while i < len(self._times) and self._times[i] < t1:
            peak = max(peak, self._levels[i])
            i += 1
        return peak

    def earliest_start(self, ready: float, duration: float,
                       cores: int) -> float:
        """Earliest ``t >= ready`` with ``cores`` free over ``[t, t+duration)``.

        Unlike the seed scan, the search always extends past the last
        committed interval (where the node is idle), so a feasible request
        is *never* silently overcommitted; an infeasible one — more cores
        than the node physically has — raises instead of being placed.
        """
        capacity = self.node.cores
        if cores > capacity:
            raise RuntimeSchedulingError(
                f"task needs {cores} cores but node {self.node.name!r} "
                f"only has {capacity}"
            )
        n = len(self._times)
        if n == 0:
            return ready
        start = ready
        i = bisect_right(self._times, start) - 1
        while True:
            if i >= n:
                return start  # past every breakpoint: the node is idle
            if i < 0:
                level, seg_end = 0, self._times[0]
            else:
                level = self._levels[i]
                seg_end = self._times[i + 1] if i + 1 < n else math.inf
            if level + cores > capacity:
                start = seg_end  # blocked: resume where this segment ends
                i += 1
                continue
            if start + duration <= seg_end:
                return start
            i += 1

    def first_fit(self, cores: int) -> float:
        """Earliest ``t >= 0`` with ``cores`` cores free *at* ``t``.

        A zero-duration feasibility bound: any start feasible for a real
        window is feasible at its first instant, so
        ``max(ready, first_fit(cores)) <= earliest_start(ready, d, cores)``
        for every ``ready >= 0`` and duration.  The incremental HEFT
        placer orders candidate nodes by this bound.  Cached per core
        count; a commit/release bumps :attr:`version`, invalidating it.
        """
        cached = self._fit_cache.get(cores)
        if cached is not None and cached[0] == self.version:
            return cached[1]
        capacity = self.node.cores
        fit = 0.0
        if self._times and self._times[0] <= 0.0:
            n = len(self._times)
            i = bisect_right(self._times, 0.0) - 1
            while i < n and self._levels[i] + cores > capacity:
                i += 1
            fit = self._times[i] if i < n else self._times[-1]
        self._fit_cache[cores] = (self.version, fit)
        return fit

    def commit(self, start: float, duration: float, cores: int) -> None:
        end = start + duration
        self.version += 1
        self.intervals.append((start, end, cores))
        insort(self._by_end, (end, start, cores))
        self._apply(start, end, cores)

    def release(self, start: float, duration: float, cores: int) -> None:
        """Undo a prior :meth:`commit` (a reservation lost to a failure)."""
        end = start + duration
        try:
            self.intervals.remove((start, end, cores))
        except ValueError:
            raise RuntimeSchedulingError(
                f"no committed interval ({start}, {end}, {cores}) on "
                f"node {self.node.name!r}"
            ) from None
        self.version += 1
        self._by_end.remove((end, start, cores))
        self._apply(start, end, -cores)

    def _apply(self, start: float, end: float, cores: int) -> None:
        if end <= start or cores == 0:
            return
        i0 = self._ensure_breakpoint(start)
        i1 = self._ensure_breakpoint(end)
        for i in range(i0, i1):
            self._levels[i] += cores
        # Coalesce breakpoints made redundant by this update — a segment
        # whose level now equals its predecessor's, or a leading segment
        # at the implicit level 0.  Without this, commit/release churn
        # (mid-run failure recovery) leaves stale breakpoints behind and
        # the index drifts away from a freshly-built timeline.
        for i in range(min(i1, len(self._times) - 1), i0 - 1, -1):
            if self._levels[i] == (self._levels[i - 1] if i > 0 else 0):
                del self._times[i]
                del self._levels[i]

    def clone(self) -> "NodeTimeline":
        """An independent copy (scratch planning that may be discarded)."""
        copy = NodeTimeline(self.node)
        copy.version = self.version
        copy.intervals = list(self.intervals)
        copy._times = list(self._times)
        copy._levels = list(self._levels)
        copy._by_end = list(self._by_end)
        copy._fit_cache = dict(self._fit_cache)
        return copy

    def load_after(self, now: float) -> float:
        """Committed core-seconds still outstanding after ``now``."""
        i = bisect_right(self._by_end, (now, math.inf, 0))
        return sum((e - max(s, now)) * c
                   for e, s, c in self._by_end[i:])

    @property
    def last_end(self) -> float:
        return self._times[-1] if self._times else 0.0
