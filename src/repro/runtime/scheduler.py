"""The EVEREST resource manager: task scheduling on the cluster (§VI-A).

Responsibilities from the paper: "(1) schedules and assigns the workflow
tasks to the computational nodes while respecting their dependencies and
resource requests; (2) load-balances the computation when necessary; (3)
performs data transfers when an input of a task is computed on a different
node; (4) monitors the cluster and reschedules tasks if needed."

Two schedulers are provided: :class:`HEFTScheduler` (upward-rank list
scheduling with earliest-finish-time placement — the production policy) and
:class:`RoundRobinScheduler` (the baseline the scheduling benchmark
compares against).  :func:`reschedule_after_failure` implements (4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RuntimeSchedulingError
from repro.runtime.cluster import Cluster, Node
from repro.runtime.taskgraph import Task, TaskGraph


@dataclass
class Placement:
    """Where and when one task runs."""

    task_id: int
    node: str
    start: float
    finish: float
    cores: int = 1

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def core_seconds(self) -> float:
        return self.duration * self.cores


@dataclass
class ScheduleResult:
    """A complete schedule of a task graph on a cluster."""

    placements: Dict[int, Placement] = field(default_factory=dict)
    transfers_seconds: float = 0.0
    rescheduled_tasks: int = 0

    @property
    def makespan(self) -> float:
        return max((p.finish for p in self.placements.values()), default=0.0)

    def node_busy_seconds(self) -> Dict[str, float]:
        busy: Dict[str, float] = {}
        for placement in self.placements.values():
            busy[placement.node] = busy.get(placement.node, 0.0) \
                + placement.duration
        return busy

    def load_balance(self) -> float:
        """Max/mean busy-time ratio (1.0 = perfectly balanced)."""
        busy = list(self.node_busy_seconds().values())
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean else 1.0


def _task_runtime(task: Task, node: Node) -> float:
    """Execution time of a task on a node, honouring resource requests."""
    if task.resources.fpga:
        if not node.has_fpga:
            return float("inf")
        # Overheads of the virtualized access path (Fig. 6).
        from repro.runtime.virtualization import SRIOV_OVERHEAD

        return task.resources.fpga_seconds * SRIOV_OVERHEAD
    return task.runtime_on_cpu(node)


class _NodeTimeline:
    """Core-capacity-aware placement onto one node."""

    def __init__(self, node: Node):
        self.node = node
        self.intervals: List[Tuple[float, float, int]] = []

    def _usage_at(self, t0: float, t1: float) -> int:
        peak = 0
        points = {t0}
        for s, e, c in self.intervals:
            if s < t1 and e > t0:
                points.add(max(s, t0))
        for point in points:
            used = sum(c for s, e, c in self.intervals
                       if s <= point < e)
            peak = max(peak, used)
        return peak

    def earliest_start(self, ready: float, duration: float,
                       cores: int) -> float:
        candidates = sorted({ready} | {
            e for _, e, _ in self.intervals if e > ready
        })
        for candidate in candidates:
            if self._usage_at(candidate, candidate + duration) + cores \
                    <= self.node.cores:
                return candidate
        return candidates[-1] if candidates else ready

    def commit(self, start: float, duration: float, cores: int) -> None:
        self.intervals.append((start, start + duration, cores))


class HEFTScheduler:
    """Heterogeneous-Earliest-Finish-Time list scheduling."""

    def schedule(self, graph: TaskGraph, cluster: Cluster,
                 ready_overrides: Optional[Dict[int, float]] = None
                 ) -> ScheduleResult:
        nodes = cluster.alive_nodes()
        if not nodes:
            raise RuntimeSchedulingError("no alive nodes")
        tasks = graph.topological_order()
        ranks = self._upward_ranks(graph, cluster, tasks)
        order = sorted(tasks, key=lambda t: -ranks[t.task_id])
        # Respect dependencies: stable-sort by rank but never before deps.
        order = self._dependency_respecting(order, graph)
        timelines = {n.name: _NodeTimeline(n) for n in nodes}
        result = ScheduleResult()
        for task in order:
            best: Optional[Placement] = None
            for node in nodes:
                runtime = _task_runtime(task, node)
                if runtime == float("inf"):
                    continue
                ready = (ready_overrides or {}).get(task.task_id, 0.0)
                comm = 0.0
                for dep in task.deps:
                    dep_placement = result.placements[dep]
                    transfer = cluster.transfer_seconds(
                        dep_placement.node, node.name,
                        graph.tasks[dep].output_bytes,
                    )
                    comm += transfer
                    ready = max(ready, dep_placement.finish + transfer)
                start = timelines[node.name].earliest_start(
                    ready, runtime, task.resources.cores
                )
                candidate = Placement(task.task_id, node.name, start,
                                      start + runtime,
                                      task.resources.cores)
                if best is None or candidate.finish < best.finish:
                    best = candidate
                    best_comm = comm
            if best is None:
                raise RuntimeSchedulingError(
                    f"task {task.name!r} requires an FPGA but no alive "
                    "node has one"
                )
            timelines[best.node].commit(best.start, best.duration,
                                        task.resources.cores)
            result.placements[task.task_id] = best
            result.transfers_seconds += best_comm
        return result

    def _upward_ranks(self, graph: TaskGraph, cluster: Cluster,
                      tasks: List[Task]) -> Dict[int, float]:
        nodes = cluster.alive_nodes()
        avg_runtime = {
            t.task_id: (sum(r for r in (_task_runtime(t, n) for n in nodes)
                            if r != float("inf")) or 1e-9)
            / max(1, sum(1 for n in nodes
                         if _task_runtime(t, n) != float("inf")))
            for t in tasks
        }
        successors: Dict[int, List[Task]] = {t.task_id: [] for t in tasks}
        for t in tasks:
            for dep in t.deps:
                successors[dep].append(t)
        ranks: Dict[int, float] = {}
        for t in reversed(tasks):  # reverse topological order
            succ_rank = 0.0
            for succ in successors[t.task_id]:
                comm = cluster.network.message_seconds(t.output_bytes)
                succ_rank = max(succ_rank, ranks[succ.task_id] + comm)
            ranks[t.task_id] = avg_runtime[t.task_id] + succ_rank
        return ranks

    @staticmethod
    def _dependency_respecting(order: List[Task],
                               graph: TaskGraph) -> List[Task]:
        emitted: set = set()
        result: List[Task] = []
        pending = list(order)
        while pending:
            progressed = False
            for task in list(pending):
                if all(dep in emitted for dep in task.deps):
                    result.append(task)
                    emitted.add(task.task_id)
                    pending.remove(task)
                    progressed = True
            if not progressed:
                raise RuntimeSchedulingError("cycle in task graph")
        return result


class RoundRobinScheduler:
    """The naive baseline: assign tasks to nodes in rotation."""

    def schedule(self, graph: TaskGraph, cluster: Cluster,
                 ready_overrides: Optional[Dict[int, float]] = None
                 ) -> ScheduleResult:
        nodes = cluster.alive_nodes()
        timelines = {n.name: _NodeTimeline(n) for n in nodes}
        result = ScheduleResult()
        index = 0
        for task in graph.topological_order():
            attempts = 0
            while True:
                node = nodes[index % len(nodes)]
                index += 1
                attempts += 1
                runtime = _task_runtime(task, node)
                if runtime != float("inf"):
                    break
                if attempts > len(nodes):
                    raise RuntimeSchedulingError(
                        f"task {task.name!r} cannot run anywhere"
                    )
            ready = (ready_overrides or {}).get(task.task_id, 0.0)
            for dep in task.deps:
                dep_placement = result.placements[dep]
                transfer = cluster.transfer_seconds(
                    dep_placement.node, node.name,
                    graph.tasks[dep].output_bytes,
                )
                ready = max(ready, dep_placement.finish + transfer)
                result.transfers_seconds += transfer
            start = timelines[node.name].earliest_start(
                ready, runtime, task.resources.cores
            )
            timelines[node.name].commit(start, runtime,
                                        task.resources.cores)
            result.placements[task.task_id] = Placement(
                task.task_id, node.name, start, start + runtime,
                task.resources.cores
            )
        return result


def reschedule_after_failure(graph: TaskGraph, cluster: Cluster,
                             schedule: ScheduleResult, failed_node: str,
                             failure_time: float,
                             scheduler: Optional[HEFTScheduler] = None
                             ) -> ScheduleResult:
    """Monitoring reaction (§VI-A item 4): re-place work lost to a failure.

    Tasks that *finished* on the failed node before the failure keep their
    results; unfinished or future tasks on that node — and everything
    transitively depending on lost outputs — are rescheduled on the
    surviving nodes, no earlier than the failure time.
    """
    scheduler = scheduler or HEFTScheduler()
    cluster.fail_node(failed_node)
    try:
        lost: set = set()
        for task_id, placement in schedule.placements.items():
            if placement.node == failed_node \
                    and placement.finish > failure_time:
                lost.add(task_id)
        # Anything depending on a lost task must rerun too.
        changed = True
        while changed:
            changed = False
            for task in graph.tasks.values():
                if task.task_id in lost:
                    continue
                if any(dep in lost for dep in task.deps):
                    lost.add(task.task_id)
                    changed = True
        survivors = {
            tid: p for tid, p in schedule.placements.items()
            if tid not in lost
        }
        # Build a subgraph of the lost tasks with ready-time constraints.
        subgraph = TaskGraph()
        id_map: Dict[int, int] = {}
        ready: Dict[int, float] = {}
        for task in graph.topological_order():
            if task.task_id not in lost:
                continue
            deps = [id_map[d] for d in task.deps if d in lost]
            future = subgraph.add(task.fn, (), {}, task.resources,
                                  task.output_bytes, task.tuning, task.name)
            new_task = subgraph.tasks[future.task_id]
            new_task.deps = deps
            id_map[task.task_id] = future.task_id
            ready_time = failure_time
            for dep in task.deps:
                if dep not in lost:
                    ready_time = max(ready_time, survivors[dep].finish)
            ready[future.task_id] = ready_time
        repaired = scheduler.schedule(subgraph, cluster, ready)
        merged = ScheduleResult(
            placements=dict(survivors),
            transfers_seconds=schedule.transfers_seconds
            + repaired.transfers_seconds,
            rescheduled_tasks=len(lost),
        )
        reverse = {v: k for k, v in id_map.items()}
        for new_id, placement in repaired.placements.items():
            original = reverse[new_id]
            merged.placements[original] = Placement(
                original, placement.node, placement.start, placement.finish,
                placement.cores
            )
        return merged
    finally:
        cluster.restore_node(failed_node)
