"""The EVEREST resource manager: task scheduling on the cluster (§VI-A).

Responsibilities from the paper: "(1) schedules and assigns the workflow
tasks to the computational nodes while respecting their dependencies and
resource requests; (2) load-balances the computation when necessary; (3)
performs data transfers when an input of a task is computed on a different
node; (4) monitors the cluster and reschedules tasks if needed."

Two *offline* scheduling policies are provided: :class:`HEFTScheduler`
(upward-rank list scheduling with earliest-finish-time placement — the
production policy) and :class:`RoundRobinScheduler` (the baseline the
scheduling benchmark compares against).  Both implement the
:class:`~repro.runtime.engine.SchedulingPolicy` protocol, so they plug
directly into the event-driven :class:`~repro.runtime.engine.RuntimeEngine`,
which executes duty (4) — monitoring and mid-run rescheduling — in its
event loop.  :func:`reschedule_after_failure` remains as the offline
repair helper for callers that hold a finished schedule.

Placement queries go through the event-sweep
:class:`~repro.runtime.timeline.NodeTimeline` index; pass
``timelines=`` to schedule *into* live node state (the engine does this
so streamed jobs share capacity correctly).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import RuntimeSchedulingError
from repro.runtime.cluster import Cluster, Node
from repro.runtime.placement import CandidateIndex, node_classes
from repro.runtime.taskgraph import Task, TaskGraph
from repro.runtime.timeline import NodeTimeline


@dataclass
class Placement:
    """Where and when one task runs."""

    task_id: int
    node: str
    start: float
    finish: float
    cores: int = 1

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def core_seconds(self) -> float:
        return self.duration * self.cores


@dataclass
class ScheduleResult:
    """A complete schedule of a task graph on a cluster."""

    placements: Dict[int, Placement] = field(default_factory=dict)
    transfers_seconds: float = 0.0
    rescheduled_tasks: int = 0

    @property
    def makespan(self) -> float:
        return max((p.finish for p in self.placements.values()), default=0.0)

    def node_busy_seconds(self) -> Dict[str, float]:
        busy: Dict[str, float] = {}
        for placement in self.placements.values():
            busy[placement.node] = busy.get(placement.node, 0.0) \
                + placement.duration
        return busy

    def load_balance(self) -> float:
        """Max/mean busy-time ratio (1.0 = perfectly balanced)."""
        busy = list(self.node_busy_seconds().values())
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean else 1.0


def _task_runtime(task: Task, node: Node) -> float:
    """Execution time of a task on a node, honouring resource requests."""
    if task.resources.fpga:
        if not node.has_fpga:
            return float("inf")
        # Overheads of the virtualized access path (Fig. 6).
        from repro.runtime.virtualization import SRIOV_OVERHEAD

        return task.resources.fpga_seconds * SRIOV_OVERHEAD
    return task.runtime_on_cpu(node)


def _can_host(task: Task, node: Node) -> bool:
    """A node can host a task only if the core request physically fits.

    The seed scheduler silently overcommitted a node when a task asked
    for more cores than the node has; such nodes are now skipped, and a
    task no node can host raises :class:`RuntimeSchedulingError`.
    """
    return task.resources.cores <= node.cores


def _unplaceable(task: Task) -> RuntimeSchedulingError:
    need = "an FPGA" if task.resources.fpga \
        else f"{task.resources.cores} cores"
    return RuntimeSchedulingError(
        f"task {task.name!r} requires {need} but no alive node "
        "can provide it"
    )


# Kept as the seed-compatible internal name; the engine and benchmarks
# import the public class from repro.runtime.timeline.
_NodeTimeline = NodeTimeline


class HEFTScheduler:
    """Heterogeneous-Earliest-Finish-Time list scheduling.

    Two placement engines share the same semantics (identical placements
    on any graph, enforced differentially by ``tools/workloadfuzz.py``):

    * ``incremental=True`` (the default) — the pruned candidate search
      of :class:`~repro.runtime.placement.CandidateIndex`: per-class
      cost models and cached first-fit bounds, invalidated only for
      nodes a commit touched, so a task evaluates a handful of nodes
      instead of all of them;
    * ``incremental=False`` — the exhaustive per-task scan over every
      alive node, kept as the differential baseline and measured against
      the incremental engine by ``make bench-runtime``.

    A custom ``timeline_factory`` whose product lacks the
    ``first_fit``/``version`` bound interface silently falls back to the
    exhaustive scan.
    """

    name = "heft"
    online = False

    def __init__(self, timeline_factory: Callable[[Node], NodeTimeline]
                 = NodeTimeline, incremental: bool = True):
        self.timeline_factory = timeline_factory
        self.incremental = incremental

    def schedule(self, graph: TaskGraph, cluster: Cluster,
                 ready_overrides: Optional[Dict[int, float]] = None,
                 timelines: Optional[Dict[str, NodeTimeline]] = None
                 ) -> ScheduleResult:
        nodes = cluster.alive_nodes()
        if not nodes:
            raise RuntimeSchedulingError("no alive nodes")
        tasks = graph.topological_order()
        ranks = self._upward_ranks(graph, cluster, tasks)
        order = sorted(tasks, key=lambda t: -ranks[t.task_id])
        # Respect dependencies: stable-sort by rank but never before deps.
        order = self._dependency_respecting(order, graph)
        if timelines is None:
            timelines = {n.name: self.timeline_factory(n) for n in nodes}
        result = ScheduleResult()
        incremental = self.incremental and all(
            hasattr(timelines[n.name], "first_fit") for n in nodes)
        if incremental:
            self._place_incremental(order, graph, cluster, nodes,
                                    timelines, ready_overrides, result)
        else:
            self._place_scan(order, graph, cluster, nodes, timelines,
                             ready_overrides, result)
        return result

    def _place_scan(self, order: List[Task], graph: TaskGraph,
                    cluster: Cluster, nodes: List[Node],
                    timelines: Dict[str, NodeTimeline],
                    ready_overrides: Optional[Dict[int, float]],
                    result: ScheduleResult) -> None:
        """The exhaustive baseline: evaluate every node for every task."""
        for task in order:
            best: Optional[Placement] = None
            best_comm = 0.0
            for node in nodes:
                runtime = _task_runtime(task, node)
                if runtime == float("inf") or not _can_host(task, node):
                    continue
                ready = (ready_overrides or {}).get(task.task_id, 0.0)
                comm = 0.0
                for dep in task.deps:
                    dep_placement = result.placements[dep]
                    transfer = cluster.transfer_seconds(
                        dep_placement.node, node.name,
                        graph.tasks[dep].output_bytes,
                    )
                    comm += transfer
                    ready = max(ready, dep_placement.finish + transfer)
                start = timelines[node.name].earliest_start(
                    ready, runtime, task.resources.cores
                )
                candidate = Placement(task.task_id, node.name, start,
                                      start + runtime,
                                      task.resources.cores)
                if best is None or candidate.finish < best.finish:
                    best = candidate
                    best_comm = comm
            if best is None:
                raise _unplaceable(task)
            timelines[best.node].commit(best.start, best.duration,
                                        task.resources.cores)
            result.placements[task.task_id] = best
            result.transfers_seconds += best_comm
        return

    def _place_incremental(self, order: List[Task], graph: TaskGraph,
                           cluster: Cluster, nodes: List[Node],
                           timelines: Dict[str, NodeTimeline],
                           ready_overrides: Optional[Dict[int, float]],
                           result: ScheduleResult) -> None:
        """Pruned candidate search; placements identical to the scan.

        The exhaustive loop keeps the first node (in cluster order) with
        the strictly smallest finish — the lexicographic minimum of
        ``(finish, cluster index)``.  Candidates arrive here ordered by
        a lower bound on exactly that key, so evaluation stops at the
        first candidate whose bound cannot beat the current best.
        """
        classes = node_classes(nodes)
        representatives = {key: members[0]
                           for key, members in classes.items()}
        # One cost-model pass over (task, class) pairs yields both each
        # task's feasible classes and the smallest runtime any task
        # requests per (class, cores) — the duration floor baked into
        # the index's cached bounds.
        feasible_of: Dict[int, List[tuple]] = {}
        floors: Dict[tuple, float] = {}
        for task in order:
            feasible = []
            for key, representative in representatives.items():
                runtime = _task_runtime(task, representative)
                if runtime != float("inf") \
                        and _can_host(task, representative):
                    feasible.append((key, runtime))
                    floor_key = (key, task.resources.cores)
                    if runtime < floors.get(floor_key, float("inf")):
                        floors[floor_key] = runtime
            feasible_of[task.task_id] = feasible
        index = CandidateIndex(nodes, timelines, floors)
        placements = result.placements
        node_pos = {node.name: i for i, node in enumerate(nodes)}
        probe = nodes[1].name if len(nodes) > 1 else nodes[0].name
        for task in order:
            cores = task.resources.cores
            ready_floor = (ready_overrides or {}).get(task.task_id, 0.0)
            dep_info = [(placements[dep], graph.tasks[dep].output_bytes)
                        for dep in task.deps]
            # Ready time on a node hosting none of the deps: every
            # transfer is remote (the network charges by payload, not by
            # destination, so one probe per dep prices them all).  For
            # the handful of dep-hosting nodes some transfers vanish, so
            # those are evaluated exactly up front instead of bounded.
            ready_all = ready_floor
            comm_all = 0.0
            host_indices = set()
            for dep_placement, output_bytes in dep_info:
                dst = probe if dep_placement.node != probe \
                    else nodes[0].name
                transfer = cluster.transfer_seconds(
                    dep_placement.node, dst, output_bytes)
                comm_all += transfer
                arrival = dep_placement.finish + transfer
                if arrival > ready_all:
                    ready_all = arrival
                host_indices.add(node_pos[dep_placement.node])
            feasible = feasible_of[task.task_id]
            best_finish = best_idx = None
            best = None  # (node, start, runtime, comm)
            for idx in sorted(host_indices):
                node = nodes[idx]
                runtime = _task_runtime(task, node)
                if runtime == float("inf") or not _can_host(task, node):
                    continue
                ready = ready_floor
                comm = 0.0
                for dep_placement, output_bytes in dep_info:
                    transfer = cluster.transfer_seconds(
                        dep_placement.node, node.name, output_bytes,
                    )
                    comm += transfer
                    arrival = dep_placement.finish + transfer
                    if arrival > ready:
                        ready = arrival
                start = index.timelines[idx].earliest_start(
                    ready, runtime, cores)
                index.observe(idx, cores, ready, runtime, start)
                finish = start + runtime
                if best_finish is None or (finish, idx) \
                        < (best_finish, best_idx):
                    best_finish, best_idx = finish, idx
                    best = (node, start, runtime, comm)
            for bound, idx, runtime in index.candidates(feasible, cores,
                                                        ready_all):
                if best_finish is not None and (
                        bound > best_finish
                        or (bound == best_finish and idx >= best_idx)):
                    break
                if idx in host_indices:
                    continue  # exact value already folded into best
                start = index.timelines[idx].earliest_start(
                    ready_all, runtime, cores)
                index.observe(idx, cores, ready_all, runtime, start)
                finish = start + runtime
                if best_finish is None or (finish, idx) \
                        < (best_finish, best_idx):
                    best_finish, best_idx = finish, idx
                    best = (nodes[idx], start, runtime, comm_all)
            if best is None:
                raise _unplaceable(task)
            node, start, runtime, comm = best
            index.timelines[best_idx].commit(start, runtime, cores)
            # No invalidate here: a commit only moves true start times
            # later, so every cached bound stays a valid lower bound.
            # The committed node's bound is now optimistically low, so
            # it sorts early once more and observe() re-sharpens it on
            # its next exact evaluation.  invalidate() is for release(),
            # which CAN move starts earlier; releases never happen
            # inside one schedule call.
            placements[task.task_id] = Placement(
                task.task_id, node.name, start, start + runtime, cores)
            result.transfers_seconds += comm
        return

    def _upward_ranks(self, graph: TaskGraph, cluster: Cluster,
                      tasks: List[Task]) -> Dict[int, float]:
        nodes = cluster.alive_nodes()
        # Runtime depends on the node only through its class (cores,
        # GFLOP/s, FPGA presence), so average over class representatives
        # weighted by class size instead of touching every node per task
        # — O(tasks x classes), not O(tasks x nodes).
        classes = [(len(members), members[0])
                   for members in node_classes(nodes).values()]
        avg_runtime: Dict[int, float] = {}
        for t in tasks:
            total = 0.0
            count = 0
            for size, representative in classes:
                r = _task_runtime(t, representative)
                if r != float("inf"):
                    total += r * size
                    count += size
            avg_runtime[t.task_id] = (total or 1e-9) / max(1, count)
        successors: Dict[int, List[Task]] = {t.task_id: [] for t in tasks}
        for t in tasks:
            for dep in t.deps:
                successors[dep].append(t)
        ranks: Dict[int, float] = {}
        for t in reversed(tasks):  # reverse topological order
            succ_rank = 0.0
            for succ in successors[t.task_id]:
                comm = cluster.network.message_seconds(t.output_bytes)
                succ_rank = max(succ_rank, ranks[succ.task_id] + comm)
            ranks[t.task_id] = avg_runtime[t.task_id] + succ_rank
        return ranks

    @staticmethod
    def _dependency_respecting(order: List[Task],
                               graph: TaskGraph) -> List[Task]:
        """Kahn's algorithm preferring the given (rank-sorted) order.

        Upward ranks strictly decrease along dependency edges, so the
        sorted order is normally already dependency-respecting and comes
        back unchanged; the O(E + n log n) indegree walk replaces the
        seed's repeated-sweep emitter, whose list scans and removals
        were O(n^2) — minutes of pure bookkeeping at 100k tasks.
        """
        position = {task.task_id: i for i, task in enumerate(order)}
        indegree: Dict[int, int] = {}
        dependents: Dict[int, List[int]] = {}
        for task in order:
            indegree[task.task_id] = len(task.deps)
            for dep in task.deps:
                dependents.setdefault(dep, []).append(task.task_id)
        ready = [position[tid] for tid, degree in indegree.items()
                 if degree == 0]
        heapq.heapify(ready)
        result: List[Task] = []
        while ready:
            task = order[heapq.heappop(ready)]
            result.append(task)
            for successor in dependents.get(task.task_id, ()):
                indegree[successor] -= 1
                if indegree[successor] == 0:
                    heapq.heappush(ready, position[successor])
        if len(result) != len(order):
            raise RuntimeSchedulingError("cycle in task graph")
        return result


class RoundRobinScheduler:
    """The naive baseline: assign tasks to nodes in rotation."""

    name = "round-robin"
    online = False

    def __init__(self, timeline_factory: Callable[[Node], NodeTimeline]
                 = NodeTimeline):
        self.timeline_factory = timeline_factory

    def schedule(self, graph: TaskGraph, cluster: Cluster,
                 ready_overrides: Optional[Dict[int, float]] = None,
                 timelines: Optional[Dict[str, NodeTimeline]] = None
                 ) -> ScheduleResult:
        nodes = cluster.alive_nodes()
        if not nodes:
            raise RuntimeSchedulingError("no alive nodes")
        if timelines is None:
            timelines = {n.name: self.timeline_factory(n) for n in nodes}
        result = ScheduleResult()
        index = 0
        for task in graph.topological_order():
            attempts = 0
            while True:
                node = nodes[index % len(nodes)]
                index += 1
                attempts += 1
                runtime = _task_runtime(task, node)
                if runtime != float("inf") and _can_host(task, node):
                    break
                if attempts > len(nodes):
                    raise _unplaceable(task)
            ready = (ready_overrides or {}).get(task.task_id, 0.0)
            for dep in task.deps:
                dep_placement = result.placements[dep]
                transfer = cluster.transfer_seconds(
                    dep_placement.node, node.name,
                    graph.tasks[dep].output_bytes,
                )
                ready = max(ready, dep_placement.finish + transfer)
                result.transfers_seconds += transfer
            start = timelines[node.name].earliest_start(
                ready, runtime, task.resources.cores
            )
            timelines[node.name].commit(start, runtime,
                                        task.resources.cores)
            result.placements[task.task_id] = Placement(
                task.task_id, node.name, start, start + runtime,
                task.resources.cores
            )
        return result


def build_replan_subgraph(graph: TaskGraph, subset: set,
                          ready_floor: float,
                          finish_of: Callable[[int], float]):
    """A planning subgraph for re-placing ``subset`` of ``graph``.

    Shared by the offline repair helper and the engine's dispatcher.
    Dependencies inside the subset become subgraph edges (so the policy
    models their data transfers per candidate node); dependencies
    outside it are folded into per-task ready times via ``finish_of``,
    floored at ``ready_floor``.  Cross-boundary edges therefore bound
    the start by the producer's *finish* only — the eventual placement
    node isn't known while planning, so their transfer time is not
    charged (the seed repair helper made the same approximation).

    Returns ``(subgraph, id_map, ready_overrides)`` with ``id_map``
    mapping original task ids to subgraph ids.
    """
    subgraph = TaskGraph()
    id_map: Dict[int, int] = {}
    ready: Dict[int, float] = {}
    for task in graph.topological_order():
        if task.task_id not in subset:
            continue
        future = subgraph.add(task.fn, (), {}, task.resources,
                              task.output_bytes, task.tuning, task.name)
        subgraph.tasks[future.task_id].deps = [
            id_map[d] for d in task.deps if d in subset
        ]
        id_map[task.task_id] = future.task_id
        ready_time = ready_floor
        for dep in task.deps:
            if dep not in subset:
                ready_time = max(ready_time, finish_of(dep))
        ready[future.task_id] = ready_time
    return subgraph, id_map, ready


def reschedule_after_failure(graph: TaskGraph, cluster: Cluster,
                             schedule: ScheduleResult, failed_node: str,
                             failure_time: float,
                             scheduler: Optional[HEFTScheduler] = None
                             ) -> ScheduleResult:
    """Monitoring reaction (§VI-A item 4): re-place work lost to a failure.

    Tasks that *finished* on the failed node before the failure keep their
    results; unfinished or future tasks on that node — and everything
    transitively depending on lost outputs — are rescheduled on the
    surviving nodes, no earlier than the failure time.

    This is the offline repair path for callers holding a finished
    schedule.  The :class:`~repro.runtime.engine.RuntimeEngine` performs
    the same repair automatically, mid-run, when its monitor detects a
    failure.
    """
    scheduler = scheduler or HEFTScheduler()
    cluster.fail_node(failed_node)
    try:
        lost: set = set()
        for task_id, placement in schedule.placements.items():
            if placement.node == failed_node \
                    and placement.finish > failure_time:
                lost.add(task_id)
        # Anything depending on a lost task must rerun too.
        changed = True
        while changed:
            changed = False
            for task in graph.tasks.values():
                if task.task_id in lost:
                    continue
                if any(dep in lost for dep in task.deps):
                    lost.add(task.task_id)
                    changed = True
        survivors = {
            tid: p for tid, p in schedule.placements.items()
            if tid not in lost
        }
        subgraph, id_map, ready = build_replan_subgraph(
            graph, lost, failure_time,
            lambda dep: survivors[dep].finish,
        )
        repaired = scheduler.schedule(subgraph, cluster, ready)
        merged = ScheduleResult(
            placements=dict(survivors),
            transfers_seconds=schedule.transfers_seconds
            + repaired.transfers_seconds,
            rescheduled_tasks=len(lost),
        )
        reverse = {v: k for k, v in id_map.items()}
        for new_id, placement in repaired.placements.items():
            original = reverse[new_id]
            merged.placements[original] = Placement(
                original, placement.node, placement.start, placement.finish,
                placement.cores
            )
        return merged
    finally:
        cluster.restore_node(failed_node)
