"""The EVEREST resource manager: task scheduling on the cluster (§VI-A).

Responsibilities from the paper: "(1) schedules and assigns the workflow
tasks to the computational nodes while respecting their dependencies and
resource requests; (2) load-balances the computation when necessary; (3)
performs data transfers when an input of a task is computed on a different
node; (4) monitors the cluster and reschedules tasks if needed."

Two *offline* scheduling policies are provided: :class:`HEFTScheduler`
(upward-rank list scheduling with earliest-finish-time placement — the
production policy) and :class:`RoundRobinScheduler` (the baseline the
scheduling benchmark compares against).  Both implement the
:class:`~repro.runtime.engine.SchedulingPolicy` protocol, so they plug
directly into the event-driven :class:`~repro.runtime.engine.RuntimeEngine`,
which executes duty (4) — monitoring and mid-run rescheduling — in its
event loop.  :func:`reschedule_after_failure` remains as the offline
repair helper for callers that hold a finished schedule.

Placement queries go through the event-sweep
:class:`~repro.runtime.timeline.NodeTimeline` index; pass
``timelines=`` to schedule *into* live node state (the engine does this
so streamed jobs share capacity correctly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import RuntimeSchedulingError
from repro.runtime.cluster import Cluster, Node
from repro.runtime.taskgraph import Task, TaskGraph
from repro.runtime.timeline import NodeTimeline


@dataclass
class Placement:
    """Where and when one task runs."""

    task_id: int
    node: str
    start: float
    finish: float
    cores: int = 1

    @property
    def duration(self) -> float:
        return self.finish - self.start

    @property
    def core_seconds(self) -> float:
        return self.duration * self.cores


@dataclass
class ScheduleResult:
    """A complete schedule of a task graph on a cluster."""

    placements: Dict[int, Placement] = field(default_factory=dict)
    transfers_seconds: float = 0.0
    rescheduled_tasks: int = 0

    @property
    def makespan(self) -> float:
        return max((p.finish for p in self.placements.values()), default=0.0)

    def node_busy_seconds(self) -> Dict[str, float]:
        busy: Dict[str, float] = {}
        for placement in self.placements.values():
            busy[placement.node] = busy.get(placement.node, 0.0) \
                + placement.duration
        return busy

    def load_balance(self) -> float:
        """Max/mean busy-time ratio (1.0 = perfectly balanced)."""
        busy = list(self.node_busy_seconds().values())
        if not busy:
            return 1.0
        mean = sum(busy) / len(busy)
        return max(busy) / mean if mean else 1.0


def _task_runtime(task: Task, node: Node) -> float:
    """Execution time of a task on a node, honouring resource requests."""
    if task.resources.fpga:
        if not node.has_fpga:
            return float("inf")
        # Overheads of the virtualized access path (Fig. 6).
        from repro.runtime.virtualization import SRIOV_OVERHEAD

        return task.resources.fpga_seconds * SRIOV_OVERHEAD
    return task.runtime_on_cpu(node)


def _can_host(task: Task, node: Node) -> bool:
    """A node can host a task only if the core request physically fits.

    The seed scheduler silently overcommitted a node when a task asked
    for more cores than the node has; such nodes are now skipped, and a
    task no node can host raises :class:`RuntimeSchedulingError`.
    """
    return task.resources.cores <= node.cores


def _unplaceable(task: Task) -> RuntimeSchedulingError:
    need = "an FPGA" if task.resources.fpga \
        else f"{task.resources.cores} cores"
    return RuntimeSchedulingError(
        f"task {task.name!r} requires {need} but no alive node "
        "can provide it"
    )


# Kept as the seed-compatible internal name; the engine and benchmarks
# import the public class from repro.runtime.timeline.
_NodeTimeline = NodeTimeline


class HEFTScheduler:
    """Heterogeneous-Earliest-Finish-Time list scheduling."""

    name = "heft"
    online = False

    def __init__(self, timeline_factory: Callable[[Node], NodeTimeline]
                 = NodeTimeline):
        self.timeline_factory = timeline_factory

    def schedule(self, graph: TaskGraph, cluster: Cluster,
                 ready_overrides: Optional[Dict[int, float]] = None,
                 timelines: Optional[Dict[str, NodeTimeline]] = None
                 ) -> ScheduleResult:
        nodes = cluster.alive_nodes()
        if not nodes:
            raise RuntimeSchedulingError("no alive nodes")
        tasks = graph.topological_order()
        ranks = self._upward_ranks(graph, cluster, tasks)
        order = sorted(tasks, key=lambda t: -ranks[t.task_id])
        # Respect dependencies: stable-sort by rank but never before deps.
        order = self._dependency_respecting(order, graph)
        if timelines is None:
            timelines = {n.name: self.timeline_factory(n) for n in nodes}
        result = ScheduleResult()
        for task in order:
            best: Optional[Placement] = None
            best_comm = 0.0
            for node in nodes:
                runtime = _task_runtime(task, node)
                if runtime == float("inf") or not _can_host(task, node):
                    continue
                ready = (ready_overrides or {}).get(task.task_id, 0.0)
                comm = 0.0
                for dep in task.deps:
                    dep_placement = result.placements[dep]
                    transfer = cluster.transfer_seconds(
                        dep_placement.node, node.name,
                        graph.tasks[dep].output_bytes,
                    )
                    comm += transfer
                    ready = max(ready, dep_placement.finish + transfer)
                start = timelines[node.name].earliest_start(
                    ready, runtime, task.resources.cores
                )
                candidate = Placement(task.task_id, node.name, start,
                                      start + runtime,
                                      task.resources.cores)
                if best is None or candidate.finish < best.finish:
                    best = candidate
                    best_comm = comm
            if best is None:
                raise _unplaceable(task)
            timelines[best.node].commit(best.start, best.duration,
                                        task.resources.cores)
            result.placements[task.task_id] = best
            result.transfers_seconds += best_comm
        return result

    def _upward_ranks(self, graph: TaskGraph, cluster: Cluster,
                      tasks: List[Task]) -> Dict[int, float]:
        nodes = cluster.alive_nodes()
        avg_runtime = {
            t.task_id: (sum(r for r in (_task_runtime(t, n) for n in nodes)
                            if r != float("inf")) or 1e-9)
            / max(1, sum(1 for n in nodes
                         if _task_runtime(t, n) != float("inf")))
            for t in tasks
        }
        successors: Dict[int, List[Task]] = {t.task_id: [] for t in tasks}
        for t in tasks:
            for dep in t.deps:
                successors[dep].append(t)
        ranks: Dict[int, float] = {}
        for t in reversed(tasks):  # reverse topological order
            succ_rank = 0.0
            for succ in successors[t.task_id]:
                comm = cluster.network.message_seconds(t.output_bytes)
                succ_rank = max(succ_rank, ranks[succ.task_id] + comm)
            ranks[t.task_id] = avg_runtime[t.task_id] + succ_rank
        return ranks

    @staticmethod
    def _dependency_respecting(order: List[Task],
                               graph: TaskGraph) -> List[Task]:
        emitted: set = set()
        result: List[Task] = []
        pending = list(order)
        while pending:
            progressed = False
            for task in list(pending):
                if all(dep in emitted for dep in task.deps):
                    result.append(task)
                    emitted.add(task.task_id)
                    pending.remove(task)
                    progressed = True
            if not progressed:
                raise RuntimeSchedulingError("cycle in task graph")
        return result


class RoundRobinScheduler:
    """The naive baseline: assign tasks to nodes in rotation."""

    name = "round-robin"
    online = False

    def __init__(self, timeline_factory: Callable[[Node], NodeTimeline]
                 = NodeTimeline):
        self.timeline_factory = timeline_factory

    def schedule(self, graph: TaskGraph, cluster: Cluster,
                 ready_overrides: Optional[Dict[int, float]] = None,
                 timelines: Optional[Dict[str, NodeTimeline]] = None
                 ) -> ScheduleResult:
        nodes = cluster.alive_nodes()
        if not nodes:
            raise RuntimeSchedulingError("no alive nodes")
        if timelines is None:
            timelines = {n.name: self.timeline_factory(n) for n in nodes}
        result = ScheduleResult()
        index = 0
        for task in graph.topological_order():
            attempts = 0
            while True:
                node = nodes[index % len(nodes)]
                index += 1
                attempts += 1
                runtime = _task_runtime(task, node)
                if runtime != float("inf") and _can_host(task, node):
                    break
                if attempts > len(nodes):
                    raise _unplaceable(task)
            ready = (ready_overrides or {}).get(task.task_id, 0.0)
            for dep in task.deps:
                dep_placement = result.placements[dep]
                transfer = cluster.transfer_seconds(
                    dep_placement.node, node.name,
                    graph.tasks[dep].output_bytes,
                )
                ready = max(ready, dep_placement.finish + transfer)
                result.transfers_seconds += transfer
            start = timelines[node.name].earliest_start(
                ready, runtime, task.resources.cores
            )
            timelines[node.name].commit(start, runtime,
                                        task.resources.cores)
            result.placements[task.task_id] = Placement(
                task.task_id, node.name, start, start + runtime,
                task.resources.cores
            )
        return result


def build_replan_subgraph(graph: TaskGraph, subset: set,
                          ready_floor: float,
                          finish_of: Callable[[int], float]):
    """A planning subgraph for re-placing ``subset`` of ``graph``.

    Shared by the offline repair helper and the engine's dispatcher.
    Dependencies inside the subset become subgraph edges (so the policy
    models their data transfers per candidate node); dependencies
    outside it are folded into per-task ready times via ``finish_of``,
    floored at ``ready_floor``.  Cross-boundary edges therefore bound
    the start by the producer's *finish* only — the eventual placement
    node isn't known while planning, so their transfer time is not
    charged (the seed repair helper made the same approximation).

    Returns ``(subgraph, id_map, ready_overrides)`` with ``id_map``
    mapping original task ids to subgraph ids.
    """
    subgraph = TaskGraph()
    id_map: Dict[int, int] = {}
    ready: Dict[int, float] = {}
    for task in graph.topological_order():
        if task.task_id not in subset:
            continue
        future = subgraph.add(task.fn, (), {}, task.resources,
                              task.output_bytes, task.tuning, task.name)
        subgraph.tasks[future.task_id].deps = [
            id_map[d] for d in task.deps if d in subset
        ]
        id_map[task.task_id] = future.task_id
        ready_time = ready_floor
        for dep in task.deps:
            if dep not in subset:
                ready_time = max(ready_time, finish_of(dep))
        ready[future.task_id] = ready_time
    return subgraph, id_map, ready


def reschedule_after_failure(graph: TaskGraph, cluster: Cluster,
                             schedule: ScheduleResult, failed_node: str,
                             failure_time: float,
                             scheduler: Optional[HEFTScheduler] = None
                             ) -> ScheduleResult:
    """Monitoring reaction (§VI-A item 4): re-place work lost to a failure.

    Tasks that *finished* on the failed node before the failure keep their
    results; unfinished or future tasks on that node — and everything
    transitively depending on lost outputs — are rescheduled on the
    surviving nodes, no earlier than the failure time.

    This is the offline repair path for callers holding a finished
    schedule.  The :class:`~repro.runtime.engine.RuntimeEngine` performs
    the same repair automatically, mid-run, when its monitor detects a
    failure.
    """
    scheduler = scheduler or HEFTScheduler()
    cluster.fail_node(failed_node)
    try:
        lost: set = set()
        for task_id, placement in schedule.placements.items():
            if placement.node == failed_node \
                    and placement.finish > failure_time:
                lost.add(task_id)
        # Anything depending on a lost task must rerun too.
        changed = True
        while changed:
            changed = False
            for task in graph.tasks.values():
                if task.task_id in lost:
                    continue
                if any(dep in lost for dep in task.deps):
                    lost.add(task.task_id)
                    changed = True
        survivors = {
            tid: p for tid, p in schedule.placements.items()
            if tid not in lost
        }
        subgraph, id_map, ready = build_replan_subgraph(
            graph, lost, failure_time,
            lambda dep: survivors[dep].finish,
        )
        repaired = scheduler.schedule(subgraph, cluster, ready)
        merged = ScheduleResult(
            placements=dict(survivors),
            transfers_seconds=schedule.transfers_seconds
            + repaired.transfers_seconds,
            rescheduled_tasks=len(lost),
        )
        reverse = {v: k for k, v in id_map.items()}
        for new_id, placement in repaired.placements.items():
            original = reverse[new_id]
            merged.placements[original] = Placement(
                original, placement.node, placement.start, placement.finish,
                placement.cores
            )
        return merged
    finally:
        cluster.restore_node(failed_node)
