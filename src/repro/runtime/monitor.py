"""Cluster monitoring: utilization reports and failure detection (§VI-A).

The monitor inspects schedules and libvirt node states, producing the
signals the resource manager acts on: per-node utilization (load-balance
trigger) and node liveness (rescheduling trigger).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.runtime.cluster import Cluster
from repro.runtime.scheduler import ScheduleResult


@dataclass
class UtilizationReport:
    """Per-node busy time relative to the schedule makespan."""

    makespan: float
    busy: Dict[str, float]
    utilization: Dict[str, float]
    imbalance: float  # max/mean busy ratio

    def overloaded_nodes(self, threshold: float = 0.9) -> List[str]:
        return [n for n, u in self.utilization.items() if u > threshold]

    def idle_nodes(self, threshold: float = 0.1) -> List[str]:
        return [n for n, u in self.utilization.items() if u < threshold]


class ClusterMonitor:
    """Watches a cluster and its schedules."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.heartbeat: Dict[str, float] = {
            name: 0.0 for name in cluster.nodes
        }

    def record_heartbeat(self, node: str, time: float) -> None:
        self.heartbeat[node] = time

    def dead_nodes(self, now: float, timeout: float = 30.0) -> List[str]:
        """Nodes whose heartbeat is stale (or marked not alive)."""
        dead = [name for name, node in self.cluster.nodes.items()
                if not node.alive]
        dead.extend(
            name for name, last in self.heartbeat.items()
            if now - last > timeout and name not in dead
            and self.cluster.nodes[name].alive
        )
        return dead

    def utilization(self, schedule: ScheduleResult) -> UtilizationReport:
        makespan = schedule.makespan or 1e-12
        busy: dict = {}
        for placement in schedule.placements.values():
            busy[placement.node] = busy.get(placement.node, 0.0) \
                + placement.core_seconds
        for name in self.cluster.nodes:
            busy.setdefault(name, 0.0)
        # Core-seconds consumed over core-seconds available.
        utilization = {
            name: b / (makespan * self.cluster.nodes[name].cores)
            for name, b in busy.items()
        }
        values = list(busy.values())
        mean = sum(values) / len(values) if values else 0.0
        imbalance = (max(values) / mean) if mean else 1.0
        return UtilizationReport(makespan, busy, utilization, imbalance)

    def vf_pressure(self) -> Dict[str, int]:
        """Free VFs per node (drives dynamic plugging decisions)."""
        return {
            name: node.libvirt.getInfo().free_vfs
            for name, node in self.cluster.nodes.items()
        }
