"""Synthetic workload generators shared by the CLI, tests and benchmarks.

The shape mirrors the EVEREST use-case workflows (§VII): wide layers of
independent kernels with a sliding dependency window between layers —
wide enough to load every node, deep enough that placement order matters.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.runtime.taskgraph import Future, ResourceRequest


def synthetic_workflow(target, n_tasks: int = 60, seed: int = 0, *,
                       width: Optional[int] = None,
                       fpga_fraction: float = 0.0,
                       label: str = "t") -> List[Future]:
    """Submit a layered random workflow to anything with ``.submit``.

    ``target`` is a :class:`~repro.runtime.engine.RuntimeEngine` or an
    :class:`~repro.runtime.taskgraph.EverestClient`.  Returns the futures
    of the final layer (gathering them implies the whole workflow ran).
    """
    rng = random.Random(seed)
    # Wide enough that one layer oversubscribes a 32-core node, so the
    # policy has real load-balancing decisions to make.
    width = width or max(12, n_tasks // 4)
    futures: List[Future] = []
    previous: List[Future] = []
    submitted = 0
    layer_index = 0
    while submitted < n_tasks:
        layer: List[Future] = []
        for i in range(min(width, n_tasks - submitted)):
            deps = []
            if previous:
                deps = [previous[i % len(previous)],
                        previous[(i + 1) % len(previous)]]
            fpga = rng.random() < fpga_fraction
            resources = ResourceRequest(
                cores=rng.randint(1, 7),
                fpga=fpga,
                cpu_flops=rng.uniform(1e9, 5e10),
                fpga_seconds=rng.uniform(1e-4, 2e-3) if fpga else 0.0,
            )
            layer.append(target.submit(
                lambda *a, i=submitted: i, *deps,
                resources=resources,
                name=f"{label}{layer_index}_{i}",
            ))
            submitted += 1
        futures = layer
        previous = layer
        layer_index += 1
    return futures
