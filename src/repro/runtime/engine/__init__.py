"""The event-driven EVEREST runtime engine (§VI-A).

One discrete-event loop unifies the resource manager's four duties —
dependency-aware scheduling, load balancing, data transfers, and
monitoring with mid-run rescheduling — behind pluggable policies:

* :class:`RuntimeEngine` — the engine: simulated clock, real execution
  on a thread pool, streaming submission, in-loop failure recovery;
* :class:`SchedulingPolicy` — the policy protocol; ``heft`` and
  ``round-robin`` (offline, from :mod:`repro.runtime.scheduler`) and
  :class:`MinLoadPolicy` (``min-load``, online) implement it;
* :data:`POLICIES` / :func:`resolve_policy` — the policy registry used
  by the ``basecamp runtime --policy`` CLI;
* :func:`synthetic_workflow` — shared workload generator.
"""

from repro.runtime.engine.core import RuntimeEngine
from repro.runtime.engine.events import Event, EventQueue, SimClock
from repro.runtime.engine.policies import (
    POLICIES,
    MinLoadPolicy,
    SchedulingPolicy,
    resolve_policy,
)
from repro.runtime.engine.workloads import synthetic_workflow

__all__ = [
    "RuntimeEngine",
    "Event",
    "EventQueue",
    "SimClock",
    "POLICIES",
    "MinLoadPolicy",
    "SchedulingPolicy",
    "resolve_policy",
    "synthetic_workflow",
]
