"""Pluggable scheduling policies (§VI-A duty 1 and 2).

Every policy implements the :class:`SchedulingPolicy` protocol:

* ``name`` — the registry key (``--policy`` on the CLI);
* ``online`` — ``False`` for plan-ahead list schedulers (the engine asks
  them to plan the whole pending subgraph whenever work arrives),
  ``True`` for dispatch-time policies (the engine asks them to place one
  task the moment its dependencies have finished);
* ``schedule(graph, cluster, ready_overrides=None, timelines=None)`` —
  the batch entry point every policy supports, so any policy can also be
  used standalone against a frozen task graph.

Online policies additionally expose
``place(task, graph, cluster, timelines, placements, now)`` returning a
``(Placement, transfer_seconds)`` pair computed from *live* node state.

:class:`~repro.runtime.scheduler.HEFTScheduler` and
:class:`~repro.runtime.scheduler.RoundRobinScheduler` satisfy the
protocol as offline policies; :class:`MinLoadPolicy` here is the online
load balancer: it sends each task to the feasible node with the least
outstanding committed work, breaking ties by earliest finish.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Optional, Protocol, Tuple, Union, \
    runtime_checkable

from repro.errors import RuntimeSchedulingError
from repro.runtime.cluster import Cluster, Node
from repro.runtime.scheduler import (
    HEFTScheduler,
    Placement,
    RoundRobinScheduler,
    ScheduleResult,
    _can_host,
    _task_runtime,
    _unplaceable,
)
from repro.runtime.taskgraph import Task, TaskGraph
from repro.runtime.timeline import NodeTimeline


@runtime_checkable
class SchedulingPolicy(Protocol):
    """What the engine needs from a scheduling policy."""

    name: str
    online: bool

    def schedule(self, graph: TaskGraph, cluster: Cluster,
                 ready_overrides: Optional[Dict[int, float]] = None,
                 timelines: Optional[Dict[str, NodeTimeline]] = None
                 ) -> ScheduleResult:
        ...


class MinLoadPolicy:
    """Online least-loaded placement, decided at dispatch time.

    The paper's resource manager "load-balances the computation when
    necessary"; this policy does it continuously: each task goes to the
    feasible node with the fewest committed core-seconds still
    outstanding, using the live timeline state — including work from
    *other* jobs streamed onto the same cluster.
    """

    name = "min-load"
    online = True

    def __init__(self, timeline_factory: Callable[[Node], NodeTimeline]
                 = NodeTimeline):
        self.timeline_factory = timeline_factory

    def place(self, task: Task, graph: TaskGraph, cluster: Cluster,
              timelines: Dict[str, NodeTimeline],
              placements: Dict[int, Placement],
              now: float) -> Tuple[Placement, float]:
        best: Optional[Placement] = None
        best_key = None
        best_comm = 0.0
        for node in cluster.alive_nodes():
            runtime = _task_runtime(task, node)
            if runtime == float("inf") or not _can_host(task, node):
                continue
            ready = now
            comm = 0.0
            for dep in task.deps:
                dep_placement = placements[dep]
                transfer = cluster.transfer_seconds(
                    dep_placement.node, node.name,
                    graph.tasks[dep].output_bytes,
                )
                comm += transfer
                ready = max(ready, dep_placement.finish + transfer)
            timeline = timelines[node.name]
            start = timeline.earliest_start(ready, runtime,
                                            task.resources.cores)
            key = (timeline.load_after(now), start + runtime)
            if best is None or key < best_key:
                best = Placement(task.task_id, node.name, start,
                                 start + runtime, task.resources.cores)
                best_key = key
                best_comm = comm
        if best is None:
            raise _unplaceable(task)
        return best, best_comm

    def schedule(self, graph: TaskGraph, cluster: Cluster,
                 ready_overrides: Optional[Dict[int, float]] = None,
                 timelines: Optional[Dict[str, NodeTimeline]] = None
                 ) -> ScheduleResult:
        """Batch fallback: replay the online rule in topological order."""
        nodes = cluster.alive_nodes()
        if not nodes:
            raise RuntimeSchedulingError("no alive nodes")
        if timelines is None:
            timelines = {n.name: self.timeline_factory(n) for n in nodes}
        result = ScheduleResult()
        for task in graph.topological_order():
            now = (ready_overrides or {}).get(task.task_id, 0.0)
            placement, comm = self.place(task, graph, cluster, timelines,
                                         result.placements, now)
            timelines[placement.node].commit(
                placement.start, placement.duration, placement.cores
            )
            result.placements[task.task_id] = placement
            result.transfers_seconds += comm
        return result


POLICIES: Dict[str, Callable[[], SchedulingPolicy]] = {
    HEFTScheduler.name: HEFTScheduler,
    RoundRobinScheduler.name: RoundRobinScheduler,
    MinLoadPolicy.name: MinLoadPolicy,
}


def resolve_policy(policy: Union[None, str, SchedulingPolicy]
                   ) -> SchedulingPolicy:
    """Accept a policy instance, a registry name, or ``None`` (HEFT)."""
    if policy is None:
        return HEFTScheduler()
    if isinstance(policy, str):
        if policy not in POLICIES:
            raise RuntimeSchedulingError(
                f"unknown scheduling policy {policy!r}; "
                f"available: {', '.join(sorted(POLICIES))}"
            )
        return POLICIES[policy]()
    if isinstance(policy, type):
        # A policy *class* (e.g. straight out of the POLICIES registry,
        # or ``RuntimeEngine(cluster, policy=HEFTScheduler)``): it would
        # pass the duck-type checks below — ``schedule`` is a function
        # attribute — and then crash on the first unbound call.
        return resolve_policy(policy())
    if not hasattr(policy, "schedule"):
        raise RuntimeSchedulingError(
            f"{type(policy).__name__} does not implement SchedulingPolicy"
        )
    # Fail fast on schedulers written against the seed interface: the
    # engine plans into shared timelines, and a schedule() that cannot
    # accept them would either crash mid-run or silently overcommit
    # nodes by planning against fresh (empty) capacity.
    try:
        parameters = inspect.signature(policy.schedule).parameters
    except (TypeError, ValueError):  # builtins / C callables: trust them
        parameters = None
    if parameters is not None and "timelines" not in parameters \
            and not any(p.kind is inspect.Parameter.VAR_KEYWORD
                        for p in parameters.values()):
        raise RuntimeSchedulingError(
            f"{type(policy).__name__}.schedule() must accept a "
            "timelines= keyword (plan into the given live node "
            "timelines) to drive the runtime engine"
        )
    return policy
