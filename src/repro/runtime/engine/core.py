"""The event-driven runtime engine (§VI-A, all four duties in one loop).

The paper's resource manager is an *online* system: it "schedules and
assigns the workflow tasks ... load-balances the computation ... performs
data transfers ... monitors the cluster and reschedules tasks if needed".
:class:`RuntimeEngine` implements it as a discrete-event simulation that
executes real work:

* **scheduling** is delegated to a pluggable
  :class:`~repro.runtime.engine.policies.SchedulingPolicy` — offline
  policies (HEFT, round-robin) plan the whole pending subgraph whenever
  work arrives; online policies (min-load) place each task the moment
  its dependencies finish, from live node state;
* **execution** runs each task's Python function on a real
  :class:`~concurrent.futures.ThreadPoolExecutor` as its simulated start
  time fires, so simulated placement and functional results stay in one
  pass (the seed split these into ``schedule()`` +
  ``execute_functionally()``);
* **streaming submission**: tasks may be submitted while the engine runs
  — schedule them onto the event loop with
  :meth:`RuntimeEngine.submit_at` / :meth:`RuntimeEngine.call_at` (the
  engine itself is not thread-safe, so do not call ``submit`` from
  worker threads) — and many jobs interleave on one cluster, sharing
  its capacity through the common timeline index;
* **monitoring** is in-loop: node heartbeats are recorded as the event
  clock advances, and when the :class:`~repro.runtime.monitor.ClusterMonitor`
  reports a dead node the engine automatically re-places every placement
  lost to the failure — no offline
  :func:`~repro.runtime.scheduler.reschedule_after_failure` call needed.
"""

from __future__ import annotations

from concurrent.futures import Future as PoolFuture
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, Optional, Set

from repro.errors import RuntimeSchedulingError
from repro.runtime.cluster import Cluster
from repro.runtime.engine import events as ev
from repro.runtime.engine.events import EventQueue, SimClock
from repro.runtime.engine.policies import SchedulingPolicy, resolve_policy
from repro.runtime.monitor import ClusterMonitor
from repro.runtime.scheduler import (
    Placement,
    ScheduleResult,
    build_replan_subgraph,
)
from repro.runtime.taskgraph import Future, ResourceRequest, TaskGraph
from repro.runtime.timeline import NodeTimeline
from repro.telemetry.trace import get_tracer

PENDING = "pending"      # submitted, not yet placed
PLACED = "placed"        # placement committed, start event queued
RUNNING = "running"      # real function in flight on the pool
DONE = "done"            # result stored in graph.results


class RuntimeEngine:
    """Discrete-event unification of scheduling, execution, monitoring."""

    def __init__(self, cluster: Cluster,
                 policy: Optional[SchedulingPolicy] = None, *,
                 monitor: Optional[ClusterMonitor] = None,
                 heartbeat_interval: Optional[float] = None,
                 max_workers: int = 8):
        self.cluster = cluster
        self.policy = resolve_policy(policy)
        self.monitor = monitor or ClusterMonitor(cluster)
        self.heartbeat_interval = heartbeat_interval
        self.max_workers = max_workers
        self.graph = TaskGraph()
        self.clock = SimClock()
        self.timelines: Dict[str, NodeTimeline] = {
            name: NodeTimeline(node)
            for name, node in cluster.nodes.items()
        }
        self.placements: Dict[int, Placement] = {}
        self.transfers_seconds = 0.0
        self.rescheduled_tasks = 0
        self._events = EventQueue()
        self._state: Dict[int, str] = {}
        # Live PENDING set (state == PENDING ⟺ membership), so dispatch
        # and the stuck-check never rescan the full task table — at 100k
        # streamed tasks that rescan is itself O(tasks²).
        self._pending: Set[int] = set()
        self._epoch: Dict[int, int] = {}
        self._real: Dict[int, PoolFuture] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._unfinished = 0
        self._handled_failures: Set[str] = set()
        self._running = False
        # Ready tracking for online dispatch: how many unfinished
        # dependencies block each task, who to unblock on finish, and
        # the queue of unblocked PENDING tasks — so dispatch never
        # rescans the whole graph.
        self._blockers: Dict[int, int] = {}
        self._dependents: Dict[int, list] = {}
        self._ready: list = []

    # ------------------------------------------------------------------
    # Submission (streaming: legal before and during run())
    # ------------------------------------------------------------------

    def submit(self, fn: Callable, *args,
               resources: Optional[ResourceRequest] = None,
               output_bytes: int = 8192,
               tuning: Optional[dict] = None,
               name: Optional[str] = None, **kwargs) -> Future:
        """Add one task; ``Future`` arguments become dependencies.

        May be called while the engine is running — from a
        :meth:`call_at` callback on the event loop, not from a worker
        thread (the engine is not thread-safe) — and the new task is
        dispatched at the current simulated time, sharing node capacity
        with everything already in flight.
        """
        resources = resources or getattr(fn, "_everest_resources", None)
        output_bytes = getattr(fn, "_everest_output_bytes", output_bytes)
        tuning = tuning or getattr(fn, "_everest_tuning", None)
        future = self.graph.add(fn, args, kwargs, resources, output_bytes,
                                tuning, name)
        tid = future.task_id
        self._state[tid] = PENDING
        self._pending.add(tid)
        self._epoch[tid] = 0
        self._unfinished += 1
        blockers = 0
        for dep in self.graph.tasks[tid].deps:
            if self._state.get(dep) != DONE:
                blockers += 1
                self._dependents.setdefault(dep, []).append(tid)
        self._blockers[tid] = blockers
        if blockers == 0:
            self._ready.append(tid)
        if self._running:
            self._events.push(self.clock.now, ev.DISPATCH)
        return future

    def submit_at(self, time: float, fn: Callable, *args, **kwargs) -> None:
        """Schedule ``submit(fn, *args, **kwargs)`` at a simulated time."""
        self.call_at(time, lambda: self.submit(fn, *args, **kwargs))

    def call_at(self, time: float, callback: Callable[[], Any]) -> None:
        """Run an arbitrary callback at a simulated time.

        The callback executes on the event loop with the clock at
        ``time``; it may submit tasks, fail nodes, or inspect state.
        """
        self._events.push(time, ev.CALLBACK, callback)

    def fail_node_at(self, time: float, name: str) -> None:
        """Inject a node failure at a simulated time."""
        self._events.push(time, ev.NODE_FAILURE, name)

    def has_pending(self) -> bool:
        return self._unfinished > 0

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> ScheduleResult:
        """Process events until none remain (or ``until`` is reached).

        Returns the cumulative :class:`ScheduleResult`; functional
        results land in ``graph.results`` as finish events fire.  May be
        called repeatedly — later runs re-dispatch whatever is pending,
        continuing from the current simulated time.
        """
        self._running = True
        try:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                self._executor = pool
                self._beat(self.clock.now)
                self._detect_failures(self.clock.now)
                self._dispatch(self.clock.now)
                if self.heartbeat_interval:
                    self._events.push(
                        self.clock.now + self.heartbeat_interval,
                        ev.HEARTBEAT,
                    )
                while self._events:
                    if until is not None \
                            and self._events.peek_time() > until:
                        break
                    event = self._events.pop()
                    self.clock.advance(event.time)
                    self._handle(event)
        finally:
            self._executor = None
            self._running = False
        if until is None:
            stuck = [self.graph.tasks[tid].name
                     for tid in sorted(self._pending)]
            if stuck:
                raise RuntimeSchedulingError(
                    f"tasks never became dispatchable (cycle or "
                    f"unsatisfiable dependencies): {stuck}"
                )
        return self.schedule_result()

    def schedule_result(self) -> ScheduleResult:
        return ScheduleResult(
            placements=dict(self.placements),
            transfers_seconds=self.transfers_seconds,
            rescheduled_tasks=self.rescheduled_tasks,
        )

    def _handle(self, event) -> None:
        now = self.clock.now
        if event.kind == ev.TASK_START:
            self._handle_start(*event.payload)
        elif event.kind == ev.TASK_FINISH:
            self._handle_finish(*event.payload)
        elif event.kind == ev.NODE_FAILURE:
            self.cluster.fail_node(event.payload)
            self._detect_failures(now)
        elif event.kind == ev.CALLBACK:
            event.payload()
            self._detect_failures(now)
            self._dispatch(now)
        elif event.kind == ev.DISPATCH:
            self._dispatch(now)
        elif event.kind == ev.HEARTBEAT:
            self._beat(now)
            self._detect_failures(now)
            if self._unfinished > 0 or self._events:
                self._events.push(now + self.heartbeat_interval,
                                  ev.HEARTBEAT)

    def _beat(self, now: float) -> None:
        for name, node in self.cluster.nodes.items():
            if node.alive:
                self.monitor.record_heartbeat(name, now)

    def _detect_failures(self, now: float) -> None:
        # A restored node becomes failure-handleable again.
        self._handled_failures = {
            name for name in self._handled_failures
            if not self.cluster.nodes[name].alive
        }
        # In-simulation liveness is the cluster's alive flags: every
        # alive node heartbeats on schedule, so the monitor's
        # stale-heartbeat timeout can never trip here (heartbeats exist
        # for observability — dashboards, tests — not detection).
        for name in self.monitor.dead_nodes(now, timeout=float("inf")):
            if name not in self._handled_failures:
                self._handled_failures.add(name)
                self._handle_failure(name, now)

    # ------------------------------------------------------------------
    # Dispatch: hand pending work to the policy
    # ------------------------------------------------------------------

    def _dispatch(self, now: float) -> None:
        tracer = get_tracer()
        if not tracer.enabled:
            if getattr(self.policy, "online", False):
                self._dispatch_online(now)
            else:
                self._dispatch_offline(now)
            return
        # The dispatch span measures *real* planning time (the policy's
        # placement search runs on the wall clock even though the tasks
        # it places live on the simulated one).
        with tracer.span("engine.dispatch", category="engine") as span:
            span.attrs.update(policy=type(self.policy).__name__,
                              pending=len(self._pending), sim_now=now)
            if getattr(self.policy, "online", False):
                self._dispatch_online(now)
            else:
                self._dispatch_offline(now)

    def _finish_of(self, dep: int) -> float:
        if dep not in self.placements:
            raise RuntimeSchedulingError(
                f"dependency on unknown or unplaced task {dep}"
            )
        return self.placements[dep].finish

    def _dispatch_offline(self, now: float) -> None:
        """Plan the whole pending subgraph with the offline policy."""
        if not self._pending:
            return
        subgraph, id_map, ready = build_replan_subgraph(
            self.graph, set(self._pending), now, self._finish_of,
        )
        # Plan into scratch copies so a plan that raises partway (e.g.
        # an unplaceable FPGA task) leaves the live timelines untouched;
        # the committed state only changes once the whole plan succeeds.
        scratch = {name: timeline.clone()
                   for name, timeline in self.timelines.items()}
        tracer = get_tracer()
        with tracer.span("engine.plan", category="engine") as span:
            span.set("tasks", len(subgraph.tasks))
            plan = self.policy.schedule(subgraph, self.cluster,
                                        ready_overrides=ready,
                                        timelines=scratch)
        reverse = {v: k for k, v in id_map.items()}
        for new_id, placement in plan.placements.items():
            tid = reverse[new_id]
            self._commit(Placement(tid, placement.node, placement.start,
                                   placement.finish, placement.cores))
        self.transfers_seconds += plan.transfers_seconds
        self._ready.clear()  # offline planning consumed every pending task

    def _dispatch_online(self, now: float) -> None:
        """Place every unblocked task from the ready queue."""
        while self._ready:
            batch, self._ready = sorted(self._ready), []
            for tid in batch:
                if self._state.get(tid) != PENDING:
                    continue
                task = self.graph.tasks[tid]
                unfinished = [d for d in task.deps
                              if self._state.get(d) != DONE]
                if unfinished:
                    # Dependencies edited after submission: re-register
                    # them and wait for their finish events instead.
                    self._blockers[tid] = len(unfinished)
                    for dep in unfinished:
                        dependents = self._dependents.setdefault(dep, [])
                        if tid not in dependents:
                            dependents.append(tid)
                    continue
                placement, comm = self.policy.place(
                    task, self.graph, self.cluster,
                    self.timelines, self.placements, now,
                )
                self.transfers_seconds += comm
                self._commit(placement)

    def _commit(self, placement: Placement) -> None:
        """Reserve capacity, record the placement, queue its start."""
        tid = placement.task_id
        self.timelines[placement.node].commit(
            placement.start, placement.duration, placement.cores
        )
        self.placements[tid] = placement
        self._state[tid] = PLACED
        self._pending.discard(tid)
        self._events.push(placement.start, ev.TASK_START,
                          (tid, self._epoch[tid]))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _handle_start(self, tid: int, epoch: int) -> None:
        if self._epoch.get(tid) != epoch or self._state.get(tid) != PLACED:
            return  # cancelled by a failure reschedule
        task = self.graph.tasks[tid]
        args = [
            self.graph.results[a.task_id] if isinstance(a, Future) else a
            for a in task.args
        ]
        self._real[tid] = self._executor.submit(task.fn, *args,
                                                **task.kwargs)
        self._state[tid] = RUNNING
        self._events.push(self.placements[tid].finish, ev.TASK_FINISH,
                          (tid, epoch))

    def _handle_finish(self, tid: int, epoch: int) -> None:
        if self._epoch.get(tid) != epoch or self._state.get(tid) != RUNNING:
            return  # cancelled by a failure reschedule
        result = self._real.pop(tid).result()
        self.graph.results[tid] = result
        self._state[tid] = DONE
        self._unfinished -= 1
        tracer = get_tracer()
        if tracer.enabled:
            # Task execution lives on the *simulated* clock: the span is
            # the committed placement interval, laned by cluster node.
            placement = self.placements[tid]
            tracer.record_span(
                f"task:{self.graph.tasks[tid].name}",
                placement.start, placement.finish,
                track=placement.node, category="task",
                attrs={"task_id": tid, "cores": placement.cores,
                       "epoch": epoch})
        for dependent in self._dependents.pop(tid, ()):
            if self._blockers.get(dependent, 0) > 0:
                self._blockers[dependent] -= 1
                if self._blockers[dependent] == 0 \
                        and self._state.get(dependent) == PENDING:
                    self._ready.append(dependent)
        if getattr(self.policy, "online", False):
            self._dispatch_online(self.clock.now)

    # ------------------------------------------------------------------
    # Failure handling (§VI-A duty 4, in-loop)
    # ------------------------------------------------------------------

    def _handle_failure(self, name: str, now: float) -> None:
        """Re-place all work lost to a node failure, mid-run.

        Mirrors :func:`~repro.runtime.scheduler.reschedule_after_failure`:
        tasks finished on the node before ``now`` keep their results;
        everything else on the node — and every not-yet-finished task
        transitively depending on a lost output — goes back to PENDING
        and is re-dispatched on the survivors.
        """
        lost: Set[int] = set()
        for tid, placement in self.placements.items():
            if placement.node == name and placement.finish > now \
                    and self._state.get(tid) in (PLACED, RUNNING):
                lost.add(tid)
        # Transitive closure over the dependent index (every non-DONE
        # dependency edge is registered there at submit time, and DONE
        # is permanent, so the index covers every edge a loss can travel
        # along) — BFS instead of a whole-graph fixpoint scan.
        frontier = list(lost)
        while frontier:
            tid = frontier.pop()
            for dependent in self._dependents.get(tid, ()):
                if dependent in lost \
                        or self._state.get(dependent) in (DONE, PENDING):
                    continue
                lost.add(dependent)
                frontier.append(dependent)
        for tid in lost:
            placement = self.placements.pop(tid)
            self.timelines[placement.node].release(
                placement.start, placement.duration, placement.cores
            )
            # A lost RUNNING task's real thread keeps going, but its
            # result is discarded; the replacement reruns the function.
            self._real.pop(tid, None)
            self._state[tid] = PENDING
            self._pending.add(tid)
            self._epoch[tid] += 1
        for tid in lost:
            blockers = sum(1 for d in self.graph.tasks[tid].deps
                           if self._state.get(d) != DONE)
            self._blockers[tid] = blockers
            if blockers == 0:
                self._ready.append(tid)
        self.rescheduled_tasks += len(lost)
        tracer = get_tracer()
        if tracer.enabled and lost:
            tracer.record_span(f"failure:{name}", now, now,
                               track=name, category="failure",
                               attrs={"lost_tasks": len(lost)})
        if lost:
            with tracer.span("engine.reschedule", category="engine") \
                    as span:
                span.attrs.update(node=name, lost=len(lost))
                self._dispatch(now)
