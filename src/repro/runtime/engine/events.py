"""Discrete-event machinery: the simulated clock and the event queue.

The :class:`~repro.runtime.engine.RuntimeEngine` advances a simulated
clock from event to event.  Ties at the same timestamp are broken by a
fixed kind priority so the semantics match the offline resource manager:

* a task *finishing* at ``t`` survives a node failure at ``t`` (the seed
  :func:`~repro.runtime.scheduler.reschedule_after_failure` keeps
  ``finish <= failure_time`` results);
* failures are detected before new work is dispatched or started;
* heartbeats observe the state *after* everything else at ``t`` happened.

Within one ``(time, kind)`` bucket a monotone sequence number decides,
so the queue is a **deterministic total order**: two events can never
compare equal, and same-kind events at the same timestamp pop in push
order regardless of heap internals.  This is what makes streaming
``submit_at`` calls with identical timestamps execute in submission
order (their callbacks fire in push order, and each submission lands in
the task graph — and the ready queue — before the next callback runs),
and it is why a fuzzer re-running a seed sees the identical schedule.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import RuntimeSchedulingError

TASK_FINISH = "task-finish"
NODE_FAILURE = "node-failure"
CALLBACK = "callback"
DISPATCH = "dispatch"
TASK_START = "task-start"
HEARTBEAT = "heartbeat"

_PRIORITY = {
    TASK_FINISH: 0,
    NODE_FAILURE: 1,
    CALLBACK: 2,
    DISPATCH: 3,
    TASK_START: 4,
    HEARTBEAT: 5,
}


@dataclass(frozen=True, order=True)
class Event:
    time: float
    priority: int
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class SimClock:
    """Monotonic simulated time."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def advance(self, to: float) -> None:
        if to < self.now - 1e-12:
            raise RuntimeSchedulingError(
                f"simulated clock cannot run backwards "
                f"({self.now} -> {to})"
            )
        self.now = max(self.now, to)


class EventQueue:
    """A heap of :class:`Event` ordered by (time, kind priority, seq)."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = itertools.count()

    def push(self, time: float, kind: str, payload: Any = None) -> Event:
        if kind not in _PRIORITY:
            raise RuntimeSchedulingError(f"unknown event kind {kind!r}")
        event = Event(time, _PRIORITY[kind], next(self._seq), kind, payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
