"""The EVEREST virtualized runtime environment (paper §VI).

* :mod:`repro.runtime.cluster` — heterogeneous nodes (CPU + FPGA) and the
  data-center network;
* :mod:`repro.runtime.taskgraph` — the Dask-like API with EVEREST resource
  requests and kernel fine-tuning;
* :mod:`repro.runtime.timeline` — the event-sweep core-capacity index
  behind every placement query;
* :mod:`repro.runtime.scheduler` — offline scheduling policies (HEFT,
  round-robin), data transfers, failure rescheduling;
* :mod:`repro.runtime.engine` — the event-driven runtime engine: pluggable
  policies, streaming submission, in-loop monitoring and rescheduling;
* :mod:`repro.runtime.monitor` — cluster monitoring;
* :mod:`repro.runtime.virtualization` — QEMU-KVM/libvirt/SR-IOV models.
"""

from repro.runtime.cluster import Cluster, Node, default_cluster
from repro.runtime.engine import (
    POLICIES,
    MinLoadPolicy,
    RuntimeEngine,
    SchedulingPolicy,
    resolve_policy,
    synthetic_workflow,
)
from repro.runtime.monitor import ClusterMonitor, UtilizationReport
from repro.runtime.scheduler import (
    HEFTScheduler,
    Placement,
    RoundRobinScheduler,
    ScheduleResult,
    reschedule_after_failure,
)
from repro.runtime.taskgraph import (
    EverestClient,
    Future,
    ResourceRequest,
    Task,
    TaskGraph,
    delayed,
)
from repro.runtime.timeline import NodeTimeline

__all__ = [
    "Cluster",
    "Node",
    "default_cluster",
    "ClusterMonitor",
    "UtilizationReport",
    "HEFTScheduler",
    "RoundRobinScheduler",
    "MinLoadPolicy",
    "SchedulingPolicy",
    "RuntimeEngine",
    "POLICIES",
    "resolve_policy",
    "synthetic_workflow",
    "NodeTimeline",
    "Placement",
    "ScheduleResult",
    "reschedule_after_failure",
    "EverestClient",
    "Future",
    "ResourceRequest",
    "Task",
    "TaskGraph",
    "delayed",
]
