"""The EVEREST virtualized runtime environment (paper §VI).

* :mod:`repro.runtime.cluster` — heterogeneous nodes (CPU + FPGA) and the
  data-center network;
* :mod:`repro.runtime.taskgraph` — the Dask-like API with EVEREST resource
  requests and kernel fine-tuning;
* :mod:`repro.runtime.scheduler` — the resource manager: HEFT scheduling,
  load balancing, data transfers, failure rescheduling;
* :mod:`repro.runtime.monitor` — cluster monitoring;
* :mod:`repro.runtime.virtualization` — QEMU-KVM/libvirt/SR-IOV models.
"""

from repro.runtime.cluster import Cluster, Node, default_cluster
from repro.runtime.monitor import ClusterMonitor, UtilizationReport
from repro.runtime.scheduler import (
    HEFTScheduler,
    Placement,
    RoundRobinScheduler,
    ScheduleResult,
    reschedule_after_failure,
)
from repro.runtime.taskgraph import (
    EverestClient,
    Future,
    ResourceRequest,
    Task,
    TaskGraph,
    delayed,
)

__all__ = [
    "Cluster",
    "Node",
    "default_cluster",
    "ClusterMonitor",
    "UtilizationReport",
    "HEFTScheduler",
    "RoundRobinScheduler",
    "Placement",
    "ScheduleResult",
    "reschedule_after_failure",
    "EverestClient",
    "Future",
    "ResourceRequest",
    "Task",
    "TaskGraph",
    "delayed",
]
