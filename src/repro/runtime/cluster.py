"""Cluster model: heterogeneous nodes with CPUs, FPGAs and virtualization.

The EVEREST target system (§III): nodes with Intel Xeon / AMD EPYC CPUs,
PCIe-attached Alveo cards and network-attached cloudFPGA nodes, connected
by a data-center network.  Each node runs the virtualization stack of
Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import RuntimeSchedulingError
from repro.platforms.device import FPGADevice, alveo_u55c
from repro.platforms.network import LinkModel
from repro.runtime.virtualization import (
    Hypervisor,
    LibvirtDaemon,
    PhysicalFunction,
)


@dataclass
class Node:
    """One physical computing node."""

    name: str
    cores: int = 32
    memory_mb: int = 262_144
    core_gflops: float = 2.5  # per-core sustained f64 GFLOP/s
    fpgas: List[FPGADevice] = field(default_factory=list)
    alive: bool = True
    libvirt: Optional[LibvirtDaemon] = None

    def __post_init__(self) -> None:
        pfs = [PhysicalFunction(device) for device in self.fpgas]
        hypervisor = Hypervisor(self.name, self.cores, self.memory_mb, pfs)
        self.libvirt = LibvirtDaemon(hypervisor)

    @property
    def has_fpga(self) -> bool:
        return bool(self.fpgas)

    def cpu_seconds(self, flops: float, cores_used: int = 1) -> float:
        """Time to run ``flops`` float operations on this node's CPUs."""
        cores_used = max(1, min(cores_used, self.cores))
        return flops / (self.core_gflops * 1e9 * cores_used)


class Cluster:
    """A set of nodes joined by a uniform data-center network."""

    def __init__(self, nodes: List[Node],
                 network: Optional[LinkModel] = None):
        if not nodes:
            raise RuntimeSchedulingError("cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise RuntimeSchedulingError("duplicate node names")
        self.nodes: Dict[str, Node] = {n.name: n for n in nodes}
        self.network = network or LinkModel(bandwidth_gbps=100.0,
                                            latency_us=2.0)

    def node(self, name: str) -> Node:
        if name not in self.nodes:
            raise RuntimeSchedulingError(f"unknown node {name!r}")
        return self.nodes[name]

    def alive_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if n.alive]

    def fpga_nodes(self) -> List[Node]:
        return [n for n in self.alive_nodes() if n.has_fpga]

    def fail_node(self, name: str) -> None:
        """Take a node down (used by failure-injection tests)."""
        self.node(name).alive = False

    def restore_node(self, name: str) -> None:
        self.node(name).alive = True

    def transfer_seconds(self, src: str, dst: str, num_bytes: int) -> float:
        if src == dst:
            return 0.0
        return self.network.message_seconds(num_bytes)


def default_cluster(num_nodes: int = 4, fpgas_per_node: int = 1) -> Cluster:
    """The EVEREST testbed shape: a few nodes, u55c cards on each."""
    nodes = []
    for i in range(num_nodes):
        fpgas = [alveo_u55c() for _ in range(fpgas_per_node)]
        nodes.append(Node(name=f"node{i}", fpgas=fpgas))
    return Cluster(nodes)
