"""QEMU-KVM-style hypervisor and VM model (paper §VI-B, Fig. 6).

Each physical node runs a hypervisor hosting VMs; VMs access FPGAs through
SR-IOV VFs at near-native speed (or through emulated I/O, for comparison).
The ``libvirtd`` agent (:mod:`repro.runtime.virtualization.libvirt`)
exposes this to the resource manager and the autotuner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.errors import VirtualizationError
from repro.runtime.virtualization.sriov import (
    EMULATED_OVERHEAD,
    SRIOV_OVERHEAD,
    PhysicalFunction,
    VirtualFunction,
)


class VMState(Enum):
    DEFINED = "defined"
    RUNNING = "running"
    PAUSED = "paused"
    SHUTOFF = "shutoff"


@dataclass
class VirtualMachine:
    """A guest VM."""

    name: str
    vcpus: int
    memory_mb: int
    state: VMState = VMState.DEFINED
    io_mode: str = "sriov"  # 'sriov' | 'emulated'
    attached_vfs: List[VirtualFunction] = field(default_factory=list)

    def accelerator_overhead(self) -> float:
        """Execution-time multiplier for FPGA work inside this guest."""
        if self.io_mode == "sriov":
            return SRIOV_OVERHEAD
        return EMULATED_OVERHEAD

    def has_accelerator(self) -> bool:
        return bool(self.attached_vfs)


class Hypervisor:
    """The per-node QEMU-KVM stand-in."""

    def __init__(self, node_name: str, cores: int, memory_mb: int,
                 pfs: Optional[List[PhysicalFunction]] = None):
        self.node_name = node_name
        self.cores = cores
        self.memory_mb = memory_mb
        self.pfs: List[PhysicalFunction] = list(pfs or [])
        self.vms: Dict[str, VirtualMachine] = {}

    # -- VM lifecycle -------------------------------------------------------------

    def define_vm(self, name: str, vcpus: int, memory_mb: int,
                  io_mode: str = "sriov") -> VirtualMachine:
        if name in self.vms:
            raise VirtualizationError(f"VM {name!r} already defined")
        committed = sum(vm.vcpus for vm in self.vms.values())
        if committed + vcpus > self.cores * 2:  # 2x overcommit cap
            raise VirtualizationError(
                f"node {self.node_name}: vCPU overcommit limit exceeded"
            )
        committed_mem = sum(vm.memory_mb for vm in self.vms.values())
        if committed_mem + memory_mb > self.memory_mb:
            raise VirtualizationError(
                f"node {self.node_name}: out of memory for VM {name!r}"
            )
        vm = VirtualMachine(name, vcpus, memory_mb, io_mode=io_mode)
        self.vms[name] = vm
        return vm

    def start_vm(self, name: str) -> None:
        self._vm(name).state = VMState.RUNNING

    def shutdown_vm(self, name: str) -> None:
        vm = self._vm(name)
        if vm.attached_vfs:
            raise VirtualizationError(
                f"VM {name!r} still holds {len(vm.attached_vfs)} VFs; "
                "detach them first"
            )
        vm.state = VMState.SHUTOFF

    def undefine_vm(self, name: str) -> None:
        vm = self._vm(name)
        if vm.state == VMState.RUNNING:
            raise VirtualizationError(f"VM {name!r} is running")
        del self.vms[name]

    def _vm(self, name: str) -> VirtualMachine:
        if name not in self.vms:
            raise VirtualizationError(
                f"node {self.node_name}: unknown VM {name!r}"
            )
        return self.vms[name]

    # -- device assignment ----------------------------------------------------------

    def attach_vf(self, vm_name: str, vf: VirtualFunction) -> None:
        vm = self._vm(vm_name)
        if vf.assigned_vm != vm_name:
            raise VirtualizationError(
                f"VF must be plugged to {vm_name!r} by the VF manager first"
            )
        vm.attached_vfs.append(vf)

    def detach_vf(self, vm_name: str, vf: VirtualFunction) -> None:
        vm = self._vm(vm_name)
        if vf not in vm.attached_vfs:
            raise VirtualizationError(
                f"VF not attached to VM {vm_name!r}"
            )
        vm.attached_vfs.remove(vf)

    # -- capacity queries -------------------------------------------------------------

    def free_vfs(self) -> int:
        return sum(len(pf.free_vfs()) for pf in self.pfs)

    def running_vms(self) -> List[VirtualMachine]:
        return [vm for vm in self.vms.values() if vm.state == VMState.RUNNING]
