"""A libvirt-like control API over the hypervisor model.

Paper §VI-B: "the autotuner, the runtime manager, and the resource
allocator can interact with the virtualization infrastructure using
libvirt.  Thanks to the libvirtd daemon, the node where the hypervisor is
installed can respond to queries about available resources and the
system's current status."

The method names mirror the libvirt C/Python API closely enough to read
naturally (``listAllDomains``, ``getInfo``, ``attachDevice``...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import VirtualizationError
from repro.runtime.virtualization.hypervisor import (
    Hypervisor,
    VirtualMachine,
    VMState,
)
from repro.runtime.virtualization.sriov import VFManager, VirtualFunction


@dataclass
class NodeInfo:
    """The answer to a libvirt ``getInfo`` query."""

    cores: int
    memory_mb: int
    running_vms: int
    free_vcpus: int
    free_memory_mb: int
    total_vfs: int
    free_vfs: int
    fpga_models: List[str]


class LibvirtDaemon:
    """The per-node ``libvirtd`` agent."""

    def __init__(self, hypervisor: Hypervisor,
                 vf_manager: Optional[VFManager] = None):
        self.hypervisor = hypervisor
        self.vf_manager = vf_manager or VFManager()

    # -- queries (used by the autotuner and the resource manager) -----------------

    def getInfo(self) -> NodeInfo:
        hv = self.hypervisor
        used_vcpus = sum(vm.vcpus for vm in hv.running_vms())
        used_mem = sum(vm.memory_mb for vm in hv.vms.values())
        total_vfs = sum(len(pf.vfs) for pf in hv.pfs)
        return NodeInfo(
            cores=hv.cores,
            memory_mb=hv.memory_mb,
            running_vms=len(hv.running_vms()),
            free_vcpus=max(0, hv.cores - used_vcpus),
            free_memory_mb=hv.memory_mb - used_mem,
            total_vfs=total_vfs,
            free_vfs=hv.free_vfs(),
            fpga_models=[pf.device.name for pf in hv.pfs],
        )

    def listAllDomains(self) -> List[VirtualMachine]:
        return list(self.hypervisor.vms.values())

    def lookupByName(self, name: str) -> VirtualMachine:
        return self.hypervisor._vm(name)

    # -- domain lifecycle ------------------------------------------------------------

    def defineXML(self, name: str, vcpus: int, memory_mb: int,
                  io_mode: str = "sriov") -> VirtualMachine:
        """Define a domain (the XML is a dict here, mercifully)."""
        return self.hypervisor.define_vm(name, vcpus, memory_mb, io_mode)

    def create(self, name: str) -> None:
        self.hypervisor.start_vm(name)

    def shutdown(self, name: str) -> None:
        self.hypervisor.shutdown_vm(name)

    def undefine(self, name: str) -> None:
        self.hypervisor.undefine_vm(name)

    # -- device attach/detach (the dynamic plugging mechanism) ------------------------

    def attachDevice(self, vm_name: str, pf_index: int = 0) -> VirtualFunction:
        """Plug a free VF of the given PF into a running VM."""
        hv = self.hypervisor
        if pf_index >= len(hv.pfs):
            raise VirtualizationError(
                f"node {hv.node_name}: no PF #{pf_index}"
            )
        pf = hv.pfs[pf_index]
        free = pf.free_vfs()
        if not free:
            raise VirtualizationError(
                f"node {hv.node_name}: PF{pf.pf_id} has no free VFs"
            )
        vf = free[0]
        self.vf_manager.plug(vf, vm_name)
        hv.attach_vf(vm_name, vf)
        return vf

    def detachDevice(self, vm_name: str, vf: VirtualFunction) -> None:
        self.hypervisor.detach_vf(vm_name, vf)
        self.vf_manager.unplug(vf)

    def satisfy_demands(self, demands: Dict[str, int]) -> int:
        """Resource-allocator entry point: rebalance VFs to match demand.

        Returns the number of plug/unplug actions performed.  VMs' attached
        VF lists are kept in sync with the manager's assignment.
        """
        hv = self.hypervisor
        actions = self.vf_manager.rebalance(hv.pfs, demands)
        # Sync VM attachment lists with the new assignment.
        assigned: Dict[str, List[VirtualFunction]] = {}
        for pf in hv.pfs:
            for vf in pf.vfs:
                if vf.assigned_vm:
                    assigned.setdefault(vf.assigned_vm, []).append(vf)
        for vm in hv.vms.values():
            vm.attached_vfs = assigned.get(vm.name, [])
        return len(actions)
