"""Virtualization infrastructure (paper §VI-B, Fig. 6).

QEMU-KVM-style hypervisors host VMs on each physical node; FPGAs are
exposed through SR-IOV physical/virtual functions; a libvirt-like daemon
answers resource queries and performs the dynamic VF plug/unplug the
EVEREST resource allocator requests.
"""

from repro.runtime.virtualization.hypervisor import (
    Hypervisor,
    VirtualMachine,
    VMState,
)
from repro.runtime.virtualization.libvirt import LibvirtDaemon, NodeInfo
from repro.runtime.virtualization.sriov import (
    EMULATED_OVERHEAD,
    SRIOV_OVERHEAD,
    PhysicalFunction,
    PlugEvent,
    VFManager,
    VirtualFunction,
)

__all__ = [
    "Hypervisor",
    "VirtualMachine",
    "VMState",
    "LibvirtDaemon",
    "NodeInfo",
    "PhysicalFunction",
    "VirtualFunction",
    "VFManager",
    "PlugEvent",
    "SRIOV_OVERHEAD",
    "EMULATED_OVERHEAD",
]
