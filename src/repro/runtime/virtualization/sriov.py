"""SR-IOV model: physical and virtual functions over FPGA accelerators.

Paper §VI-B: each FPGA exposes a Physical Function (PF) providing the
management interface, plus several Virtual Functions (VFs).  A VF can be
assigned to exactly one VM; a VM may hold several VFs.  SR-IOV gives
"near-native performance" but is static about the *number* of VFs — the
EVEREST mitigation is a dynamic plug/unplug mechanism driven by the
resource allocator (:class:`VFManager` here, exercised by the Fig. 6
benchmark).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import VirtualizationError
from repro.platforms.device import FPGADevice

# Relative execution-time overheads versus bare metal (the paper's
# "near-native performance" claim for SR-IOV; emulated I/O for contrast).
SRIOV_OVERHEAD = 1.03
EMULATED_OVERHEAD = 1.38


@dataclass
class VirtualFunction:
    """One SR-IOV virtual function of an FPGA PF."""

    vf_id: int
    pf: "PhysicalFunction"
    assigned_vm: Optional[str] = None

    @property
    def is_assigned(self) -> bool:
        return self.assigned_vm is not None


class PhysicalFunction:
    """The management interface of one FPGA card."""

    _ids = itertools.count()

    def __init__(self, device: FPGADevice, max_vfs: int = 4):
        if max_vfs < 1:
            raise VirtualizationError("a PF must support at least one VF")
        self.pf_id = next(self._ids)
        self.device = device
        self.max_vfs = max_vfs
        self.vfs: List[VirtualFunction] = [
            VirtualFunction(i, self) for i in range(max_vfs)
        ]

    def free_vfs(self) -> List[VirtualFunction]:
        return [vf for vf in self.vfs if not vf.is_assigned]

    def vf(self, vf_id: int) -> VirtualFunction:
        if not 0 <= vf_id < len(self.vfs):
            raise VirtualizationError(
                f"PF{self.pf_id}: no VF {vf_id} (max {self.max_vfs})"
            )
        return self.vfs[vf_id]


@dataclass
class PlugEvent:
    """Audit record of one dynamic plug/unplug action."""

    action: str  # 'plug' | 'unplug'
    vm: str
    pf_id: int
    vf_id: int
    latency_ms: float


class VFManager:
    """The EVEREST dynamic VF plug/unplug mechanism.

    "We design a mechanism that will receive a request from the EVEREST
    resource allocator and, depending on the exact situation, will perform
    dynamic plugging/unplugging of VFs to/from the VMs."
    """

    # Hot-plugging a PCI device into a running VM takes on the order of
    # hundreds of milliseconds (QEMU device_add + guest driver probe).
    PLUG_LATENCY_MS = 250.0
    UNPLUG_LATENCY_MS = 120.0

    def __init__(self) -> None:
        self.events: List[PlugEvent] = []

    def plug(self, vf: VirtualFunction, vm_name: str) -> PlugEvent:
        if vf.is_assigned:
            raise VirtualizationError(
                f"VF{vf.vf_id} of PF{vf.pf.pf_id} already assigned to "
                f"{vf.assigned_vm!r}"
            )
        vf.assigned_vm = vm_name
        event = PlugEvent("plug", vm_name, vf.pf.pf_id, vf.vf_id,
                          self.PLUG_LATENCY_MS)
        self.events.append(event)
        return event

    def unplug(self, vf: VirtualFunction) -> PlugEvent:
        if not vf.is_assigned:
            raise VirtualizationError(
                f"VF{vf.vf_id} of PF{vf.pf.pf_id} is not assigned"
            )
        vm_name = vf.assigned_vm
        vf.assigned_vm = None
        event = PlugEvent("unplug", vm_name or "", vf.pf.pf_id, vf.vf_id,
                          self.UNPLUG_LATENCY_MS)
        self.events.append(event)
        return event

    def rebalance(self, pfs: List[PhysicalFunction],
                  demands: Dict[str, int]) -> List[PlugEvent]:
        """Satisfy per-VM VF demands, unplugging surplus assignments first.

        This is the "request from the EVEREST resource allocator": demands
        maps VM names to the number of VFs they need *now*.
        """
        actions: List[PlugEvent] = []
        held: Dict[str, List[VirtualFunction]] = {}
        for pf in pfs:
            for vf in pf.vfs:
                if vf.is_assigned:
                    held.setdefault(vf.assigned_vm, []).append(vf)
        # Unplug surplus.
        for vm, vfs in held.items():
            want = demands.get(vm, 0)
            for vf in vfs[want:]:
                actions.append(self.unplug(vf))
        # Plug missing.
        for vm, want in demands.items():
            have = sum(1 for pf in pfs for vf in pf.vfs
                       if vf.assigned_vm == vm)
            for pf in pfs:
                while have < want and pf.free_vfs():
                    actions.append(self.plug(pf.free_vfs()[0], vm))
                    have += 1
            if have < want:
                raise VirtualizationError(
                    f"cannot satisfy VF demand for {vm!r}: "
                    f"want {want}, have {have}"
                )
        return actions
