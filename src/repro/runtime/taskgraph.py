"""The Dask-like task API with EVEREST extensions (paper §VI-A).

"The runtime interaction with the target applications is done through a
Dask-like API, requiring only minimal modifications.  The original Dask API
is extended with EVEREST-specific features, mainly to specify the resource
requests and the possibility of kernel fine-tuning."

* :func:`delayed` wraps a function; calling the wrapper builds graph nodes
  instead of executing;
* :class:`EverestClient.submit` is the eager-ish entry point returning a
  :class:`Future`;
* **resource requests** (:class:`ResourceRequest`) carry core counts, FPGA
  needs and cost estimates — the EVEREST extension;
* **kernel fine-tuning** parameters ride along each task and are handed to
  the autotuner at execution time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import RuntimeSchedulingError


@dataclass(frozen=True)
class ResourceRequest:
    """EVEREST resource request attached to one task."""

    cores: int = 1
    fpga: bool = False
    memory_mb: int = 1024
    # Cost model inputs: CPU flops, or FPGA kernel time if offloaded.
    cpu_flops: float = 1e9
    fpga_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise RuntimeSchedulingError("a task needs at least one core")


@dataclass
class Task:
    """One node of the task graph."""

    task_id: int
    name: str
    fn: Callable
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    deps: List[int]
    resources: ResourceRequest
    output_bytes: int = 8192
    tuning: Dict[str, Any] = field(default_factory=dict)

    def runtime_on_cpu(self, node) -> float:
        return node.cpu_seconds(self.resources.cpu_flops,
                                self.resources.cores)


class Future:
    """A handle to a task's eventual result."""

    def __init__(self, graph: "TaskGraph", task_id: int):
        self._graph = graph
        self.task_id = task_id

    def result(self):
        if self.task_id not in self._graph.results:
            raise RuntimeSchedulingError(
                "task graph not executed yet; call client.compute() first"
            )
        return self._graph.results[self.task_id]


class TaskGraph:
    """A DAG of tasks under construction."""

    def __init__(self) -> None:
        self._ids = itertools.count()
        self.tasks: Dict[int, Task] = {}
        self.results: Dict[int, Any] = {}

    def add(self, fn: Callable, args: tuple, kwargs: dict,
            resources: Optional[ResourceRequest], output_bytes: int,
            tuning: Optional[dict], name: Optional[str]) -> Future:
        deps: List[int] = []
        bound_args = []
        for arg in args:
            if isinstance(arg, Future):
                deps.append(arg.task_id)
                bound_args.append(arg)
            else:
                bound_args.append(arg)
        task_id = next(self._ids)
        self.tasks[task_id] = Task(
            task_id=task_id,
            name=name or getattr(fn, "__name__", f"task{task_id}"),
            fn=fn,
            args=tuple(bound_args),
            kwargs=dict(kwargs),
            deps=deps,
            resources=resources or ResourceRequest(),
            output_bytes=output_bytes,
            tuning=dict(tuning or {}),
        )
        return Future(self, task_id)

    def topological_order(self) -> List[Task]:
        # Iterative post-order DFS (same order a recursive visit would
        # produce) — a 100k-task dependency chain must not hit the
        # interpreter recursion limit.  States: absent = unvisited,
        # 1 = on the current DFS path, 2 = emitted.
        order: List[Task] = []
        visited: Dict[int, int] = {}
        for root in list(self.tasks):
            if visited.get(root, 0) == 2:
                continue
            visited[root] = 1
            stack = [(root, iter(self.tasks[root].deps))]
            while stack:
                task_id, deps = stack[-1]
                for dep in deps:
                    state = visited.get(dep, 0)
                    if state == 1:
                        raise RuntimeSchedulingError(
                            "task graph has a cycle")
                    if state == 2:
                        continue
                    visited[dep] = 1
                    stack.append((dep, iter(self.tasks[dep].deps)))
                    break
                else:
                    visited[task_id] = 2
                    order.append(self.tasks[task_id])
                    stack.pop()
        return order

    def execute_functionally(self) -> None:
        """Run every task's Python function (results only, no timing)."""
        for task in self.topological_order():
            if task.task_id in self.results:
                continue
            args = [
                self.results[a.task_id] if isinstance(a, Future) else a
                for a in task.args
            ]
            self.results[task.task_id] = task.fn(*args, **task.kwargs)


def delayed(fn: Callable = None, *, resources: ResourceRequest = None,
            output_bytes: int = 8192, tuning: dict = None):
    """Dask-style ``delayed`` with EVEREST resource/tuning extensions.

    Usage::

        @delayed(resources=ResourceRequest(fpga=True, fpga_seconds=1e-3))
        def kernel(x): ...

        client = EverestClient(cluster)
        fut = client.call(kernel, data)
    """

    def wrap(f: Callable):
        f._everest_resources = resources
        f._everest_output_bytes = output_bytes
        f._everest_tuning = tuning or {}
        return f

    if fn is not None:
        return wrap(fn)
    return wrap


class EverestClient:
    """The application-facing client (the Dask ``Client`` analogue).

    A thin wrapper over the event-driven
    :class:`~repro.runtime.engine.RuntimeEngine`: submission builds the
    engine's task graph, :meth:`compute` runs the engine (simulated
    placement + real execution in one event loop), and :meth:`gather`
    re-dispatches anything submitted since the last run — the seed
    client silently ignored tasks submitted after ``compute()``.

    ``scheduler`` accepts a policy instance or a registry name
    (``"heft"``, ``"round-robin"``, ``"min-load"``); the default is HEFT.
    """

    def __init__(self, cluster, scheduler=None):
        from repro.runtime.engine import RuntimeEngine

        self.cluster = cluster
        self.engine = RuntimeEngine(cluster, policy=scheduler)
        self.scheduler = self.engine.policy
        self.graph = self.engine.graph
        self.last_schedule = None

    def submit(self, fn: Callable, *args,
               resources: Optional[ResourceRequest] = None,
               output_bytes: int = 8192,
               tuning: Optional[dict] = None,
               name: Optional[str] = None, **kwargs) -> Future:
        """Add one task; ``Future`` arguments become dependencies."""
        return self.engine.submit(fn, *args, resources=resources,
                                  output_bytes=output_bytes, tuning=tuning,
                                  name=name, **kwargs)

    call = submit  # alias matching the delayed() docstring

    def compute(self):
        """Dispatch pending tasks on the cluster (simulated time) and
        execute them (real results).  Returns the cumulative
        :class:`~repro.runtime.scheduler.ScheduleResult`.
        """
        self.last_schedule = self.engine.run()
        return self.last_schedule

    def gather(self, futures: List[Future]) -> list:
        if self.last_schedule is None or self.engine.has_pending():
            self.compute()
        return [f.result() for f in futures]
