"""Incremental HEFT placement index (cluster-scale scheduling hot path).

The exhaustive HEFT inner loop answers, per task, *which node gives the
earliest finish* by calling :meth:`NodeTimeline.earliest_start` on every
alive node — O(tasks x nodes) timeline scans, which falls over around
100k tasks on 1,000 nodes.  This module replaces the scan with a pruned
candidate search that returns **bitwise-identical placements**:

* nodes are grouped into **equivalence classes** by the runtime-model
  inputs ``(cores, core_gflops, has_fpga)`` — a task's execution time is
  the same on every node of a class, so per-task cost models are
  evaluated once per class, not once per node;
* per ``(class, requested cores)`` the index keeps numpy arrays of
  cached lower bounds on each node's next feasible start.  Two bound
  tiers are held per node: a base bound valid for any query
  (``earliest_start(0, dmin, cores)``) and a **watermarked** bound
  ``earliest_start(r_i, dmin, cores)`` valid for queries with
  ``ready >= r_i``, where ``dmin`` is the smallest runtime any task in
  the graph requests from that (class, cores) pair.  Watermarks advance
  every time the scheduler evaluates a node exactly
  (:meth:`CandidateIndex.observe`), so the bounds track the schedule
  frontier instead of decaying into useless zero-time estimates as the
  cluster saturates.  A commit only invalidates the committed node's
  entries (lazily, via :meth:`CandidateIndex.invalidate`), so between
  tasks the arrays are refreshed in O(touched nodes), not O(nodes);
* candidates are yielded in ascending ``(bound, cluster index)`` order.
  The caller evaluates them exactly and stops at the first candidate
  whose bound proves no later node can beat the best finish found — the
  same ``(finish, cluster index)`` lexicographic tie-break the
  exhaustive loop implements, so pruning never changes the answer.

Bound validity (why pruning is exact): ``earliest_start`` is monotone in
both ``ready`` and ``duration`` — shrinking either only adds feasible
windows.  Hence for any query with ``ready >= r_i`` and
``duration >= dmin``, the true start is ``>= earliest_start(r_i, dmin,
cores)``; with ``r_i = 0`` this degenerates to the always-valid base
bound.

The index is rebuilt per :meth:`HEFTScheduler.schedule` call (the engine
plans into fresh scratch timelines each dispatch), and the scheduler
reports every commit through :meth:`CandidateIndex.invalidate`.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from repro.runtime.cluster import Node
from repro.runtime.timeline import NodeTimeline

ClassKey = Tuple[int, float, bool]


def node_class_key(node: Node) -> ClassKey:
    """The runtime-model equivalence class of a node.

    :func:`repro.runtime.scheduler._task_runtime` depends on the node
    only through its core count, per-core GFLOP/s and FPGA presence, so
    two nodes sharing this key run any task in exactly the same time.
    """
    return (node.cores, node.core_gflops, node.has_fpga)


def node_classes(nodes: Iterable[Node]) -> "Dict[ClassKey, List[Node]]":
    """Group nodes by :func:`node_class_key`, preserving cluster order."""
    classes: Dict[ClassKey, List[Node]] = {}
    for node in nodes:
        classes.setdefault(node_class_key(node), []).append(node)
    return classes


class _FitArray:
    """Cached start-time lower bounds for one (class, cores) pair.

    Each node carries a small set of recorded evaluation points
    ``(r, d, f)`` with ``f = earliest_start(r, d, cores)`` at the time
    it was computed, plus a ``base`` point at ``(0, dmin)``.  A point is
    *usable* for a query iff ``r <= ready`` and ``d <= duration``
    (``earliest_start`` is monotone in both), and every stored value
    stays a lower bound even after later commits (added load only moves
    true starts later).  Points are kept one per power-of-two duration
    band above ``dmin``, because a bound recorded from a short task's
    evaluation says nothing useful about where a 20x-longer task can
    start — duration-binning keeps fragmented nodes (tiny holes only
    short tasks fit) from attracting an exact evaluation from every
    long task in a scheduling wave, and the band multiplicity doubles
    as insurance against HEFT's ready-time jitter stranding queries
    below a single advancing watermark.
    """

    BANDS = 8

    __slots__ = ("indices", "timelines", "cores", "dmin", "base",
                 "marks", "durations", "fits", "versions", "stale")

    def __init__(self, indices: List[int], timelines: List[NodeTimeline],
                 cores: int, dmin: float):
        self.indices = np.asarray(indices, dtype=np.intp)
        self.timelines = timelines  # aligned with ``indices``
        self.cores = cores
        self.dmin = dmin
        self.base = np.fromiter(
            (tl.earliest_start(0.0, dmin, cores) for tl in timelines),
            dtype=np.float64, count=len(timelines),
        )
        # Two slots per band: rows [0, BANDS) hold a *floor probe* — a
        # bound computed at the band's floor duration ``dmin * 2^band``,
        # usable by every query in the band and refreshed (one extra
        # timeline sweep) whenever the node is re-evaluated after a
        # commit; rows [BANDS, 2*BANDS) hold the latest exact evaluation
        # (free to store, but only usable by longer queries).
        # Replacement policy is pure heuristics — usability is
        # re-checked per query, so any stored point is safe.
        n = len(timelines)
        self.marks = np.zeros((2 * self.BANDS, n))
        self.durations = np.full((2 * self.BANDS, n), dmin)
        self.fits = np.tile(self.base, (2 * self.BANDS, 1))
        self.versions = np.full((self.BANDS, n), -1, dtype=np.int64)
        self.stale: List[int] = []

    def _band(self, duration: float) -> int:
        if self.dmin <= 0.0 or duration <= self.dmin:
            return 0
        return min(self.BANDS - 1,
                   int(math.log2(duration / self.dmin)))

    def refresh(self) -> None:
        """Recompute stale nodes' points from their timelines.

        Only needed after a *release* (freed load can move true starts
        earlier, breaking lower-bound validity); plain commits leave
        every cached point valid.
        """
        if self.stale:
            for pos in set(self.stale):
                timeline = self.timelines[pos]
                self.base[pos] = timeline.earliest_start(
                    0.0, self.dmin, self.cores)
                for row in range(2 * self.BANDS):
                    self.fits[row, pos] = timeline.earliest_start(
                        self.marks[row, pos],
                        self.durations[row, pos], self.cores)
                    if row < self.BANDS:
                        self.versions[row, pos] = timeline.version
            self.stale.clear()

    def observe(self, pos: int, ready: float, duration: float,
                start: float) -> None:
        """Record an exact evaluation as a fresh bound point.

        ``start = earliest_start(ready, duration, cores)`` was just
        computed by the caller, so storing it costs nothing.
        """
        band = self._band(duration)
        timeline = self.timelines[pos]
        version = timeline.version
        if self.versions[band, pos] != version \
                or ready > self.marks[band, pos]:
            floor = self.dmin * (1 << band)
            self.marks[band, pos] = ready
            self.durations[band, pos] = floor
            self.fits[band, pos] = timeline.earliest_start(
                ready, floor, self.cores)
            self.versions[band, pos] = version
        fresh = self.BANDS + band
        self.marks[fresh, pos] = ready
        self.durations[fresh, pos] = duration
        self.fits[fresh, pos] = start

    def bounds(self, ready: float, duration: float) -> np.ndarray:
        """Per-node start lower bounds, valid for this query."""
        ok = (self.marks <= ready) & (self.durations <= duration)
        best = np.where(ok, self.fits, 0.0).max(axis=0)
        return np.maximum(np.maximum(best, self.base), ready)


class CandidateIndex:
    """Pruned candidate-node search over live node timelines.

    ``duration_floors`` maps ``(class key, cores)`` to the smallest
    runtime any task will request from that pair — the duration baked
    into the cached bounds (a smaller value is always safe, so omitted
    pairs fall back to zero-duration bounds).
    """

    def __init__(self, nodes: List[Node],
                 timelines: Dict[str, NodeTimeline],
                 duration_floors: Dict[Tuple[ClassKey, int], float]
                 = None):
        self.nodes = list(nodes)
        self.timelines = [timelines[node.name] for node in self.nodes]
        self.duration_floors = duration_floors or {}
        self._class_members: Dict[ClassKey, List[int]] = {}
        for index, node in enumerate(self.nodes):
            self._class_members.setdefault(node_class_key(node),
                                           []).append(index)
        self._arrays: Dict[Tuple[ClassKey, int], _FitArray] = {}
        self._by_node: Dict[int, List[_FitArray]] = {}
        # Position of a cluster index within its class member list (every
        # array of a class is aligned with that list).
        self._pos: Dict[int, int] = {}
        self._key_of: Dict[int, ClassKey] = {}
        for key, members in self._class_members.items():
            for pos, index in enumerate(members):
                self._pos[index] = pos
                self._key_of[index] = key

    @property
    def class_keys(self) -> List[ClassKey]:
        return list(self._class_members)

    def representative(self, key: ClassKey) -> Node:
        return self.nodes[self._class_members[key][0]]

    def invalidate(self, index: int) -> None:
        """Mark one node's cached bounds stale (after a commit/release)."""
        for array in self._by_node.get(index, ()):
            array.stale.append(self._pos[index])

    def observe(self, index: int, cores: int, ready: float,
                duration: float, start: float) -> None:
        """Sharpen one node's bound after an exact ``earliest_start``."""
        array = self._arrays.get((self._key_of[index], cores))
        if array is not None:
            array.observe(self._pos[index], ready, duration, start)

    def _array(self, key: ClassKey, cores: int) -> _FitArray:
        array = self._arrays.get((key, cores))
        if array is None:
            members = self._class_members[key]
            dmin = self.duration_floors.get((key, cores), 0.0)
            array = _FitArray(members,
                              [self.timelines[i] for i in members],
                              cores, dmin)
            self._arrays[(key, cores)] = array
            for index in members:
                self._by_node.setdefault(index, []).append(array)
        array.refresh()
        return array

    def _class_candidates(self, key: ClassKey, cores: int, ready: float,
                          runtime: float) -> Iterator[Tuple[float, int,
                                                            float]]:
        """Yield ``(bound, cluster_index, runtime)`` in pruning order."""
        array = self._array(key, cores)
        bounds = array.bounds(ready, runtime) + runtime
        for position in np.lexsort((array.indices, bounds)):
            yield (bounds[position], int(array.indices[position]), runtime)

    def candidates(self, feasible: List[Tuple[ClassKey, float]],
                   cores: int, ready: float) -> Iterator[Tuple[float, int,
                                                               float]]:
        """Candidates across classes, ascending by ``(bound, index)``.

        ``feasible`` pairs each eligible class key with the task's
        runtime on that class.  Every yielded ``bound`` satisfies
        ``bound <= earliest_start(...) + runtime`` for its node, and the
        stream is sorted, so a caller holding a best ``(finish, index)``
        may stop at the first candidate with ``bound > finish`` (or
        ``bound == finish`` and ``index >=`` the best index): no later
        candidate can improve on the lexicographic best.
        """
        streams = [self._class_candidates(key, cores, ready, runtime)
                   for key, runtime in feasible]
        if len(streams) == 1:
            return streams[0]
        return heapq.merge(*streams, key=lambda entry: entry[:2])
