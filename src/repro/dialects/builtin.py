"""Core dialects: ``builtin``, ``func``, ``arith``, ``math``, ``tensor``,
``memref``/``buffer``, ``affine``, ``scf`` and ``linalg``.

These play the role of MLIR's upstream ("green" in the paper's Fig. 5)
dialects that the EVEREST dialects lower into.  Only the subset the SDK
actually exercises is defined; each op registration gives the verifier
enough structure to be useful.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import IRError
from repro.ir.analysis import (
    MEMREF_ALLOC_ZERO_INIT,
    AbstractValue,
    AnalysisError,
    cast,
    common_dtype,
    comparison,
    elementwise,
    from_type,
    merge_shapes,
)
from repro.ir.canonicalize import constant_value
from repro.ir.core import Operation
from repro.ir.dialect import VARIADIC, register_dialect
from repro.ir.types import FunctionType, MemRefType, TensorType


def _verify_binary_same_type(op: Operation) -> None:
    lhs, rhs = op.operands
    if lhs.type != rhs.type:
        raise IRError(f"{op.name}: operand types differ ({lhs.type} vs {rhs.type})")
    if op.results and op.results[0].type != lhs.type:
        raise IRError(f"{op.name}: result type differs from operand type")


def _verify_func(op: Operation) -> None:
    ftype = op.attr("function_type")
    if not isinstance(ftype, FunctionType):
        raise IRError(f"{op.name}: function_type attribute must be a FunctionType")
    entry = op.regions[0].entry
    arg_types = tuple(a.type for a in entry.args)
    if arg_types != ftype.inputs:
        raise IRError(
            f"{op.name} @{op.attr('sym_name')}: entry block args {arg_types} "
            f"do not match signature {ftype.inputs}"
        )


def _verify_load(op: Operation) -> None:
    ref = op.operands[0].type
    if not isinstance(ref, MemRefType):
        raise IRError(f"{op.name}: first operand must be a memref, got {ref}")
    if len(op.operands) - 1 != ref.rank:
        raise IRError(
            f"{op.name}: {len(op.operands) - 1} indices for rank-{ref.rank} memref"
        )


def _verify_store(op: Operation) -> None:
    ref = op.operands[1].type
    if not isinstance(ref, MemRefType):
        raise IRError(f"{op.name}: second operand must be a memref, got {ref}")
    if len(op.operands) - 2 != ref.rank:
        raise IRError(
            f"{op.name}: {len(op.operands) - 2} indices for rank-{ref.rank} memref"
        )


# -- fold hooks (canonicalization) -----------------------------------------------
#
# Fold hooks return an existing Value, a plain constant (materialized as
# arith.constant by the driver) or None.  Float identities keep IEEE
# semantics: ``x * 0.0`` is NOT folded (NaN/Inf), ``x + 0.0`` is (only
# observable on -0.0 inputs, which the SDK's kernels never produce at
# compile time).  Integer folds mirror the affine interpreter exactly
# (``//`` and ``%`` semantics), keeping the differential tests bit-exact.


def _scalar_const(value):
    constant = constant_value(value)
    if isinstance(constant, (bool, int, float)):
        return constant
    return None


_CMP_PREDICATES = {
    "le": lambda a, b: a <= b, "lt": lambda a, b: a < b,
    "ge": lambda a, b: a >= b, "gt": lambda a, b: a > b,
    "eq": lambda a, b: a == b, "ne": lambda a, b: a != b,
}


def _make_binary_fold(py, *, left_id=None, right_id=None, absorb=None):
    """Fold factory: constant x constant, identity and absorbing elements."""

    def fold(op: Operation):
        lhs, rhs = op.operands
        a, b = _scalar_const(lhs), _scalar_const(rhs)
        if a is not None and b is not None:
            try:
                return py(a, b)
            except (ZeroDivisionError, OverflowError, ValueError):
                return None
        if right_id is not None and b == right_id:
            return lhs
        if left_id is not None and a == left_id:
            return rhs
        if absorb is not None and (a == absorb or b == absorb):
            return absorb
        return None

    return fold


def _fold_cmp(op: Operation):
    a, b = _scalar_const(op.operands[0]), _scalar_const(op.operands[1])
    predicate = _CMP_PREDICATES.get(op.attr("predicate"))
    if a is None or b is None or predicate is None:
        return None
    return bool(predicate(a, b))


def _fold_select(op: Operation):
    _, then, otherwise = op.operands
    if then is otherwise:
        return then
    cond = _scalar_const(op.operands[0])
    if cond is None:
        return None
    return then if cond else otherwise


def _fold_negf(op: Operation):
    constant = _scalar_const(op.operands[0])
    if constant is not None:
        return -constant
    producer = op.operands[0].owner_op()
    if producer is not None and producer.name == "arith.negf":
        return producer.operands[0]
    return None


def _make_cast_fold(py):
    def fold(op: Operation):
        constant = _scalar_const(op.operands[0])
        if constant is None:
            return None
        try:
            return py(constant)
        except (ValueError, OverflowError):
            return None

    return fold


def _make_math_fold(py):
    def fold(op: Operation):
        constants = [_scalar_const(operand) for operand in op.operands]
        if any(constant is None for constant in constants):
            return None
        try:
            return py(*constants)
        except (ValueError, OverflowError, ZeroDivisionError):
            return None

    return fold


def _np_scalar_fold(ufunc):
    """A fold callable with numpy's scalar-ufunc semantics.

    The affine interpreter and the compiled executor both evaluate these
    ops through numpy ufuncs (bit-identical between the scalar and array
    paths), so compile-time folds must use the same routine — ``max`` and
    ``math.pow`` disagree with numpy on NaN, signed zeros and last-ulp
    rounding.  Declines the fold (ValueError) on non-finite results from
    finite operands, e.g. ``pow(-2.0, 0.5)``.
    """

    def fold(a, b):
        with np.errstate(all="ignore"):
            result = float(ufunc(np.float64(a), np.float64(b)))
        if not math.isfinite(result) and \
                math.isfinite(a) and math.isfinite(b):
            raise ValueError(f"{ufunc.__name__}({a}, {b}) is non-finite")
        return result

    return fold


# Matches the affine interpreter's scalar semantics (affine_interp._BINOPS).
_FLOAT_FOLDS = {
    "addf": _make_binary_fold(lambda a, b: a + b, left_id=0.0, right_id=0.0),
    "subf": _make_binary_fold(lambda a, b: a - b, right_id=0.0),
    "mulf": _make_binary_fold(lambda a, b: a * b, left_id=1.0, right_id=1.0),
    "divf": _make_binary_fold(lambda a, b: a / b, right_id=1.0),
    "maximumf": _make_binary_fold(_np_scalar_fold(np.maximum)),
    "minimumf": _make_binary_fold(_np_scalar_fold(np.minimum)),
    "remf": _make_binary_fold(math.fmod),
    "powf": _make_binary_fold(_np_scalar_fold(np.power)),
}

_INT_FOLDS = {
    "addi": _make_binary_fold(lambda a, b: a + b, left_id=0, right_id=0),
    "subi": _make_binary_fold(lambda a, b: a - b, right_id=0),
    "muli": _make_binary_fold(lambda a, b: a * b, left_id=1, right_id=1,
                              absorb=0),
    "divsi": _make_binary_fold(lambda a, b: int(a) // int(b), right_id=1),
    "remsi": _make_binary_fold(lambda a, b: int(a) % int(b)),
    "andi": _make_binary_fold(lambda a, b: int(a) & int(b), absorb=0),
    "ori": _make_binary_fold(lambda a, b: int(a) | int(b), left_id=0,
                             right_id=0),
    "xori": _make_binary_fold(lambda a, b: int(a) ^ int(b), left_id=0,
                              right_id=0),
    "shli": _make_binary_fold(lambda a, b: int(a) << int(b) if 0 <= b < 64
                              else None, right_id=0),
    "shrsi": _make_binary_fold(lambda a, b: int(a) >> int(b) if 0 <= b < 64
                               else None, right_id=0),
    "maxsi": _make_binary_fold(max),
    "minsi": _make_binary_fold(min),
}

def _np_unary_fold(ufunc):
    """Unary counterpart of :func:`_np_scalar_fold` (same rationale)."""

    def fold(a):
        with np.errstate(all="ignore"):
            result = float(ufunc(np.float64(a)))
        if not math.isfinite(result) and math.isfinite(a):
            raise ValueError(f"{ufunc.__name__}({a}) is non-finite")
        return result

    return fold


# Matches affine_interp._MATH so compile-time folds are bit-identical to
# the interpreted result.
_MATH_FOLDS = {
    "exp": _make_math_fold(_np_unary_fold(np.exp)),
    "log": _make_math_fold(_np_unary_fold(np.log)),
    "sqrt": _make_math_fold(_np_unary_fold(np.sqrt)),
    "sin": _make_math_fold(_np_unary_fold(np.sin)),
    "cos": _make_math_fold(_np_unary_fold(np.cos)),
    "tanh": _make_math_fold(_np_unary_fold(np.tanh)),
    "atan2": _make_math_fold(math.atan2), "erf": _make_math_fold(math.erf),
    "abs": _make_math_fold(abs),
}


# -- transfer functions (abstract interpretation) --------------------------------
#
# Registered alongside the OpDefs below; see repro.ir.analysis.  These are
# the "green"-dialect rules: scalar arithmetic keeps shapes aligned, memref
# access respects rank and element dtype, and memref.alloc carries the
# zero-init contract (const=0 at definition) the executors guarantee.


def _transfer_constant(op, operands, analysis):
    declared = from_type(op.results[0].type)
    value = op.attr("value")
    const = value if isinstance(value, (bool, int, float)) else None
    return [AbstractValue(declared.shape, declared.dtype, const)]


def _transfer_select(op, operands, analysis):
    cond, a, b = operands
    if cond.dtype is not None and cond.dtype != "i1":
        raise AnalysisError(f"select condition has dtype {cond.dtype}, not i1")
    shape = merge_shapes([a.shape, b.shape], "select arms")
    return [AbstractValue(shape, common_dtype([a, b]))]


def _transfer_alloc(op, operands, analysis):
    declared = from_type(op.results[0].type)
    # Fresh buffers are zero-initialized by every executor (interpreter,
    # codegen, cbackend, arena); record the contract at the definition.
    return [AbstractValue(declared.shape, declared.dtype,
                          MEMREF_ALLOC_ZERO_INIT)]


def _transfer_load(op, operands, analysis):
    ref = operands[0]
    indices = operands[1:]
    if ref.shape is not None and len(indices) != len(ref.shape):
        raise AnalysisError(
            f"{len(indices)} indices for rank-{len(ref.shape)} memref"
        )
    return [AbstractValue((), ref.dtype)]


def _transfer_store(op, operands, analysis):
    value, ref = operands[0], operands[1]
    indices = operands[2:]
    if ref.shape is not None and len(indices) != len(ref.shape):
        raise AnalysisError(
            f"{len(indices)} indices for rank-{len(ref.shape)} memref"
        )
    if value.shape is not None and value.shape != ():
        raise AnalysisError("stored value is not a scalar")
    if (value.dtype is not None and ref.dtype is not None
            and value.dtype != ref.dtype):
        raise AnalysisError(
            f"stored {value.dtype} into memref of {ref.dtype}"
        )
    return []


def _transfer_memref_copy(op, operands, analysis):
    src, dst = operands
    merge_shapes([src.shape, dst.shape], "memref.copy source/destination")
    if (src.dtype is not None and dst.dtype is not None
            and src.dtype != dst.dtype):
        raise AnalysisError(
            f"copy between element dtypes {src.dtype} and {dst.dtype}"
        )
    return []


def _transfer_affine_apply(op, operands, analysis):
    return [AbstractValue((), "index")]


def _fold_stage(op: Operation):
    """``buffer.stage`` into the space the value was already staged to."""
    source = op.operands[0]
    producer = source.owner_op()
    if producer is None or producer.name != "buffer.stage":
        return None
    if producer.attr("space") != op.attr("space"):
        return None
    if source.type != op.results[0].type:
        return None
    return source


def register() -> None:
    """Register all core dialects into the global registry (idempotent)."""
    builtin = register_dialect("builtin", "top-level containers")
    if "module" not in builtin:
        builtin.op("module", "top-level container", num_operands=0,
                   num_results=0, num_regions=1)

    func = register_dialect("func", "functions, calls and returns")
    if "func" not in func:
        func.op(
            "func",
            "a function definition",
            num_operands=0,
            num_results=0,
            num_regions=1,
            required_attrs={"sym_name": "function name",
                            "function_type": "signature"},
            traits=("symbol", "isolated"),
            verify=_verify_func,
        )
        func.op("return", "function terminator", num_regions=0,
                num_results=0, traits=("terminator",))
        func.op("call", "direct call", num_regions=0,
                required_attrs={"callee": "symbol of the called function"})

    arith = register_dialect("arith", "scalar arithmetic")
    if "constant" not in arith:
        arith.op("constant", "literal constant", num_operands=0, num_results=1,
                 required_attrs={"value": "the constant"}, traits=("pure",),
                 transfer=_transfer_constant)
        for name in ("addf", "subf", "mulf", "divf", "maximumf", "minimumf",
                     "remf", "powf"):
            arith.op(name, f"float {name}", num_operands=2, num_results=1,
                     traits=("pure",), verify=_verify_binary_same_type,
                     fold=_FLOAT_FOLDS[name], transfer=elementwise())
        for name in ("addi", "subi", "muli", "divsi", "remsi", "andi", "ori",
                     "xori", "shli", "shrsi", "maxsi", "minsi"):
            arith.op(name, f"integer {name}", num_operands=2, num_results=1,
                     traits=("pure",), verify=_verify_binary_same_type,
                     fold=_INT_FOLDS[name], transfer=elementwise())
        arith.op("negf", "float negation", num_operands=1, num_results=1,
                 traits=("pure",), fold=_fold_negf, transfer=elementwise())
        arith.op("cmpf", "float comparison", num_operands=2, num_results=1,
                 required_attrs={"predicate": "lt/le/gt/ge/eq/ne"},
                 traits=("pure",), fold=_fold_cmp, transfer=comparison())
        arith.op("cmpi", "integer comparison", num_operands=2, num_results=1,
                 required_attrs={"predicate": "lt/le/gt/ge/eq/ne"},
                 traits=("pure",), fold=_fold_cmp, transfer=comparison())
        arith.op("select", "ternary select", num_operands=3, num_results=1,
                 traits=("pure",), fold=_fold_select,
                 transfer=_transfer_select)
        arith.op("index_cast", "index <-> integer cast", num_operands=1,
                 num_results=1, traits=("pure",),
                 fold=_make_cast_fold(lambda value: value), transfer=cast())
        arith.op("sitofp", "signed int to float", num_operands=1,
                 num_results=1, traits=("pure",),
                 fold=_make_cast_fold(float), transfer=cast())
        arith.op("fptosi", "float to signed int", num_operands=1,
                 num_results=1, traits=("pure",),
                 fold=_make_cast_fold(int), transfer=cast())
        arith.op("truncf", "float precision truncation", num_operands=1,
                 num_results=1, traits=("pure",), transfer=cast())
        arith.op("extf", "float precision extension", num_operands=1,
                 num_results=1, traits=("pure",), transfer=cast())

    math_dialect = register_dialect("math", "transcendental functions")
    if "exp" not in math_dialect:
        for name in ("exp", "log", "sqrt", "sin", "cos", "tanh", "atan2",
                     "erf", "abs"):
            arity = 2 if name == "atan2" else 1
            math_dialect.op(name, f"math.{name}", num_operands=arity,
                            num_results=1, traits=("pure",),
                            fold=_MATH_FOLDS[name], transfer=elementwise())

    tensor = register_dialect("tensor", "immutable tensor values")
    if "empty" not in tensor:
        tensor.op("empty", "uninitialized tensor", num_operands=0,
                  num_results=1, traits=("pure",))
        tensor.op("extract", "read one element", num_results=1,
                  traits=("pure",))
        tensor.op("insert", "write one element (value-semantics)",
                  num_results=1, traits=("pure",))
        tensor.op("dim", "extent of one dimension", num_operands=1,
                  num_results=1, required_attrs={"index": "dimension index"},
                  traits=("pure",))
        tensor.op("cast", "element-type cast", num_operands=1, num_results=1,
                  traits=("pure",))

    memref = register_dialect("memref", "mutable buffers")
    if "alloc" not in memref:
        memref.op("alloc", "allocate a buffer (zero-initialized)",
                  num_operands=0, num_results=1, transfer=_transfer_alloc)
        memref.op("dealloc", "free a buffer", num_operands=1, num_results=0)
        memref.op("load", "read an element", num_results=1,
                  verify=_verify_load, transfer=_transfer_load)
        memref.op("store", "write an element", num_results=0,
                  verify=_verify_store, transfer=_transfer_store)
        memref.op("copy", "bulk copy", num_operands=2, num_results=0,
                  transfer=_transfer_memref_copy)

    # The paper's Fig. 5 names this dialect "buffer"; it models staged
    # transfers between host, device global memory and on-chip PLM.
    buffer = register_dialect("buffer", "staged buffers across memory spaces")
    if "stage" not in buffer:
        buffer.op("stage", "stage a buffer into another memory space",
                  num_operands=1, num_results=1,
                  required_attrs={"space": "target memory space"},
                  fold=_fold_stage)
        buffer.op("release", "release a staged buffer", num_operands=1,
                  num_results=0)

    affine = register_dialect("affine", "counted loop nests")
    if "for" not in affine:
        affine.op(
            "for",
            "counted loop: constant bounds in attributes, IV as block arg",
            num_operands=0,
            num_results=0,
            num_regions=1,
            required_attrs={"lower": "inclusive lower bound",
                            "upper": "exclusive upper bound",
                            "step": "stride"},
        )
        affine.op("yield", "loop terminator", num_operands=VARIADIC,
                  num_results=0, traits=("terminator",))
        affine.op("apply", "affine index expression", num_results=1,
                  required_attrs={"expr": "textual affine expression"},
                  traits=("pure",), transfer=_transfer_affine_apply)

    scf = register_dialect("scf", "structured control flow")
    if "if" not in scf:
        scf.op("if", "two-armed conditional", num_operands=1,
               num_regions=2)
        scf.op("yield", "region terminator", num_results=0,
               traits=("terminator",))
        scf.op("while", "general loop", num_regions=2)

    linalg = register_dialect("linalg", "structured linear algebra")
    if "matmul" not in linalg:
        linalg.op("matmul", "C += A @ B", num_operands=3, num_results=VARIADIC)
        linalg.op("generic", "generic structured op", num_regions=1,
                  required_attrs={"iterator_types": "parallel/reduction list",
                                  "indexing_maps": "per-operand index maps"})
        linalg.op("fill", "broadcast a scalar into a tensor", num_operands=2,
                  num_results=VARIADIC)

    gpu = register_dialect("gpu", "external GPU backend (declared only)")
    if "launch" not in gpu:
        gpu.op("launch", "kernel launch placeholder", num_regions=1)


register()
