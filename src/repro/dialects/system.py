"""System-side dialects: ``dfg``, ``olympus``, ``evp``, ``base2``, ``fsm``,
``hw``.

* ``dfg`` — deterministic dataflow graphs produced from ConDRust programs:
  a graph op whose region holds ``dfg.node`` calls wired by SSA values.
* ``olympus`` — system-level FPGA architecture description: kernel
  instances, private local memories (PLMs), DMA engines and stream
  connections, annotated with the optimizations Olympus applied.
* ``evp`` — EVEREST platform integration: deployment, transfers and kernel
  launches against a concrete node/bitstream.
* ``base2`` — arithmetic on custom binary numeral types (fixed point,
  posit) plus casts; the IR face of :mod:`repro.numerics`.
* ``fsm`` — finite-state machines emitted by the HLS engine's controller
  generation.
* ``hw`` — structural hardware: modules, instances, registers and wires
  (the RTL-like bottom of the flow).
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.core import Operation
from repro.ir.dialect import VARIADIC, register_dialect
from repro.ir.types import FixedPointType, PositType


def _verify_base2_arith(op: Operation) -> None:
    for operand in op.operands:
        if not isinstance(operand.type, (FixedPointType, PositType)):
            raise IRError(
                f"{op.name}: operands must have base2 types, got {operand.type}"
            )


def _fold_identity_cast(op: Operation):
    """``base2.cast`` to the type the value already has is a no-op.

    Chains of casts are *not* folded: a narrowing/widening round trip is
    lossy, so only the exact-same-type case is safe."""
    if op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_nested_wrap(op: Operation):
    """``cyclic.wrap(cyclic.wrap(x, m), m)`` -> the inner wrap."""
    source = op.operands[0]
    producer = source.owner_op()
    if producer is None or producer.name != "cyclic.wrap":
        return None
    if producer.attr("modulus") != op.attr("modulus"):
        return None
    if source.type != op.results[0].type:
        return None
    return source


def _fold_full_extract(op: Operation):
    """``bit.extract`` of a value's full bit range is the value itself."""
    from repro.ir.types import bitwidth

    try:
        width = bitwidth(op.operands[0].type)
    except IRError:
        return None
    if op.attr("lo") == 0 and op.attr("hi") == width - 1 and \
            op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def register() -> None:
    """Register the system-side dialects (idempotent)."""
    dfg = register_dialect("dfg", "deterministic dataflow graphs (ConDRust)")
    if "graph" not in dfg:
        dfg.op("graph", "a dataflow graph; block args are graph inputs",
               num_operands=0, num_results=0, num_regions=1,
               required_attrs={"sym_name": "graph name"},
               traits=("symbol",))
        dfg.op("node", "one dataflow node (a function application)",
               num_results=VARIADIC,
               required_attrs={"callee": "implementation symbol"})
        dfg.op("output", "graph outputs", num_results=0,
               traits=("terminator",))
        dfg.op("channel", "explicit FIFO channel with capacity",
               num_operands=1, num_results=1,
               required_attrs={"depth": "FIFO depth"})
        dfg.op("loop", "stateful streaming loop", num_regions=1)

    olympus = register_dialect("olympus", "system-level FPGA architecture")
    if "system" not in olympus:
        olympus.op("system", "a generated FPGA system architecture",
                   num_operands=0, num_results=0, num_regions=1,
                   required_attrs={"sym_name": "system name",
                                   "platform": "target platform name"},
                   traits=("symbol",))
        olympus.op("kernel", "an instantiated accelerator kernel",
                   num_results=1,
                   required_attrs={"callee": "kernel symbol",
                                   "replicas": "replication factor"})
        olympus.op("plm", "private local memory buffer", num_operands=0,
                   num_results=1,
                   required_attrs={"bytes": "capacity",
                                   "banks": "bank count",
                                   "double_buffered": "ping-pong flag"})
        olympus.op("dma", "DMA engine between memories", num_operands=2,
                   num_results=0,
                   required_attrs={"lanes": "bus lanes used"})
        olympus.op("stream", "on-chip stream connection", num_operands=2,
                   num_results=0)
        olympus.op("pack", "data packing/layout transformation",
                   num_operands=1, num_results=1,
                   required_attrs={"layout": "packed layout descriptor"})

    evp = register_dialect("evp", "EVEREST platform deployment")
    if "deploy" not in evp:
        evp.op("deploy", "program a bitstream onto a node's FPGA",
               num_operands=0, num_results=1,
               required_attrs={"node": "cluster node", "system": "system symbol"})
        evp.op("transfer", "host<->device data transfer", num_operands=2,
               num_results=0, required_attrs={"direction": "h2d/d2h"})
        evp.op("launch", "launch a deployed kernel", num_results=VARIADIC,
               required_attrs={"kernel": "kernel instance name"})
        evp.op("barrier", "wait for completion", num_results=0)

    base2 = register_dialect("base2", "custom binary numeral formats")
    if "cast" not in base2:
        base2.op("cast", "convert between numeral formats", num_operands=1,
                 num_results=1, traits=("pure",), fold=_fold_identity_cast)
        for name in ("add", "sub", "mul", "div"):
            base2.op(name, f"{name} on custom formats", num_operands=2,
                     num_results=1, traits=("pure",),
                     verify=_verify_base2_arith)
        base2.op("constant", "custom-format literal", num_operands=0,
                 num_results=1, required_attrs={"value": "real value"},
                 traits=("pure",))

    # ``cyclic``, ``bit`` and ``ub`` from Fig. 5 are support dialects for
    # base2; we register them with their carrier ops so the dialect graph
    # matches the figure.
    cyclic = register_dialect("cyclic", "modular/wrapping integer semantics")
    if "wrap" not in cyclic:
        cyclic.op("wrap", "wrap a value into a modulus", num_operands=1,
                  num_results=1, required_attrs={"modulus": "the modulus"},
                  traits=("pure",), fold=_fold_nested_wrap)
    bit = register_dialect("bit", "raw bit manipulation")
    if "extract" not in bit:
        bit.op("extract", "extract a bit range", num_operands=1, num_results=1,
               required_attrs={"lo": "low bit", "hi": "high bit"},
               traits=("pure",), fold=_fold_full_extract)
        bit.op("concat", "concatenate bit vectors", num_results=1,
               traits=("pure",))
    ub = register_dialect("ub", "undefined behaviour markers")
    if "poison" not in ub:
        ub.op("poison", "a poison value", num_operands=0, num_results=1,
              traits=("pure",))

    fsm = register_dialect("fsm", "finite state machines (HLS controllers)")
    if "machine" not in fsm:
        fsm.op("machine", "an FSM; states carried as attributes",
               num_operands=0, num_results=0,
               required_attrs={"sym_name": "machine name",
                               "states": "state list",
                               "initial": "initial state"},
               traits=("symbol",))

    hw = register_dialect("hw", "structural hardware (RTL-like)")
    if "module" not in hw:
        hw.op("module", "a hardware module definition", num_operands=0,
              num_results=0, num_regions=1,
              required_attrs={"sym_name": "module name",
                              "ports": "port list"},
              traits=("symbol",))
        hw.op("instance", "instantiate a module", num_results=VARIADIC,
              required_attrs={"module": "module symbol",
                              "instance_name": "instance name"})
        hw.op("wire", "a named wire", num_operands=1, num_results=1,
              required_attrs={"name": "wire name"})
        hw.op("reg", "a clocked register", num_operands=1, num_results=1,
              required_attrs={"name": "register name"})
        hw.op("output", "module outputs", num_results=0,
              traits=("terminator",))
        hw.op("constant", "hardware constant", num_operands=0, num_results=1,
              required_attrs={"value": "bits"}, traits=("pure",))


register()
