"""EVEREST tensor-language dialects: ``ekl``, ``esn``, ``teil``, ``cfdlang``.

These four dialects carry the kernel-language pipeline of the paper's Fig. 5:

* ``ekl`` — operations produced directly from EVEREST Kernel Language
  programs.  Values are *labelled tensors*: each op carries an ``axes``
  attribute naming the Einstein indices of its result's dimensions.
* ``esn`` — the Einstein-notation dialect: explicit ``einsum`` contractions,
  gathers (subscripted subscripts), selects and index stacking.
* ``teil`` — the Tensor Intermediate Language (TeIL): shape-typed tensor
  ops with no index names left; the hand-off point to loop generation.
* ``cfdlang`` — the legacy CFDlang frontend dialect (tensor assignments of
  product/contraction expressions).

All four share the convention that tensor values use
:class:`repro.ir.types.TensorType`.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.core import Operation
from repro.ir.dialect import VARIADIC, register_dialect
from repro.ir.passes import PatternRewriter, RewritePattern
from repro.ir.types import TensorType


def _verify_axes(op: Operation) -> None:
    axes = op.attr("axes")
    if axes is None:
        return
    result_type = op.results[0].type
    if isinstance(result_type, TensorType) and len(axes) != result_type.rank:
        raise IRError(
            f"{op.name}: {len(axes)} axis labels for rank-{result_type.rank} result"
        )


def _verify_einsum(op: Operation) -> None:
    spec = op.attr("spec")
    if not isinstance(spec, str) or "->" not in spec:
        raise IRError(f"{op.name}: spec must look like 'ab,bc->ac'")
    inputs = spec.split("->")[0].split(",")
    if len(inputs) != len(op.operands):
        raise IRError(
            f"{op.name}: spec has {len(inputs)} inputs but op has "
            f"{len(op.operands)} operands"
        )


# -- canonicalization ------------------------------------------------------------


def _fold_identity_transpose(op: Operation):
    perm = op.attr("perm")
    if perm == list(range(len(perm or []))) and \
            op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_identity_reshape(op: Operation):
    if op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_identity_broadcast(op: Operation):
    if op.attr("in_axes") == op.attr("axes") and \
            op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_empty_reduce(op: Operation):
    if op.attr("axes") == [] and op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_select_same(op: Operation):
    if len(op.operands) == 3 and op.operands[1] is op.operands[2]:
        return op.operands[1]
    return None


# Identity elements of the elementwise map functions.  Only float-safe
# identities are listed (no ``x * 0`` — NaN/Inf); ``subf``/``divf`` fold on
# the right operand only.
_MAP_RIGHT_IDENTITY = {"addf": 0.0, "subf": 0.0, "mulf": 1.0, "divf": 1.0}
_MAP_LEFT_IDENTITY = {"addf": 0.0, "mulf": 1.0}


def _broadcast_source_const(value):
    """The scalar constant a value broadcasts from, or None.

    Chases through ``esn.broadcast``/``teil.broadcast`` producers to an
    ``arith.constant``/``ekl.literal`` (rank-0 literals are broadcast into
    the map's iteration space by the lowerings)."""
    producer = value.owner_op()
    while producer is not None and \
            producer.name in ("esn.broadcast", "teil.broadcast"):
        value = producer.operands[0]
        producer = value.owner_op()
    if producer is not None and \
            producer.name in ("arith.constant", "ekl.literal"):
        constant = producer.attr("value")
        if isinstance(constant, (bool, int, float)):
            return constant
    return None


def _fold_map_identity(op: Operation):
    """``map(addf)(x, broadcast(0.0)) -> x`` and friends."""
    if len(op.operands) != 2:
        return None
    fn = op.attr("fn")
    lhs, rhs = op.operands
    result_type = op.results[0].type
    right_id = _MAP_RIGHT_IDENTITY.get(fn)
    if right_id is not None and lhs.type == result_type and \
            _broadcast_source_const(rhs) == right_id:
        return lhs
    left_id = _MAP_LEFT_IDENTITY.get(fn)
    if left_id is not None and rhs.type == result_type and \
            _broadcast_source_const(lhs) == left_id:
        return rhs
    return None


class _TransposeOfTranspose(RewritePattern):
    """``transpose(transpose(x, p), q)`` -> one transpose with ``p∘q``
    (or just ``x`` when the composition is the identity)."""

    op_name = "teil.transpose"

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        inner = op.operands[0].owner_op()
        if inner is None or inner.name != "teil.transpose":
            return False
        p, q = inner.attr("perm"), op.attr("perm")
        if not p or not q or len(p) != len(q):
            return False
        combined = [p[j] for j in q]
        source = inner.operands[0]
        if combined == list(range(len(combined))):
            if source.type != op.results[0].type:
                return False
            rewriter.replace_op(op, [source])
            return True
        merged = rewriter.builder_before(op).create(
            "teil.transpose", [source], [op.results[0].type],
            {"perm": combined},
        )
        rewriter.replace_op(op, [merged.result])
        return True


class _ReshapeOfReshape(RewritePattern):
    """``reshape(reshape(x))`` -> ``reshape(x)``."""

    op_name = "teil.reshape"

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        inner = op.operands[0].owner_op()
        if inner is None or inner.name != "teil.reshape":
            return False
        merged = rewriter.builder_before(op).create(
            "teil.reshape", [inner.operands[0]], [op.results[0].type],
            dict(op.attributes),
        )
        rewriter.replace_op(op, [merged.result])
        return True


def register() -> None:
    """Register the tensor-language dialects (idempotent)."""
    ekl = register_dialect("ekl", "EVEREST Kernel Language ops")
    if "kernel" not in ekl:
        ekl.op("kernel", "an EKL kernel body", num_operands=0, num_results=0,
               num_regions=1,
               required_attrs={"sym_name": "kernel name",
                               "index_space": "index name -> extent"},
               traits=("symbol",))
        ekl.op("arg", "bind a kernel argument tensor", num_operands=0,
               num_results=1, required_attrs={"name": "argument name"},
               traits=("pure", "interface"), verify=_verify_axes)
        ekl.op("literal", "scalar literal broadcast over axes",
               num_operands=0, num_results=1,
               required_attrs={"value": "the literal"}, traits=("pure",))
        ekl.op("index", "the value of an Einstein index", num_operands=0,
               num_results=1, required_attrs={"name": "index name"},
               traits=("pure",))
        for name in ("add", "sub", "mul", "div", "min", "max"):
            ekl.op(name, f"elementwise {name} with broadcasting",
                   num_operands=2, num_results=1, traits=("pure",),
                   verify=_verify_axes)
        for name in ("cmp_le", "cmp_lt", "cmp_ge", "cmp_gt", "cmp_eq"):
            ekl.op(name, "elementwise comparison", num_operands=2,
                   num_results=1, traits=("pure",), verify=_verify_axes)
        ekl.op("select", "elementwise ternary select", num_operands=3,
               num_results=1, traits=("pure",), verify=_verify_axes)
        ekl.op("subscript", "index a tensor with index expressions",
               num_results=1, traits=("pure",), verify=_verify_axes)
        ekl.op("stack", "in-place construction: stack along a new axis",
               num_results=1, traits=("pure",), verify=_verify_axes)
        ekl.op("sum", "Einstein summation over named indices",
               num_operands=1, num_results=1,
               required_attrs={"over": "reduced index names"},
               traits=("pure",), verify=_verify_axes)
        ekl.op("call", "scalar intrinsic applied elementwise",
               num_results=1, required_attrs={"fn": "intrinsic name"},
               traits=("pure",), verify=_verify_axes)
        ekl.op("yield", "kernel result binding", num_results=0,
               required_attrs={"names": "output names"},
               traits=("terminator",))

    esn = register_dialect("esn", "Einstein notation dialect")
    if "einsum" not in esn:
        esn.op("einsum", "generalized tensor contraction", num_results=1,
               required_attrs={"spec": "einsum spec, e.g. 'ab,bc->ac'"},
               traits=("pure",), verify=_verify_einsum)
        esn.op("gather", "indirect indexing (subscripted subscripts)",
               num_results=1,
               required_attrs={"spec": "gather axis spec"},
               traits=("pure",))
        esn.op("select", "elementwise select", num_operands=3, num_results=1,
               traits=("pure",), fold=_fold_select_same)
        esn.op("map", "elementwise scalar function over operands",
               num_results=1, required_attrs={"fn": "scalar op name"},
               traits=("pure",), fold=_fold_map_identity)
        esn.op("stack", "stack tensors along a new trailing axis",
               num_results=1, traits=("pure",))
        esn.op("iota", "index values along an axis", num_operands=0,
               num_results=1, required_attrs={"extent": "axis length"},
               traits=("pure",))
        esn.op("broadcast", "insert broadcast axes", num_operands=1,
               num_results=1, traits=("pure",),
               fold=_fold_identity_broadcast)
        esn.op("reduce", "sum over named axes", num_operands=1,
               num_results=1, required_attrs={"axes": "axis positions"},
               traits=("pure",), fold=_fold_empty_reduce)

    teil = register_dialect("teil", "Tensor Intermediate Language")
    if "contract" not in teil:
        teil.add_canonical_pattern(_TransposeOfTranspose())
        teil.add_canonical_pattern(_ReshapeOfReshape())
        teil.op("contract", "pairwise tensor contraction", num_operands=2,
                num_results=1,
                required_attrs={"lhs_axes": "contraction axes of lhs",
                                "rhs_axes": "contraction axes of rhs"},
                traits=("pure",))
        teil.op("reduce", "reduction over trailing axes", num_operands=1,
                num_results=1,
                required_attrs={"axes": "axes to reduce", "kind": "add/mul/max"},
                traits=("pure",), fold=_fold_empty_reduce)
        teil.op("map", "elementwise op", num_results=1,
                required_attrs={"fn": "scalar op name"}, traits=("pure",),
                fold=_fold_map_identity)
        teil.op("gather", "gather with integer index tensors", num_results=1,
                traits=("pure",))
        teil.op("stack", "stack along new trailing axis", num_results=1,
                traits=("pure",))
        teil.op("transpose", "permute axes", num_operands=1, num_results=1,
                required_attrs={"perm": "axis permutation"}, traits=("pure",),
                fold=_fold_identity_transpose)
        teil.op("reshape", "reshape", num_operands=1, num_results=1,
                traits=("pure",), fold=_fold_identity_reshape)
        teil.op("broadcast", "broadcast to shape", num_operands=1,
                num_results=1, traits=("pure",),
                fold=_fold_identity_broadcast)
        teil.op("constant", "tensor literal", num_operands=0, num_results=1,
                required_attrs={"value": "dense data"}, traits=("pure",))
        teil.op("iota", "0..n-1 vector", num_operands=0, num_results=1,
                traits=("pure",))
        teil.op("select", "elementwise select", num_operands=3, num_results=1,
                traits=("pure",), fold=_fold_select_same)

    cfdlang = register_dialect("cfdlang", "legacy CFDlang frontend dialect")
    if "program" not in cfdlang:
        cfdlang.op("program", "a CFDlang program", num_operands=0,
                   num_results=0, num_regions=1,
                   required_attrs={"sym_name": "program name"},
                   traits=("symbol",))
        cfdlang.op("decl", "tensor variable declaration", num_operands=0,
                   num_results=1,
                   required_attrs={"name": "variable", "io": "in/out/var"},
                   traits=("pure", "interface"))
        cfdlang.op("product", "outer product", num_operands=2, num_results=1,
                   traits=("pure",))
        cfdlang.op("contract", "contraction over paired dims", num_operands=1,
                   num_results=1,
                   required_attrs={"pairs": "dimension pairs"},
                   traits=("pure",))
        for name in ("add", "sub", "mul", "div"):
            cfdlang.op(name, f"elementwise {name}", num_operands=2,
                       num_results=1, traits=("pure",))
        cfdlang.op("assign", "bind expression to output", num_operands=1,
                   num_results=0, required_attrs={"name": "output name"})

    jabbah = register_dialect(
        "jabbah", "operation-set-architecture graphs for ML models"
    )
    if "model" not in jabbah:
        jabbah.op("model", "an ML model graph", num_operands=0, num_results=0,
                  num_regions=1, required_attrs={"sym_name": "model name"},
                  traits=("symbol",))
        jabbah.op("op", "one OSA operation", num_results=VARIADIC,
                  required_attrs={"osa": "operation-set op name"})
        jabbah.op("weights", "model parameters", num_operands=0, num_results=1,
                  traits=("pure",))
        jabbah.op("output", "model outputs", num_results=0,
                  traits=("terminator",))


register()
