"""EVEREST tensor-language dialects: ``ekl``, ``esn``, ``teil``, ``cfdlang``.

These four dialects carry the kernel-language pipeline of the paper's Fig. 5:

* ``ekl`` — operations produced directly from EVEREST Kernel Language
  programs.  Values are *labelled tensors*: each op carries an ``axes``
  attribute naming the Einstein indices of its result's dimensions.
* ``esn`` — the Einstein-notation dialect: explicit ``einsum`` contractions,
  gathers (subscripted subscripts), selects and index stacking.
* ``teil`` — the Tensor Intermediate Language (TeIL): shape-typed tensor
  ops with no index names left; the hand-off point to loop generation.
* ``cfdlang`` — the legacy CFDlang frontend dialect (tensor assignments of
  product/contraction expressions).

All four share the convention that tensor values use
:class:`repro.ir.types.TensorType`.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.analysis import (
    AbstractValue,
    AnalysisError,
    common_dtype,
    from_type,
    merge_shapes,
)
from repro.ir.core import Operation
from repro.ir.dialect import VARIADIC, register_dialect
from repro.ir.passes import PatternRewriter, RewritePattern
from repro.ir.types import TensorType


def _verify_axes(op: Operation) -> None:
    axes = op.attr("axes")
    if axes is None:
        return
    result_type = op.results[0].type
    if isinstance(result_type, TensorType) and len(axes) != result_type.rank:
        raise IRError(
            f"{op.name}: {len(axes)} axis labels for rank-{result_type.rank} result"
        )


def _verify_einsum(op: Operation) -> None:
    spec = op.attr("spec")
    if not isinstance(spec, str) or "->" not in spec:
        raise IRError(f"{op.name}: spec must look like 'ab,bc->ac'")
    inputs = spec.split("->")[0].split(",")
    if len(inputs) != len(op.operands):
        raise IRError(
            f"{op.name}: spec has {len(inputs)} inputs but op has "
            f"{len(op.operands)} operands"
        )


# -- transfer functions (abstract interpretation) --------------------------------
#
# Shape/dtype rules for the tensor dialects, registered alongside the OpDefs
# (see repro.ir.analysis).  These encode the *semantics* the lowerings rely
# on — e.g. ``broadcast.in_axes ⊆ broadcast.axes`` and ``reduce.axes`` being
# integer positions — so the typed verifier statically rejects miscompiles
# like the PR 4 esn.reduce axis-label bug that are structurally well-formed.


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _transfer_ekl_axes(result_dtype=None):
    """ekl ops: result extents come from the kernel's index space.

    Each ekl op's ``axes`` (or ``out_axes``) attribute labels its result
    dimensions; inside an ``ekl.kernel`` those labels have declared extents
    in ``index_space``, so the declared result type can be checked against
    them.  Anonymous labels (``~n``) contribute no constraint.
    """

    def transfer(op, operands, analysis):
        axes = op.attr("out_axes")
        if axes is None:
            axes = op.attr("axes")
        shape = None
        if isinstance(axes, (list, tuple)) and \
                all(isinstance(a, str) for a in axes):
            space = analysis.index_space(op)
            if space is not None:
                shape = tuple(space.get(label) for label in axes)
        return [AbstractValue(shape, result_dtype)] * len(op.results)

    return transfer


def _transfer_broadcast(op, operands, analysis):
    src = operands[0]
    in_axes = op.attr("in_axes") or []
    axes = op.attr("axes")
    if not isinstance(axes, (list, tuple)) or \
            not isinstance(in_axes, (list, tuple)):
        return None
    missing = [a for a in in_axes if a not in axes]
    if missing:
        raise AnalysisError(
            f"broadcast in_axes entries {missing!r} are not in axes "
            f"{list(axes)!r} (are they reduction positions, not labels?)"
        )
    if src.shape is not None and len(src.shape) != len(in_axes):
        raise AnalysisError(
            f"broadcast operand has rank {len(src.shape)} but "
            f"{len(in_axes)} in_axes"
        )
    shape = [None] * len(axes)
    if src.shape is not None:
        for k, label in enumerate(in_axes):
            shape[axes.index(label)] = src.shape[k]
    return [AbstractValue(tuple(shape), src.dtype)]


def _transfer_reduce(op, operands, analysis):
    src = operands[0]
    positions = op.attr("axes")
    if not isinstance(positions, (list, tuple)) or \
            not all(_is_int(p) for p in positions):
        raise AnalysisError(
            f"reduce axes must be integer positions, got {positions!r}"
        )
    shape = None
    if src.shape is not None:
        rank = len(src.shape)
        bad = sorted(p for p in positions if not 0 <= p < rank)
        if bad:
            raise AnalysisError(
                f"reduce positions {bad} out of range for operand rank {rank}"
            )
        dropped = set(positions)
        shape = tuple(d for i, d in enumerate(src.shape) if i not in dropped)
    out_axes = op.attr("out_axes")
    if isinstance(out_axes, (list, tuple)) and shape is not None and \
            len(out_axes) != len(shape):
        raise AnalysisError(
            f"reduce has {len(out_axes)} out_axes for a rank-{len(shape)} "
            "result"
        )
    return [AbstractValue(shape, src.dtype)]


def _transfer_einsum(op, operands, analysis):
    spec = op.attr("spec")
    if not isinstance(spec, str) or "->" not in spec:
        return None  # the structural verifier reports malformed specs
    in_part, out_part = spec.split("->", 1)
    factor_specs = in_part.split(",") if in_part else []
    if len(factor_specs) != len(operands):
        return None  # arity mismatch is a structural error
    extents = {}
    for fs, factor in zip(factor_specs, operands):
        if factor.shape is None:
            continue
        if len(factor.shape) != len(fs):
            raise AnalysisError(
                f"einsum factor {fs!r} names {len(fs)} indices but the "
                f"operand has rank {len(factor.shape)}"
            )
        for letter, extent in zip(fs, factor.shape):
            if extent is None:
                continue
            previous = extents.setdefault(letter, extent)
            if previous != extent:
                raise AnalysisError(
                    f"einsum index {letter!r} bound to extents "
                    f"{previous} and {extent}"
                )
    unbound = [letter for letter in out_part
               if all(letter not in fs for fs in factor_specs)]
    if unbound:
        raise AnalysisError(
            f"einsum output indices {unbound!r} not bound by any factor"
        )
    shape = tuple(extents.get(letter) for letter in out_part)
    return [AbstractValue(shape, common_dtype(operands))]


def _transfer_map(op, operands, analysis):
    fn = op.attr("fn")
    shape = merge_shapes([a.shape for a in operands], "map operands")
    if isinstance(fn, str) and fn.startswith("cmp"):
        dtype = "i1"
    else:
        dtype = common_dtype(operands)
    return [AbstractValue(shape, dtype)]


def _transfer_tensor_select(op, operands, analysis):
    cond, then, other = operands
    if cond.dtype is not None and cond.dtype != "i1":
        raise AnalysisError(
            f"select condition has dtype {cond.dtype}, not i1"
        )
    shape = merge_shapes([cond.shape, then.shape, other.shape],
                         "select operands")
    return [AbstractValue(shape, common_dtype([then, other]))]


def _transfer_stack(op, operands, analysis):
    inner = merge_shapes([a.shape for a in operands], "stack operands")
    shape = None if inner is None else inner + (len(operands),)
    return [AbstractValue(shape, common_dtype(operands))]


def _transfer_esn_iota(op, operands, analysis):
    extent = op.attr("extent")
    shape = (extent,) if _is_int(extent) else None
    return [AbstractValue(shape, None)]


def _transfer_transpose(op, operands, analysis):
    src = operands[0]
    perm = op.attr("perm")
    if not isinstance(perm, (list, tuple)) or not all(_is_int(p) for p in perm):
        return None
    if sorted(perm) != list(range(len(perm))):
        raise AnalysisError(f"perm {list(perm)!r} is not a permutation")
    shape = None
    if src.shape is not None:
        if len(src.shape) != len(perm):
            raise AnalysisError(
                f"perm has {len(perm)} entries for operand rank "
                f"{len(src.shape)}"
            )
        shape = tuple(src.shape[p] for p in perm)
    return [AbstractValue(shape, src.dtype)]


def _transfer_reshape(op, operands, analysis):
    src = operands[0]
    declared = from_type(op.results[0].type)
    if src.shape is not None and declared.shape is not None and \
            None not in src.shape and None not in declared.shape:
        src_count = 1
        for dim in src.shape:
            src_count *= dim
        dst_count = 1
        for dim in declared.shape:
            dst_count *= dim
        if src_count != dst_count:
            raise AnalysisError(
                f"reshape changes element count {src_count} -> {dst_count}"
            )
    return [AbstractValue(declared.shape, src.dtype)]


def _transfer_contract(op, operands, analysis):
    lhs, rhs = operands
    lhs_axes = op.attr("lhs_axes") or []
    rhs_axes = op.attr("rhs_axes") or []
    if len(lhs_axes) != len(rhs_axes):
        raise AnalysisError(
            f"contract pairs {len(lhs_axes)} lhs axes with "
            f"{len(rhs_axes)} rhs axes"
        )
    for side, axes, abstract in (("lhs", lhs_axes, lhs),
                                 ("rhs", rhs_axes, rhs)):
        if abstract.shape is None:
            continue
        bad = sorted(p for p in axes
                     if not (_is_int(p) and 0 <= p < len(abstract.shape)))
        if bad:
            raise AnalysisError(
                f"contract {side} axes {bad} out of range for rank "
                f"{len(abstract.shape)}"
            )
    if lhs.shape is not None and rhs.shape is not None:
        for a, b in zip(lhs_axes, rhs_axes):
            da, db = lhs.shape[a], rhs.shape[b]
            if da is not None and db is not None and da != db:
                raise AnalysisError(
                    f"contracted extents differ: lhs axis {a} is {da}, "
                    f"rhs axis {b} is {db}"
                )
        shape = tuple(
            d for i, d in enumerate(lhs.shape) if i not in set(lhs_axes)
        ) + tuple(
            d for i, d in enumerate(rhs.shape) if i not in set(rhs_axes)
        )
    else:
        shape = None
    return [AbstractValue(shape, common_dtype(operands))]


def _transfer_gather(op, operands, analysis):
    base = operands[0]
    base_axes = op.attr("base_axes")
    if base.shape is not None and isinstance(base_axes, (list, tuple)) and \
            len(base_axes) != len(base.shape):
        raise AnalysisError(
            f"gather names {len(base_axes)} base_axes for an operand of "
            f"rank {len(base.shape)}"
        )
    return [AbstractValue(None, base.dtype)]


def _transfer_cfd_product(op, operands, analysis):
    lhs, rhs = operands
    shape = None
    if lhs.shape is not None and rhs.shape is not None:
        shape = lhs.shape + rhs.shape
    return [AbstractValue(shape, common_dtype(operands))]


def _transfer_cfd_binary(op, operands, analysis):
    # CFDlang binaries broadcast scalars over the tensor side.
    lhs, rhs = operands
    tensor_shapes = [s for s in (lhs.shape, rhs.shape)
                     if s is not None and s != ()]
    if tensor_shapes:
        shape = merge_shapes(tensor_shapes, "cfdlang operands")
    elif lhs.shape == () and rhs.shape == ():
        shape = ()
    else:
        shape = None
    return [AbstractValue(shape, common_dtype(operands))]


def _transfer_cfd_contract(op, operands, analysis):
    inner = operands[0]
    pairs = op.attr("pairs") or []
    if inner.shape is None:
        return [AbstractValue(None, inner.dtype)]
    rank = len(inner.shape)
    dropped = set()
    for pair in pairs:
        a, b = pair
        if not (_is_int(a) and _is_int(b) and 1 <= a <= rank and
                1 <= b <= rank):
            raise AnalysisError(
                f"contract pair {pair!r} out of range for rank {rank} "
                "(pairs are 1-based)"
            )
        da, db = inner.shape[a - 1], inner.shape[b - 1]
        if da is not None and db is not None and da != db:
            raise AnalysisError(
                f"contracted dims {a} and {b} have extents {da} and {db}"
            )
        dropped.update((a - 1, b - 1))
    shape = tuple(d for i, d in enumerate(inner.shape) if i not in dropped)
    return [AbstractValue(shape, inner.dtype)]


# -- canonicalization ------------------------------------------------------------


def _fold_identity_transpose(op: Operation):
    perm = op.attr("perm")
    if perm == list(range(len(perm or []))) and \
            op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_identity_reshape(op: Operation):
    if op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_identity_broadcast(op: Operation):
    if op.attr("in_axes") == op.attr("axes") and \
            op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_empty_reduce(op: Operation):
    if op.attr("axes") == [] and op.operands[0].type == op.results[0].type:
        return op.operands[0]
    return None


def _fold_select_same(op: Operation):
    if len(op.operands) == 3 and op.operands[1] is op.operands[2]:
        return op.operands[1]
    return None


# Identity elements of the elementwise map functions.  Only float-safe
# identities are listed (no ``x * 0`` — NaN/Inf); ``subf``/``divf`` fold on
# the right operand only.
_MAP_RIGHT_IDENTITY = {"addf": 0.0, "subf": 0.0, "mulf": 1.0, "divf": 1.0}
_MAP_LEFT_IDENTITY = {"addf": 0.0, "mulf": 1.0}


def _broadcast_source_const(value):
    """The scalar constant a value broadcasts from, or None.

    Chases through ``esn.broadcast``/``teil.broadcast`` producers to an
    ``arith.constant``/``ekl.literal`` (rank-0 literals are broadcast into
    the map's iteration space by the lowerings)."""
    producer = value.owner_op()
    while producer is not None and \
            producer.name in ("esn.broadcast", "teil.broadcast"):
        value = producer.operands[0]
        producer = value.owner_op()
    if producer is not None and \
            producer.name in ("arith.constant", "ekl.literal"):
        constant = producer.attr("value")
        if isinstance(constant, (bool, int, float)):
            return constant
    return None


def _fold_map_identity(op: Operation):
    """``map(addf)(x, broadcast(0.0)) -> x`` and friends."""
    if len(op.operands) != 2:
        return None
    fn = op.attr("fn")
    lhs, rhs = op.operands
    result_type = op.results[0].type
    right_id = _MAP_RIGHT_IDENTITY.get(fn)
    if right_id is not None and lhs.type == result_type and \
            _broadcast_source_const(rhs) == right_id:
        return lhs
    left_id = _MAP_LEFT_IDENTITY.get(fn)
    if left_id is not None and rhs.type == result_type and \
            _broadcast_source_const(lhs) == left_id:
        return rhs
    return None


class _TransposeOfTranspose(RewritePattern):
    """``transpose(transpose(x, p), q)`` -> one transpose with ``p∘q``
    (or just ``x`` when the composition is the identity)."""

    op_name = "teil.transpose"

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        inner = op.operands[0].owner_op()
        if inner is None or inner.name != "teil.transpose":
            return False
        p, q = inner.attr("perm"), op.attr("perm")
        if not p or not q or len(p) != len(q):
            return False
        combined = [p[j] for j in q]
        source = inner.operands[0]
        if combined == list(range(len(combined))):
            if source.type != op.results[0].type:
                return False
            rewriter.replace_op(op, [source])
            return True
        merged = rewriter.builder_before(op).create(
            "teil.transpose", [source], [op.results[0].type],
            {"perm": combined},
        )
        rewriter.replace_op(op, [merged.result])
        return True


class _ReshapeOfReshape(RewritePattern):
    """``reshape(reshape(x))`` -> ``reshape(x)``."""

    op_name = "teil.reshape"

    def match_and_rewrite(self, op: Operation,
                          rewriter: PatternRewriter) -> bool:
        inner = op.operands[0].owner_op()
        if inner is None or inner.name != "teil.reshape":
            return False
        merged = rewriter.builder_before(op).create(
            "teil.reshape", [inner.operands[0]], [op.results[0].type],
            dict(op.attributes),
        )
        rewriter.replace_op(op, [merged.result])
        return True


def register() -> None:
    """Register the tensor-language dialects (idempotent)."""
    ekl = register_dialect("ekl", "EVEREST Kernel Language ops")
    if "kernel" not in ekl:
        ekl.op("kernel", "an EKL kernel body", num_operands=0, num_results=0,
               num_regions=1,
               required_attrs={"sym_name": "kernel name",
                               "index_space": "index name -> extent"},
               traits=("symbol",))
        ekl.op("arg", "bind a kernel argument tensor", num_operands=0,
               num_results=1, required_attrs={"name": "argument name"},
               traits=("pure", "interface"), verify=_verify_axes,
               transfer=_transfer_ekl_axes())
        ekl.op("literal", "scalar literal broadcast over axes",
               num_operands=0, num_results=1,
               required_attrs={"value": "the literal"}, traits=("pure",),
               transfer=_transfer_ekl_axes())
        ekl.op("index", "the value of an Einstein index", num_operands=0,
               num_results=1, required_attrs={"name": "index name"},
               traits=("pure",), transfer=_transfer_ekl_axes())
        for name in ("add", "sub", "mul", "div", "min", "max"):
            ekl.op(name, f"elementwise {name} with broadcasting",
                   num_operands=2, num_results=1, traits=("pure",),
                   verify=_verify_axes, transfer=_transfer_ekl_axes())
        for name in ("cmp_le", "cmp_lt", "cmp_ge", "cmp_gt", "cmp_eq"):
            ekl.op(name, "elementwise comparison", num_operands=2,
                   num_results=1, traits=("pure",), verify=_verify_axes,
                   transfer=_transfer_ekl_axes(result_dtype="i1"))
        ekl.op("select", "elementwise ternary select", num_operands=3,
               num_results=1, traits=("pure",), verify=_verify_axes,
               transfer=_transfer_ekl_axes())
        ekl.op("subscript", "index a tensor with index expressions",
               num_results=1, traits=("pure",), verify=_verify_axes,
               transfer=_transfer_ekl_axes())
        ekl.op("stack", "in-place construction: stack along a new axis",
               num_results=1, traits=("pure",), verify=_verify_axes,
               transfer=_transfer_ekl_axes())
        ekl.op("sum", "Einstein summation over named indices",
               num_operands=1, num_results=1,
               required_attrs={"over": "reduced index names"},
               traits=("pure",), verify=_verify_axes,
               transfer=_transfer_ekl_axes())
        ekl.op("call", "scalar intrinsic applied elementwise",
               num_results=1, required_attrs={"fn": "intrinsic name"},
               traits=("pure",), verify=_verify_axes,
               transfer=_transfer_ekl_axes())
        ekl.op("yield", "kernel result binding", num_results=0,
               required_attrs={"names": "output names"},
               traits=("terminator",))

    esn = register_dialect("esn", "Einstein notation dialect")
    if "einsum" not in esn:
        esn.op("einsum", "generalized tensor contraction", num_results=1,
               required_attrs={"spec": "einsum spec, e.g. 'ab,bc->ac'"},
               traits=("pure",), verify=_verify_einsum,
               transfer=_transfer_einsum)
        esn.op("gather", "indirect indexing (subscripted subscripts)",
               num_results=1,
               required_attrs={"spec": "gather axis spec"},
               traits=("pure",), transfer=_transfer_gather)
        esn.op("select", "elementwise select", num_operands=3, num_results=1,
               traits=("pure",), fold=_fold_select_same,
               transfer=_transfer_tensor_select)
        esn.op("map", "elementwise scalar function over operands",
               num_results=1, required_attrs={"fn": "scalar op name"},
               traits=("pure",), fold=_fold_map_identity,
               transfer=_transfer_map)
        esn.op("stack", "stack tensors along a new trailing axis",
               num_results=1, traits=("pure",), transfer=_transfer_stack)
        esn.op("iota", "index values along an axis", num_operands=0,
               num_results=1, required_attrs={"extent": "axis length"},
               traits=("pure",), transfer=_transfer_esn_iota)
        esn.op("broadcast", "insert broadcast axes", num_operands=1,
               num_results=1, traits=("pure",),
               fold=_fold_identity_broadcast, transfer=_transfer_broadcast)
        esn.op("reduce", "sum over named axes", num_operands=1,
               num_results=1, required_attrs={"axes": "axis positions"},
               traits=("pure",), fold=_fold_empty_reduce,
               transfer=_transfer_reduce)

    teil = register_dialect("teil", "Tensor Intermediate Language")
    if "contract" not in teil:
        teil.add_canonical_pattern(_TransposeOfTranspose())
        teil.add_canonical_pattern(_ReshapeOfReshape())
        teil.op("contract", "pairwise tensor contraction", num_operands=2,
                num_results=1,
                required_attrs={"lhs_axes": "contraction axes of lhs",
                                "rhs_axes": "contraction axes of rhs"},
                traits=("pure",), transfer=_transfer_contract)
        teil.op("reduce", "reduction over trailing axes", num_operands=1,
                num_results=1,
                required_attrs={"axes": "axes to reduce", "kind": "add/mul/max"},
                traits=("pure",), fold=_fold_empty_reduce,
                transfer=_transfer_reduce)
        teil.op("map", "elementwise op", num_results=1,
                required_attrs={"fn": "scalar op name"}, traits=("pure",),
                fold=_fold_map_identity, transfer=_transfer_map)
        teil.op("gather", "gather with integer index tensors", num_results=1,
                traits=("pure",), transfer=_transfer_gather)
        teil.op("stack", "stack along new trailing axis", num_results=1,
                traits=("pure",), transfer=_transfer_stack)
        teil.op("transpose", "permute axes", num_operands=1, num_results=1,
                required_attrs={"perm": "axis permutation"}, traits=("pure",),
                fold=_fold_identity_transpose, transfer=_transfer_transpose)
        teil.op("reshape", "reshape", num_operands=1, num_results=1,
                traits=("pure",), fold=_fold_identity_reshape,
                transfer=_transfer_reshape)
        teil.op("broadcast", "broadcast to shape", num_operands=1,
                num_results=1, traits=("pure",),
                fold=_fold_identity_broadcast, transfer=_transfer_broadcast)
        teil.op("constant", "tensor literal", num_operands=0, num_results=1,
                required_attrs={"value": "dense data"}, traits=("pure",))
        teil.op("iota", "0..n-1 vector", num_operands=0, num_results=1,
                traits=("pure",))
        teil.op("select", "elementwise select", num_operands=3, num_results=1,
                traits=("pure",), fold=_fold_select_same,
                transfer=_transfer_tensor_select)

    cfdlang = register_dialect("cfdlang", "legacy CFDlang frontend dialect")
    if "program" not in cfdlang:
        cfdlang.op("program", "a CFDlang program", num_operands=0,
                   num_results=0, num_regions=1,
                   required_attrs={"sym_name": "program name"},
                   traits=("symbol",))
        cfdlang.op("decl", "tensor variable declaration", num_operands=0,
                   num_results=1,
                   required_attrs={"name": "variable", "io": "in/out/var"},
                   traits=("pure", "interface"))
        cfdlang.op("product", "outer product", num_operands=2, num_results=1,
                   traits=("pure",), transfer=_transfer_cfd_product)
        cfdlang.op("contract", "contraction over paired dims", num_operands=1,
                   num_results=1,
                   required_attrs={"pairs": "dimension pairs"},
                   traits=("pure",), transfer=_transfer_cfd_contract)
        for name in ("add", "sub", "mul", "div"):
            cfdlang.op(name, f"elementwise {name}", num_operands=2,
                       num_results=1, traits=("pure",),
                       transfer=_transfer_cfd_binary)
        cfdlang.op("assign", "bind expression to output", num_operands=1,
                   num_results=0, required_attrs={"name": "output name"})

    jabbah = register_dialect(
        "jabbah", "operation-set-architecture graphs for ML models"
    )
    if "model" not in jabbah:
        jabbah.op("model", "an ML model graph", num_operands=0, num_results=0,
                  num_regions=1, required_attrs={"sym_name": "model name"},
                  traits=("symbol",))
        jabbah.op("op", "one OSA operation", num_results=VARIADIC,
                  required_attrs={"osa": "operation-set op name"})
        jabbah.op("weights", "model parameters", num_operands=0, num_results=1,
                  traits=("pure",))
        jabbah.op("output", "model outputs", num_results=0,
                  traits=("terminator",))


register()
