"""EVEREST dialect registrations and the Fig. 5 dialect graph.

Importing this package registers every dialect used by the SDK into
:data:`repro.ir.dialect.REGISTRY`.  :data:`DIALECT_GRAPH` encodes the
lowering edges of the paper's Fig. 5; :func:`lowering_for` resolves an edge
to the function implementing it (implemented across the frontends, the
tensor pipeline and the HLS engine).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.dialects import builtin as _builtin  # noqa: F401 (registers)
from repro.dialects import system as _system  # noqa: F401 (registers)
from repro.dialects import tensorlang as _tensorlang  # noqa: F401 (registers)
from repro.errors import LoweringError

# Edges of the paper's Fig. 5: (source dialect, target dialect).
# "entry" edges come from frontends (outside MLIR) and are included for the
# figure-reproduction benchmark; dialect-to-dialect edges are IR passes.
DIALECT_GRAPH: Tuple[Tuple[str, str], ...] = (
    # EVEREST frontends into entry dialects.
    ("ekl-frontend", "ekl"),
    ("cfdlang-frontend", "cfdlang"),
    ("condrust-frontend", "dfg"),
    ("onnx-frontend", "jabbah"),
    # Entry dialects into the tensor intermediate language.
    ("ekl", "esn"),
    ("esn", "teil"),
    ("cfdlang", "teil"),
    # ML convergence (Operation Set Architectures).
    ("jabbah", "dfg"),
    # Tensor IL into core loop dialects.
    ("teil", "affine"),
    # Coordination / integration / backend chain.
    ("dfg", "olympus"),
    ("olympus", "evp"),
    # HLS backend: loops into FSM + structural hardware.
    ("affine", "fsm"),
    ("affine", "hw"),
)

_LOWERINGS: Dict[Tuple[str, str], Callable] = {}


def register_lowering(source: str, target: str):
    """Decorator: register ``fn`` as the implementation of an edge."""

    def wrap(fn: Callable) -> Callable:
        _LOWERINGS[(source, target)] = fn
        return fn

    return wrap


def lowering_for(source: str, target: str) -> Callable:
    """Resolve a Fig. 5 edge to its implementation.

    Imports the implementing module lazily (frontends and the HLS engine
    depend on the dialects, not vice versa).
    """
    key = (source, target)
    if key not in _LOWERINGS:
        _load_implementations()
    if key not in _LOWERINGS:
        raise LoweringError(f"no lowering registered for {source} -> {target}")
    return _LOWERINGS[key]


def _load_implementations() -> None:
    # Each import populates _LOWERINGS via register_lowering decorators.
    import repro.frontends.cfdlang.lower  # noqa: F401
    import repro.frontends.condrust.lower  # noqa: F401
    import repro.frontends.ekl.lower  # noqa: F401
    import repro.frontends.onnx_front  # noqa: F401
    import repro.hls.synth  # noqa: F401
    import repro.olympus.arch_gen  # noqa: F401
    import repro.tensorpipe.lower_esn  # noqa: F401
    import repro.tensorpipe.lower_teil  # noqa: F401


def registered_edges() -> Tuple[Tuple[str, str], ...]:
    """All edges with an implementation loaded (for the Fig. 5 benchmark)."""
    _load_implementations()
    return tuple(sorted(_LOWERINGS))
