"""Dynamic autotuning: the mARGOt framework (paper §VI-C)."""

from repro.autotuner.margot import (
    Constraint,
    Knob,
    MargotManager,
    Metric,
    MetricMonitor,
    OperatingPoint,
    Rank,
    knowledge_from_dse,
)

__all__ = [
    "Constraint",
    "Knob",
    "MargotManager",
    "Metric",
    "MetricMonitor",
    "OperatingPoint",
    "Rank",
    "knowledge_from_dse",
]
