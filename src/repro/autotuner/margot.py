"""mARGOt: the EVEREST dynamic autotuning framework (paper §VI-C).

mARGOt (Gadioli et al., IEEE TC 2019) selects, at run time, the best
*configuration* of an application from a list of known **operating
points**.  The vocabulary maps directly onto the paper's description:

* **knobs** — variables the library controls (application parameters or
  code variants, e.g. ``variant = cpu | fpga``, ``tile = 64``);
* **metrics** — observable properties (execution time, energy, error);
* **operating points** — knob settings with their *expected* metric values
  (from design-space exploration or profiling);
* **constraints** — prioritized bounds on metrics ("time ≤ 100 ms");
* **rank** — the objective used to order feasible points;
* **monitors** — runtime windows of observed metrics; the manager scales
  its expectations by the observed/expected ratio, which is how adaptation
  to the *execution environment* (CPU load, missing FPGA, data features)
  happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import AutotunerError


@dataclass(frozen=True)
class Knob:
    """One tunable variable and its admissible values."""

    name: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise AutotunerError(f"knob {self.name!r} has no values")


@dataclass(frozen=True)
class Metric:
    """One observable property; ``minimize`` orients comparisons."""

    name: str
    minimize: bool = True


@dataclass
class OperatingPoint:
    """A configuration: knob settings plus expected metric values."""

    knobs: Dict[str, object]
    metrics: Dict[str, float]

    def knob(self, name: str):
        if name not in self.knobs:
            raise AutotunerError(f"operating point lacks knob {name!r}")
        return self.knobs[name]


@dataclass
class Constraint:
    """A prioritized bound on one metric (lower priority number = harder)."""

    metric: str
    upper_bound: Optional[float] = None
    lower_bound: Optional[float] = None
    priority: int = 1

    def satisfied(self, value: float) -> bool:
        if self.upper_bound is not None and value > self.upper_bound:
            return False
        if self.lower_bound is not None and value < self.lower_bound:
            return False
        return True


@dataclass
class Rank:
    """The objective: a weighted combination of metrics to minimize."""

    weights: Dict[str, float]

    def score(self, metrics: Dict[str, float]) -> float:
        try:
            return sum(w * metrics[m] for m, w in self.weights.items())
        except KeyError as missing:
            raise AutotunerError(f"rank references unknown metric {missing}")


class MetricMonitor:
    """A sliding-window monitor of one observed metric."""

    def __init__(self, name: str, window: int = 16):
        if window < 1:
            raise AutotunerError("monitor window must be positive")
        self.name = name
        self.window = window
        self.samples: List[float] = []

    def push(self, value: float) -> None:
        self.samples.append(float(value))
        if len(self.samples) > self.window:
            self.samples.pop(0)

    @property
    def average(self) -> Optional[float]:
        if not self.samples:
            return None
        return sum(self.samples) / len(self.samples)


class MargotManager:
    """The application-level autotuner instance.

    >>> manager = MargotManager(knowledge=op_list)
    >>> manager.add_constraint(Constraint("time_ms", upper_bound=50.0))
    >>> manager.set_rank(Rank({"energy_j": 1.0}))
    >>> config = manager.update()          # best feasible operating point
    >>> manager.observe("time_ms", 61.0)   # runtime feedback
    >>> config = manager.update()          # may switch variant
    """

    def __init__(self, knowledge: Sequence[OperatingPoint],
                 window: int = 16):
        if not knowledge:
            raise AutotunerError("the operating-point list is empty")
        self.knowledge: List[OperatingPoint] = list(knowledge)
        self.constraints: List[Constraint] = []
        self.rank = Rank({name: 1.0
                          for name in self.knowledge[0].metrics})
        self.monitors: Dict[str, MetricMonitor] = {}
        self.window = window
        self.current: Optional[OperatingPoint] = None
        # Per-metric calibration: observed / expected for the current point.
        self.calibration: Dict[str, float] = {}
        self.switches = 0

    # -- configuration -----------------------------------------------------------

    def add_constraint(self, constraint: Constraint) -> "MargotManager":
        self.constraints.append(constraint)
        self.constraints.sort(key=lambda c: c.priority)
        return self

    def set_rank(self, rank: Rank) -> "MargotManager":
        self.rank = rank
        return self

    # -- runtime feedback -----------------------------------------------------------

    def observe(self, metric: str, value: float) -> None:
        """Push one observation of a metric for the *current* point."""
        monitor = self.monitors.setdefault(
            metric, MetricMonitor(metric, self.window)
        )
        monitor.push(value)
        if self.current is not None and metric in self.current.metrics:
            expected = self.current.metrics[metric]
            if expected > 0 and monitor.average:
                self.calibration[metric] = monitor.average / expected

    def expected_metrics(self, point: OperatingPoint) -> Dict[str, float]:
        """The point's metrics scaled by runtime calibration factors."""
        return {
            name: value * self.calibration.get(name, 1.0)
            for name, value in point.metrics.items()
        }

    # -- the decision ------------------------------------------------------------------

    def update(self) -> OperatingPoint:
        """Select the best operating point for the current environment.

        Constraints are applied in priority order; when no point satisfies
        them all, the lowest-priority constraints are relaxed first (the
        mARGOt fallback semantics).
        """
        candidates = list(self.knowledge)
        applied: List[Constraint] = []
        for constraint in self.constraints:
            narrowed = [
                p for p in candidates
                if constraint.satisfied(
                    self.expected_metrics(p).get(constraint.metric,
                                                 float("inf")))
            ]
            if narrowed:
                candidates = narrowed
                applied.append(constraint)
            # else: relax this constraint (keep previous candidate set).
        best = min(candidates,
                   key=lambda p: self.rank.score(self.expected_metrics(p)))
        if self.current is not None and best is not self.current:
            self.switches += 1
        self.current = best
        return best


def knowledge_from_dse(points: Sequence[Dict]) -> List[OperatingPoint]:
    """Build an operating-point list from raw DSE records.

    Each record is ``{"knobs": {...}, "metrics": {...}}`` — e.g. the output
    of :meth:`repro.olympus.OlympusGenerator.explore`.
    """
    knowledge = []
    for record in points:
        knowledge.append(OperatingPoint(dict(record["knobs"]),
                                        dict(record["metrics"])))
    if not knowledge:
        raise AutotunerError("no DSE points provided")
    return knowledge
