"""Content-hash stage caching.

Cache keys are *chained fingerprints*: the key of stage ``n`` is the hash
of (stage name, canonicalized parameters, key of stage ``n-1``), with the
chain rooted in the hash of the source text.  Two compiles of the same
kernel through the same stages with the same parameters therefore share
every key — and every cached result — without the session ever having to
hash arbitrary intermediate objects (ASTs, IR modules, reports).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


def _canonical(part: Any) -> str:
    """A deterministic textual form of one fingerprint component."""
    if part is None or isinstance(part, (str, int, float, bool, bytes)):
        return repr(part)
    if isinstance(part, (list, tuple)):
        return "[" + ",".join(_canonical(p) for p in part) + "]"
    if isinstance(part, dict):
        items = sorted((str(k), _canonical(v)) for k, v in part.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    # Fall back to the type plus str() — number formats, devices and other
    # SDK value objects all print their configuration.  Objects with only
    # the default str/repr would canonicalize to their memory address:
    # never a valid cache key (misses at best, address-reuse collisions
    # at worst), so reject them.
    cls = type(part)
    if cls.__str__ is object.__str__ and cls.__repr__ is object.__repr__:
        raise TypeError(
            f"cannot fingerprint {cls.__name__} (no deterministic "
            "__str__/__repr__); pass a value type or a spec string instead"
        )
    return f"{cls.__name__}({part})"


def fingerprint(*parts: Any) -> str:
    """A stable SHA-256 hex digest of the given components."""
    payload = "\x1f".join(_canonical(p) for p in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one session cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class StageCache:
    """Thread-safe key -> stage-result store with hit/miss accounting.

    Cached values are returned by reference: callers must treat cached
    payloads (IR modules, reports) as immutable, exactly as they would the
    result of a repeated compile.
    """

    _entries: Dict[str, Any] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def lookup(self, key: str) -> Tuple[bool, Optional[Any]]:
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                return True, self._entries[key]
            self.stats.misses += 1
            return False, None

    def store(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value

    def contains(self, key: str) -> bool:
        """Peek without touching the hit/miss counters."""
        with self._lock:
            return key in self._entries

    def peek(self, key: str) -> Tuple[bool, Optional[Any]]:
        """Like :meth:`lookup` but without touching the counters.

        Used by the session's single-flight leader to re-check the cache
        after winning the in-flight slot — that probe is an internal
        consistency check, not a user-visible lookup.
        """
        with self._lock:
            if key in self._entries:
                return True, self._entries[key]
            return False, None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)
