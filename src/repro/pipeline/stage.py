"""The :class:`Stage` protocol and the per-session stage registry.

A stage is a named, pure transformation ``fn(payload, **params) -> payload``
over pipeline payloads (EKL source text, kernel ASTs, IR modules, HLS
reports, Olympus systems, runtime schedules).  Stages are the unit of
caching and instrumentation in :class:`repro.pipeline.PipelineSession`:
the session composes them into compile flows, fingerprints their inputs,
and skips re-execution on a cache hit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.errors import PipelineError


@dataclass(frozen=True)
class Stage:
    """One named phase of the compilation pipeline.

    ``fn`` receives the upstream payload plus keyword parameters and
    returns the downstream payload.  ``cacheable=False`` opts a stage out
    of the session's content-hash cache (for stages with side effects or
    non-deterministic results).
    """

    name: str
    fn: Callable[..., Any]
    description: str = ""
    cacheable: bool = True

    def __call__(self, payload: Any, **params: Any) -> Any:
        return self.fn(payload, **params)


@dataclass
class StageRegistry:
    """Name -> :class:`Stage` mapping owned by one session.

    Each registration bumps the stage's *generation*; the session folds
    it into cache keys so replacing a stage (``replace=True``) never
    serves results cached from the previous implementation.
    """

    _stages: Dict[str, Stage] = field(default_factory=dict)
    _generations: Dict[str, int] = field(default_factory=dict)

    def register(self, stage: Stage, *, replace: bool = False) -> Stage:
        if stage.name in self._stages and not replace:
            raise PipelineError(
                f"stage {stage.name!r} is already registered "
                "(pass replace=True to override)"
            )
        self._stages[stage.name] = stage
        self._generations[stage.name] = \
            self._generations.get(stage.name, -1) + 1
        return stage

    def generation(self, name: str) -> int:
        return self._generations.get(name, 0)

    def get(self, name: str) -> Stage:
        try:
            return self._stages[name]
        except KeyError:
            raise PipelineError(
                f"unknown pipeline stage {name!r}; "
                f"registered: {', '.join(sorted(self._stages)) or '(none)'}"
            ) from None

    def names(self) -> List[str]:
        return list(self._stages)

    def __contains__(self, name: str) -> bool:
        return name in self._stages
