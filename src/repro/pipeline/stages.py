"""Built-in pipeline stages: the Fig. 2 SDK flow as composable phases.

Each function here implements one :class:`repro.pipeline.Stage`:

========================  =====================================================
``frontend-parse``        EKL source text -> kernel AST (§V-A1)
``dialect-lowering``      kernel AST -> verified ``affine`` module (Fig. 5)
``canonicalize``          affine module -> canonicalized (and, at ``-O2``,
                          inlined) module; per-pass timings land in the
                          session's :class:`PipelineReport`
``execute``               affine module -> :class:`CompiledKernel`, the
                          vectorized-numpy CPU executor (the HLS flow's
                          host-side analog)
``hls``                   affine module -> :class:`KernelReport`, optionally
                          under a custom data format (§V-B)
``olympus``               kernel report -> DSE points, best config and the
                          generated :class:`SystemArchitecture` (§V-C)
``schedule``              system architecture -> EVP deployment IR and a HEFT
                          schedule on the testbed cluster (§VI-A)
========================  =====================================================

The stage payload dataclasses (:class:`CompileResult`,
:class:`ExecutionResult`, :class:`OlympusResult`, :class:`DeploymentPlan`)
are the session's public result types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import PipelineError


@dataclass
class CompileResult:
    """Frontend + lowering (+ optional HLS) output for one kernel."""

    source: str
    kernel: Any = None            # repro.frontends.ekl.ast.Kernel
    module: Any = None            # repro.ir.Module (affine)
    report: Any = None            # repro.hls.KernelReport
    key: str = ""                 # fingerprint of the last completed stage

    @property
    def name(self) -> str:
        return self.kernel.name if self.kernel is not None else "<unparsed>"


@dataclass
class ExecutionResult:
    """A kernel execution through the compiled (or interpreter) backend."""

    kernel: Any = None            # repro.tensorpipe.codegen.CompiledKernel
    outputs: Dict[str, Any] = field(default_factory=dict)
    seconds: float = 0.0
    key: str = ""                 # fingerprint of the execute stage

    @property
    def backend(self) -> str:
        return self.kernel.backend if self.kernel is not None else "?"


@dataclass
class OlympusResult:
    """Design-space exploration + system generation output."""

    device_name: str
    points: List[Tuple[Any, Any, Any]] = field(default_factory=list)
    best: Any = None              # ArchConfig
    system: Any = None            # SystemArchitecture
    ir: Any = None                # olympus-dialect Module
    key: str = ""                 # fingerprint of the olympus stage


@dataclass
class DeploymentPlan:
    """EVP deployment IR plus the runtime schedule of the system."""

    deployment_ir: Any = None     # evp-dialect Module
    schedule: Any = None          # repro.runtime.ScheduleResult
    cluster_nodes: int = 0


# -- stage implementations -------------------------------------------------------------
#
# Heavy SDK imports stay inside the stage bodies: importing repro.pipeline
# must stay cheap (the basecamp CLI imports it for --help).


def stage_frontend_parse(source: str) -> Any:
    """``frontend-parse``: EKL text -> kernel AST."""
    from repro.frontends.ekl import parse_kernel

    return parse_kernel(source)


def stage_dialect_lowering(kernel: Any, *, canonicalize: bool = True) -> Any:
    """``dialect-lowering``: ekl -> esn -> teil -> affine, then verify.

    With ``canonicalize`` (the default) the *intermediate* lowering steps
    canonicalize their output; the final affine module is left raw so the
    session's ``canonicalize`` stage performs — and times — the
    affine-level optimization itself.  ``canonicalize=False`` is the
    fully raw chain (``--opt-level 0``).

    The stage boundary runs the *typed* verifier
    (:func:`repro.ir.verifier.verify_typed`): beyond structural checks,
    the abstract interpreter re-derives every result's shape/dtype, so a
    lowering miscompile is rejected here without executing anything.
    """
    import repro.dialects  # noqa: F401 (registration side effect)
    from repro.frontends.ekl.lower import (
        lower_ekl_to_esn,
        lower_kernel_to_ekl,
    )
    from repro.ir import verify_typed
    from repro.tensorpipe import lower_esn_to_teil, lower_teil_to_affine

    module = lower_teil_to_affine(
        lower_esn_to_teil(
            lower_ekl_to_esn(lower_kernel_to_ekl(kernel),
                             canonicalize=canonicalize),
            canonicalize=canonicalize,
        ),
        canonicalize=False,
    )
    verify_typed(module)
    return module


def stage_canonicalize(module: Any, *, opt_level: int = 1,
                       report: Any = None) -> Any:
    """``canonicalize``: run the optimization pipeline on a lowered module.

    Returns a canonicalized *clone* (cached stage results are shared across
    callers and must never be mutated).  ``opt_level`` 2 adds the function
    inliner before canonicalization.  ``report`` (a
    :class:`~repro.pipeline.report.PipelineReport`, excluded from the cache
    fingerprint) receives one event per sub-pass so ``basecamp pipeline``
    can show where optimization time went.
    """
    import repro.dialects  # noqa: F401 (registration side effect)
    from repro.ir import CanonicalizePass, FusionPass, InlinePass, verify_typed
    from repro.pipeline.report import StageClock

    if opt_level <= 0:
        return module
    optimized = module.clone()
    if opt_level >= 2:
        inliner = InlinePass()
        with StageClock() as clock:
            inliner.run(optimized)
        if report is not None:
            report.record("canonicalize/inline", clock.seconds, cached=False,
                          detail=f"{inliner.inlined} call(s)", aux=True)
    canonicalizer = CanonicalizePass()
    canonicalizer.run(optimized)
    if report is not None:
        for pass_name, seconds in canonicalizer.timings:
            report.record(f"canonicalize/{pass_name}", seconds, cached=False,
                          aux=True)
    fusion = FusionPass()
    with StageClock() as clock:
        fusion.run(optimized)
    if report is not None:
        report.record("canonicalize/fuse", clock.seconds, cached=False,
                      detail=f"{fusion.fused} buffer(s)", aux=True)
    verify_typed(optimized)
    return optimized


def stage_execute(payload: Tuple[Any, Any], *,
                  backend: str = "compiled") -> Any:
    """``execute``: (kernel, affine module) -> :class:`CompiledKernel`.

    Compiles the lowered module to the vectorized-numpy executor
    (:mod:`repro.tensorpipe.codegen`); the artifact is cacheable — the
    actual runs over input data happen outside the stage cache (see
    :meth:`PipelineSession.execute`).  ``backend="interpreter"`` pins the
    reference interpreter instead (baseline and differential runs).
    """
    from repro.tensorpipe.codegen import compile_affine

    kernel, module = payload
    return compile_affine(module, kernel.name, backend=backend)


def stage_hls(payload: Tuple[Any, Any], *,
              number_format: Optional[str] = None,
              clock_mhz: float = 300.0) -> Any:
    """``hls``: (kernel, affine module) -> :class:`KernelReport`.

    ``number_format`` is a compact spec string (``"f32"``, ``"fixed<8.8>"``,
    ``"posit<16,1>"``; ``None`` means the default f64) so that the stage
    parameters stay fingerprintable.
    """
    from repro.hls import synthesize_kernel
    from repro.numerics import make_format

    kernel, module = payload
    fmt = make_format(number_format) if number_format else None
    return synthesize_kernel(module, kernel.name, number_format=fmt,
                             clock_mhz=clock_mhz)


def stage_olympus(report: Any, *, device: str = "alveo-u55c",
                  max_replicas: Optional[int] = None,
                  system_name: Optional[str] = None,
                  executor: Any = None) -> OlympusResult:
    """``olympus``: kernel report -> DSE points + generated system.

    ``executor`` (a :class:`concurrent.futures.Executor`) parallelizes the
    per-config latency/resource evaluation; results are identical to the
    serial path and ordered by candidate enumeration order.
    """
    from repro.olympus import OlympusGenerator
    from repro.platforms import device_by_name

    generator = OlympusGenerator(device_by_name(device))
    points = generator.explore(report, max_replicas, executor=executor)
    best = min(points, key=lambda p: p[1].total)[0]
    system = generator.generate(system_name or f"{report.name}_system",
                                [report], {report.name: best})
    return OlympusResult(device, points, best, system,
                         generator.emit_ir(system))


def stage_schedule(olympus: OlympusResult, *,
                   nodes: int = 4) -> DeploymentPlan:
    """``schedule``: system -> EVP deployment IR + HEFT cluster schedule."""
    from repro.olympus import lower_olympus_to_evp
    from repro.runtime import (
        HEFTScheduler,
        ResourceRequest,
        TaskGraph,
        default_cluster,
    )

    if olympus.system is None:
        raise PipelineError("schedule stage needs a generated system "
                            "(run the olympus stage first)")
    graph = TaskGraph()
    for instance in olympus.system.instances:
        seconds = olympus.system.estimates[instance.name].total
        graph.add(lambda: None, (), {},
                  ResourceRequest(fpga=True, fpga_seconds=seconds),
                  output_bytes=instance.report.bytes_out,
                  tuning=None, name=instance.name)
    cluster = default_cluster(nodes)
    schedule = HEFTScheduler().schedule(graph, cluster)
    return DeploymentPlan(lower_olympus_to_evp(olympus.ir), schedule, nodes)


def builtin_stages() -> List[Tuple[str, Any, str]]:
    """(name, fn, description) triples for the default registry."""
    return [
        ("frontend-parse", stage_frontend_parse,
         "EKL source text -> kernel AST"),
        ("dialect-lowering", stage_dialect_lowering,
         "kernel AST -> verified affine module"),
        ("canonicalize", stage_canonicalize,
         "fold/DCE/CSE (+ inlining at -O2) on the lowered module"),
        ("execute", stage_execute,
         "affine module -> compiled CPU executor (vectorized numpy)"),
        ("hls", stage_hls,
         "affine module -> HLS kernel report"),
        ("olympus", stage_olympus,
         "kernel report -> DSE + system architecture"),
        ("schedule", stage_schedule,
         "system architecture -> deployment IR + HEFT schedule"),
    ]
