"""Structured per-stage instrumentation of a pipeline session.

Every stage execution (or cache hit) appends a :class:`StageTiming` event
to the session's :class:`PipelineReport` — the SDK-level analogue of the
per-kernel :class:`repro.hls.KernelReport`.  The report answers "where did
this compile spend its time, and what did the cache save?".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class StageTiming:
    """One stage execution event.

    ``aux`` marks informational sub-events (e.g. the per-pass timings the
    ``canonicalize`` stage emits); they appear in summaries but do not
    count toward the stage cache statistics or the total.
    """

    stage: str
    seconds: float
    cached: bool
    parallel: bool = False
    detail: str = ""
    aux: bool = False


@dataclass
class PipelineReport:
    """The accumulated timing/caching record of one session."""

    events: List[StageTiming] = field(default_factory=list)

    def record(self, stage: str, seconds: float, *, cached: bool,
               parallel: bool = False, detail: str = "",
               aux: bool = False) -> StageTiming:
        event = StageTiming(stage, seconds, cached, parallel, detail, aux)
        self.events.append(event)
        return event

    @property
    def total_seconds(self) -> float:
        return sum(e.seconds for e in self.events if not e.aux)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.events if e.cached and not e.aux)

    @property
    def cache_misses(self) -> int:
        return sum(1 for e in self.events if not e.cached and not e.aux)

    def stage_seconds(self) -> Dict[str, float]:
        """Total executed (non-cached) seconds per stage name."""
        totals: Dict[str, float] = {}
        for event in self.events:
            if not event.cached and not event.aux:
                totals[event.stage] = totals.get(event.stage, 0.0) \
                    + event.seconds
        return totals

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_seconds": self.total_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "events": [
                {"stage": e.stage, "seconds": e.seconds, "cached": e.cached,
                 "parallel": e.parallel, "detail": e.detail, "aux": e.aux}
                for e in self.events
            ],
        }

    def summary(self) -> str:
        lines = [
            f"pipeline: {len(self.events)} stage events, "
            f"{self.total_seconds * 1e3:.1f} ms executed, "
            f"{self.cache_hits} cache hits / {self.cache_misses} misses"
        ]
        for event in self.events:
            mark = "cache" if event.cached else f"{event.seconds * 1e3:8.2f}ms"
            flags = " [parallel]" if event.parallel else ""
            detail = f"  ({event.detail})" if event.detail else ""
            lines.append(f"  {event.stage:18s} {mark:>10s}{flags}{detail}")
        return "\n".join(lines)


class StageClock:
    """Context manager measuring one stage execution."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "StageClock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds = time.perf_counter() - self._start
