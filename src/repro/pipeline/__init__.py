"""Unified compile orchestration: the SDK flow of paper Fig. 2 / §IV.

Where :mod:`repro.basecamp` is the *user's* single point of access to the
EVEREST SDK, this package is the *programmatic* one: a
:class:`PipelineSession` registers the SDK's phases (frontend parse,
dialect lowering, format DSE/HLS, Olympus system generation, runtime
scheduling) as named :class:`Stage` objects behind a uniform protocol and
orchestrates them with

* **content-hash stage caching** — repeated compiles of the same
  kernel/configuration skip completed phases;
* **parallel fan-out** for data-format and Olympus design-space sweeps
  (``concurrent.futures``), deterministic with respect to the serial path;
* per-stage timing surfaced as a structured :class:`PipelineReport`.

Quick use::

    from repro.pipeline import PipelineSession

    session = PipelineSession()
    result = session.compile(ekl_source)          # parse -> lower -> HLS
    sweep = session.format_sweep(ekl_source, ["f32", "fixed<8.8>"])
    print(session.report.summary())
"""

from repro.pipeline.cache import CacheStats, StageCache, fingerprint
from repro.pipeline.report import PipelineReport, StageTiming
from repro.pipeline.session import (
    PipelineSession,
    SingleFlightStats,
    get_session,
    reset_session,
)
from repro.pipeline.stage import Stage, StageRegistry
from repro.pipeline.stages import (
    CompileResult,
    DeploymentPlan,
    ExecutionResult,
    OlympusResult,
    builtin_stages,
)

__all__ = [
    "CacheStats",
    "StageCache",
    "fingerprint",
    "PipelineReport",
    "StageTiming",
    "PipelineSession",
    "SingleFlightStats",
    "get_session",
    "reset_session",
    "Stage",
    "StageRegistry",
    "CompileResult",
    "DeploymentPlan",
    "ExecutionResult",
    "OlympusResult",
    "builtin_stages",
]
