""":class:`PipelineSession` — the SDK's compile orchestrator.

One session owns a stage registry, a content-hash stage cache and a
:class:`PipelineReport`.  High-level helpers (:meth:`compile`,
:meth:`olympus`, :meth:`deploy`, :meth:`format_sweep`,
:meth:`olympus_sweep`) compose the built-in stages into the paper's Fig. 2
flow; repeated compiles of the same kernel/config skip completed phases,
and DSE sweeps fan out over a ``concurrent.futures`` executor while
returning results bit-identical to the serial path.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import EverestError, PipelineError
from repro.pipeline.cache import StageCache, fingerprint
from repro.pipeline.report import PipelineReport, StageClock
from repro.pipeline.stage import Stage, StageRegistry
from repro.telemetry.trace import get_tracer
from repro.pipeline.stages import (
    CompileResult,
    DeploymentPlan,
    ExecutionResult,
    OlympusResult,
    builtin_stages,
)


@dataclass
class SingleFlightStats:
    """Deduplication counters for concurrent identical stage runs.

    ``leaders`` counts stage executions that other callers piggybacked
    on; ``waits`` counts the callers that blocked on a leader instead of
    recomputing.  ``basecamp serve`` surfaces both under ``/stats``.
    """

    leaders: int = 0
    waits: int = 0


class _Flight:
    """One in-flight stage execution other callers can wait on.

    ``span_id`` is the leader's stage-span id when tracing is enabled;
    waiter spans record it as ``leader_span`` so a trace shows which
    flight a blocked caller piggybacked on.
    """

    __slots__ = ("done", "value", "error", "waiters", "span_id")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.waiters = 0
        self.span_id = 0


class PipelineSession:
    """Registers named stages and orchestrates cached, instrumented runs.

    Parameters
    ----------
    max_workers:
        Fan-out width for parallel DSE sweeps (defaults to CPU count,
        capped at 8).
    register_builtins:
        Install the standard Fig. 2 stages (``frontend-parse``,
        ``dialect-lowering``, ``canonicalize``, ``execute``, ``hls``,
        ``olympus``, ``schedule``).
    """

    def __init__(self, *, max_workers: Optional[int] = None,
                 register_builtins: bool = True):
        self.registry = StageRegistry()
        self.cache = StageCache()
        self.report = PipelineReport()
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.singleflight = SingleFlightStats()
        self._inflight: Dict[str, _Flight] = {}
        self._inflight_lock = threading.Lock()
        if register_builtins:
            for name, fn, description in builtin_stages():
                self.registry.register(Stage(name, fn, description))

    # -- stage management --------------------------------------------------------------

    def register(self, name: str, fn: Callable[..., Any], *,
                 description: str = "", cacheable: bool = True,
                 replace: bool = False) -> Stage:
        """Register a custom stage under ``name``."""
        return self.registry.register(
            Stage(name, fn, description, cacheable), replace=replace)

    def stages(self) -> List[str]:
        return self.registry.names()

    # -- the cached stage runner -------------------------------------------------------

    def run_stage(self, name: str, payload: Any, *, key: str,
                  params: Optional[Dict[str, Any]] = None,
                  runtime_params: Optional[Dict[str, Any]] = None,
                  parallel: bool = False,
                  detail: str = "") -> Tuple[str, Any]:
        """Run one registered stage with caching and timing.

        ``key`` is the fingerprint of the upstream payload; the stage's own
        key chains it with the stage name and ``params``.
        ``runtime_params`` are forwarded to the stage function but excluded
        from the fingerprint (executors, callbacks — values that do not
        change the result).

        Cacheable stages are *single-flight*: when several threads request
        the same ``stage_key`` concurrently (``basecamp serve`` tenants,
        DSE fan-outs), exactly one executes the stage while the others
        block on its result — identical in-flight compiles never duplicate
        work.  A leader failure is propagated to every waiter and nothing
        is cached, so the next caller retries cleanly.

        Returns ``(stage_key, result)``.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._run_stage(name, payload, key=key, params=params,
                                   runtime_params=runtime_params,
                                   parallel=parallel, detail=detail,
                                   span=None)
        with tracer.span(f"stage:{name}", category="stage") as span:
            if detail:
                span.attrs["detail"] = detail
            if parallel:
                span.attrs["parallel"] = True
            return self._run_stage(name, payload, key=key, params=params,
                                   runtime_params=runtime_params,
                                   parallel=parallel, detail=detail,
                                   span=span)

    def _run_stage(self, name: str, payload: Any, *, key: str,
                   params: Optional[Dict[str, Any]],
                   runtime_params: Optional[Dict[str, Any]],
                   parallel: bool, detail: str,
                   span: Optional[Any]) -> Tuple[str, Any]:
        """The cache/single-flight/execute core behind :meth:`run_stage`.

        ``span`` is the caller's open stage span (None when tracing is
        off); this method only annotates it — cache outcome and
        single-flight role — so the trace explains where the time went
        without a second timing source.
        """
        stage = self.registry.get(name)
        params = dict(params or {})
        stage_key = self.stage_key(name, params, key)
        flight: Optional[_Flight] = None
        if stage.cacheable:
            hit, value = self.cache.lookup(stage_key)
            if hit:
                if span is not None:
                    span.attrs["cached"] = True
                self.report.record(name, 0.0, cached=True, parallel=parallel,
                                   detail=detail)
                return stage_key, value
            with self._inflight_lock:
                leader = stage_key not in self._inflight
                if leader:
                    flight = self._inflight[stage_key] = _Flight()
                    if span is not None:
                        flight.span_id = span.span_id
                else:
                    flight = self._inflight[stage_key]
                    flight.waiters += 1
                    self.singleflight.waits += 1
            if not leader:
                if span is not None:
                    span.attrs["singleflight"] = "waiter"
                    span.attrs["leader_span"] = flight.span_id
                flight.done.wait()
                if flight.error is not None:
                    raise flight.error
                if span is not None:
                    span.attrs["cached"] = True
                self.report.record(name, 0.0, cached=True, parallel=parallel,
                                   detail=detail)
                return stage_key, flight.value
            # Leader: someone may have stored between our miss and our
            # claim of the flight slot (a non-single-flight store path);
            # re-check without skewing the hit/miss counters.
            hit, value = self.cache.peek(stage_key)
            if hit:
                self._land(stage_key, flight, value=value)
                if span is not None:
                    span.attrs["cached"] = True
                self.report.record(name, 0.0, cached=True, parallel=parallel,
                                   detail=detail)
                return stage_key, value
        call_params = dict(params)
        call_params.update(runtime_params or {})
        try:
            with StageClock() as clock:
                try:
                    value = stage(payload, **call_params)
                except EverestError:
                    raise
                except (TypeError, ValueError, KeyError) as error:
                    raise PipelineError(
                        f"stage {name!r} failed: {error}") from error
        except BaseException as error:
            if flight is not None:
                self._land(stage_key, flight, error=error)
            raise
        if stage.cacheable:
            self.cache.store(stage_key, value)
        if flight is not None:
            self._land(stage_key, flight, value=value)
            if span is not None and flight.waiters:
                span.attrs["singleflight"] = "leader"
                span.attrs["waiters"] = flight.waiters
        self.report.record(name, clock.seconds, cached=False,
                           parallel=parallel, detail=detail)
        return stage_key, value

    def _land(self, stage_key: str, flight: _Flight, *, value: Any = None,
              error: Optional[BaseException] = None) -> None:
        """Publish a leader's outcome and release the in-flight slot."""
        flight.value = value
        flight.error = error
        with self._inflight_lock:
            self._inflight.pop(stage_key, None)
            if flight.waiters:
                self.singleflight.leaders += 1
        flight.done.set()

    def stage_key(self, name: str,
                  params: Optional[Dict[str, Any]] = None,
                  upstream_key: str = "") -> str:
        """The cache key one stage run would use (shared by all probes).

        Includes the stage's registration generation so a stage replaced
        via ``register(..., replace=True)`` never serves results cached
        from the previous implementation.
        """
        return fingerprint(name, self.registry.generation(name),
                           dict(params or {}), upstream_key)

    # -- source handling ---------------------------------------------------------------

    @staticmethod
    def read_source(source: str) -> str:
        """Accept EKL text directly or a path to a kernel file.

        A whitespace-free one-liner cannot be a kernel, so it is always
        treated as a path — a typo'd path raises
        :class:`FileNotFoundError` instead of degenerating into a parse
        error on the path string.
        """
        if "\n" not in source:
            candidate = source.strip()
            if candidate and " " not in candidate and "\t" not in candidate:
                with open(candidate) as handle:
                    return handle.read()
            if os.path.exists(source):
                with open(source) as handle:
                    return handle.read()
        return source

    def _source_key(self, text: str) -> str:
        return fingerprint("ekl-source", text)

    # -- high-level flows --------------------------------------------------------------

    def frontend(self, source: str) -> Tuple[str, Any]:
        """Parse EKL source; returns ``(key, kernel)``."""
        text = self.read_source(source)
        return self.run_stage("frontend-parse", text,
                              key=self._source_key(text))

    def lower(self, source: str, *, opt_level: int = 1) -> CompileResult:
        """Frontend + dialect lowering: source -> verified affine module.

        ``opt_level`` selects the optimization pipeline: 0 is the raw
        lowering, 1 (default) canonicalizes (fold + DCE + CSE through the
        worklist rewriter), 2 additionally inlines ``func.call`` ops.  At
        1+ a ``canonicalize`` stage runs on the lowered module and its
        per-pass timings land in the session report.
        """
        # Normalize once; run_stage directly so the file contents are
        # never themselves re-probed as a path.
        text = self.read_source(source)
        key, kernel = self.run_stage("frontend-parse", text,
                                     key=self._source_key(text))
        # Keyed on the boolean, not the level: -O1 and -O2 share the
        # lowering cache entry (the level only matters to `canonicalize`).
        key, module = self.run_stage("dialect-lowering", kernel, key=key,
                                     params={"canonicalize": opt_level > 0})
        if opt_level > 0:
            key, module = self.run_stage(
                "canonicalize", module, key=key,
                params={"opt_level": opt_level},
                runtime_params={"report": self.report},
                detail=f"O{opt_level}")
        return CompileResult(text, kernel, module, key=key)

    def execute(self, source: str, inputs, *,
                backend: str = "compiled",
                opt_level: int = 1,
                jobs: Optional[int] = None) -> ExecutionResult:
        """Compile to the CPU executor and run it over ``inputs``.

        The compilation itself (codegen + ``compile()``) is a cached
        ``execute`` stage keyed on the lowered module; the run over the
        given inputs is never cached (inputs are arbitrary numpy arrays)
        but is timed into the session report as an auxiliary event.
        ``backend`` names any registered executor backend
        (:func:`repro.tensorpipe.backends.registered_backends`); an
        unknown name raises with the available ones.  ``jobs`` sizes the
        ``compiled-parallel`` worker pool (None: ``REPRO_JOBS`` or the
        CPU count capped at 8); other backends ignore it.
        """
        result = self.lower(source, opt_level=opt_level)
        key, kernel = self.run_stage(
            "execute", (result.kernel, result.module), key=result.key,
            params={"backend": backend}, detail=backend)
        tracer = get_tracer()
        with tracer.span("execute/run", category="exec",
                         attrs={"backend": kernel.backend}
                         if tracer.enabled else None):
            with StageClock() as clock:
                outputs = kernel.run(inputs, jobs=jobs)
        self.report.record("execute/run", clock.seconds, cached=False,
                           detail=kernel.backend, aux=True)
        return ExecutionResult(kernel, outputs, clock.seconds, key=key)

    def compile(self, source: str, *,
                number_format: Optional[str] = None,
                clock_mhz: float = 300.0,
                opt_level: int = 1) -> CompileResult:
        """The full compile flow: parse, lower, synthesize.

        ``number_format`` is a compact spec (``"f32"``, ``"fixed<8.8>"``,
        ``"posit<16,1>"``); ``None`` synthesizes in f64.  ``opt_level``
        is forwarded to :meth:`lower`.
        """
        result = self.lower(source, opt_level=opt_level)
        if number_format == "f64":
            number_format = None  # share the default-format cache entry
        params = {"number_format": number_format, "clock_mhz": clock_mhz}
        key, report = self.run_stage("hls", (result.kernel, result.module),
                                     key=result.key, params=params,
                                     detail=number_format or "f64")
        # `result` is this call's own CompileResult (lower() builds a
        # fresh one); attaching the cached report to it never mutates a
        # cache-shared object.
        result.report = report
        result.key = key
        return result

    def olympus(self, source: str, *, device: str = "alveo-u55c",
                max_replicas: Optional[int] = None,
                number_format: Optional[str] = None,
                parallel: bool = False,
                opt_level: int = 1) -> OlympusResult:
        """Compile then explore/generate the system architecture."""
        compiled = self.compile(source, number_format=number_format,
                                opt_level=opt_level)
        params = {"device": device, "max_replicas": max_replicas,
                  "system_name": f"{compiled.report.name}_system"}
        runtime: Dict[str, Any] = {}
        # Don't spin up an executor just to discover a cache hit.
        if parallel and not self.cache.contains(
                self.stage_key("olympus", params, compiled.key)):
            runtime["executor"] = self._executor()
        try:
            key, result = self.run_stage("olympus", compiled.report,
                                         key=compiled.key, params=params,
                                         runtime_params=runtime,
                                         parallel=parallel, detail=device)
        finally:
            executor = runtime.get("executor")
            if executor is not None:
                executor.shutdown()
        # The cached OlympusResult is shared across callers: hand each
        # call its own shallow copy instead of mutating the cached object
        # (concurrent tenants would see each other's writes).
        return replace(result, key=key)

    def deploy(self, source: str, *, device: str = "alveo-u55c",
               nodes: int = 4, parallel: bool = False,
               opt_level: int = 1) -> DeploymentPlan:
        """The end-to-end Fig. 2 flow, through the runtime schedule."""
        olympus = self.olympus(source, device=device, parallel=parallel,
                               opt_level=opt_level)
        _, plan = self.run_stage("schedule", olympus, key=olympus.key,
                                 params={"nodes": nodes})
        return plan

    # -- parallel DSE sweeps -----------------------------------------------------------

    def format_sweep(self, source: str,
                     formats: Sequence[Optional[str]], *,
                     parallel: bool = True,
                     clock_mhz: float = 300.0) -> Dict[str, Any]:
        """Synthesize one kernel under many number formats (§V-B DSE).

        Returns ``{spec: KernelReport}`` in the order ``formats`` was
        given — identical whether the sweep ran serially or fanned out.
        ``None`` (or ``"f64"``) selects the default double-precision path.
        """
        compiled = self.lower(source)
        key = compiled.key
        specs = [fmt if fmt else "f64" for fmt in formats]
        jobs: List[Tuple[str, Dict[str, Any]]] = []
        for spec in specs:
            number_format = None if spec == "f64" else spec
            jobs.append((spec, {"number_format": number_format,
                                "clock_mhz": clock_mhz}))
        payload = (compiled.kernel, compiled.module)

        if not parallel or len(jobs) <= 1:
            return {
                spec: self.run_stage("hls", payload, key=key, params=params,
                                     detail=spec)[1]
                for spec, params in jobs
            }

        results: Dict[str, Any] = {}
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(self.run_stage, "hls", payload, key=key,
                            params=params, parallel=True, detail=spec)
                for spec, params in jobs
            ]
            for (spec, _), future in zip(jobs, futures):
                results[spec] = future.result()[1]
        return results

    def olympus_sweep(self, source: str, devices: Sequence[str], *,
                      max_replicas: Optional[int] = None,
                      parallel: bool = True) -> Dict[str, OlympusResult]:
        """Explore the system design space across target devices (§V-C).

        Returns ``{device: OlympusResult}`` in input order; the parallel
        path returns exactly the serial results.
        """
        compiled = self.compile(source)

        def run_one(device: str) -> OlympusResult:
            params = {"device": device, "max_replicas": max_replicas,
                      "system_name": f"{compiled.report.name}_system"}
            key, result = self.run_stage("olympus", compiled.report,
                                         key=compiled.key, params=params,
                                         parallel=parallel, detail=device)
            # Per-call copy: the cached OlympusResult must stay unmutated.
            return replace(result, key=key)

        if not parallel or len(devices) <= 1:
            return {device: run_one(device) for device in devices}
        results: Dict[str, OlympusResult] = {}
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures = [pool.submit(run_one, device) for device in devices]
            for device, future in zip(devices, futures):
                results[device] = future.result()
        return results

    # -- internals ---------------------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.max_workers)


_GLOBAL_SESSION: Optional[PipelineSession] = None
_GLOBAL_SESSION_LOCK = threading.Lock()


def get_session() -> PipelineSession:
    """The process-wide default session (used by the ``basecamp`` CLI).

    Guarded by a lock: two concurrent first callers (server threads,
    parallel test workers) must share one session — an unlocked
    check-then-set would hand each its own session with a split cache.
    """
    global _GLOBAL_SESSION
    with _GLOBAL_SESSION_LOCK:
        if _GLOBAL_SESSION is None:
            _GLOBAL_SESSION = PipelineSession()
        return _GLOBAL_SESSION


def reset_session() -> None:
    """Drop the process-wide session (tests, long-lived services)."""
    global _GLOBAL_SESSION
    with _GLOBAL_SESSION_LOCK:
        _GLOBAL_SESSION = None
