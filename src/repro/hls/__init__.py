"""High-level synthesis engine (the Vitis HLS / Bambu role, paper §IV, §V-B).

Pipeline: lowered ``affine`` functions are scheduled nest by nest
(:mod:`repro.hls.scheduling`), costed (:mod:`repro.hls.resources`), and
reported (:class:`repro.hls.synth.KernelReport`).  Controllers and datapath
skeletons are emitted into the ``fsm`` and ``hw`` dialects.

Custom numeric formats (:mod:`repro.numerics`) plug in through the
``number_format`` parameter: the same kernel re-synthesized with ``f32``,
fixed point or posit arithmetic yields different latency/resource points —
the accuracy/cost trade-off highlighted by the paper.
"""

from repro.hls.resources import OpCost, ResourceBudget, cost_of
from repro.hls.scheduling import BodyDFG, Schedule, asap, alap, build_dfg, list_schedule
from repro.hls.synth import (
    ExecutorCrossCheck,
    HLSEngine,
    KernelReport,
    NestReport,
    cross_check_executor,
    synthesize_kernel,
)

__all__ = [
    "OpCost",
    "ResourceBudget",
    "cost_of",
    "BodyDFG",
    "Schedule",
    "asap",
    "alap",
    "build_dfg",
    "list_schedule",
    "ExecutorCrossCheck",
    "HLSEngine",
    "KernelReport",
    "NestReport",
    "cross_check_executor",
    "synthesize_kernel",
]
