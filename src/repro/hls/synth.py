"""The HLS engine driver: affine functions -> scheduled kernels -> reports.

Fills the role Vitis HLS / Bambu play in the EVEREST SDK (paper §IV): each
lowered ``affine`` function is analyzed nest by nest, every innermost body
is list-scheduled and pipelined, and the result is a
:class:`KernelReport` — latency in cycles, initiation intervals, functional
units and FPGA resources — the currency Olympus, the autotuner and the
runtime trade in.

The engine also emits the controller as an ``fsm.machine`` and the datapath
skeleton as an ``hw.module`` (the two backend dialects of Fig. 5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dialects import register_lowering
from repro.errors import HLSError
from repro.hls.resources import (
    SHARABLE_CLASSES,
    OpCost,
    ResourceBudget,
    cost_of,
)
from repro.hls.scheduling import BodyDFG, Schedule, build_dfg, list_schedule
from repro.ir import Module, Operation, types as T
from repro.numerics import NumberFormat, format_bits
from repro.numerics.fixed_point import FixedPointFormat
from repro.numerics.float_formats import FloatFormat
from repro.numerics.posit import PositFormat
from repro.tensorpipe.arena import default_element_bytes, plan_arena

_LOOP_OVERHEAD = 2  # cycles to enter/flush one pipelined nest

# Ops that count as one FLOP per trip.  Kept in sync with the compiled
# executor's model (repro.tensorpipe.codegen.FLOAT_OPS) — the two FLOP
# counters traverse the IR independently and must agree on every kernel.
_NEST_FLOAT_OPS = frozenset({
    "arith.addf", "arith.subf", "arith.mulf", "arith.divf",
    "arith.maximumf", "arith.minimumf", "arith.powf", "arith.negf",
    "math.exp", "math.log", "math.sqrt", "math.sin", "math.cos",
    "math.tanh", "math.abs",
})


@dataclass
class NestReport:
    """Synthesis result of one loop nest."""

    trip_count: int
    depth: int
    ii: int
    res_mii: int
    rec_mii: int
    units: Dict[str, int]
    body_ops: int
    unit_costs: Dict[str, OpCost] = field(default_factory=dict)
    fixed_resources: ResourceBudget = field(default_factory=ResourceBudget)
    flops: int = 0

    @property
    def cycles(self) -> int:
        if self.trip_count == 0:
            return 0
        return self.depth + (self.trip_count - 1) * self.ii + _LOOP_OVERHEAD


@dataclass
class KernelReport:
    """Synthesis report of one kernel (one affine function)."""

    name: str
    nests: List[NestReport] = field(default_factory=list)
    resources: ResourceBudget = field(default_factory=ResourceBudget)
    bytes_in: int = 0
    bytes_out: int = 0
    port_width_bits: int = 64
    clock_mhz: float = 300.0
    number_format: str = "f64"
    #: Peak on-chip scratch footprint of the kernel's local buffers under
    #: the static arena plan (:func:`repro.tensorpipe.arena.plan_arena`):
    #: lifetime-disjoint ``memref.alloc`` buffers share bytes.  With the
    #: default f64 format this equals the compiled ``compiled-arena``
    #: executor's ``arena_bytes`` exactly; custom number formats rescale
    #: it by their element widths.
    planned_arena_bytes: int = 0
    planned_arena_slots: int = 0

    @property
    def total_cycles(self) -> int:
        return sum(nest.cycles for nest in self.nests)

    @property
    def latency_seconds(self) -> float:
        return self.total_cycles / (self.clock_mhz * 1e6)

    @property
    def flops(self) -> int:
        """Floating-point operations per kernel invocation.

        Derived from the nest model (trip counts x float body ops); the
        compiled CPU executor computes the same quantity independently
        from the loop tree (:func:`repro.tensorpipe.codegen.count_flops`)
        and the two are cross-checked by the test suite.
        """
        return sum(nest.flops for nest in self.nests)

    def summary(self) -> str:
        lines = [
            f"kernel {self.name}: {self.total_cycles} cycles "
            f"({self.latency_seconds * 1e6:.1f} us @ {self.clock_mhz} MHz, "
            f"format {self.number_format})",
            f"  resources: LUT={self.resources.lut} FF={self.resources.ff} "
            f"DSP={self.resources.dsp} BRAM={self.resources.bram}",
            f"  data: in={self.bytes_in}B out={self.bytes_out}B "
            f"scratch-arena={self.planned_arena_bytes}B "
            f"({self.planned_arena_slots} buffers)",
        ]
        for i, nest in enumerate(self.nests):
            lines.append(
                f"  nest {i}: trip={nest.trip_count} II={nest.ii} "
                f"depth={nest.depth} (resMII={nest.res_mii}, "
                f"recMII={nest.rec_mii})"
            )
        return "\n".join(lines)


def _format_ir_type(fmt: Optional[NumberFormat]) -> Optional[T.Type]:
    if fmt is None:
        return None
    if isinstance(fmt, FloatFormat):
        return {"f64": T.f64, "f32": T.f32, "f16": T.f16,
                "bf16": T.bf16}[fmt.name]
    if isinstance(fmt, FixedPointFormat):
        return fmt.ir_type()
    if isinstance(fmt, PositFormat):
        return fmt.ir_type()
    raise HLSError(f"unsupported number format {fmt!r}")


class HLSEngine:
    """Synthesizes affine functions into kernel reports and backend IR."""

    def __init__(self, clock_mhz: float = 300.0,
                 mem_ports: int = 2,
                 number_format: Optional[NumberFormat] = None):
        self.clock_mhz = clock_mhz
        self.mem_ports = mem_ports
        self.number_format = number_format
        self._format_type = _format_ir_type(number_format)

    # -- public API ---------------------------------------------------------------

    def synthesize(self, module: Module, func_name: str) -> KernelReport:
        """Synthesize one affine-level function."""
        from repro.telemetry.trace import get_tracer
        tracer = get_tracer()
        with tracer.span("hls.synthesize", category="compile") as span:
            if tracer.enabled:
                span.attrs.update(func=func_name,
                                  clock_mhz=self.clock_mhz)
            report = self._synthesize(module, func_name)
            span.set("nests", len(report.nests))
        return report

    def _synthesize(self, module: Module, func_name: str) -> KernelReport:
        func = module.lookup(func_name)
        if func.attr("kernel_lang") != "affine":
            raise HLSError(f"{func_name}: not an affine-level function "
                           "(run the teil lowering first)")
        report = KernelReport(
            name=func_name, clock_mhz=self.clock_mhz,
            number_format=str(self.number_format) if self.number_format
            else "f64",
        )
        entry = func.regions[0].entry
        num_outputs = func.attr("num_outputs") or 0
        args = entry.args
        for i, arg in enumerate(args):
            ref = arg.type
            if isinstance(ref, T.MemRefType):
                size = self._buffer_bytes(ref)
                if i < len(args) - num_outputs:
                    report.bytes_in += size
                else:
                    report.bytes_out += size
        for op in entry.operations:
            if op.name == "affine.for":
                nest = self._synthesize_nest(op)
                report.nests.append(nest)
                # Shared units (muls, dividers, memory ports) are sized for
                # the achieved II; everything else is one unit per body op.
                for family, count in nest.units.items():
                    cost = nest.unit_costs.get(family)
                    if cost is not None:
                        report.resources.add(cost, count)
                report.resources = report.resources.merged(
                    nest.fixed_resources
                )
            elif op.name == "memref.alloc":
                ref = op.results[0].type
                report.resources.bram += self._bram_blocks(ref)
        # Port width: widest element among the argument buffers.
        widths = [
            T.bitwidth(self._cost_element(a.type.element))
            for a in args if isinstance(a.type, T.MemRefType)
        ]
        report.port_width_bits = max(widths, default=64)
        plan = plan_arena(func, element_bytes=self._arena_element_bytes)
        report.planned_arena_bytes = plan.total_bytes
        report.planned_arena_slots = len(plan.slots)
        return report

    def synthesize_all(self, module: Module) -> Dict[str, KernelReport]:
        reports = {}
        for op in module.body:
            if op.name == "func.func" and op.attr("kernel_lang") == "affine":
                name = op.attr("sym_name")
                reports[name] = self.synthesize(module, name)
        return reports

    # -- internals -----------------------------------------------------------------

    def _cost_element(self, element: T.Type) -> T.Type:
        """Numeric-format override: float elements re-typed for costing."""
        if self._format_type is not None and isinstance(element, T.FloatType):
            return self._format_type
        return element

    def _arena_element_bytes(self, element: T.Type) -> int:
        """Element width for the arena plan.

        The default format plans exactly what the numpy executors
        allocate (so ``planned_arena_bytes`` equals the
        ``compiled-arena`` backend's footprint); a custom number format
        substitutes its own storage widths.
        """
        if self._format_type is None:
            return default_element_bytes(element)
        try:
            bits = T.bitwidth(self._cost_element(element))
        except Exception:
            bits = 64
        return (bits + 7) // 8

    def _buffer_bytes(self, ref: T.MemRefType) -> int:
        element = self._cost_element(ref.element)
        try:
            bits = T.bitwidth(element)
        except Exception:
            bits = 64
        count = 1
        for dim in ref.shape:
            count *= dim if dim is not None else 1
        return count * ((bits + 7) // 8)

    def _bram_blocks(self, ref: T.MemRefType) -> int:
        # One BRAM18 holds 18 Kb = 2304 bytes.
        return max(1, math.ceil(self._buffer_bytes(ref) / 2304))

    def _element_of(self, op: Operation) -> T.Type:
        if op.name == "memref.store":
            ty = op.operands[0].type
        elif op.results:
            ty = op.results[0].type
        elif op.operands:
            ty = op.operands[0].type
        else:
            ty = T.i32
        if isinstance(ty, T.MemRefType):
            ty = ty.element
        return self._cost_element(ty)

    def _synthesize_nest(self, loop: Operation) -> NestReport:
        trip = 1
        current = loop
        body_ops: List[Operation] = []
        while True:
            lower = current.attr("lower")
            upper = current.attr("upper")
            step = current.attr("step") or 1
            trip *= max(0, math.ceil((upper - lower) / step))
            block = current.regions[0].entry
            inner_loops = [op for op in block if op.name == "affine.for"]
            if len(inner_loops) == 1 and all(
                op.name in ("affine.for", "affine.yield")
                for op in block
            ):
                current = inner_loops[0]
                continue
            body_ops = [op for op in block if op.name != "affine.for"]
            flops = trip * sum(1 for op in body_ops
                               if op.name in _NEST_FLOAT_OPS)
            # Imperfect nest bodies: inner loops contribute their own trip.
            for inner in inner_loops:
                inner_report = self._synthesize_nest(inner)
                flops += trip * inner_report.flops
                body_ops.extend(
                    op for op in _innermost_ops(inner)
                )
            break
        dfg = build_dfg(body_ops, self._element_of)
        schedule = list_schedule(dfg, {"mem": self.mem_ports})
        unit_costs: Dict[str, OpCost] = {}
        fixed = ResourceBudget()
        for node in dfg.nodes:
            if node.family in SHARABLE_CLASSES:
                best = unit_costs.get(node.family)
                if best is None or node.cost.lut > best.lut:
                    unit_costs[node.family] = node.cost
            else:
                fixed.add(node.cost)
        return NestReport(
            trip_count=trip,
            depth=max(schedule.depth, 1),
            ii=schedule.ii,
            res_mii=schedule.res_mii,
            rec_mii=schedule.rec_mii,
            units=schedule.units,
            body_ops=dfg.size,
            unit_costs=unit_costs,
            fixed_resources=fixed,
            flops=flops,
        )

    # -- backend emission ------------------------------------------------------------

    def emit_fsm(self, module: Module, func_name: str,
                 target: Module) -> Operation:
        """Emit the nest controller FSM into ``target``."""
        report = self.synthesize(module, func_name)
        states: List[dict] = [{"name": "idle", "next": "run0"}]
        for i, nest in enumerate(report.nests):
            states.append({
                "name": f"run{i}",
                "trip": nest.trip_count,
                "ii": nest.ii,
                "depth": nest.depth,
                "next": f"run{i + 1}" if i + 1 < len(report.nests)
                else "done",
            })
        states.append({"name": "done", "next": "idle"})
        fsm = Operation.create(
            "fsm.machine", [], [],
            {"sym_name": f"{func_name}_ctrl", "states": states,
             "initial": "idle"},
        )
        target.append(fsm)
        return fsm

    def emit_hw(self, module: Module, func_name: str,
                target: Module) -> Operation:
        """Emit the datapath skeleton as an ``hw.module``."""
        from repro.ir.core import Block, Region

        func = module.lookup(func_name)
        report = self.synthesize(module, func_name)
        ports = []
        arg_names = func.attr("arg_names") or []
        for i, arg in enumerate(func.regions[0].entry.args):
            name = arg_names[i] if i < len(arg_names) else f"arg{i}"
            ports.append({"name": name, "dir": "in"
                          if i < len(arg_names) - (func.attr("num_outputs")
                                                   or 0) else "out",
                          "width": report.port_width_bits})
        body = Block()
        hw_module = Operation.create(
            "hw.module", [], [],
            {"sym_name": f"{func_name}_dp", "ports": ports},
            [Region([body])],
        )
        target.append(hw_module)
        units: Dict[str, int] = {}
        for nest in report.nests:
            for family, count in nest.units.items():
                units[family] = units.get(family, 0) + count
        from repro.ir import Builder

        builder = Builder.at_end(body)
        for family, count in sorted(units.items()):
            for k in range(count):
                builder.create(
                    "hw.instance", [], [],
                    {"module": f"fu_{family}",
                     "instance_name": f"{family}_{k}"},
                )
        builder.create("hw.output", [], [])
        return hw_module


def _innermost_ops(loop: Operation) -> List[Operation]:
    block = loop.regions[0].entry
    inner = [op for op in block if op.name == "affine.for"]
    if inner:
        return _innermost_ops(inner[0])
    return [op for op in block if op.name != "affine.yield"]


@dataclass
class ExecutorCrossCheck:
    """FLOP/latency agreement between the HLS model and the compiled
    CPU executor (the paper's validation story for §V: the same affine
    module feeds both backends, so their static models must agree)."""

    func_name: str
    hls_flops: int
    executor_flops: int
    estimated_seconds: float   # HLS latency model @ target clock
    measured_seconds: float    # compiled executor wall time

    @property
    def flops_match(self) -> bool:
        return self.hls_flops == self.executor_flops

    @property
    def effective_gflops(self) -> float:
        if self.measured_seconds <= 0.0:
            return 0.0
        return self.executor_flops / self.measured_seconds / 1e9

    def summary(self) -> str:
        marker = "ok" if self.flops_match else "MISMATCH"
        return (f"cross-check {self.func_name}: flops hls={self.hls_flops} "
                f"executor={self.executor_flops} [{marker}]; latency "
                f"fpga-est={self.estimated_seconds * 1e6:.1f}us "
                f"cpu-measured={self.measured_seconds * 1e6:.1f}us "
                f"({self.effective_gflops:.2f} GFLOP/s)")


def cross_check_executor(report: KernelReport, module: Module,
                         func_name: str, inputs,
                         runs: int = 3) -> ExecutorCrossCheck:
    """Validate one :class:`KernelReport` against the compiled executor.

    Compiles the same affine function through
    :func:`repro.tensorpipe.codegen.compile_affine`, compares the two
    independently computed FLOP counts and measures the executor's wall
    time (best of ``runs``) next to the HLS latency estimate.
    """
    import time

    from repro.tensorpipe.codegen import compile_affine

    if runs < 1:
        raise HLSError("cross_check_executor needs at least one run")
    compiled = compile_affine(module, func_name)
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        compiled.run(inputs)
        best = min(best, time.perf_counter() - start)
    return ExecutorCrossCheck(
        func_name=func_name,
        hls_flops=report.flops,
        executor_flops=compiled.flops,
        estimated_seconds=report.latency_seconds,
        measured_seconds=best,
    )


def synthesize_kernel(module: Module, func_name: str,
                      number_format: Optional[NumberFormat] = None,
                      clock_mhz: float = 300.0) -> KernelReport:
    """One-call synthesis entry point."""
    return HLSEngine(clock_mhz=clock_mhz,
                     number_format=number_format).synthesize(module, func_name)


@register_lowering("affine", "fsm")
def lower_affine_to_fsm(module: Module) -> Module:
    """Fig. 5 edge: controllers for every affine function."""
    target = Module()
    engine = HLSEngine()
    for op in module.body:
        if op.name == "func.func" and op.attr("kernel_lang") == "affine":
            engine.emit_fsm(module, op.attr("sym_name"), target)
    return target


@register_lowering("affine", "hw")
def lower_affine_to_hw(module: Module) -> Module:
    """Fig. 5 edge: datapath skeletons for every affine function."""
    target = Module()
    engine = HLSEngine()
    for op in module.body:
        if op.name == "func.func" and op.attr("kernel_lang") == "affine":
            engine.emit_hw(module, op.attr("sym_name"), target)
    return target
