"""Operation scheduling for HLS: dependence graphs, ASAP/ALAP and
resource-constrained list scheduling, plus initiation-interval analysis.

The unit of scheduling is one innermost loop body, represented as a DFG
whose nodes are scalar operations (loads, arithmetic, stores).  The
pipelining model is the standard modulo-scheduling bound:

* ``resMII`` — for each shared resource class, ``ceil(uses / units)``;
* ``recMII`` — the loop-carried recurrence bound; a load/store pair on the
  same buffer (an accumulation) carries its datapath latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import HLSError
from repro.hls.resources import SHARABLE_CLASSES, OpCost, _family, cost_of
from repro.ir import Operation, Value
from repro.ir.types import Type


@dataclass
class DFGNode:
    """One operation in the body dataflow graph."""

    index: int
    op: Operation
    cost: OpCost
    family: str
    preds: List[int] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)


@dataclass
class BodyDFG:
    """Dataflow graph of one loop body."""

    nodes: List[DFGNode]
    # (load_node, store_node) pairs on the same buffer => loop recurrence.
    recurrences: List[Tuple[int, int]]

    @property
    def size(self) -> int:
        return len(self.nodes)


def build_dfg(body_ops: List[Operation], element_of) -> BodyDFG:
    """Build the DFG of a loop body.

    ``element_of(op)`` returns the numeric type used for costing that op.
    SSA def-use edges plus memory-order edges (store -> later load/store on
    the same buffer) define the precedence; a load *before* a store on the
    same buffer marks an accumulation recurrence.
    """
    nodes: List[DFGNode] = []
    producer: Dict[Value, int] = {}
    last_store: Dict[int, int] = {}  # id(buffer) -> node index
    loads_by_buffer: Dict[int, List[int]] = {}
    recurrences: List[Tuple[int, int]] = []
    for op in body_ops:
        if op.name in ("affine.yield",):
            continue
        index = len(nodes)
        element = element_of(op)
        node = DFGNode(index, op, cost_of(op.name, element),
                       _family(op.name))
        nodes.append(node)
        for operand in op.operands:
            if operand in producer:
                pred = producer[operand]
                node.preds.append(pred)
                nodes[pred].succs.append(index)
        if op.name == "memref.load":
            buffer = id(op.operands[0])
            loads_by_buffer.setdefault(buffer, []).append(index)
            if buffer in last_store:
                node.preds.append(last_store[buffer])
                nodes[last_store[buffer]].succs.append(index)
        if op.name == "memref.store":
            buffer = id(op.operands[1])
            if buffer in loads_by_buffer:
                for load in loads_by_buffer[buffer]:
                    recurrences.append((load, index))
            last_store[buffer] = index
        for result in op.results:
            producer[result] = index
    return BodyDFG(nodes, recurrences)


@dataclass
class Schedule:
    """The result of scheduling one loop body."""

    start: List[int]
    depth: int  # total datapath latency (cycles through the body)
    ii: int
    res_mii: int
    rec_mii: int
    units: Dict[str, int]  # functional units instantiated per class

    def state_count(self) -> int:
        return self.depth


def asap(dfg: BodyDFG) -> List[int]:
    """As-soon-as-possible start times (unconstrained)."""
    start = [0] * dfg.size
    for node in dfg.nodes:  # nodes are in topological (program) order
        for pred in node.preds:
            pred_node = dfg.nodes[pred]
            start[node.index] = max(
                start[node.index], start[pred] + pred_node.cost.latency
            )
    return start


def alap(dfg: BodyDFG, horizon: Optional[int] = None) -> List[int]:
    """As-late-as-possible start times within ``horizon``."""
    asap_start = asap(dfg)
    if horizon is None:
        horizon = _depth_from(asap_start, dfg)
    start = [0] * dfg.size
    for node in dfg.nodes:
        start[node.index] = horizon - node.cost.latency
    for node in reversed(dfg.nodes):
        for pred in node.preds:
            pred_node = dfg.nodes[pred]
            start[pred] = min(start[pred],
                              start[node.index] - pred_node.cost.latency)
    return start


def _depth_from(start: List[int], dfg: BodyDFG) -> int:
    depth = 0
    for node in dfg.nodes:
        depth = max(depth, start[node.index] + node.cost.latency)
    return depth


def list_schedule(dfg: BodyDFG,
                  unit_limits: Optional[Dict[str, int]] = None) -> Schedule:
    """Resource-constrained list scheduling with ALAP priority.

    ``unit_limits`` caps concurrent issues per sharable class per cycle
    (defaults: 2 memory ports, unlimited everything else sized afterwards).
    """
    if dfg.size == 0:
        return Schedule([], 0, 1, 1, 1, {})
    limits = {"mem": 2}
    limits.update(unit_limits or {})
    priority = alap(dfg)
    remaining: Set[int] = set(range(dfg.size))
    start: List[int] = [-1] * dfg.size
    busy: Dict[Tuple[str, int], int] = {}  # (class, cycle) -> issues
    cycle = 0
    guard = 0
    while remaining:
        guard += 1
        if guard > 100000:
            raise HLSError("list scheduling did not converge")
        ready = [
            i for i in remaining
            if all(start[p] >= 0 and start[p] + dfg.nodes[p].cost.latency
                   <= cycle for p in dfg.nodes[i].preds)
        ]
        ready.sort(key=lambda i: priority[i])
        for i in ready:
            family = dfg.nodes[i].family
            if family in limits:
                used = busy.get((family, cycle), 0)
                if used >= limits[family]:
                    continue
                busy[(family, cycle)] = used + 1
            start[i] = cycle
            remaining.discard(i)
        cycle += 1
    depth = _depth_from(start, dfg)
    # Initiation interval bounds.
    res_mii = 1
    usage: Dict[str, int] = {}
    for node in dfg.nodes:
        if node.family in SHARABLE_CLASSES:
            usage[node.family] = usage.get(node.family, 0) + 1
    units: Dict[str, int] = {}
    for family, uses in usage.items():
        available = limits.get(family)
        if available:
            res_mii = max(res_mii, math.ceil(uses / available))
    rec_mii = 1
    for load, store in dfg.recurrences:
        path = _longest_path(dfg, load, store)
        if path is not None:
            rec_mii = max(rec_mii, path)
    ii = max(res_mii, rec_mii)
    # Steady-state functional units per class at this II.
    for family, uses in usage.items():
        units[family] = max(1, math.ceil(uses / ii))
    return Schedule(start, depth, ii, res_mii, rec_mii, units)


def _longest_path(dfg: BodyDFG, source: int, target: int) -> Optional[int]:
    """Longest latency path from ``source`` to ``target`` (None if absent)."""
    dist: Dict[int, int] = {source: dfg.nodes[source].cost.latency}
    for node in dfg.nodes:
        if node.index not in dist:
            continue
        base = dist[node.index]
        for succ in node.succs:
            cand = base + dfg.nodes[succ].cost.latency
            if cand > dist.get(succ, -1):
                dist[succ] = cand
    if target not in dist:
        # The recurrence may be through memory only (no SSA path): the
        # store must still wait one access round-trip.
        return dfg.nodes[source].cost.latency + dfg.nodes[target].cost.latency
    return dist[target]
