"""FPGA resource and latency cost model for HLS operators.

Per-operation costs (pipeline latency in cycles and LUT/FF/DSP/BRAM usage)
approximate Vitis HLS characterization on UltraScale+ parts at ~300 MHz.
Absolute numbers are not the point — *relative* costs drive every decision
the SDK makes (scheduling, II, replication counts, format trade-offs), and
those relations (f64 ≫ f32 ≫ fixed; div ≫ mul ≫ add) are faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.ir.types import (
    FixedPointType,
    FloatType,
    IndexType,
    IntegerType,
    PositType,
    Type,
)


@dataclass(frozen=True)
class OpCost:
    """Cost of one hardware operator instance."""

    latency: int  # pipeline depth in cycles
    lut: int
    ff: int
    dsp: int = 0
    bram: int = 0


@dataclass
class ResourceBudget:
    """A mutable resource tally (also used for device capacities)."""

    lut: int = 0
    ff: int = 0
    dsp: int = 0
    bram: int = 0
    uram: int = 0

    def add(self, cost: OpCost, count: int = 1) -> None:
        self.lut += cost.lut * count
        self.ff += cost.ff * count
        self.dsp += cost.dsp * count
        self.bram += cost.bram * count

    def fits_in(self, capacity: "ResourceBudget") -> bool:
        return (self.lut <= capacity.lut and self.ff <= capacity.ff
                and self.dsp <= capacity.dsp and self.bram <= capacity.bram)

    def utilization(self, capacity: "ResourceBudget") -> Dict[str, float]:
        return {
            "lut": self.lut / capacity.lut if capacity.lut else 0.0,
            "ff": self.ff / capacity.ff if capacity.ff else 0.0,
            "dsp": self.dsp / capacity.dsp if capacity.dsp else 0.0,
            "bram": self.bram / capacity.bram if capacity.bram else 0.0,
        }

    def scaled(self, factor: int) -> "ResourceBudget":
        return ResourceBudget(self.lut * factor, self.ff * factor,
                              self.dsp * factor, self.bram * factor,
                              self.uram * factor)

    def merged(self, other: "ResourceBudget") -> "ResourceBudget":
        return ResourceBudget(self.lut + other.lut, self.ff + other.ff,
                              self.dsp + other.dsp, self.bram + other.bram,
                              self.uram + other.uram)


# Cost tables keyed by operator class and numeric family.
_FLOAT_COSTS: Dict[str, Dict[int, OpCost]] = {
    "add": {64: OpCost(7, 650, 750), 32: OpCost(4, 390, 400),
            16: OpCost(3, 200, 220)},
    "mul": {64: OpCost(8, 350, 650, dsp=11), 32: OpCost(4, 120, 250, dsp=3),
            16: OpCost(3, 80, 150, dsp=1)},
    "div": {64: OpCost(36, 3200, 3600), 32: OpCost(16, 800, 900),
            16: OpCost(10, 400, 450)},
    "cmp": {64: OpCost(2, 120, 100), 32: OpCost(1, 66, 60),
            16: OpCost(1, 40, 40)},
    "math": {64: OpCost(40, 5200, 4800, dsp=26),
             32: OpCost(20, 1700, 1500, dsp=9),
             16: OpCost(12, 900, 800, dsp=4)},
}

_INT_COSTS: Dict[str, OpCost] = {
    "add": OpCost(1, 64, 64),
    "mul": OpCost(3, 60, 120, dsp=4),
    "div": OpCost(36, 1800, 2000),
    "cmp": OpCost(1, 40, 20),
    "logic": OpCost(1, 32, 32),
    "shift": OpCost(1, 70, 64),
}

# Posit operators synthesize to decode/operate/encode datapaths; costs from
# posit-HLS literature (Murillo et al.): roughly 2-3x fixed point, below
# same-width IEEE floats.
_POSIT_COSTS: Dict[str, OpCost] = {
    "add": OpCost(4, 420, 400),
    "mul": OpCost(5, 300, 320, dsp=2),
    "div": OpCost(18, 1400, 1300),
    "cmp": OpCost(1, 60, 40),
}

_MEM_COST = OpCost(2, 30, 40)  # BRAM port access
_SELECT_COST = OpCost(1, 48, 32)
_CAST_COST = OpCost(1, 40, 40)


def _float_bits(ty: Type) -> int:
    if isinstance(ty, FloatType):
        return ty.bits
    return 64


def _family(op_name: str) -> str:
    last = op_name.split(".")[-1]
    if last in ("addf", "subf", "addi", "subi", "maximumf", "minimumf",
                "maxsi", "minsi"):
        return "add"
    if last in ("mulf", "muli"):
        return "mul"
    if last in ("divf", "divsi", "remsi", "powf"):
        return "div"
    if last in ("cmpf", "cmpi"):
        return "cmp"
    if last in ("andi", "ori", "xori"):
        return "logic"
    if last in ("shli", "shrsi"):
        return "shift"
    if op_name.startswith("math."):
        return "math"
    if last == "select":
        return "select"
    if last in ("index_cast", "sitofp", "fptosi", "truncf", "extf", "cast",
                "negf"):
        return "cast"
    if op_name in ("memref.load", "memref.store"):
        return "mem"
    return "misc"


def cost_of(op_name: str, element: Type) -> OpCost:
    """Cost of one operator on a given element type."""
    family = _family(op_name)
    if family == "mem":
        return _MEM_COST
    if family == "select":
        return _SELECT_COST
    if family in ("cast", "misc"):
        return _CAST_COST
    if isinstance(element, (IntegerType, IndexType)) or (
        isinstance(element, FixedPointType)
    ):
        table_key = family if family in _INT_COSTS else "add"
        return _INT_COSTS[table_key]
    if isinstance(element, PositType):
        return _POSIT_COSTS.get(family, _POSIT_COSTS["add"])
    bits = _float_bits(element)
    bucket = 64 if bits >= 64 else (32 if bits >= 32 else 16)
    if family == "math":
        return _FLOAT_COSTS["math"][bucket]
    return _FLOAT_COSTS.get(family, _FLOAT_COSTS["add"])[bucket]


# Resource classes that constrain scheduling: how many ops of a class can
# issue per cycle before extra units must be instantiated.
SHARABLE_CLASSES = ("mul", "div", "math", "mem")
