"""A compact MLIR-style intermediate representation (paper §V, Fig. 5).

This package provides the IR substrate the EVEREST SDK reproduction is built
on: types, attributes, generic operations with regions, a builder, a textual
printer/parser pair that round-trips, a verifier driven by declarative
dialect definitions, and a pass/pattern-rewrite infrastructure.

Quick tour::

    from repro.ir import Module, Builder, types as T

    m = Module()
    b = Builder.at_end(m.body)
    c = b.create("arith.constant", result_types=[T.f64],
                 attributes={"value": 2.0}).result
    print(m)                    # generic MLIR syntax
"""

from repro.ir import types
from repro.ir.analysis import (
    TOP,
    AbstractValue,
    AnalysisError,
    ModuleAnalysis,
    analyze_module,
    from_type,
    op_path,
)
from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseAttr,
    DictAttr,
    FloatAttr,
    IntAttr,
    StrAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
    attr,
    unwrap,
)
from repro.ir.builder import Builder, build_func
from repro.ir.canonicalize import (
    CanonicalizePass,
    EraseTriviallyDead,
    FoldPatterns,
    canonical_pattern_set,
    canonicalize_module,
    constant_value,
)
from repro.ir.core import (
    Block,
    BlockArgument,
    Module,
    Operation,
    OpResult,
    Region,
    Value,
)
from repro.ir.dialect import REGISTRY, Dialect, DialectRegistry, OpDef, register_dialect
from repro.ir.fusion import FusionPass, fuse_module
from repro.ir.parser import parse_module, parse_type
from repro.ir.passes import (
    CommonSubexpressionElimination,
    DeadCodeElimination,
    LambdaPass,
    Pass,
    PassManager,
    PatternRewriter,
    RewritePattern,
    apply_patterns,
)
from repro.ir.printer import print_module, print_op
from repro.ir.rewrite import WorklistRewriter, apply_patterns_worklist, is_attached
from repro.ir.symbols import InlinePass, SymbolTable
from repro.ir.verifier import verify, verify_typed

__all__ = [
    "types",
    "AbstractValue",
    "AnalysisError",
    "ModuleAnalysis",
    "TOP",
    "analyze_module",
    "from_type",
    "op_path",
    "Attribute",
    "IntAttr",
    "FloatAttr",
    "BoolAttr",
    "StrAttr",
    "UnitAttr",
    "TypeAttr",
    "SymbolRefAttr",
    "ArrayAttr",
    "DictAttr",
    "DenseAttr",
    "attr",
    "unwrap",
    "Builder",
    "build_func",
    "Block",
    "BlockArgument",
    "Module",
    "Operation",
    "OpResult",
    "Region",
    "Value",
    "Dialect",
    "DialectRegistry",
    "OpDef",
    "REGISTRY",
    "register_dialect",
    "parse_module",
    "parse_type",
    "print_module",
    "print_op",
    "verify",
    "verify_typed",
    "Pass",
    "LambdaPass",
    "PassManager",
    "RewritePattern",
    "PatternRewriter",
    "apply_patterns",
    "apply_patterns_worklist",
    "is_attached",
    "WorklistRewriter",
    "DeadCodeElimination",
    "CommonSubexpressionElimination",
    "CanonicalizePass",
    "EraseTriviallyDead",
    "FoldPatterns",
    "canonical_pattern_set",
    "canonicalize_module",
    "constant_value",
    "SymbolTable",
    "InlinePass",
    "FusionPass",
    "fuse_module",
]
