"""Parser for the textual IR (MLIR generic form).

Parses exactly the syntax produced by :mod:`repro.ir.printer`, making
``parse_module(print_module(m))`` an identity on structure (property-tested
in ``tests/ir/test_roundtrip.py``).  It is a character-level recursive
descent parser; types and attributes share the same machinery.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

import numpy as np

from repro.errors import IRParseError
from repro.ir.attributes import (
    ArrayAttr,
    Attribute,
    BoolAttr,
    DenseAttr,
    DictAttr,
    FloatAttr,
    IntAttr,
    StrAttr,
    SymbolRefAttr,
    TypeAttr,
    UnitAttr,
)
from repro.ir.core import Block, Module, Operation, Region, Value
from repro.ir.types import (
    FixedPointType,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneOpType,
    PositType,
    StreamType,
    TensorType,
    Type,
)

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_.$\-]*")
_NUMBER = re.compile(r"-?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\d+)")
_VALUE_REF = re.compile(r"%(\d+)(?:#(\d+))?")


class Parser:
    """Recursive-descent parser over a single text buffer."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        # Unified value namespace: "%N" or "%N#K" -> Value.
        self.values: Dict[str, Value] = {}

    # -- low-level helpers ----------------------------------------------------

    def error(self, message: str) -> IRParseError:
        line = self.text.count("\n", 0, self.pos) + 1
        col = self.pos - (self.text.rfind("\n", 0, self.pos) + 1) + 1
        return IRParseError(message, line, col)

    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                nl = self.text.find("\n", self.pos)
                self.pos = len(self.text) if nl < 0 else nl + 1
            else:
                break

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, literal: str) -> bool:
        self.skip_ws()
        return self.text.startswith(literal, self.pos)

    def accept(self, literal: str) -> bool:
        if self.peek(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.accept(literal):
            found = self.text[self.pos : self.pos + 12]
            raise self.error(f"expected {literal!r}, found {found!r}")

    def match(self, pattern: re.Pattern) -> Optional[str]:
        self.skip_ws()
        m = pattern.match(self.text, self.pos)
        if m is None:
            return None
        self.pos = m.end()
        return m.group(0)

    def parse_string_literal(self) -> str:
        self.skip_ws()
        if not self.accept('"'):
            raise self.error("expected string literal")
        out: List[str] = []
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            self.pos += 1
            if ch == "\\":
                nxt = self.text[self.pos]
                self.pos += 1
                out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}[nxt])
            elif ch == '"':
                return "".join(out)
            else:
                out.append(ch)
        raise self.error("unterminated string literal")

    # -- types -----------------------------------------------------------------

    def parse_type(self) -> Type:
        self.skip_ws()
        if self.accept("("):
            # Function type: (t, t) -> t | (t) -> (t, t)
            inputs: List[Type] = []
            if not self.peek(")"):
                inputs.append(self.parse_type())
                while self.accept(","):
                    inputs.append(self.parse_type())
            self.expect(")")
            self.expect("->")
            results: List[Type] = []
            if self.accept("("):
                if not self.peek(")"):
                    results.append(self.parse_type())
                    while self.accept(","):
                        results.append(self.parse_type())
                self.expect(")")
            else:
                results.append(self.parse_type())
            return FunctionType(tuple(inputs), tuple(results))
        if self.accept("!dfg.stream<"):
            element = self.parse_type()
            self.expect(">")
            return StreamType(element)
        if self.accept("!base2.fixed<"):
            int_bits = int(self.match(_NUMBER) or "")
            self.expect(",")
            frac_bits = int(self.match(_NUMBER) or "")
            self.expect(",")
            word = self.match(_IDENT)
            self.expect(">")
            return FixedPointType(int_bits, frac_bits, word == "signed")
        if self.accept("!base2.posit<"):
            nbits = int(self.match(_NUMBER) or "")
            self.expect(",")
            es = int(self.match(_NUMBER) or "")
            self.expect(">")
            return PositType(nbits, es)
        word = self.match(_IDENT)
        if word is None:
            raise self.error("expected a type")
        if word == "index":
            return IndexType()
        if word == "none":
            return NoneOpType()
        if word in ("f16", "f32", "f64"):
            return FloatType(int(word[1:]))
        if word == "bf16":
            return FloatType(16, brain=True)
        if re.fullmatch(r"i\d+", word):
            return IntegerType(int(word[1:]))
        if re.fullmatch(r"ui\d+", word):
            return IntegerType(int(word[2:]), signed=False)
        if word == "tensor":
            shape, element = self._parse_shaped_body(allow_space=False)
            return TensorType(shape, element)
        if word == "memref":
            shape, element, space = self._parse_shaped_body(allow_space=True)
            return MemRefType(shape, element, space)
        raise self.error(f"unknown type: {word!r}")

    def _parse_shaped_body(self, allow_space: bool):
        """Parse ``<4x?xf64[, "space"]>`` after tensor/memref."""
        self.expect("<")
        shape: List[Optional[int]] = []
        while True:
            save = self.pos
            self.skip_ws()
            if self.accept("?"):
                self.expect("x")
                shape.append(None)
                continue
            dim = self.match(_NUMBER)
            if dim is not None and self.text.startswith("x", self.pos):
                self.pos += 1
                shape.append(int(dim))
                continue
            self.pos = save
            break
        element = self.parse_type()
        space = ""
        if allow_space and self.accept(","):
            space = self.parse_string_literal()
        self.expect(">")
        if allow_space:
            return tuple(shape), element, space
        return tuple(shape), element

    # -- attributes --------------------------------------------------------------

    def parse_attribute(self) -> Attribute:
        self.skip_ws()
        ch = self.text[self.pos : self.pos + 1]
        if ch == '"':
            return StrAttr(self.parse_string_literal())
        if ch == "@":
            self.pos += 1
            name = self.match(_IDENT)
            if name is None:
                raise self.error("expected symbol name after '@'")
            return SymbolRefAttr(name)
        if ch == "[":
            self.pos += 1
            elements: List[Attribute] = []
            if not self.peek("]"):
                elements.append(self.parse_attribute())
                while self.accept(","):
                    elements.append(self.parse_attribute())
            self.expect("]")
            return ArrayAttr(elements)
        if ch == "{":
            self.pos += 1
            entries: Dict[str, Attribute] = {}
            if not self.peek("}"):
                while True:
                    key = self.match(_IDENT)
                    if key is None:
                        raise self.error("expected attribute name")
                    self.expect("=")
                    entries[key] = self.parse_attribute()
                    if not self.accept(","):
                        break
            self.expect("}")
            return DictAttr(entries)
        for keyword, value in (("true", True), ("false", False)):
            if self._accept_word(keyword):
                return BoolAttr(value)
        if self._accept_word("unit"):
            return UnitAttr()
        if self._accept_word("dense"):
            return self._parse_dense()
        for keyword, value in (("inf", float("inf")), ("-inf", float("-inf")),
                               ("nan", float("nan"))):
            if self._accept_word(keyword):
                return self._finish_float(value)
        number = self.match(_NUMBER)
        if number is not None:
            if "." in number or "e" in number or "E" in number:
                return self._finish_float(float(number))
            value = int(number)
            ty: Type = IntegerType(64)
            if self.accept(":"):
                ty = self.parse_type()
            return IntAttr(value, ty)
        # Fall through: a type attribute.
        return TypeAttr(self.parse_type())

    def _accept_word(self, word: str) -> bool:
        self.skip_ws()
        end = self.pos + len(word)
        if not self.text.startswith(word, self.pos):
            return False
        nxt = self.text[end : end + 1]
        if nxt and (nxt.isalnum() or nxt in "_."):
            return False
        self.pos = end
        return True

    def _finish_float(self, value: float) -> FloatAttr:
        ty: Type = FloatType(64)
        if self.accept(":"):
            ty = self.parse_type()
        return FloatAttr(value, ty)

    def _parse_dense(self) -> DenseAttr:
        self.expect("<")
        self.expect("[")
        raw: List = []
        if not self.peek("]"):
            while True:
                if self._accept_word("true"):
                    raw.append(True)
                elif self._accept_word("false"):
                    raw.append(False)
                else:
                    number = self.match(_NUMBER)
                    if number is None:
                        raise self.error("expected dense element")
                    if "." in number or "e" in number or "E" in number:
                        raw.append(float(number))
                    else:
                        raw.append(int(number))
                if not self.accept(","):
                    break
        self.expect("]")
        self.expect(">")
        self.expect(":")
        ty = self.parse_type()
        if not isinstance(ty, TensorType):
            raise self.error("dense attribute requires a tensor type")
        if raw and isinstance(raw[0], bool):
            dtype = np.bool_
        elif any(isinstance(x, float) for x in raw):
            dtype = np.float64
        else:
            dtype = np.int64
        array = np.array(raw, dtype=dtype).reshape(
            tuple(d if d is not None else -1 for d in ty.shape)
        )
        return DenseAttr(array, ty)

    # -- operations -----------------------------------------------------------

    def parse_value_use(self) -> Value:
        self.skip_ws()
        m = _VALUE_REF.match(self.text, self.pos)
        if m is None:
            raise self.error("expected value reference")
        self.pos = m.end()
        key = m.group(0)
        if key not in self.values:
            raise self.error(f"use of undefined value {key}")
        return self.values[key]

    def parse_operation(self) -> Operation:
        """Parse one generic operation (optionally with bound results)."""
        self.skip_ws()
        result_base: Optional[str] = None
        num_results = 0
        if self.peek("%"):
            m = _VALUE_REF.match(self.text, self.pos)
            if m is None or m.group(2) is not None:
                raise self.error("malformed result binding")
            self.pos = m.end()
            result_base = m.group(0)
            num_results = 1
            if self.accept(":"):
                count = self.match(_NUMBER)
                if count is None:
                    raise self.error("expected result count")
                num_results = int(count)
            self.expect("=")
        name = self.parse_string_literal()
        self.expect("(")
        operands: List[Value] = []
        if not self.peek(")"):
            operands.append(self.parse_value_use())
            while self.accept(","):
                operands.append(self.parse_value_use())
        self.expect(")")
        regions: List[Region] = []
        save = self.pos
        if self.accept("("):
            if self.peek("{"):
                regions.append(self.parse_region())
                while self.accept(","):
                    regions.append(self.parse_region())
                self.expect(")")
            else:
                self.pos = save  # it was the signature's '(' — rewind
        attributes: Dict[str, Attribute] = {}
        if self.peek("{"):
            attr_dict = self.parse_attribute()
            assert isinstance(attr_dict, DictAttr)
            attributes = attr_dict.as_dict()
        self.expect(":")
        signature = self.parse_type()
        if not isinstance(signature, FunctionType):
            raise self.error("expected an operation signature type")
        if len(signature.inputs) != len(operands):
            raise self.error(
                f"signature arity {len(signature.inputs)} does not match "
                f"{len(operands)} operands"
            )
        op = Operation(name, operands, list(signature.results), attributes, regions)
        if result_base is not None:
            if num_results != len(op.results):
                raise self.error("result count does not match signature")
            if num_results == 1:
                self.values[result_base] = op.results[0]
            else:
                for i, result in enumerate(op.results):
                    self.values[f"{result_base}#{i}"] = result
        return op

    def parse_region(self) -> Region:
        self.expect("{")
        region = Region()
        while not self.peek("}"):
            if self.peek("^"):
                block = self._parse_block_header()
            else:
                block = Block()
            region.add_block(block)
            while not self.peek("}") and not self.peek("^"):
                block.append(self.parse_operation())
        self.expect("}")
        if not region.blocks:
            region.add_block(Block())
        return region

    def _parse_block_header(self) -> Block:
        self.expect("^")
        label = self.match(_IDENT)
        if label is None:
            raise self.error("expected block label")
        block = Block()
        if self.accept("("):
            if not self.peek(")"):
                while True:
                    self.skip_ws()
                    m = _VALUE_REF.match(self.text, self.pos)
                    if m is None or m.group(2) is not None:
                        raise self.error("expected block argument name")
                    self.pos = m.end()
                    arg_name = m.group(0)
                    self.expect(":")
                    arg = block.add_argument(self.parse_type())
                    self.values[arg_name] = arg
                    if not self.accept(","):
                        break
            self.expect(")")
        self.expect(":")
        return block


def parse_module(text: str) -> Module:
    """Parse a printed module back into IR."""
    parser = Parser(text)
    op = parser.parse_operation()
    if op.name != "builtin.module":
        raise parser.error(f"expected builtin.module, got {op.name}")
    if not parser.at_end():
        raise parser.error("trailing input after module")
    module = Module.__new__(Module)
    module.op = op
    return module


def parse_type(text: str) -> Type:
    """Parse a standalone type, e.g. ``tensor<4x?xf64>``."""
    parser = Parser(text)
    ty = parser.parse_type()
    if not parser.at_end():
        raise parser.error("trailing input after type")
    return ty
