"""Textual IR printer (MLIR generic form).

The printer emits every operation in the fully generic syntax::

    %0 = "arith.constant"() {value = 1.0 : f64} : () -> f64
    %1:2 = "d.pair"(%0) : (f64) -> (f64, f64)
    "func.return"(%1#0) : (f64) -> ()

Values are numbered in encounter order with a single namespace (block
arguments included), which keeps the grammar trivial and guarantees that
:mod:`repro.ir.parser` round-trips the output exactly.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.core import Block, Module, Operation, Region, Value
from repro.ir.types import FunctionType


class _PrintState:
    def __init__(self) -> None:
        self.value_names: Dict[Value, str] = {}
        self.next_value = 0
        self.next_block = 0

    def name_of(self, value: Value) -> str:
        name = self.value_names.get(value)
        if name is None:
            # A forward reference should not happen in verified IR, but a
            # readable placeholder beats a crash while debugging passes.
            name = f"%<unknown{self.next_value}>"
        return name

    def define_op_results(self, op: Operation) -> str:
        """Assign names to op results, returning the LHS text (or '')."""
        if not op.results:
            return ""
        base = f"%{self.next_value}"
        self.next_value += 1
        if len(op.results) == 1:
            self.value_names[op.results[0]] = base
            return f"{base} = "
        for i, result in enumerate(op.results):
            self.value_names[result] = f"{base}#{i}"
        return f"{base}:{len(op.results)} = "

    def define_block_arg(self, value: Value) -> str:
        name = f"%{self.next_value}"
        self.next_value += 1
        self.value_names[value] = name
        return name

    def block_label(self) -> str:
        label = f"^bb{self.next_block}"
        self.next_block += 1
        return label


def _print_op(op: Operation, state: _PrintState, indent: int, out: list) -> None:
    pad = "  " * indent
    lhs = state.define_op_results(op)
    operand_names = ", ".join(state.name_of(v) for v in op.operands)
    text = f'{pad}{lhs}"{op.name}"({operand_names})'
    if op.regions:
        out.append(text + " (")
        for ri, region in enumerate(op.regions):
            _print_region(region, state, indent, out)
            if ri + 1 < len(op.regions):
                out[-1] += ", "
        text = pad + ")"
    if op.attributes:
        body = ", ".join(f"{k} = {v}" for k, v in sorted(op.attributes.items()))
        text += " {" + body + "}"
    in_types = ", ".join(str(v.type) for v in op.operands)
    out_types = [str(r.type) for r in op.results]
    if len(out_types) == 1:
        # A bare function-type result would make the signature ambiguous
        # ("(...) -> (...) -> ..."): parenthesize it (found by irfuzz).
        if isinstance(op.results[0].type, FunctionType):
            sig = f"({in_types}) -> ({out_types[0]})"
        else:
            sig = f"({in_types}) -> {out_types[0]}"
    else:
        sig = f"({in_types}) -> ({', '.join(out_types)})"
    text += f" : {sig}"
    out.append(text)


def _print_region(region: Region, state: _PrintState, indent: int, out: list) -> None:
    pad = "  " * indent
    out.append(pad + "{")
    for block in region.blocks:
        _print_block(block, state, indent + 1, out)
    out.append(pad + "}")


def _print_block(block: Block, state: _PrintState, indent: int, out: list) -> None:
    pad = "  " * (indent - 1)
    needs_header = bool(block.args) or (
        block.parent is not None and len(block.parent.blocks) > 1
    )
    if needs_header:
        label = state.block_label()
        args = ", ".join(
            f"{state.define_block_arg(a)}: {a.type}" for a in block.args
        )
        header = f"{pad}{label}({args}):" if args else f"{pad}{label}:"
        out.append(header)
    for op in block.operations:
        _print_op(op, state, indent, out)


def print_op(op: Operation) -> str:
    """Print a single operation (and everything nested in it)."""
    state = _PrintState()
    out: list = []
    _print_op(op, state, 0, out)
    return "\n".join(out)


def print_module(module: Module) -> str:
    """Print a whole module; the inverse of ``parser.parse_module``."""
    return print_op(module.op) + "\n"
